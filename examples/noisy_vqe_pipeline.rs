//! The full paper pipeline on one molecule: CAFQA classical bootstrap →
//! noisy VQE tuning, comparing convergence against an HF start
//! (a miniature of the paper's Fig. 14).
//!
//! Run with: `cargo run --release --example noisy_vqe_pipeline`

use cafqa::chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa::core::{CafqaOptions, MolecularCafqa};
use cafqa::sim::NoiseModel;
use cafqa::vqe::{run_vqe, NoisyBackend, SpsaOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipe = ChemPipeline::build(MoleculeKind::H2, 1.5, &ScfKind::Rhf)?;
    let problem = pipe.problem(1, 1, true)?;
    let exact = problem.exact_energy.unwrap();
    let h = problem.hamiltonian.clone();
    let hf_bits = problem.hf_bits;
    let runner = MolecularCafqa::new(problem);

    // Stage 1: classical Clifford bootstrap.
    let cafqa = runner.run(&CafqaOptions::quick());
    println!("CAFQA initialization: {:.6} Ha (exact {:.6})", cafqa.energy, exact);

    // Stage 2: noisy VQE from both initializations.
    let backend = NoisyBackend { model: NoiseModel::casablanca_class() };
    let spsa = SpsaOptions { iterations: 150, ..Default::default() };
    let from_cafqa = run_vqe(&runner.ansatz, &h, &cafqa.initial_angles(), &backend, &spsa);
    let hf_angles: Vec<f64> = runner
        .ansatz
        .basis_state_config(hf_bits)
        .iter()
        .map(|&k| k as f64 * std::f64::consts::FRAC_PI_2)
        .collect();
    let from_hf = run_vqe(&runner.ansatz, &h, &hf_angles, &backend, &spsa);
    println!(
        "noisy VQE best: from CAFQA {:.6} | from HF {:.6}",
        from_cafqa.best_energy, from_hf.best_energy
    );
    println!(
        "initial energies: CAFQA start {:.6} | HF start {:.6}",
        from_cafqa.trace[0], from_hf.trace[0]
    );
    assert!(from_cafqa.trace[0] <= from_hf.trace[0] + 1e-6);
    Ok(())
}
