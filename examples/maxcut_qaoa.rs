//! CAFQA beyond chemistry: classical bootstrap for a MaxCut VQA
//! (the workload class behind the paper's Fig. 15 MaxCut entries).
//!
//! MaxCut Hamiltonians are Ising-class, so the default
//! (`IsingFastPath::Auto`) routing solves them in the reduced
//! product-eigenstate space instead of running the 4^d BO search — same
//! `CafqaResult`, orders of magnitude faster (arXiv 2312.01036). This
//! example runs both routes and checks the fast path never loses.
//!
//! Run with: `cargo run --release --example maxcut_qaoa`

use cafqa::circuit::EfficientSu2;
use cafqa::core::maxcut::{maxcut_hamiltonian, Graph};
use cafqa::core::{run_cafqa, CafqaOptions, IsingFastPath};

fn main() {
    let graph = Graph::random(10, 0.4, 2024);
    println!("Random graph: {} vertices, {} edges", graph.n, graph.edges.len());
    let optimum = graph.max_cut_exact();
    println!("Exact max cut (exhaustive): {optimum}");

    let h = maxcut_hamiltonian(&graph);
    let ansatz = EfficientSu2::new(graph.n, 1);
    let opts =
        CafqaOptions { warmup: 250, iterations: 400, number_penalty: 0.0, ..Default::default() };

    // The default routing classifies the Hamiltonian as Ising and solves
    // the reduced space: one objective evaluation instead of hundreds.
    let fast = run_cafqa(&ansatz, &h, vec![], &[], &opts);
    println!(
        "Fast path cut: {} (in {} evaluation{})",
        -fast.energy,
        fast.evaluations,
        if fast.evaluations == 1 { "" } else { "s" }
    );

    // The unrouted full pipeline, for comparison at the same seed.
    let bo_opts = CafqaOptions { ising_fast_path: IsingFastPath::Off, ..opts };
    let bo = run_cafqa(&ansatz, &h, vec![], &[], &bo_opts);
    println!(
        "Full BO cut: {} (found at evaluation {} of {})",
        -bo.energy, bo.iterations_to_best, bo.evaluations
    );

    // The fast-path seed matches or beats the BO route, and MaxCut
    // optima are computational basis states — stabilizer states — so
    // neither route can beat the exhaustive optimum.
    assert!(fast.energy <= bo.energy + 1e-9, "fast path must match or beat the BO route");
    assert!(-fast.energy <= optimum + 1e-9);
    assert!(-bo.energy <= optimum + 1e-9);
    assert!((-fast.energy - optimum).abs() < 1e-9, "10-vertex instances solve exactly");
}
