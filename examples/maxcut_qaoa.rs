//! CAFQA beyond chemistry: classical bootstrap for a MaxCut VQA
//! (the workload class behind the paper's Fig. 15 MaxCut entries).
//!
//! Run with: `cargo run --release --example maxcut_qaoa`

use cafqa::circuit::EfficientSu2;
use cafqa::core::maxcut::{maxcut_hamiltonian, Graph};
use cafqa::core::{run_cafqa, CafqaOptions};

fn main() {
    let graph = Graph::random(10, 0.4, 2024);
    println!("Random graph: {} vertices, {} edges", graph.n, graph.edges.len());
    let optimum = graph.max_cut_exact();
    println!("Exact max cut (exhaustive): {optimum}");

    let h = maxcut_hamiltonian(&graph);
    let ansatz = EfficientSu2::new(graph.n, 1);
    let opts =
        CafqaOptions { warmup: 250, iterations: 400, number_penalty: 0.0, ..Default::default() };
    let result = run_cafqa(&ansatz, &h, vec![], &[], &opts);
    println!(
        "CAFQA cut: {} (found at evaluation {} of {})",
        -result.energy, result.iterations_to_best, result.evaluations
    );
    // MaxCut optima are computational basis states, hence stabilizer
    // states: CAFQA can represent them exactly.
    assert!(-result.energy <= optimum + 1e-9);
}
