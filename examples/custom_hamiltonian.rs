//! Bring your own Hamiltonian: parse a Pauli-sum expression (the paper's
//! §2.1 example) and bootstrap it with CAFQA.
//!
//! Run with: `cargo run --release --example custom_hamiltonian`

use cafqa::chem::qubit_ground_energy;
use cafqa::circuit::EfficientSu2;
use cafqa::core::{run_cafqa, CafqaOptions};
use cafqa::pauli::PauliOp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The example 4-qubit Hamiltonian from the paper's Background section.
    let h: PauliOp = "0.1*XYXY + 0.5*IZZI".parse()?;
    println!("H = {h}   ({} qubits, {} terms)", h.num_qubits(), h.num_terms());
    let exact = qubit_ground_energy(&h).expect("small real Hamiltonian");
    println!("exact ground energy: {exact:.6}");

    let ansatz = EfficientSu2::new(h.num_qubits(), 1);
    let opts =
        CafqaOptions { warmup: 200, iterations: 300, number_penalty: 0.0, ..Default::default() };
    let result = run_cafqa(&ansatz, &h, vec![], &[], &opts);
    println!(
        "CAFQA best stabilizer energy: {:.6} (gap to exact: {:.3e})",
        result.energy,
        result.energy - exact
    );
    Ok(())
}
