//! Dissociation-curve scenario: CAFQA vs HF vs exact across LiH bond
//! lengths (a miniature of the paper's Fig. 9).
//!
//! Run with: `cargo run --release --example lih_dissociation`

use cafqa::chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa::core::metrics::correlation_recovered;
use cafqa::core::{CafqaOptions, MolecularCafqa};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("bond_A     E_HF       E_CAFQA     E_exact    recovered");
    for bond in [1.2, 1.6, 2.4, 3.2, 4.0] {
        let pipe = ChemPipeline::build(MoleculeKind::LiH, bond, &ScfKind::Rhf)?;
        let (na, nb) = pipe.default_sector();
        let problem = pipe.problem(na, nb, true)?;
        let hf = problem.hf_energy;
        let exact = problem.exact_energy.unwrap();
        let runner = MolecularCafqa::new(problem);
        let result = runner.run(&CafqaOptions::quick());
        println!(
            "{bond:>5.2}  {hf:>10.6}  {:>10.6}  {exact:>10.6}  {:>7.2}%",
            result.energy,
            correlation_recovered(result.energy, hf, exact)
        );
    }
    Ok(())
}
