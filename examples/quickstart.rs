//! Quickstart: bootstrap a VQE for H2 with CAFQA.
//!
//! Builds the 2-qubit H2 Hamiltonian from scratch (STO-3G integrals →
//! RHF → parity mapping → two-qubit reduction), searches the Clifford
//! space classically, and compares the initialization against
//! Hartree-Fock and the exact (FCI) answer.
//!
//! Run with: `cargo run --release --example quickstart`

use cafqa::chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa::core::metrics::{correlation_recovered, CHEMICAL_ACCURACY};
use cafqa::core::{CafqaOptions, MolecularCafqa};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bond = 2.0; // Å — stretched, where HF loses correlation energy
    println!("Building H2 @ {bond} Å from scratch (STO-3G / RHF / parity mapping)...");
    let pipe = ChemPipeline::build(MoleculeKind::H2, bond, &ScfKind::Rhf)?;
    let problem = pipe.problem(1, 1, true)?;
    println!(
        "  {} qubits, {} Pauli terms, HF = {:.6} Ha, exact = {:.6} Ha",
        problem.n_qubits,
        problem.hamiltonian.num_terms(),
        problem.hf_energy,
        problem.exact_energy.unwrap()
    );

    println!("Searching the Clifford space (Bayesian optimization)...");
    let runner = MolecularCafqa::new(problem);
    let result = runner.run(&CafqaOptions::quick());
    let hf = runner.problem().hf_energy;
    let exact = runner.problem().exact_energy.unwrap();
    println!(
        "  CAFQA initialization: {:.6} Ha after {} evaluations",
        result.energy, result.evaluations
    );
    println!("  HF error    = {:.3e} Ha", (hf - exact).abs());
    println!(
        "  CAFQA error = {:.3e} Ha (chemical accuracy = {CHEMICAL_ACCURACY:.1e})",
        (result.energy - exact).abs()
    );
    println!(
        "  correlation energy recovered: {:.2}%",
        correlation_recovered(result.energy, hf, exact)
    );
    println!("  initial angles for VQE tuning: {:?}", result.initial_angles());
    Ok(())
}
