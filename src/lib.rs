//! CAFQA: a Clifford Ansatz For Quantum Accuracy — facade crate.
//!
//! A from-scratch Rust reproduction of *CAFQA: A Classical Simulation
//! Bootstrap for Variational Quantum Algorithms* (Ravi et al.,
//! ASPLOS 2023). This crate re-exports the whole workspace:
//!
//! - [`chem`] — STO-3G integrals, Hartree-Fock, fermion mappings, FCI
//! - [`clifford`] — stabilizer tableau + Clifford+T branch simulation
//! - [`circuit`] — circuit IR and the hardware-efficient SU2 ansatz
//! - [`sim`] — statevector / density-matrix simulators and noise models
//! - [`bayesopt`] — random-forest Bayesian optimization (batch
//!   objectives, top-B acquisition per surrogate refit)
//! - [`vqe`] — SPSA tuning loop
//! - [`core`] — the CAFQA search itself, including the persistent
//!   worker-pool engine ([`core::engine`]) every parallel path runs on
//! - [`serve`] — CAFQA-as-a-service: multi-tenant job server with
//!   content-addressed caching, warm starts and fair-share scheduling
//!
//! # Examples
//!
//! ```
//! use cafqa::chem::{ChemPipeline, MoleculeKind, ScfKind};
//! use cafqa::core::{CafqaOptions, MolecularCafqa};
//!
//! let pipe = ChemPipeline::build(MoleculeKind::H2, 2.0, &ScfKind::Rhf)?;
//! let problem = pipe.problem(1, 1, true)?;
//! let runner = MolecularCafqa::new(problem);
//! let result = runner.run(&CafqaOptions::quick());
//! assert!(result.energy <= runner.problem().hf_energy + 1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use cafqa_bayesopt as bayesopt;
pub use cafqa_chem as chem;
pub use cafqa_circuit as circuit;
pub use cafqa_clifford as clifford;
pub use cafqa_core as core;
pub use cafqa_linalg as linalg;
pub use cafqa_pauli as pauli;
pub use cafqa_serve as serve;
pub use cafqa_sim as sim;
pub use cafqa_vqe as vqe;
