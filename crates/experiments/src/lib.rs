//! Shared harness for the per-figure experiment binaries.
//!
//! Every binary under `src/bin/` regenerates one table or figure of the
//! CAFQA paper: it runs the full pipeline (chemistry → Clifford search →
//! metrics) and prints the same rows/series the paper reports, as an
//! aligned table plus CSV lines (prefix `csv,`) for plotting.
//!
//! All binaries accept `--quick` for a reduced sweep and are otherwise
//! deterministic (fixed seeds).

#![warn(missing_docs)]

use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa_core::metrics::DissociationPoint;
use cafqa_core::{CafqaOptions, MolecularCafqa};

/// Runtime configuration shared by all experiment binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunCfg {
    /// Reduced sweeps and budgets for fast runs.
    pub quick: bool,
}

/// How a parsed command line should proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliAction {
    /// Run the experiment with this configuration.
    Run(RunCfg),
    /// `--help`/`-h`: print usage and exit 0.
    Help,
}

/// Env-free command-line parser shared by every experiment binary.
/// `--quick`/`-q` selects the reduced sweep, `--help`/`-h` requests
/// usage; anything else is rejected with a message naming the offending
/// argument (the binaries print usage and exit nonzero — no panics on
/// malformed flags).
pub fn parse_cli_args<I, S>(args: I) -> Result<CliAction, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut quick = false;
    for arg in args {
        match arg.as_ref() {
            "--quick" | "-q" => quick = true,
            "--help" | "-h" => return Ok(CliAction::Help),
            other => return Err(format!("unrecognized argument {other:?}")),
        }
    }
    Ok(CliAction::Run(RunCfg { quick }))
}

/// The usage string shared by the experiment binaries.
pub fn usage(bin: &str) -> String {
    format!(
        "usage: {bin} [--quick|-q] [--help|-h]\n\
         \n\
         \x20 --quick, -q   reduced sweeps and budgets for fast runs\n\
         \x20 --help, -h    print this help\n\
         \n\
         Parallelism is controlled by the CAFQA_WORKERS environment variable."
    )
}

/// Parses the command line strictly (see [`parse_cli_args`]) and logs
/// the execution-engine width once, so every figure run documents the
/// parallelism it was produced with (pin it with `CAFQA_WORKERS`).
/// Unknown arguments print usage to stderr and exit with status 2;
/// `--help` prints usage to stdout and exits 0.
pub fn run_cfg() -> RunCfg {
    let mut args = std::env::args();
    let bin = args.next().unwrap_or_else(|| "experiment".into());
    let bin = std::path::Path::new(&bin)
        .file_name()
        .map_or_else(|| bin.clone(), |f| f.to_string_lossy().into_owned());
    match parse_cli_args(args) {
        Ok(CliAction::Run(cfg)) => {
            eprintln!(
                "[cafqa] execution engine: {} worker(s) (override with CAFQA_WORKERS)",
                cafqa_core::default_workers()
            );
            cfg
        }
        Ok(CliAction::Help) => {
            println!("{}", usage(&bin));
            std::process::exit(0);
        }
        Err(message) => {
            eprintln!("{bin}: {message}");
            eprintln!("{}", usage(&bin));
            std::process::exit(2);
        }
    }
}

/// The search budget used for a molecule, scaled to its register size
/// (the paper's Fig. 15 shows iterations growing with problem size).
pub fn cafqa_budget(kind: MoleculeKind, quick: bool) -> CafqaOptions {
    // Candidate evaluations are cheap (tableau simulation); quick mode
    // thins the bond sweep instead of starving the search.
    let (warmup, iterations) = match kind.num_qubits() {
        0..=4 => (300, 400),
        5..=20 => (400, 600),
        _ => (200, 300),
    };
    let scale = if quick && kind.num_qubits() > 20 { 2 } else { 1 };
    CafqaOptions {
        warmup: warmup / scale,
        iterations: iterations / scale,
        number_penalty: 1.0,
        ..Default::default()
    }
}

/// The bond sweep for a molecule, thinned in quick mode.
pub fn bond_sweep(kind: MoleculeKind, quick: bool) -> Vec<f64> {
    let all = kind.bond_sweep();
    if quick {
        all.into_iter().step_by(2).collect()
    } else {
        all
    }
}

/// Runs the full CAFQA-vs-HF-vs-exact dissociation experiment for one
/// molecule, one point per bond length.
pub fn dissociation(kind: MoleculeKind, cfg: RunCfg) -> Vec<DissociationPoint> {
    let mut out = Vec::new();
    for bond in bond_sweep(kind, cfg.quick) {
        match dissociation_point(kind, bond, cfg) {
            Ok(p) => out.push(p),
            Err(e) => eprintln!("  [warn] {} at {bond:.2} Å failed: {e}", kind.name()),
        }
    }
    out
}

/// One dissociation point: build the problem, run CAFQA, collect metrics.
pub fn dissociation_point(
    kind: MoleculeKind,
    bond: f64,
    cfg: RunCfg,
) -> Result<DissociationPoint, Box<dyn std::error::Error>> {
    let pipe = ChemPipeline::build(kind, bond, &ScfKind::Rhf)?;
    let (na, nb) = pipe.default_sector();
    let problem = pipe.problem(na, nb, true)?;
    let scf_converged = problem.scf_converged;
    let hf = problem.hf_energy;
    let exact = problem.exact_energy;
    let runner = MolecularCafqa::new(problem);
    let result = runner.run(&cafqa_budget(kind, cfg.quick));
    Ok(DissociationPoint { bond, cafqa: result.energy, hf, exact, scf_converged })
}

/// Prints an aligned table followed by machine-readable CSV rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    for row in rows {
        println!("{}", fmt_row(row));
    }
    println!();
    println!("csv,{}", headers.join(","));
    for row in rows {
        println!("csv,{}", row.join(","));
    }
}

/// Prints the three-panel dissociation summary (Figs. 8–11 layout).
pub fn print_dissociation(name: &str, points: &[DissociationPoint]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.3}", p.bond),
                format!("{:.6}", p.hf),
                format!("{:.6}", p.cafqa),
                p.exact.map_or("n/a".into(), |e| format!("{e:.6}")),
                p.hf_error().map_or("n/a".into(), |e| format!("{e:.2e}")),
                p.cafqa_error().map_or("n/a".into(), |e| format!("{e:.2e}")),
                p.recovered().map_or("n/a".into(), |r| format!("{r:.2}")),
                if p.scf_converged { String::from("yes") } else { String::from("NO") },
            ]
        })
        .collect();
    print_table(
        &format!("{name} dissociation (energy / error / correlation recovered)"),
        &["bond_A", "E_HF", "E_CAFQA", "E_exact", "err_HF", "err_CAFQA", "recovered_%", "scf_ok"],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_parser_accepts_known_flags_and_rejects_the_rest() {
        assert_eq!(parse_cli_args(Vec::<&str>::new()), Ok(CliAction::Run(RunCfg { quick: false })));
        assert_eq!(parse_cli_args(["--quick"]), Ok(CliAction::Run(RunCfg { quick: true })));
        assert_eq!(parse_cli_args(["-q"]), Ok(CliAction::Run(RunCfg { quick: true })));
        assert_eq!(parse_cli_args(["--help"]), Ok(CliAction::Help));
        assert_eq!(parse_cli_args(["-q", "-h"]), Ok(CliAction::Help));
        let err = parse_cli_args(["--qick"]).unwrap_err();
        assert!(err.contains("\"--qick\""), "names the offending argument: {err}");
        assert!(parse_cli_args(["extra"]).is_err());
        assert!(usage("fig08_h2").contains("--quick"));
    }
}
