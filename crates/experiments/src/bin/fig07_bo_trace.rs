//! Fig. 7: the CAFQA discrete-search trace for H2O at 4 Å — 1000 random
//! warm-up iterations, then Bayesian search into chemical accuracy.

use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa_core::metrics::CHEMICAL_ACCURACY;
use cafqa_core::{CafqaOptions, MolecularCafqa};
use cafqa_experiments::{print_table, run_cfg};

fn main() {
    let cfg = run_cfg();
    let pipe = ChemPipeline::build(MoleculeKind::H2O, 4.0, &ScfKind::Rhf).unwrap();
    let (na, nb) = pipe.default_sector();
    let problem = pipe.problem(na, nb, true).unwrap();
    let exact = problem.exact_energy.expect("H2O active space is FCI-feasible");
    if !problem.scf_converged {
        println!("note: SCF did not fully converge at 4 Å (the paper hit the same with Psi4)");
    }
    let runner = MolecularCafqa::new(problem);
    let (warmup, iterations) = if cfg.quick { (600, 400) } else { (1000, 600) };
    let opts = CafqaOptions { warmup, iterations, ..Default::default() };
    let result = runner.run(&opts);
    let trace = result.best_energy_trace();
    let stride = (trace.len() / 60).max(1);
    let rows: Vec<Vec<String>> = trace
        .iter()
        .enumerate()
        .filter(|(i, _)| i % stride == 0 || *i + 1 == trace.len())
        .map(|(i, e)| {
            let err = (e - exact).abs().max(1e-12);
            vec![
                (i + 1).to_string(),
                format!("{e:.6}"),
                format!("{err:.3e}"),
                if i < warmup { "warmup".into() } else { "bo-search".into() },
            ]
        })
        .collect();
    print_table(
        "Fig. 7: H2O @ 4 Å BO search trace (best-so-far)",
        &["iteration", "best_energy", "error_hartree", "phase"],
        &rows,
    );
    let final_err = (result.energy - exact).abs();
    println!(
        "summary: final_error={final_err:.3e} Ha, chemical_accuracy={CHEMICAL_ACCURACY:.1e}, \
         within_chem_acc={}, iterations_to_best={}",
        final_err <= CHEMICAL_ACCURACY,
        result.iterations_to_best
    );
    println!("paper: reaches chemical accuracy ~600 iterations after a 1000-iteration warmup");
}
