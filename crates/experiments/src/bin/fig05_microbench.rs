//! Fig. 5: ansatz tuning on the 2-qubit XX Hamiltonian — ideal machine vs
//! two noisy devices vs Hartree-Fock vs CAFQA's four Clifford points.

use cafqa_circuit::Ansatz;
use cafqa_core::microbench::{hf_value, xx_hamiltonian, XxMicrobenchAnsatz};
use cafqa_core::CliffordObjective;
use cafqa_experiments::{print_table, run_cfg};
use cafqa_sim::{NoiseModel, Statevector};

fn main() {
    let cfg = run_cfg();
    let steps = if cfg.quick { 16 } else { 64 };
    let h = xx_hamiltonian();
    let ansatz = XxMicrobenchAnsatz;
    let casablanca = NoiseModel::casablanca_class();
    let manhattan = NoiseModel::manhattan_class();
    let mut rows = Vec::new();
    let mut minima = (f64::MAX, f64::MAX, f64::MAX);
    for k in 0..=steps {
        let theta = k as f64 / steps as f64 * std::f64::consts::TAU;
        let circuit = ansatz.bind(&[theta]);
        let ideal = Statevector::from_circuit(&circuit).expectation(&h).re;
        let nc = casablanca.expectation(&circuit, &h);
        let nm = manhattan.expectation(&circuit, &h);
        minima = (minima.0.min(ideal), minima.1.min(nc), minima.2.min(nm));
        rows.push(vec![
            format!("{theta:.4}"),
            format!("{ideal:.4}"),
            format!("{nc:.4}"),
            format!("{nm:.4}"),
            format!("{:.4}", hf_value()),
        ]);
    }
    print_table(
        "Fig. 5: XX microbenchmark sweep",
        &["theta_rad", "ideal", "casablanca_class", "manhattan_class", "hartree_fock"],
        &rows,
    );
    // The four CAFQA Clifford points, scored as one batch through the
    // compiled-template evaluation path.
    let objective = CliffordObjective::new(&ansatz, &h);
    let configs: Vec<Vec<usize>> = (0..4).map(|k| vec![k]).collect();
    let values = objective.evaluate_batch(&configs);
    let clifford: Vec<Vec<String>> = values
        .iter()
        .enumerate()
        .map(|(k, v)| vec![format!("{}", k as f64 * 0.5), format!("{:.4}", v.energy)])
        .collect();
    print_table("Fig. 5: CAFQA Clifford points", &["theta_over_pi", "expectation"], &clifford);
    println!(
        "summary: ideal_min={:.3} casablanca_min={:.3} manhattan_min={:.3} \
         hf={:.3} cafqa_min={:.3}",
        minima.0,
        minima.1,
        minima.2,
        hf_value(),
        values.iter().map(|v| v.energy).fold(f64::MAX, f64::min)
    );
    println!("paper: ideal -1.0, noisy ≈ -0.85 / -0.70, HF 0.0, CAFQA -1.0");
}
