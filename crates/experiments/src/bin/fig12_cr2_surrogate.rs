//! Fig. 12: the 34-qubit Cr2-class experiment on the documented H18-chain
//! surrogate (DESIGN.md §4.1): CAFQA vs HF binding energy `E − 18·E_atom`,
//! with no exact reference (FCI is infeasible, exactly as in the paper).
//!
//! This binary is also the end-to-end exercise of the two Cr2-scale
//! search paths: the **term-sharded expectation** (each candidate's
//! ~10⁵-term sum splits across idle pool workers, bit-identical to the
//! chunked serial sum — asserted below) and **windowed surrogate
//! refits** (fit cost stays `O(window)` as the trace grows). One
//! [`ExecEngine`] serves the whole sweep.

use cafqa_chem::{hydrogen_chain, ChemPipeline, MoleculeKind, ScfKind};
use cafqa_core::{CafqaOptions, CliffordObjective, ExecEngine, MolecularCafqa};
use cafqa_experiments::{bond_sweep, print_table, run_cfg};

fn main() {
    let cfg = run_cfg();
    let kind = MoleculeKind::Cr2Surrogate;
    // One persistent pool for every bond: warm-up, acquisition, polish
    // and the intra-candidate term shards all dispatch through it.
    let engine = ExecEngine::from_env();
    // Reference: isolated H atom (UHF, 1 electron) for the binding scale.
    let atom = hydrogen_chain(1, 1.0);
    let atom_pipe = cafqa_chem::ChemPipeline::from_molecule(
        atom,
        None,
        &ScfKind::Uhf { n_alpha: 1, n_beta: 0, guess_mix: 0.0 },
        &cafqa_chem::ScfOptions::default(),
    )
    .unwrap();
    let e_atom = atom_pipe.scf.energy;
    println!("H-atom reference (UHF/STO-3G): {e_atom:.6} Ha");

    // Quick mode keeps the stretched spacings, where correlation energy
    // is recoverable by stabilizer states (below ~2x equilibrium the HF
    // determinant is already the Clifford optimum, as for H2 in Fig. 8).
    let sweep = if cfg.quick {
        let all = bond_sweep(kind, false);
        all[all.len().saturating_sub(2)..].to_vec()
    } else {
        bond_sweep(kind, false)
    };
    let mut rows = Vec::new();
    let mut sharding_checked = false;
    let mut polish_timed = false;
    for bond in sweep {
        let start = std::time::Instant::now();
        let pipe = match ChemPipeline::build(kind, bond, &ScfKind::Rhf) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("  [warn] H18 pipeline failed at {bond:.2} Å: {e}");
                continue;
            }
        };
        let (na, nb) = pipe.default_sector();
        // No exact reference: C(18,9)^2 ≈ 2.4e9 determinants.
        let problem = pipe.problem(na, nb, false).unwrap();
        assert_eq!(problem.n_qubits, 34, "Cr2-class register size");
        let hf = problem.hf_energy;
        let terms = problem.hamiltonian.num_terms();
        assert!(terms >= 4096, "Cr2 surrogate must exercise the term-sharded path");
        let conv = problem.scf_converged;
        let runner = MolecularCafqa::new(problem);
        // Quick runs time the (screened, incremental) polish endgame on
        // the first bond only — one sweep over the 136-parameter
        // register is CI-sized now that neighbors replay incrementally
        // and the pair list is surrogate-screened; the exhaustive legacy
        // endgame (polish_screen_top = 0) costs ~17k pair evaluations
        // per sweep here.
        let polish_this_bond = !cfg.quick || !polish_timed;
        let opts = CafqaOptions {
            warmup: if cfg.quick { 60 } else { 200 },
            iterations: if cfg.quick { 60 } else { 300 },
            polish_sweeps: if !polish_this_bond {
                0
            } else if cfg.quick {
                1
            } else {
                6
            },
            // Screened pair polish: forest-ranked top pairs instead of
            // the ~1000-pair local list (0 would sweep it exhaustively).
            polish_screen_top: if cfg.quick { 8 } else { 64 },
            // Windowed refits: the Cr2-scale knob. Fit cost is bounded by
            // the window however long the trace grows; the incumbent is
            // always kept in the training set.
            forest_window: if cfg.quick { 48 } else { 128 },
            ..Default::default()
        };
        let result = runner.run_on(&engine, &opts);
        if polish_this_bond {
            let (seeks, restores) = result.polish_seek_stats;
            println!(
                "polish phase at {bond:.2} Å: {} evaluation(s) in {:.1} s \
                 (incremental replay, screened top-{} pairs; {} backward seek(s), \
                 {} restored from the layer-checkpoint stack)",
                result.polish_evaluations,
                result.polish_seconds,
                opts.polish_screen_top,
                seeks,
                restores,
            );
            polish_timed = true;
        }
        if !sharding_checked {
            // The determinism gate: the term-sharded pooled expectation
            // must equal the pre-refactor chunked serial sum bit for bit.
            let hamiltonian = &runner.problem().hamiltonian;
            let serial = CliffordObjective::new(&runner.ansatz, hamiltonian)
                .with_engine(ExecEngine::serial());
            let pooled =
                CliffordObjective::new(&runner.ansatz, hamiltonian).with_engine(engine.clone());
            let serial_e = serial.evaluate(&result.best_config).energy;
            let pooled_e = pooled.evaluate(&result.best_config).energy;
            assert_eq!(
                pooled_e.to_bits(),
                serial_e.to_bits(),
                "term-sharded energy must be bit-identical to the chunked serial sum"
            );
            assert_eq!(
                result.energy.to_bits(),
                serial_e.to_bits(),
                "search-reported energy must match the serial re-evaluation"
            );
            println!(
                "term-sharded vs chunked-serial on {terms} terms: bit-identical ({serial_e:.6})"
            );
            sharding_checked = true;
        }
        rows.push(vec![
            format!("{bond:.3}"),
            format!("{:.4}", hf - 18.0 * e_atom),
            format!("{:.4}", result.energy - 18.0 * e_atom),
            format!("{:.4}", hf - result.energy),
            terms.to_string(),
            format!("{:.0}s", start.elapsed().as_secs_f64()),
            // Per-phase split: BO (warm-up + acquisition) vs polish, with
            // the polish endgame's backward-seek profile — restores are
            // the layer-checkpoint-stack hits that replaced full prefix
            // rebuilds (the backward-seek win).
            format!("bo{:.1}s/pol{:.1}s", result.bo_seconds, result.polish_seconds),
            format!(
                "{}ev {}bk/{}rst",
                result.polish_evaluations, result.polish_seek_stats.0, result.polish_seek_stats.1
            ),
            if conv { "yes".into() } else { "NO".into() },
        ]);
    }
    print_table(
        "Fig. 12: Cr2 surrogate (H18 chain, 34 qubits): binding energy E - 18*E_atom",
        &[
            "spacing_A",
            "HF_binding",
            "CAFQA_binding",
            "CAFQA_gain",
            "H_terms",
            "time",
            "phases",
            "polish",
            "scf_ok",
        ],
        &rows,
    );
    assert!(sharding_checked, "at least one bond must run the sharding A/B");
    assert!(polish_timed, "at least one bond must time the polish endgame");
    println!(
        "summary: {} bond(s), term-sharded + windowed-refit + incremental-polish paths exercised",
        rows.len()
    );
    println!("paper: CAFQA consistently below HF across all bond lengths at 34 qubits");
}
