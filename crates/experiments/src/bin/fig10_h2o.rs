//! Fig. 10: H2O dissociation with the singlet/triplet crossing — CAFQA(s)
//! from the RHF singlet Hamiltonian, CAFQA(t) from a UHF triplet
//! Hamiltonian, overall CAFQA = min of the two.

use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa_core::MolecularCafqa;
use cafqa_experiments::{bond_sweep, cafqa_budget, print_table, run_cfg};

fn main() {
    let cfg = run_cfg();
    let kind = MoleculeKind::H2O;
    let mut rows = Vec::new();
    for bond in bond_sweep(kind, cfg.quick) {
        // Singlet (RHF) branch.
        let singlet = ChemPipeline::build(kind, bond, &ScfKind::Rhf).unwrap();
        let (na, nb) = singlet.default_sector();
        let sp = singlet.problem(na, nb, true).unwrap();
        let s_exact = sp.exact_energy;
        let s_hf = sp.hf_energy;
        let s_conv = sp.scf_converged;
        let s_runner = MolecularCafqa::new(sp);
        let s_result = s_runner.run(&cafqa_budget(kind, cfg.quick));
        // Triplet (UHF) branch: 6α/4β.
        let triplet_kind = ScfKind::Uhf { n_alpha: 6, n_beta: 4, guess_mix: 0.3 };
        let (t_energy, t_conv) = match ChemPipeline::build(kind, bond, &triplet_kind) {
            Ok(pipe) => {
                let tp = pipe.problem(6, 4, false).unwrap();
                let conv = tp.scf_converged;
                let runner = MolecularCafqa::new(tp);
                let mut opts = cafqa_budget(kind, cfg.quick);
                opts.sz_penalty = 0.5;
                (runner.run(&opts).energy, conv)
            }
            Err(e) => {
                eprintln!("  [warn] triplet UHF failed at {bond:.2} Å: {e}");
                (f64::INFINITY, false)
            }
        };
        let combined = s_result.energy.min(t_energy);
        rows.push(vec![
            format!("{bond:.3}"),
            format!("{s_hf:.6}"),
            format!("{:.6}", s_result.energy),
            if t_energy.is_finite() { format!("{t_energy:.6}") } else { "n/a".into() },
            format!("{combined:.6}"),
            s_exact.map_or("n/a".into(), |e| format!("{e:.6}")),
            s_exact.map_or("n/a".into(), |e| format!("{:.2e}", (combined - e).abs())),
            format!("{}{}", if s_conv { "s" } else { "-" }, if t_conv { "t" } else { "-" }),
        ]);
    }
    print_table(
        "Fig. 10: H2O dissociation with singlet/triplet branches",
        &["bond_A", "E_HF", "CAFQA_s", "CAFQA_t", "CAFQA", "exact_singlet", "err", "scf"],
        &rows,
    );
    println!("paper: kink near 1.5 Å from the singlet/triplet crossing; CAFQA reaches");
    println!("       chemical accuracy at stretched geometries (up to 99.998% recovered)");
}
