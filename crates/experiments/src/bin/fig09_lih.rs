//! Fig. 9: LiH dissociation curves (energy / accuracy / correlation
//! recovered).

use cafqa_chem::MoleculeKind;
use cafqa_experiments::{dissociation, print_dissociation, run_cfg};

fn main() {
    let cfg = run_cfg();
    let points = dissociation(MoleculeKind::LiH, cfg);
    print_dissociation("Fig. 9: LiH", &points);
    let max_recovered = points.iter().filter_map(|p| p.recovered()).fold(0.0, f64::max);
    let worst_gap = points
        .iter()
        .filter(|p| p.exact.is_some())
        .map(|p| p.cafqa - p.hf)
        .fold(f64::MIN, f64::max);
    println!("summary: max correlation recovered = {max_recovered:.2}% (paper: up to 93%)");
    println!("summary: CAFQA - HF worst gap = {worst_gap:.3e} (must be <= 0: never worse than HF)");
    assert!(worst_gap <= 1e-9);
}
