//! Fig. 13: CAFQA accuracy relative to Hartree-Fock — per-molecule
//! 'Average' (over bond lengths) and 'Maximum' error reduction, with the
//! geometric means the paper headlines (6.4x average, 56.8x maximum).

use cafqa_chem::MoleculeKind;
use cafqa_core::metrics::{geometric_mean, summarize_relative};
use cafqa_experiments::{dissociation, print_table, run_cfg};

fn main() {
    let cfg = run_cfg();
    let molecules = [
        MoleculeKind::H2,
        MoleculeKind::LiH,
        MoleculeKind::H2O,
        MoleculeKind::N2,
        MoleculeKind::H6,
        MoleculeKind::H2S1Surrogate,
        MoleculeKind::NaH,
        MoleculeKind::BeH2,
    ];
    let mut rows = Vec::new();
    let mut averages = Vec::new();
    let mut maxima = Vec::new();
    for kind in molecules {
        let points = dissociation(kind, cfg);
        match summarize_relative(&points) {
            Some((avg, max)) => {
                averages.push(avg);
                maxima.push(max);
                rows.push(vec![
                    kind.name().to_string(),
                    format!("{avg:.2}"),
                    format!("{max:.2}"),
                    points.len().to_string(),
                ]);
            }
            None => eprintln!("  [warn] no exact reference for {}", kind.name()),
        }
    }
    rows.push(vec![
        "Geomean".to_string(),
        format!("{:.2}", geometric_mean(&averages)),
        format!("{:.2}", geometric_mean(&maxima)),
        String::new(),
    ]);
    print_table(
        "Fig. 13: CAFQA accuracy relative to state-of-the-art HF",
        &["molecule", "average_x", "maximum_x", "points"],
        &rows,
    );
    println!("paper: geomean average 6.4x (highest 25x), geomean maximum 56.8x (highest 3.4e5x)");
}
