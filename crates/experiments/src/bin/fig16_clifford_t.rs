//! Fig. 16: CAFQA+kT accuracy vs T count on the branch-engine stack.
//!
//! For each molecule the Clifford winner is found once, then the kT tier
//! re-searches the 8-ary grid at every budget `t = 0..=3`, seeded from
//! the widened Clifford configuration (the paper inserts T rotations at
//! prior Clifford gate positions). The sweep runs through
//! [`run_cafqa_kt_on`]: feasibility-aware genome sampling (no wasted
//! `1e6`-rejected candidates — asserted on every row), tableau-backed
//! [`cafqa_clifford::BranchEnsemble`] evaluation batched over one
//! persistent [`ExecEngine`], and the 8-ary polish endgame. The
//! tableau backend is what lets the same sweep run on the 34-qubit Cr2
//! surrogate, far beyond the 24-qubit dense branch-oracle cap.
//!
//! Deeper budgets (`k_max >= 4`) run with the screening layer on:
//! quadratic-Clifford class bounds prune the `O(4^t)` cross-term sum at
//! `screen_tolerance = 1e-3` (chemically negligible next to the ~1.6 mHa
//! chemical-accuracy bar) and rank polish moves so only the top four
//! per coordinate are evaluated exactly (`kt_rank_top = 4`). Shallow
//! rows stay at `screen_tolerance = 0` — bit-for-bit the unscreened
//! search. The `skip_cls`/`srn_mv` columns report how many cross-term
//! classes and candidate moves the bounds eliminated.

use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa_core::{
    run_cafqa_kt_on, widen_clifford_config, CafqaOptions, ExecEngine, MolecularCafqa, Penalty,
};
use cafqa_experiments::{print_table, run_cfg};

/// T budgets swept per molecule (`t = 0` is the Clifford-only control:
/// the genome space degenerates to the 4-ary grid and the run delegates
/// to the classic Clifford search). Quick mode keeps the CI-sized
/// `0..=3` sweep; full mode extends into the screened deep tiers. H2
/// additionally runs a `k_max = 12` row in *both* modes — a budget past
/// its own parameter count, so the genome space must saturate rather
/// than reject — as the cheap end-to-end check of the deep-budget path.
fn budgets(kind: MoleculeKind, quick: bool) -> Vec<usize> {
    let mut budgets = vec![0, 1, 2, 3];
    if !quick {
        budgets.extend([4, 5, 6]);
    }
    if matches!(kind, MoleculeKind::H2) {
        budgets.push(12);
    }
    budgets
}

/// Screening kicks in at `k_max >= 4`, where the `2^t` class space is
/// big enough for the bounds to pay for themselves.
const SCREEN_FROM: usize = 4;
const SCREEN_TOL: f64 = 1e-3;
const RANK_TOP: usize = 4;

fn run_molecule(
    kind: MoleculeKind,
    bond: f64,
    cfg: cafqa_experiments::RunCfg,
    engine: &ExecEngine,
) {
    let wide = kind.num_qubits() > 20;
    let pipe = ChemPipeline::build(kind, bond, &ScfKind::Rhf).unwrap();
    let (na, nb) = pipe.default_sector();
    // Exact diagonalization only where it is feasible; the 34-qubit
    // surrogate reports its gain over HF instead, exactly as in Fig. 12.
    let problem = pipe.problem(na, nb, !wide).unwrap();
    let exact = problem.exact_energy;
    let hf = problem.hf_energy;
    let runner = MolecularCafqa::new(problem.clone());
    let copts = CafqaOptions {
        warmup: match (wide, cfg.quick) {
            (true, true) => 24,
            (true, false) => 100,
            (false, true) => 100,
            (false, false) => 300,
        },
        iterations: match (wide, cfg.quick) {
            (true, true) => 24,
            (true, false) => 150,
            (false, true) => 150,
            (false, false) => 400,
        },
        polish_sweeps: if wide && cfg.quick { 0 } else { 2 },
        polish_screen_top: if wide { 16 } else { 0 },
        ..Default::default()
    };
    let clifford = runner.run_on(engine, &copts);
    let seed = widen_clifford_config(&clifford.best_config);
    let penalty =
        Penalty::new("electron count", &problem.number_op, problem.n_electrons() as f64, 1.0);
    let kt_opts = CafqaOptions {
        warmup: match (wide, cfg.quick) {
            (true, true) => 8,
            (true, false) => 60,
            (false, true) => 60,
            (false, false) => 200,
        },
        iterations: match (wide, cfg.quick) {
            (true, true) => 8,
            (true, false) => 80,
            (false, true) => 80,
            (false, false) => 300,
        },
        polish_sweeps: if wide && cfg.quick { 0 } else { 1 },
        ..Default::default()
    };
    let mut rows = Vec::new();
    for k_max in budgets(kind, cfg.quick) {
        let screened = k_max >= SCREEN_FROM;
        let row_opts = CafqaOptions {
            screen_tolerance: if screened { SCREEN_TOL } else { 0.0 },
            kt_rank_top: if screened { RANK_TOP } else { 0 },
            ..kt_opts.clone()
        };
        let start = std::time::Instant::now();
        let kt = run_cafqa_kt_on(
            engine,
            &runner.ansatz,
            &problem.hamiltonian,
            vec![penalty.clone()],
            k_max,
            std::slice::from_ref(&seed),
            &row_opts,
        )
        .unwrap();
        // The feasibility contract of the ported tier: the genome space
        // never proposes an over-budget candidate, at any width.
        assert_eq!(kt.rejected_evaluations, 0, "feasible-by-construction genome space");
        assert!(kt.t_count <= k_max);
        // Seeded from the Clifford winner, the kT incumbent can only be
        // at or below it (selection is on the penalized objective) — up
        // to the screening tolerance on screened rows, where reported
        // values carry at most `screen_tolerance` of certified drift.
        let slack = row_opts.screen_tolerance + 1e-9;
        assert!(
            kt.penalized <= clifford.penalized + slack,
            "kT ({}) above its own Clifford seed ({})",
            kt.penalized,
            clifford.penalized
        );
        // Screening contract: exact rows never skip; screened rows on a
        // branching budget must actually use the bounds.
        if !screened {
            assert_eq!(kt.screened_classes, 0, "tol = 0 must be the unscreened search");
            assert_eq!(kt.screened_moves, 0);
        }
        let accuracy = match exact {
            Some(e) => format!("{:.2e}", (kt.energy - e).abs()),
            None => format!("{:+.4}", hf - kt.energy),
        };
        rows.push(vec![
            k_max.to_string(),
            format!("{:.6}", kt.energy),
            accuracy,
            format!("{:.2e}", (clifford.energy - kt.energy).max(0.0)),
            kt.t_count.to_string(),
            kt.feasible_evaluations.to_string(),
            kt.rejected_evaluations.to_string(),
            kt.polish_evaluations.to_string(),
            kt.screened_classes.to_string(),
            kt.screened_moves.to_string(),
            if screened { format!("{SCREEN_TOL:.0e}") } else { "0".to_string() },
            format!("{:.1}s", start.elapsed().as_secs_f64()),
        ]);
    }
    let accuracy_header = if exact.is_some() { "err_vs_exact" } else { "gain_vs_HF" };
    print_table(
        &format!(
            "Fig. 16: {} ({} qubits) CAFQA+kT accuracy vs T count (Clifford: {:.6})",
            kind.name(),
            kind.num_qubits(),
            clifford.energy
        ),
        &[
            "k_max",
            "E_kT",
            accuracy_header,
            "gain_vs_Clifford",
            "t_used",
            "feasible",
            "rejected",
            "polish_ev",
            "skip_cls",
            "srn_mv",
            "tol",
            "time",
        ],
        &rows,
    );
}

fn main() {
    let cfg = run_cfg();
    // One persistent pool serves every molecule: warm-up, batched
    // acquisition, branch-ensemble evaluation, and the polish endgame.
    let engine = ExecEngine::from_env();
    // Stretched geometries, where HF loses correlation energy and extra
    // T rotations have something to recover.
    run_molecule(MoleculeKind::H2, 2.0, cfg, &engine);
    run_molecule(MoleculeKind::LiH, 2.5, cfg, &engine);
    // The tableau branch backend runs the same sweep at 34 qubits —
    // 10 qubits past the dense branch oracle's cap.
    run_molecule(MoleculeKind::Cr2Surrogate, 3.0, cfg, &engine);
    println!("paper: a handful of T-like rotations improves the initialization over");
    println!("       Clifford-only CAFQA while staying classically simulable (2^t branches)");
}
