//! Fig. 16: CAFQA+kT dissociation curves — up to 1 T-like rotation for H2
//! and up to 4 for LiH, via the stabilizer-rank branch engine.

use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa_core::{run_cafqa_kt, widen_clifford_config, CafqaOptions, MolecularCafqa, Penalty};
use cafqa_experiments::{bond_sweep, print_table, run_cfg};

fn run_molecule(kind: MoleculeKind, k_max: usize, cfg: cafqa_experiments::RunCfg) {
    let mut rows = Vec::new();
    for bond in bond_sweep(kind, cfg.quick) {
        let pipe = ChemPipeline::build(kind, bond, &ScfKind::Rhf).unwrap();
        let (na, nb) = pipe.default_sector();
        let problem = pipe.problem(na, nb, true).unwrap();
        let exact = problem.exact_energy.unwrap();
        let runner = MolecularCafqa::new(problem.clone());
        let copts = CafqaOptions {
            warmup: if cfg.quick { 300 } else { 400 },
            iterations: if cfg.quick { 400 } else { 600 },
            ..Default::default()
        };
        let clifford = runner.run(&copts);
        // CAFQA+kT seeded from the Clifford winner (the paper inserts T
        // rotations at prior Clifford gate positions).
        let penalty =
            Penalty::new("electron count", &problem.number_op, problem.n_electrons() as f64, 1.0);
        let kt_opts = CafqaOptions {
            warmup: if cfg.quick { 300 } else { 400 },
            iterations: if cfg.quick { 400 } else { 700 },
            ..Default::default()
        };
        let kt = run_cafqa_kt(
            &runner.ansatz,
            &problem.hamiltonian,
            &[penalty],
            k_max,
            &[widen_clifford_config(&clifford.best_config)],
            &kt_opts,
        );
        let (kt_energy, t_used) = if kt.energy < clifford.energy - 1e-12 {
            (kt.energy, kt.t_count)
        } else {
            (clifford.energy, 0)
        };
        rows.push(vec![
            format!("{bond:.3}"),
            format!("{:.6}", clifford.energy),
            format!("{kt_energy:.6}"),
            format!("{exact:.6}"),
            format!("{:.2e}", (clifford.energy - exact).abs()),
            format!("{:.2e}", (kt_energy - exact).abs()),
            t_used.to_string(),
        ]);
    }
    print_table(
        &format!("Fig. 16: {} CAFQA vs CAFQA+{k_max}T", kind.name()),
        &["bond_A", "CAFQA", "CAFQA_kT", "exact", "err_CAFQA", "err_kT", "t_used"],
        &rows,
    );
}

fn main() {
    let cfg = run_cfg();
    run_molecule(MoleculeKind::H2, 1, cfg);
    run_molecule(MoleculeKind::LiH, 4, cfg);
    println!("paper: <=1 T for H2 and <=4 T for LiH significantly improve initialization,");
    println!("       recovering up to 99.9% of correlation energy while staying simulable");
}
