//! Fig. 15: BO search iterations for CAFQA to converge to its lowest
//! estimate, per VQA problem (molecules + two MaxCut instances + the
//! Cr2-class surrogate). Molecules run at 2× equilibrium, where the
//! search has real work to do (at equilibrium the HF seed is already
//! optimal, per Figs. 8-9).

use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa_circuit::EfficientSu2;
use cafqa_core::maxcut::{maxcut_hamiltonian, paper_maxcut_instances, Graph};
use cafqa_core::{run_cafqa, CafqaOptions, IsingFastPath, MolecularCafqa};
use cafqa_experiments::{cafqa_budget, print_table, run_cfg};

fn main() {
    let cfg = run_cfg();
    let molecules = [
        MoleculeKind::H2,
        MoleculeKind::LiH,
        MoleculeKind::H2O,
        MoleculeKind::N2,
        MoleculeKind::H6,
        MoleculeKind::H2S1Surrogate,
        MoleculeKind::NaH,
        MoleculeKind::BeH2,
    ];
    let mut rows = Vec::new();
    let mut counts = Vec::new();
    for kind in molecules {
        let pipe = ChemPipeline::build(kind, 2.0 * kind.equilibrium_bond(), &ScfKind::Rhf).unwrap();
        let (na, nb) = pipe.default_sector();
        let problem = pipe.problem(na, nb, false).unwrap();
        let params = 4 * problem.n_qubits;
        let runner = MolecularCafqa::new(problem);
        let result = runner.run(&cafqa_budget(kind, cfg.quick));
        counts.push(result.iterations_to_best as f64);
        rows.push(vec![
            kind.name().to_string(),
            kind.num_qubits().to_string(),
            params.to_string(),
            result.iterations_to_best.to_string(),
            result.evaluations.to_string(),
        ]);
    }
    // The paper's two Erdős–Rényi instances plus one row per structured
    // generator family (ring / complete / weighted). This figure is
    // about BO convergence, so the Ising fast path — which would solve
    // every one of these rows in a single evaluation (see
    // `fig17_ising_throughput`) — is pinned off.
    let maxcut_rows = paper_maxcut_instances().into_iter().chain([
        ("Ring12".to_string(), Graph::ring(12)),
        ("K8".to_string(), Graph::complete(8)),
        ("Weighted10".to_string(), Graph::random_weighted(10, 0.5, 47)),
    ]);
    for (name, graph) in maxcut_rows {
        let h = maxcut_hamiltonian(&graph);
        let ansatz = EfficientSu2::new(graph.n, 1);
        let opts = CafqaOptions {
            warmup: if cfg.quick { 100 } else { 200 },
            iterations: if cfg.quick { 150 } else { 400 },
            number_penalty: 0.0,
            ising_fast_path: IsingFastPath::Off,
            ..Default::default()
        };
        let result = run_cafqa(&ansatz, &h, vec![], &[], &opts);
        counts.push(result.iterations_to_best as f64);
        rows.push(vec![
            name,
            graph.n.to_string(),
            (4 * graph.n).to_string(),
            result.iterations_to_best.to_string(),
            result.evaluations.to_string(),
        ]);
    }
    // Cr2 surrogate (34 qubits) — one point, reduced budget in quick mode.
    {
        let kind = MoleculeKind::Cr2Surrogate;
        let bond = 1.75 * kind.equilibrium_bond();
        match ChemPipeline::build(kind, bond, &ScfKind::Rhf) {
            Ok(pipe) => {
                let (na, nb) = pipe.default_sector();
                let problem = pipe.problem(na, nb, false).unwrap();
                let runner = MolecularCafqa::new(problem);
                let result = runner.run(&cafqa_budget(kind, cfg.quick));
                counts.push(result.iterations_to_best as f64);
                rows.push(vec![
                    kind.name().to_string(),
                    "34".into(),
                    "136".into(),
                    result.iterations_to_best.to_string(),
                    result.evaluations.to_string(),
                ]);
            }
            Err(e) => eprintln!("  [warn] Cr2 surrogate failed: {e}"),
        }
    }
    let mean = counts.iter().sum::<f64>() / counts.len() as f64;
    rows.push(vec![
        "Mean".into(),
        String::new(),
        String::new(),
        format!("{mean:.0}"),
        String::new(),
    ]);
    print_table(
        "Fig. 15: BO iterations to reach the lowest estimate per problem",
        &["problem", "qubits", "parameters", "iters_to_best", "total_evals"],
        &rows,
    );
    println!("paper: iterations grow with problem size (hundreds for H2 to ~27k for Cr2)");
}
