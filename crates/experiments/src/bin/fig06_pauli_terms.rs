//! Fig. 6: per-Pauli-term expectation values for LiH at 4.8 Å — HF vs the
//! CAFQA Clifford ansatz vs exact, with the paper's term classification.

use cafqa_chem::{qubit_ground_energy, ChemPipeline, MoleculeKind, ScfKind};
use cafqa_core::{CafqaOptions, CliffordObjective, ExecEngine, MolecularCafqa};
use cafqa_experiments::{print_table, run_cfg};
use cafqa_linalg::lanczos::{self, LanczosOptions};
use cafqa_pauli::PauliOp;

fn main() {
    let cfg = run_cfg();
    // One engine for the search and the per-term sweep — no code path in
    // this figure bypasses the shared batch/engine evaluation API.
    let engine = ExecEngine::from_env();
    let pipe = ChemPipeline::build(MoleculeKind::LiH, 4.8, &ScfKind::Rhf).unwrap();
    let (na, nb) = pipe.default_sector();
    let problem = pipe.problem(na, nb, true).unwrap();
    let hf_bits = problem.hf_bits;
    let h = problem.hamiltonian.clone();
    let runner = MolecularCafqa::new(problem);
    let mut opts = CafqaOptions { warmup: 200, iterations: 400, ..Default::default() };
    if cfg.quick {
        opts.warmup = 100;
        opts.iterations = 150;
    }
    let result = runner.run_on(&engine, &opts);
    // Exact ground-state vector for per-term exact expectations.
    let exact_state = exact_ground_state(&h);
    let objective = CliffordObjective::new(&runner.ansatz, &h).with_engine(engine);
    let cafqa_terms = objective.term_expectations(&result.best_config);
    let mut rows = Vec::new();
    let mut counts = (0usize, 0usize, 0usize);
    for (p, _coeff, cafqa_e) in &cafqa_terms {
        let hf_e = p.expectation_basis(hf_bits);
        let exact_e = pauli_expectation(&exact_state, p);
        let class = if p.is_diagonal() {
            counts.0 += 1;
            "computational-basis"
        } else if *cafqa_e != 0 {
            counts.1 += 1;
            "cafqa-selected"
        } else {
            counts.2 += 1;
            "beyond-clifford"
        };
        rows.push(vec![
            p.to_string(),
            format!("{hf_e:+.0}"),
            format!("{cafqa_e:+}"),
            format!("{exact_e:+.4}"),
            class.to_string(),
        ]);
    }
    print_table(
        "Fig. 6: LiH @ 4.8 Å per-Pauli-term expectations",
        &["pauli", "hartree_fock", "cafqa", "exact", "class"],
        &rows,
    );
    println!(
        "summary: {} diagonal terms, {} non-diagonal selected by CAFQA, {} beyond Clifford reach",
        counts.0, counts.1, counts.2
    );
    println!(
        "summary: E_HF={:.6} E_CAFQA={:.6} E_exact={:.6}",
        runner.problem().hf_energy,
        result.energy,
        runner.problem().exact_energy.unwrap_or(f64::NAN)
    );
    assert!(counts.1 > 0, "CAFQA must select non-diagonal terms (paper's key point)");
}

/// Ground-state vector via Lanczos on the real computational-basis matrix.
fn exact_ground_state(h: &PauliOp) -> Vec<f64> {
    let terms = h.real_basis_terms(1e-9).expect("molecular H is real");
    let dim = 1usize << h.num_qubits();
    let apply = move |x: &[f64], y: &mut [f64]| {
        for &(f, xm, zm) in &terms {
            for b in 0..dim {
                if x[b] == 0.0 {
                    continue;
                }
                let sign = if (zm & b as u64).count_ones() % 2 == 0 { f } else { -f };
                y[b ^ xm as usize] += sign * x[b];
            }
        }
    };
    let check = qubit_ground_energy(h).unwrap();
    let pair = lanczos::lowest_eigenpair(&(dim, apply), &LanczosOptions::default()).unwrap();
    assert!((pair.value - check).abs() < 1e-6);
    pair.vector
}

fn pauli_expectation(state: &[f64], p: &cafqa_pauli::PauliString) -> f64 {
    // Real ground state: ⟨ψ|P|ψ⟩ with the real part of i^{k} phases.
    let mut acc = 0.0;
    let base_k = p.y_count() as i32;
    for (b, &amp) in state.iter().enumerate() {
        if amp == 0.0 {
            continue;
        }
        let (b2, _) = p.apply_to_basis(b as u64);
        let sign = if (p.z_mask() & b as u64).count_ones() % 2 == 0 { 1.0 } else { -1.0 };
        let phase_re = match base_k.rem_euclid(4) {
            0 => 1.0,
            2 => -1.0,
            _ => 0.0, // odd #Y: imaginary matrix elements, zero on real states
        };
        acc += state[b2 as usize] * sign * phase_re * amp;
    }
    acc
}
