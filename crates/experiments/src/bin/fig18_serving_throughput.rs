//! Fig. 18 (repo extension): CAFQA-as-a-service throughput on a bond
//! sweep with duplicate traffic.
//!
//! The ROADMAP's north star is a high-traffic service; this binary
//! drives the `cafqa-serve` job server with the traffic such a service
//! actually sees: a dissociation-curve sweep (neighbouring bond lengths
//! — same Pauli masks, nearby coefficients) followed by exact
//! resubmissions of every job. Neighbouring bonds warm-start from the
//! nearest completed family member, duplicates dedupe through the
//! content-addressed cache, and the run asserts both contracts:
//! 100% cache-hit rate on the duplicate wave (bit-identical energies),
//! and every warm-started result at least as good as its injected seed.

use std::time::Instant;

use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa_circuit::EfficientSu2;
use cafqa_core::{CafqaOptions, ExecEngine};
use cafqa_experiments::{print_table, run_cfg};
use cafqa_serve::{CafqaServer, Disposition, JobSpec, ServeOptions};

fn main() {
    let cfg = run_cfg();
    let engine = ExecEngine::from_env();
    let bonds: Vec<f64> = if cfg.quick {
        vec![0.60, 0.70, 0.74, 0.80, 0.90, 1.00]
    } else {
        (0..16).map(|i| 0.5 + 0.1 * i as f64).collect()
    };
    let opts = CafqaOptions {
        warmup: if cfg.quick { 40 } else { 300 },
        iterations: if cfg.quick { 60 } else { 400 },
        polish_sweeps: 1,
        ..Default::default()
    };
    // One spec per bond: the tapered H2 register (2 qubits) under the
    // paper's EfficientSU2(reps = 1) ansatz. Every bond produces the
    // same term masks, so the sweep is one cache family.
    let specs: Vec<(f64, JobSpec, f64)> = bonds
        .iter()
        .map(|&bond| {
            let pipe = ChemPipeline::build(MoleculeKind::H2, bond, &ScfKind::Rhf)
                .unwrap_or_else(|e| panic!("H2 at {bond} Å failed: {e}"));
            let (na, nb) = pipe.default_sector();
            let problem = pipe.problem(na, nb, true).expect("H2 problem");
            let hf = problem.hf_energy;
            let ansatz = EfficientSu2::new(problem.n_qubits, 1);
            (bond, JobSpec::new(ansatz, problem.hamiltonian, opts.clone()), hf)
        })
        .collect();
    let mut server = CafqaServer::start(engine, ServeOptions::default());

    // Wave 1 — the cold sweep, sequential so each completed bond can
    // donate its incumbent to the next one.
    let t = Instant::now();
    let mut wave1 = Vec::new();
    for (bond, spec, _) in &specs {
        let id = server.submit(spec.clone()).unwrap_or_else(|e| panic!("{bond} Å: {e}"));
        wave1.push(server.wait(id).expect("serve failure"));
    }
    let wave1_s = t.elapsed().as_secs_f64();

    // Wave 2 — exact duplicate traffic; everything must dedupe.
    let t = Instant::now();
    let ids: Vec<_> = specs
        .iter()
        .map(|(bond, spec, _)| {
            server.submit(spec.clone()).unwrap_or_else(|e| panic!("{bond} Å: {e}"))
        })
        .collect();
    let wave2: Vec<_> = ids.into_iter().map(|id| server.wait(id).expect("serve failure")).collect();
    let wave2_s = t.elapsed().as_secs_f64();

    let mut warm_starts = 0usize;
    let mut rows = Vec::new();
    for (((bond, _, hf), first), again) in specs.iter().zip(&wave1).zip(&wave2) {
        // Dedupe contract: the duplicate wave is all bit-identical
        // cache hits.
        assert_eq!(again.disposition, Disposition::CacheHit, "{bond} Å duplicate missed");
        assert_eq!(
            first.result.energy.to_bits(),
            again.result.energy.to_bits(),
            "{bond} Å cache hit is not bit-identical"
        );
        // Warm-start contract: the injected seed is evaluated first, so
        // the final energy can never be worse than the seed's.
        let (disposition, seed_energy) = match first.disposition {
            Disposition::Fresh => (String::from("fresh"), String::from("n/a")),
            Disposition::WarmStarted { distance } => {
                warm_starts += 1;
                let seed_energy = first.result.trace[0].energy;
                assert!(
                    first.result.energy <= seed_energy + 1e-9,
                    "{bond} Å: warm-started energy {} worse than its seed {}",
                    first.result.energy,
                    seed_energy
                );
                (format!("warm(d={distance:.3})"), format!("{seed_energy:.6}"))
            }
            Disposition::CacheHit => unreachable!("cold wave cannot hit the cache"),
        };
        rows.push(vec![
            format!("{bond:.2}"),
            format!("{:.6}", first.result.energy),
            format!("{hf:.6}"),
            disposition,
            seed_energy,
            first.result.evaluations.to_string(),
        ]);
    }
    assert_eq!(
        warm_starts,
        specs.len() - 1,
        "every bond after the first should warm-start from a neighbour"
    );
    let stats = server.stats();
    assert_eq!(stats.cache_hits as usize, specs.len(), "duplicate wave dedupe rate");
    server.shutdown();

    print_table(
        "Fig. 18: CAFQA-as-a-service — H2 bond sweep with duplicate traffic",
        &["bond_A", "E_CAFQA", "E_HF", "disposition", "E_seed", "evaluations"],
        &rows,
    );
    let n = specs.len() as f64;
    println!(
        "cold sweep: {wave1_s:.2}s ({:.2} jobs/s, {} warm starts) | duplicate wave: \
         {wave2_s:.4}s ({:.0} jobs/s, {}/{} cache hits) | dedupe speedup {:.0}x",
        n / wave1_s,
        warm_starts,
        n / wave2_s,
        stats.cache_hits,
        specs.len(),
        wave1_s / wave2_s.max(1e-12)
    );
}
