//! Fig. 11: H6 chain dissociation, with the paper's "opt." variant taking
//! the best estimate over spin-sector-optimized Hamiltonians.

use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa_core::metrics::correlation_recovered;
use cafqa_core::MolecularCafqa;
use cafqa_experiments::{bond_sweep, cafqa_budget, print_table, run_cfg};

fn main() {
    let cfg = run_cfg();
    let kind = MoleculeKind::H6;
    let mut rows = Vec::new();
    for bond in bond_sweep(kind, cfg.quick) {
        let singlet = ChemPipeline::build(kind, bond, &ScfKind::Rhf).unwrap();
        let (na, nb) = singlet.default_sector();
        let sp = singlet.problem(na, nb, true).unwrap();
        let exact = sp.exact_energy;
        let hf = sp.hf_energy;
        let s_runner = MolecularCafqa::new(sp);
        let s_result = s_runner.run(&cafqa_budget(kind, cfg.quick));
        // "opt.": also try broken-symmetry UHF singlet and UHF triplet
        // Hamiltonians, take the lowest estimate (paper §7.1.4).
        let mut best_opt = s_result.energy;
        let mut best_hf_opt = hf;
        for (na_s, nb_s, mix) in [(3usize, 3usize, 0.4), (4, 2, 0.3)] {
            let sk = ScfKind::Uhf { n_alpha: na_s, n_beta: nb_s, guess_mix: mix };
            if let Ok(pipe) = ChemPipeline::build(kind, bond, &sk) {
                if let Ok(p) = pipe.problem(na_s, nb_s, false) {
                    best_hf_opt = best_hf_opt.min(p.hf_energy);
                    let runner = MolecularCafqa::new(p);
                    let mut opts = cafqa_budget(kind, cfg.quick);
                    opts.sz_penalty = 0.5;
                    best_opt = best_opt.min(runner.run(&opts).energy);
                }
            }
        }
        let (rec, rec_opt) = match exact {
            Some(e) => (
                format!("{:.2}", correlation_recovered(s_result.energy, hf, e)),
                format!("{:.2}", correlation_recovered(best_opt, hf, e)),
            ),
            None => ("n/a".into(), "n/a".into()),
        };
        rows.push(vec![
            format!("{bond:.3}"),
            format!("{hf:.6}"),
            format!("{best_hf_opt:.6}"),
            format!("{:.6}", s_result.energy),
            format!("{best_opt:.6}"),
            exact.map_or("n/a".into(), |e| format!("{e:.6}")),
            rec,
            rec_opt,
        ]);
    }
    print_table(
        "Fig. 11: H6 dissociation with spin-optimized ('opt.') variants",
        &["bond_A", "E_HF", "E_HF_opt", "CAFQA", "CAFQA_opt", "exact", "rec_%", "rec_opt_%"],
        &rows,
    );
    println!("paper: CAFQA recovers up to ~50%; CAFQA opt. approaches 100% at high bond lengths");
}
