//! Fig. 8: H2 dissociation curves (energy / accuracy / correlation
//! recovered) plus the electron-count-constrained H2+ cation curve.

use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa_core::{CafqaOptions, MolecularCafqa};
use cafqa_experiments::{bond_sweep, dissociation, print_dissociation, print_table, run_cfg};

fn main() {
    let cfg = run_cfg();
    let points = dissociation(MoleculeKind::H2, cfg);
    print_dissociation("Fig. 8: H2", &points);
    // H2+ cation: same orbitals, 1-electron sector, N-penalty on the
    // objective (paper §7.1.1).
    let mut rows = Vec::new();
    for bond in bond_sweep(MoleculeKind::H2, cfg.quick) {
        let pipe = ChemPipeline::build(MoleculeKind::H2, bond, &ScfKind::Rhf).unwrap();
        let cation = pipe.problem(1, 0, true).unwrap();
        let exact = cation.exact_energy.unwrap();
        let runner = MolecularCafqa::new(cation);
        let opts = CafqaOptions {
            warmup: if cfg.quick { 80 } else { 150 },
            iterations: if cfg.quick { 120 } else { 300 },
            number_penalty: 2.0,
            ..Default::default()
        };
        let result = runner.run(&opts);
        rows.push(vec![
            format!("{bond:.3}"),
            format!("{:.6}", result.energy),
            format!("{exact:.6}"),
            format!("{:.2e}", (result.energy - exact).abs()),
        ]);
    }
    print_table(
        "Fig. 8a inset: H2+ cation via CAFQA electron-count constraint",
        &["bond_A", "E_CAFQA_cation", "E_exact_cation", "err"],
        &rows,
    );
    let max_recovered = points.iter().filter_map(|p| p.recovered()).fold(0.0, f64::max);
    println!("summary: max correlation recovered = {max_recovered:.2}% (paper: up to 99.7%)");
}
