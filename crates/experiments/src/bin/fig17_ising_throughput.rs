//! Fig. 17 (repo extension): per-instance serving throughput of the
//! Ising fast path vs the full BO pipeline, per vertex-count band.
//!
//! The ROADMAP's north star is a high-traffic service; for Ising-class
//! workloads (arXiv 2312.01036) the structure-routed reduced-space
//! solver serves orders of magnitude more instances per second than the
//! warm-up + BO + polish pipeline at the same quality or better — the
//! asymmetry the `ising_fast_path_vs_bo` bench gates at ≥ 100×. This
//! binary sweeps it across instance sizes and generator families.

use std::time::Instant;

use cafqa_circuit::EfficientSu2;
use cafqa_core::maxcut::{maxcut_hamiltonian, Graph};
use cafqa_core::{solve_ising_batch_on, CafqaOptions, ExecEngine, IsingFastPath, IsingInstance};
use cafqa_experiments::{print_table, run_cfg};

/// One batch per vertex band, mixing all four generator families so the
/// row reflects a service's traffic rather than one topology.
fn band(n: usize, copies: usize) -> Vec<IsingInstance> {
    let mut graphs = Vec::new();
    for c in 0..copies {
        let seed = 1000 * n as u64 + c as u64;
        graphs.push(Graph::random(n, 0.4, seed));
        graphs.push(Graph::random_weighted(n, 0.4, seed + 17));
    }
    graphs.push(Graph::ring(n));
    graphs.push(Graph::complete(n));
    graphs
        .into_iter()
        .map(|g| IsingInstance::new(EfficientSu2::new(g.n, 1), maxcut_hamiltonian(&g)))
        .collect()
}

fn main() {
    let cfg = run_cfg();
    let engine = ExecEngine::from_env();
    let copies = if cfg.quick { 1 } else { 3 };
    let bo_opts = CafqaOptions {
        warmup: if cfg.quick { 40 } else { 60 },
        iterations: if cfg.quick { 60 } else { 120 },
        polish_sweeps: 1,
        ising_fast_path: IsingFastPath::Off,
        ..Default::default()
    };
    let fast_opts = CafqaOptions { ising_fast_path: IsingFastPath::Auto, ..bo_opts.clone() };
    let mut rows = Vec::new();
    for n in [16usize, 20, 24] {
        let instances = band(n, copies);
        // Warm both arms; the runs are deterministic, so the kept
        // results double as the quality check.
        let fast = solve_ising_batch_on(&engine, &instances, &fast_opts);
        let bo = solve_ising_batch_on(&engine, &instances, &bo_opts);
        for (i, (f, b)) in fast.iter().zip(&bo).enumerate() {
            assert!(
                f.energy <= b.energy + 1e-9,
                "band {n}, instance {i}: fast {} worse than BO {}",
                f.energy,
                b.energy
            );
        }
        let matched = fast.iter().zip(&bo).filter(|(f, b)| f.energy <= b.energy - 1e-9).count();
        let time = |opts: &CafqaOptions| {
            let t = Instant::now();
            std::hint::black_box(solve_ising_batch_on(&engine, &instances, opts));
            t.elapsed().as_secs_f64()
        };
        let fast_s = time(&fast_opts);
        let bo_s = time(&bo_opts);
        let count = instances.len() as f64;
        rows.push(vec![
            n.to_string(),
            instances.len().to_string(),
            format!("{:.1}", count / fast_s),
            format!("{:.3}", count / bo_s),
            format!("{:.0}", bo_s / fast_s),
            format!("{matched}/{}", instances.len()),
        ]);
    }
    print_table(
        "Fig. 17: Ising fast-path serving throughput vs the full BO pipeline",
        &[
            "vertices",
            "instances",
            "fast_inst_per_s",
            "bo_inst_per_s",
            "speedup",
            "fast_strictly_better",
        ],
        &rows,
    );
    println!(
        "fast path energy asserted <= BO per instance; headline A/B in BENCH_search.json \
         (cargo bench --bench search -- ising_fast_path)"
    );
}
