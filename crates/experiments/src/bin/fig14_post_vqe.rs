//! Fig. 14: post-CAFQA VQE tuning for LiH at 4.8 Å — CAFQA vs HF
//! initialization on ideal and noisy machines; the paper reports ~2.5x
//! faster convergence from the CAFQA start.

use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa_core::{CafqaOptions, MolecularCafqa};
use cafqa_experiments::{print_table, run_cfg};
use cafqa_sim::NoiseModel;
use cafqa_vqe::{run_vqe, IdealBackend, NoisyBackend, SpsaOptions, VqeResult};

fn main() {
    let cfg = run_cfg();
    let pipe = ChemPipeline::build(MoleculeKind::LiH, 4.8, &ScfKind::Rhf).unwrap();
    let (na, nb) = pipe.default_sector();
    let problem = pipe.problem(na, nb, true).unwrap();
    let exact = problem.exact_energy.unwrap();
    let h = problem.hamiltonian.clone();
    let hf_bits = problem.hf_bits;
    let runner = MolecularCafqa::new(problem);
    let copts = CafqaOptions {
        warmup: if cfg.quick { 300 } else { 400 },
        iterations: if cfg.quick { 400 } else { 600 },
        ..Default::default()
    };
    let cafqa = runner.run(&copts);
    let cafqa_init = cafqa.initial_angles();
    let hf_init: Vec<f64> = runner
        .ansatz
        .basis_state_config(hf_bits)
        .iter()
        .map(|&k| k as f64 * std::f64::consts::FRAC_PI_2)
        .collect();
    let iterations = if cfg.quick { 400 } else { 1000 };
    let spsa = SpsaOptions { iterations, a: 2.0, c: 0.4, ..Default::default() };
    let noisy = NoisyBackend { model: NoiseModel::casablanca_class() };
    let runs: Vec<(&str, VqeResult)> = vec![
        ("CAFQA noise-free", run_vqe(&runner.ansatz, &h, &cafqa_init, &IdealBackend, &spsa)),
        ("HF noise-free", run_vqe(&runner.ansatz, &h, &hf_init, &IdealBackend, &spsa)),
        ("CAFQA noisy", run_vqe(&runner.ansatz, &h, &cafqa_init, &noisy, &spsa)),
        ("HF noisy", run_vqe(&runner.ansatz, &h, &hf_init, &noisy, &spsa)),
    ];
    // Convergence target: within 50 mHa of the exact energy — a band the
    // HF-initialized ideal run can eventually reach within the budget.
    let target = exact + 0.050;
    let mut rows = Vec::new();
    for (name, r) in &runs {
        rows.push(vec![
            name.to_string(),
            format!("{:.6}", r.trace[0]),
            format!("{:.6}", r.best_energy),
            r.iterations_to_reach(target, 0.0).map_or("never".into(), |k| k.to_string()),
        ]);
    }
    print_table(
        &format!("Fig. 14: post-CAFQA VQE for LiH @ 4.8 Å (exact = {exact:.6})"),
        &["run", "initial_E", "best_E", "iters_to_exact+50mHa"],
        &rows,
    );
    // Convergence speedup on the ideal backend.
    let c = runs[0].1.iterations_to_reach(target, 0.0);
    let f = runs[1].1.iterations_to_reach(target, 0.0);
    if let (Some(c), Some(f)) = (c, f) {
        println!(
            "summary: noise-free speedup CAFQA vs HF = {:.1}x (paper: ~2.5x)",
            f as f64 / c as f64
        );
    }
    // Trace excerpt for plotting.
    let stride = (iterations / 40).max(1);
    let mut trace_rows = Vec::new();
    for i in (0..iterations).step_by(stride) {
        trace_rows.push(vec![
            i.to_string(),
            format!("{:.6}", runs[0].1.trace[i]),
            format!("{:.6}", runs[1].1.trace[i]),
            format!("{:.6}", runs[2].1.trace[i]),
            format!("{:.6}", runs[3].1.trace[i]),
        ]);
    }
    print_table(
        "Fig. 14 traces",
        &["iteration", "cafqa_ideal", "hf_ideal", "cafqa_noisy", "hf_noisy"],
        &trace_rows,
    );
}
