//! Table 1: VQA applications and their characteristics.

use cafqa_chem::{ChemPipeline, ScfKind, ALL_MOLECULES};
use cafqa_experiments::print_table;

fn main() {
    let mut rows = Vec::new();
    for kind in ALL_MOLECULES {
        let (total, used) = kind.orbital_counts();
        let sweep = kind.bond_sweep();
        // Verify the advertised active space against the real pipeline.
        let verified = ChemPipeline::build(kind, kind.equilibrium_bond(), &ScfKind::Rhf)
            .map(|p| p.spin_integrals.n)
            .unwrap_or(0);
        assert_eq!(verified, used, "{} active-space rule drifted", kind.name());
        rows.push(vec![
            kind.name().to_string(),
            kind.num_qubits().to_string(),
            format!("{:.2}", kind.equilibrium_bond()),
            format!("{:.2} - {:.2}", sweep.first().unwrap(), sweep.last().unwrap()),
            format!("{total} / {used}"),
        ]);
    }
    print_table(
        "Table 1: VQA applications and their characteristics (* = documented surrogate)",
        &["app", "qubits", "bond_eqbm_A", "bond_range_A", "orbitals_total/used"],
        &rows,
    );
}
