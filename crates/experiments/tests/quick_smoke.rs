//! Smoke test for the figure binaries' `--quick` mode: the binary must
//! run to completion, emit its `csv,` series and a `summary:` line.

use std::process::Command;

#[test]
fn fig05_quick_runs_and_emits_csv() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig05_microbench"))
        .arg("--quick")
        .output()
        .expect("fig05_microbench binary should spawn");
    assert!(
        out.status.success(),
        "fig05_microbench --quick exited with {:?}:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.lines().any(|l| l.starts_with("csv,")),
        "expected csv rows in output:\n{stdout}"
    );
    assert!(
        stdout.lines().any(|l| l.starts_with("summary:")),
        "expected a summary line in output:\n{stdout}"
    );
}
