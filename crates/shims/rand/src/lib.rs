//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The CAFQA build environment has no crates.io access, so this crate
//! vendors the small slice of the `rand` 0.8 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen` (for `bool`/`f64`) and `gen_range` (over
//! integer ranges). The generator is xoshiro256++ seeded via SplitMix64 —
//! deterministic, fast, and of far higher quality than this workload
//! needs. Swap the workspace dependency back to the registry crate when a
//! network is available; call sites need no changes.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word from the generator.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`bool`: fair coin; `f64`: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> Self::Output;
}

fn uniform_below(rng: &mut dyn RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u8, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded with
    /// SplitMix64 (deterministic for a given seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, public domain reference).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5..=5usize);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4500..5500).contains(&trues), "{trues}");
    }

    use super::RngCore;

    #[test]
    fn mut_ref_is_also_an_rng() {
        fn takes_rng(rng: &mut impl Rng) -> usize {
            fn inner(rng: &mut impl Rng) -> usize {
                rng.gen_range(0..10usize)
            }
            inner(rng)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = takes_rng(&mut rng);
        assert!(v < 10);
    }
}
