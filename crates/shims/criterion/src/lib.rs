//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The CAFQA build environment has no crates.io access, so this crate
//! implements the subset of the criterion API the workspace's benches
//! use: [`Criterion`] with `bench_function` / `benchmark_group` /
//! `bench_with_input`, [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of
//! criterion's statistical machinery it reports simple wall-clock
//! statistics (min / mean / max over the sample set) to stdout — enough
//! for A/B comparisons during development, not for publication-grade
//! numbers. Swap the workspace dependency back to the registry crate
//! when a network is available; the benches need no changes.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Substring filter from the command line (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench` (and possibly a filter string)
        // to harness=false targets; accept and use what we understand.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget the samples should roughly fill.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up period run before timing starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(name) {
            let mut b = Bencher::new(self);
            f(&mut b);
            b.report(name);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().map_or(true, |f| name.contains(f))
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        if self.criterion.matches(&full) {
            let mut b = Bencher::new(self.criterion);
            f(&mut b);
            b.report(&full);
        }
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        if self.criterion.matches(&full) {
            let mut b = Bencher::new(self.criterion);
            f(&mut b, input);
            b.report(&full);
        }
        self
    }

    /// Finishes the group (a no-op here; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id labelled `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { text: format!("{}/{}", name.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_string() }
    }
}

/// Drives the closure under measurement, mirroring `criterion::Bencher`.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(c: &Criterion) -> Self {
        Bencher {
            sample_size: c.sample_size,
            measurement_time: c.measurement_time,
            warm_up_time: c.warm_up_time,
            samples: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the per-call cost.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < self.warm_up_time || calls == 0 {
            std::hint::black_box(routine());
            calls += 1;
            if calls >= 1_000_000 {
                break;
            }
        }
        let per_call = warm_start.elapsed() / calls.max(1) as u32;

        // Pick an iteration count per sample so all samples together fit
        // in roughly the measurement budget.
        let budget = self.measurement_time / self.sample_size as u32;
        let iters = if per_call.is_zero() {
            1000
        } else {
            (budget.as_nanos() / per_call.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };
        self.iters_per_sample = iters;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples — Bencher::iter never called)");
            return;
        }
        let per = |d: &Duration| d.as_secs_f64() / self.iters_per_sample as f64;
        let times: Vec<f64> = self.samples.iter().map(per).collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        println!(
            "{name:<50} [{} {} {}]  ({} samples × {} iters)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            self.samples.len(),
            self.iters_per_sample
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group: a function that runs each target against a
/// shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("n", 8), &8usize, |b, &n| {
            b.iter(|| std::hint::black_box(n * 2))
        });
        group.bench_function("plain", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.finish();
    }
}
