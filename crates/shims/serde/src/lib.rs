//! Offline shim for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The CAFQA build environment has no crates.io access. The workspace
//! derives `Serialize`/`Deserialize` on a handful of types as a
//! forward-looking marker but never routes data through a serde
//! serializer (experiment output is hand-rolled CSV/JSON), so the traits
//! here are empty markers and the derives (from the `serde_derive` shim)
//! emit empty impls. Swapping the workspace dependency back to real
//! serde requires no call-site changes.

#![warn(missing_docs)]

// Lets the `::serde::...` paths emitted by the derive shim resolve when
// the deriving type lives inside this crate (mirrors real serde).
#[cfg(test)]
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(test)]
#[allow(dead_code)]
mod tests {
    use crate::{Deserialize, Serialize};

    #[derive(Debug, Clone, Serialize, Deserialize)]
    struct Plain {
        a: u32,
        b: String,
    }

    #[derive(Debug, Serialize, Deserialize)]
    enum Kind {
        A,
        B(u8),
        C { x: f64 },
    }

    #[derive(Serialize, Deserialize)]
    struct Generic<T> {
        inner: T,
    }

    fn assert_serialize<T: serde::Serialize>() {}
    fn assert_deserialize<T: for<'de> serde::Deserialize<'de>>() {}

    #[test]
    fn derives_produce_impls() {
        assert_serialize::<Plain>();
        assert_deserialize::<Plain>();
        assert_serialize::<Kind>();
        assert_deserialize::<Kind>();
        assert_serialize::<Generic<Plain>>();
        assert_deserialize::<Generic<Plain>>();
    }
}
