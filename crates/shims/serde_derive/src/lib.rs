//! Offline shim for `serde_derive`.
//!
//! The CAFQA build environment has no crates.io access. The workspace
//! only uses `#[derive(Serialize, Deserialize)]` as a forward-looking
//! marker (nothing serializes through serde yet — JSON/CSV emission in
//! the experiment binaries is hand-rolled), so these derives emit empty
//! marker-trait impls for the `serde` shim's `Serialize`/`Deserialize`
//! traits. No `syn`/`quote`: the item name and generics are recovered
//! with a small hand-rolled token scan.

#![warn(missing_docs)]

use proc_macro::{TokenStream, TokenTree};

/// The name of the deriving type plus the raw tokens of its generic
/// parameter list (empty when the type is not generic).
struct Target {
    name: String,
    /// Generic parameter names, e.g. `["T", "U"]` for `struct Foo<T, U: Clone>`.
    params: Vec<String>,
}

/// Scans the item's tokens for `struct`/`enum`, the type name, and an
/// optional `<...>` parameter list. Attributes and visibility before the
/// keyword are skipped naturally because we key on the keyword itself.
fn parse_target(input: TokenStream) -> Target {
    let mut iter = input.into_iter().peekable();
    // Find the `struct` / `enum` keyword at top level.
    for tt in iter.by_ref() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                break;
            }
        }
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other:?}"),
    };
    // Optional generic parameter list: `<` ... `>` appears as punct tokens.
    let mut params = Vec::new();
    if matches!(&iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        iter.next();
        let mut depth = 1usize;
        // Parameter names are the idents that appear at depth 1 directly
        // after `<` or `,` (skipping lifetimes and bounds).
        let mut at_param_start = true;
        while let Some(tt) = iter.next() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    at_param_start = true;
                }
                TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && at_param_start => {
                    // Lifetime parameter: consume its ident, keep marker.
                    iter.next();
                    at_param_start = false;
                }
                TokenTree::Ident(id) if depth == 1 && at_param_start => {
                    let s = id.to_string();
                    if s == "const" {
                        // `const N: usize` — the next ident is the name,
                        // but const params need no trait bound; skip it.
                        iter.next();
                    } else {
                        params.push(s);
                    }
                    at_param_start = false;
                }
                _ => {}
            }
        }
    }
    Target { name, params }
}

fn impl_marker(input: TokenStream, trait_path: &str, lifetime: Option<&str>) -> TokenStream {
    let t = parse_target(input);
    let trait_with_lt = match lifetime {
        Some(lt) => format!("{trait_path}<{lt}>"),
        None => trait_path.to_string(),
    };
    let mut impl_params: Vec<String> = Vec::new();
    if let Some(lt) = lifetime {
        impl_params.push(lt.to_string());
    }
    for p in &t.params {
        impl_params.push(format!("{p}: {trait_with_lt}"));
    }
    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let ty_generics =
        if t.params.is_empty() { String::new() } else { format!("<{}>", t.params.join(", ")) };
    let code = format!("impl{impl_generics} {trait_with_lt} for {}{ty_generics} {{}}", t.name);
    code.parse().expect("serde_derive shim: generated impl must parse")
}

/// Derives the `serde` shim's `Serialize` marker trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    impl_marker(input, "::serde::Serialize", None)
}

/// Derives the `serde` shim's `Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    impl_marker(input, "::serde::Deserialize", Some("'de"))
}
