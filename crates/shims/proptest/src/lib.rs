//! Offline shim for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The CAFQA build environment has no crates.io access, so this crate
//! implements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`collection::vec`], [`ProptestConfig`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports its inputs (via the
//!   strategy's `Debug` output where available) but is not minimized.
//! - **Deterministic seeding.** Case `k` of every test draws from a
//!   fixed seed derived from `k`, so failures reproduce exactly across
//!   runs and machines — there is no persistence file.
//!
//! Swap the workspace dependency back to the registry crate when a
//! network is available; the tests need no changes.

#![warn(missing_docs)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runtime configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the heavier oracle
        // tests (dense statevector comparisons) fast in CI while still
        // exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u32, u64, usize, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// A length specification for [`vec`]: a fixed `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element`
    /// and whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[doc(hidden)]
pub fn __rng_for_case(test_name: &str, case: u32) -> StdRng {
    // Deterministic per test and case: failures reproduce exactly.
    let mut h = 0xcbf29ce484222325u64; // FNV-1a
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32) ^ case as u64)
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::__rng_for_case(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__msg) = __result {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __msg
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body, reporting the failing
/// case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::__rng_for_case("ranges_respect_bounds", 0);
        for _ in 0..500 {
            let v = Strategy::sample(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = crate::__rng_for_case("vec_strategy_lengths", 1);
        let fixed = crate::collection::vec(0u8..4, 7);
        assert_eq!(Strategy::sample(&fixed, &mut rng).len(), 7);
        let ranged = crate::collection::vec(0u8..4, 2..5);
        for _ in 0..100 {
            let len = Strategy::sample(&ranged, &mut rng).len();
            assert!((2..5).contains(&len));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, asserts pass, doc comments parse.
        #[test]
        fn macro_end_to_end(x in 0u64..100, v in crate::collection::vec(0usize..10, 0..6)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 6, "len was {}", v.len());
            let doubled = (x * 2, x * 2);
            prop_assert_eq!(doubled.0, doubled.1);
        }

        #[test]
        fn prop_map_applies(y in (0u8..4).prop_map(|k| k as usize * 10)) {
            prop_assert!(y % 10 == 0 && y < 40);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `failing_inner` failed")]
    fn failures_report_case() {
        // No #[test] on the inner fn: nested test items are unnameable,
        // so drive the generated runner by hand.
        proptest! {
            fn failing_inner(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        failing_inner();
    }
}
