//! Bit-packed Pauli strings on up to 64 qubits.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// Maximum number of qubits representable by the bit-packed encoding.
pub const MAX_QUBITS: usize = 64;

/// A single-qubit Pauli operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

impl Pauli {
    /// The `(x, z)` symplectic bits of this Pauli.
    #[inline]
    pub fn bits(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Reconstructs a Pauli from its symplectic bits.
    #[inline]
    pub fn from_bits(x: bool, z: bool) -> Self {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// The character used in string form.
    #[inline]
    pub fn to_char(self) -> char {
        match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }
}

/// Error returned when parsing Pauli strings or operators fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePauliError {
    message: String,
}

impl ParsePauliError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ParsePauliError { message: message.into() }
    }
}

impl fmt::Display for ParsePauliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pauli syntax: {}", self.message)
    }
}

impl std::error::Error for ParsePauliError {}

/// A tensor product of single-qubit Paulis on `n ≤ 64` qubits, stored as a
/// pair of bit masks: bit `q` of `x`/`z` records the X/Z component on qubit
/// `q`, with `Y = iXZ` having both set.
///
/// The string form uses **index order**: the first character is qubit 0.
///
/// `PauliString` itself is *unsigned* — signs and `i` factors live in the
/// coefficients of a [`crate::PauliOp`] or are returned from [`Self::mul`].
///
/// # Examples
///
/// ```
/// use cafqa_pauli::PauliString;
///
/// let a: PauliString = "XYZ".parse().unwrap();
/// let b: PauliString = "YII".parse().unwrap();
/// assert!(!a.commutes_with(&b)); // they differ on exactly one anticommuting site
/// assert_eq!(a.weight(), 3);
/// let (phase, prod) = a.mul(&b);
/// assert_eq!(prod.to_string(), "ZYZ");
/// assert_eq!(phase, 1); // X·Y = iZ contributes one factor of i
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PauliString {
    n: u8,
    x: u64,
    z: u64,
}

impl PauliString {
    /// The all-identity string on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn identity(n: usize) -> Self {
        assert!(n <= MAX_QUBITS, "at most {MAX_QUBITS} qubits supported");
        PauliString { n: n as u8, x: 0, z: 0 }
    }

    /// Builds a Pauli string from raw `(x, z)` masks.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` or if a mask has bits above `n`.
    pub fn from_masks(n: usize, x: u64, z: u64) -> Self {
        assert!(n <= MAX_QUBITS, "at most {MAX_QUBITS} qubits supported");
        let valid = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        assert!(x & !valid == 0 && z & !valid == 0, "mask bits above qubit count");
        PauliString { n: n as u8, x, z }
    }

    /// A single-qubit Pauli embedded in an `n`-qubit identity.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n` or `n > 64`.
    pub fn single(n: usize, qubit: usize, p: Pauli) -> Self {
        assert!(qubit < n, "qubit index out of range");
        let (xb, zb) = p.bits();
        PauliString::from_masks(n, (xb as u64) << qubit, (zb as u64) << qubit)
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n as usize
    }

    /// The X bit mask.
    #[inline]
    pub fn x_mask(&self) -> u64 {
        self.x
    }

    /// The Z bit mask.
    #[inline]
    pub fn z_mask(&self) -> u64 {
        self.z
    }

    /// The Pauli acting on `qubit`.
    #[inline]
    pub fn pauli_at(&self, qubit: usize) -> Pauli {
        Pauli::from_bits((self.x >> qubit) & 1 == 1, (self.z >> qubit) & 1 == 1)
    }

    /// Returns a copy with the Pauli on `qubit` replaced.
    pub fn with_pauli(mut self, qubit: usize, p: Pauli) -> Self {
        assert!(qubit < self.n as usize, "qubit index out of range");
        let (xb, zb) = p.bits();
        let bit = 1u64 << qubit;
        self.x = (self.x & !bit) | ((xb as u64) << qubit);
        self.z = (self.z & !bit) | ((zb as u64) << qubit);
        self
    }

    /// Number of non-identity sites.
    #[inline]
    pub fn weight(&self) -> u32 {
        (self.x | self.z).count_ones()
    }

    /// True when every site is `I` or `Z` (a "computational-basis" /
    /// diagonal term in the Hamiltonian sense of the paper's Fig. 6).
    #[inline]
    pub fn is_diagonal(&self) -> bool {
        self.x == 0
    }

    /// True when this is the identity string.
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.x == 0 && self.z == 0
    }

    /// Number of `Y` sites (where both masks are set).
    #[inline]
    pub fn y_count(&self) -> u32 {
        (self.x & self.z).count_ones()
    }

    /// Whether two strings commute, via the binary symplectic form.
    #[inline]
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        ((self.x & other.z).count_ones() + (self.z & other.x).count_ones()) % 2 == 0
    }

    /// Multiplies two Pauli strings.
    ///
    /// Returns `(k, P)` such that `self · other = i^k · P` with `P` the
    /// unsigned product string and `k ∈ {0, 1, 2, 3}`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn mul(&self, other: &PauliString) -> (i32, PauliString) {
        assert_eq!(self.n, other.n, "pauli qubit count mismatch");
        let k = phase_exponent(self.x, self.z, other.x, other.z);
        (k, PauliString { n: self.n, x: self.x ^ other.x, z: self.z ^ other.z })
    }

    /// Applies this Pauli to a computational basis state.
    ///
    /// Returns `(b', k)` such that `P |b⟩ = i^k |b'⟩`.
    #[inline]
    pub fn apply_to_basis(&self, b: u64) -> (u64, i32) {
        // P = i^{#Y} X^x Z^z and Z^z|b⟩ = (-1)^{|z∧b|}|b⟩.
        let k = self.y_count() as i32 + 2 * (self.z & b).count_ones() as i32;
        (b ^ self.x, k.rem_euclid(4))
    }

    /// Expectation value `⟨b|P|b⟩` on a computational basis state: `±1` for
    /// diagonal strings, `0` otherwise.
    #[inline]
    pub fn expectation_basis(&self, b: u64) -> f64 {
        if self.x != 0 {
            return 0.0;
        }
        if (self.z & b).count_ones() % 2 == 0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Embeds this string into a larger register, keeping qubit indices.
    ///
    /// # Panics
    ///
    /// Panics if `n` is smaller than the current qubit count or above 64.
    pub fn embed(&self, n: usize) -> PauliString {
        assert!(n >= self.n as usize, "cannot shrink a pauli string");
        PauliString::from_masks(n, self.x, self.z)
    }

    /// Removes the given qubit (which must carry `I` or `Z`), shifting
    /// higher indices down. Used by the two-qubit symmetry reduction.
    ///
    /// Returns `(had_z, reduced)` where `had_z` reports whether the removed
    /// site carried a `Z`.
    ///
    /// # Panics
    ///
    /// Panics if the site carries `X` or `Y`.
    pub fn remove_qubit(&self, qubit: usize) -> (bool, PauliString) {
        let bit = 1u64 << qubit;
        assert!(self.x & bit == 0, "cannot remove a qubit carrying X/Y");
        let had_z = self.z & bit != 0;
        let low = bit - 1;
        let squeeze = |m: u64| (m & low) | ((m >> 1) & !low);
        (had_z, PauliString { n: self.n - 1, x: squeeze(self.x), z: squeeze(self.z) })
    }

    /// Iterates over the single-qubit Paulis in index order.
    pub fn iter(&self) -> impl Iterator<Item = Pauli> + '_ {
        (0..self.n as usize).map(move |q| self.pauli_at(q))
    }
}

/// Phase exponent of a mask-level Pauli product: returns `k ∈ {0, 1, 2, 3}`
/// such that `P(x1, z1) · P(x2, z2) = i^k · P(x1 ^ x2, z1 ^ z2)`, where
/// `P(x, z) = i^{|x ∧ z|} X^x Z^z` is the unsigned string encoding used by
/// [`PauliString`] (`Y = iXZ` carries both bits).
///
/// This is the allocation-free kernel behind [`PauliString::mul`]; the
/// stabilizer tableau uses it directly on raw `(x, z)` rows so the
/// Aaronson–Gottesman phase accumulation never materializes strings.
#[inline]
pub fn phase_exponent(x1: u64, z1: u64, x2: u64, z2: u64) -> i32 {
    // Pure string = i^{#Y} X^x Z^z; moving the second factor's X past the
    // first's Z contributes (-1)^{|z1 & x2|}, and the product re-absorbs
    // i^{#Y} factors for its own Y sites.
    let k = (x1 & z1).count_ones() as i32
        + (x2 & z2).count_ones() as i32
        + 2 * (z1 & x2).count_ones() as i32
        - ((x1 ^ x2) & (z1 ^ z2)).count_ones() as i32;
    k.rem_euclid(4)
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in self.iter() {
            write!(f, "{}", p.to_char())?;
        }
        Ok(())
    }
}

impl FromStr for PauliString {
    type Err = ParsePauliError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() > MAX_QUBITS {
            return Err(ParsePauliError::new(format!(
                "string has {} sites; at most {MAX_QUBITS} supported",
                s.len()
            )));
        }
        let mut x = 0u64;
        let mut z = 0u64;
        for (q, c) in s.chars().enumerate() {
            let p = match c.to_ascii_uppercase() {
                'I' => Pauli::I,
                'X' => Pauli::X,
                'Y' => Pauli::Y,
                'Z' => Pauli::Z,
                other => {
                    return Err(ParsePauliError::new(format!("unexpected character '{other}'")))
                }
            };
            let (xb, zb) = p.bits();
            x |= (xb as u64) << q;
            z |= (zb as u64) << q;
        }
        Ok(PauliString { n: s.len() as u8, x, z })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        for s in ["I", "XYZI", "ZZZZZZ", "IXIYIZ"] {
            let p: PauliString = s.parse().unwrap();
            assert_eq!(p.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("XQ".parse::<PauliString>().is_err());
    }

    #[test]
    fn single_qubit_placement() {
        let p = PauliString::single(4, 2, Pauli::Y);
        assert_eq!(p.to_string(), "IIYI");
        assert_eq!(p.pauli_at(2), Pauli::Y);
        assert_eq!(p.weight(), 1);
    }

    #[test]
    fn commutation_rules() {
        let x: PauliString = "X".parse().unwrap();
        let y: PauliString = "Y".parse().unwrap();
        let z: PauliString = "Z".parse().unwrap();
        assert!(!x.commutes_with(&y));
        assert!(!y.commutes_with(&z));
        assert!(!x.commutes_with(&z));
        let xx: PauliString = "XX".parse().unwrap();
        let zz: PauliString = "ZZ".parse().unwrap();
        assert!(xx.commutes_with(&zz));
    }

    #[test]
    fn single_qubit_products() {
        let x: PauliString = "X".parse().unwrap();
        let y: PauliString = "Y".parse().unwrap();
        let z: PauliString = "Z".parse().unwrap();
        // XY = iZ
        let (k, p) = x.mul(&y);
        assert_eq!((k, p.to_string().as_str()), (1, "Z"));
        // YX = -iZ
        let (k, p) = y.mul(&x);
        assert_eq!((k, p.to_string().as_str()), (3, "Z"));
        // YZ = iX
        let (k, p) = y.mul(&z);
        assert_eq!((k, p.to_string().as_str()), (1, "X"));
        // ZX = iY
        let (k, p) = z.mul(&x);
        assert_eq!((k, p.to_string().as_str()), (1, "Y"));
        // XX = I
        let (k, p) = x.mul(&x);
        assert_eq!((k, p.to_string().as_str()), (0, "I"));
        // YY = I
        let (k, p) = y.mul(&y);
        assert_eq!((k, p.to_string().as_str()), (0, "I"));
    }

    #[test]
    fn apply_to_basis_matches_matrix_action() {
        // Y|0> = i|1>, Y|1> = -i|0>
        let y: PauliString = "Y".parse().unwrap();
        assert_eq!(y.apply_to_basis(0), (1, 1));
        assert_eq!(y.apply_to_basis(1), (0, 3));
        // Z|1> = -|1>
        let z: PauliString = "Z".parse().unwrap();
        assert_eq!(z.apply_to_basis(1), (1, 2));
        // X|0> = |1>
        let x: PauliString = "X".parse().unwrap();
        assert_eq!(x.apply_to_basis(0), (1, 0));
    }

    #[test]
    fn basis_expectation() {
        let zi: PauliString = "ZI".parse().unwrap();
        assert_eq!(zi.expectation_basis(0b00), 1.0);
        assert_eq!(zi.expectation_basis(0b01), -1.0);
        assert_eq!(zi.expectation_basis(0b10), 1.0);
        let xi: PauliString = "XI".parse().unwrap();
        assert_eq!(xi.expectation_basis(0b01), 0.0);
    }

    #[test]
    fn remove_qubit_shifts() {
        let p: PauliString = "XZYI".parse().unwrap();
        let (had_z, q) = p.remove_qubit(1);
        assert!(had_z);
        assert_eq!(q.to_string(), "XYI");
        let (had_z, q) = p.remove_qubit(3);
        assert!(!had_z);
        assert_eq!(q.to_string(), "XZY");
    }

    #[test]
    #[should_panic(expected = "carrying X/Y")]
    fn remove_qubit_rejects_x() {
        let p: PauliString = "XZ".parse().unwrap();
        let _ = p.remove_qubit(0);
    }

    #[test]
    fn phase_exponent_matches_mul() {
        // Exhaustive over all 2-qubit pairs: the mask-level helper must
        // agree with the string-level product everywhere.
        for code_a in 0u64..16 {
            for code_b in 0u64..16 {
                let a = PauliString::from_masks(2, code_a & 3, code_a >> 2);
                let b = PauliString::from_masks(2, code_b & 3, code_b >> 2);
                let (k, _) = a.mul(&b);
                assert_eq!(
                    phase_exponent(a.x_mask(), a.z_mask(), b.x_mask(), b.z_mask()),
                    k,
                    "{a} · {b}"
                );
            }
        }
    }

    #[test]
    fn mul_is_associative_on_samples() {
        let samples = ["XYZ", "ZZY", "IYX", "YYY", "XIZ"];
        for a in samples {
            for b in samples {
                for c in samples {
                    let pa: PauliString = a.parse().unwrap();
                    let pb: PauliString = b.parse().unwrap();
                    let pc: PauliString = c.parse().unwrap();
                    let (k1, ab) = pa.mul(&pb);
                    let (k2, ab_c) = ab.mul(&pc);
                    let (k3, bc) = pb.mul(&pc);
                    let (k4, a_bc) = pa.mul(&bc);
                    assert_eq!(ab_c, a_bc);
                    assert_eq!((k1 + k2) % 4, (k3 + k4) % 4, "{a} {b} {c}");
                }
            }
        }
    }
}
