//! Sums of Pauli strings with complex coefficients (qubit Hamiltonians).

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use cafqa_linalg::Complex64;

use crate::string::{ParsePauliError, PauliString};

/// A linear combination of Pauli strings, `H = Σ_k c_k P_k`.
///
/// Terms are kept in a sorted map so iteration order — and therefore every
/// downstream computation — is deterministic. Strings are unsigned; all
/// phases live in the coefficients.
///
/// # Examples
///
/// ```
/// use cafqa_pauli::PauliOp;
///
/// // The 4-qubit example Hamiltonian from the paper's §2.1.
/// let h: PauliOp = "0.1*XYXY + 0.5*IZZI".parse().unwrap();
/// assert_eq!(h.num_terms(), 2);
/// assert_eq!(h.num_qubits(), 4);
/// assert!(h.is_hermitian(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PauliOp {
    n: usize,
    terms: BTreeMap<PauliString, Complex64>,
}

impl PauliOp {
    /// The zero operator on `n` qubits.
    pub fn zero(n: usize) -> Self {
        PauliOp { n, terms: BTreeMap::new() }
    }

    /// The identity operator on `n` qubits.
    pub fn identity(n: usize) -> Self {
        let mut op = PauliOp::zero(n);
        op.add_term(Complex64::ONE, PauliString::identity(n));
        op
    }

    /// Builds an operator from `(coefficient, string)` pairs, merging
    /// duplicates.
    ///
    /// # Panics
    ///
    /// Panics if strings disagree on qubit count.
    pub fn from_terms(n: usize, terms: impl IntoIterator<Item = (Complex64, PauliString)>) -> Self {
        let mut op = PauliOp::zero(n);
        for (c, p) in terms {
            op.add_term(c, p);
        }
        op
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of stored terms (after duplicate merging).
    #[inline]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Adds `c · P` to the operator.
    ///
    /// # Panics
    ///
    /// Panics if `P` has the wrong qubit count.
    pub fn add_term(&mut self, c: Complex64, p: PauliString) {
        assert_eq!(p.num_qubits(), self.n, "pauli term qubit count mismatch");
        let entry = self.terms.entry(p).or_insert(Complex64::ZERO);
        *entry += c;
    }

    /// The coefficient of a given string (zero if absent).
    pub fn coefficient(&self, p: &PauliString) -> Complex64 {
        self.terms.get(p).copied().unwrap_or(Complex64::ZERO)
    }

    /// Iterates over `(string, coefficient)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&PauliString, &Complex64)> {
        self.terms.iter()
    }

    /// Removes terms with `|c| <= tol`, returning `self` for chaining.
    pub fn pruned(mut self, tol: f64) -> Self {
        self.terms.retain(|_, c| c.norm() > tol);
        self
    }

    /// Scales all coefficients.
    pub fn scaled(mut self, s: Complex64) -> Self {
        for c in self.terms.values_mut() {
            *c *= s;
        }
        self
    }

    /// Hermitian conjugate (conjugates coefficients; strings are Hermitian).
    pub fn dagger(mut self) -> Self {
        for c in self.terms.values_mut() {
            *c = c.conj();
        }
        self
    }

    /// Whether the operator is Hermitian up to `tol` (all coefficients
    /// real, since unsigned Pauli strings are Hermitian).
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.terms.values().all(|c| c.im.abs() <= tol)
    }

    /// Operator product, cost `O(t₁ · t₂)` term multiplications.
    ///
    /// # Panics
    ///
    /// Panics on qubit-count mismatch.
    pub fn mul_op(&self, other: &PauliOp) -> PauliOp {
        assert_eq!(self.n, other.n, "operator qubit count mismatch");
        let mut out = PauliOp::zero(self.n);
        for (pa, ca) in &self.terms {
            for (pb, cb) in &other.terms {
                let (k, p) = pa.mul(pb);
                out.add_term(*ca * *cb * Complex64::i_pow(k), p);
            }
        }
        out
    }

    /// Sum of the identity-term coefficient (the operator's trace / 2^n).
    pub fn identity_coefficient(&self) -> Complex64 {
        self.coefficient(&PauliString::identity(self.n))
    }

    /// Expectation value on a computational basis state `|b⟩`.
    pub fn expectation_basis(&self, b: u64) -> f64 {
        self.terms.iter().map(|(p, c)| c.re * p.expectation_basis(b)).sum()
    }

    /// Splits the operator into `(real_factor, x_mask, z_mask)` triples for
    /// a real computational-basis matrix action, or `None` if the operator
    /// is not real in that basis.
    ///
    /// A term `c · P` with `P = i^{#Y} X^x Z^z` has basis matrix elements
    /// `c · i^{#Y} · (±1)`; the matrix is real exactly when `c · i^{#Y}` is
    /// real for every term. Molecular Hamiltonians from real integrals
    /// always satisfy this; the tuple list feeds the Lanczos matvec.
    pub fn real_basis_terms(&self, tol: f64) -> Option<Vec<(f64, u64, u64)>> {
        let mut out = Vec::with_capacity(self.terms.len());
        for (p, c) in &self.terms {
            let f = *c * Complex64::i_pow(p.y_count() as i32);
            if f.im.abs() > tol {
                return None;
            }
            out.push((f.re, p.x_mask(), p.z_mask()));
        }
        Some(out)
    }

    /// Applies the operator to a dense complex state vector (`2^n` long).
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths are not `2^n` or `n > 24` (guard
    /// against accidental huge allocations).
    pub fn apply_to_state(&self, x: &[Complex64], y: &mut [Complex64]) {
        assert!(self.n <= 24, "dense application limited to 24 qubits");
        let dim = 1usize << self.n;
        assert_eq!(x.len(), dim);
        assert_eq!(y.len(), dim);
        for (p, c) in &self.terms {
            let base = *c * Complex64::i_pow(p.y_count() as i32);
            let xm = p.x_mask();
            let zm = p.z_mask();
            for (b, amp) in x.iter().enumerate() {
                if amp.norm_sqr() == 0.0 {
                    continue;
                }
                let sign = if (zm & b as u64).count_ones() % 2 == 0 { 1.0 } else { -1.0 };
                let target = b ^ xm as usize;
                y[target] += base * sign * *amp;
            }
        }
    }

    /// Dense matrix representation (row-major, `2^n × 2^n`), for tests and
    /// tiny systems.
    ///
    /// # Panics
    ///
    /// Panics if `n > 12`.
    pub fn to_dense(&self) -> Vec<Complex64> {
        assert!(self.n <= 12, "dense export limited to 12 qubits");
        let dim = 1usize << self.n;
        let mut m = vec![Complex64::ZERO; dim * dim];
        for (p, c) in &self.terms {
            let base = *c * Complex64::i_pow(p.y_count() as i32);
            let xm = p.x_mask() as usize;
            let zm = p.z_mask();
            for b in 0..dim {
                let sign = if (zm & b as u64).count_ones() % 2 == 0 { 1.0 } else { -1.0 };
                let row = b ^ xm;
                m[row * dim + b] += base * sign;
            }
        }
        m
    }

    /// Rewrites every string through `f`, merging collisions; used by the
    /// qubit-tapering reduction. `f` returns an extra scalar factor.
    pub fn map_terms(
        &self,
        new_n: usize,
        mut f: impl FnMut(&PauliString) -> (Complex64, PauliString),
    ) -> PauliOp {
        let mut out = PauliOp::zero(new_n);
        for (p, c) in &self.terms {
            let (factor, q) = f(p);
            out.add_term(*c * factor, q);
        }
        out
    }
}

impl std::ops::Add<&PauliOp> for &PauliOp {
    type Output = PauliOp;
    fn add(self, rhs: &PauliOp) -> PauliOp {
        assert_eq!(self.n, rhs.n, "operator qubit count mismatch");
        let mut out = self.clone();
        for (p, c) in &rhs.terms {
            out.add_term(*c, *p);
        }
        out
    }
}

impl std::ops::Sub<&PauliOp> for &PauliOp {
    type Output = PauliOp;
    fn sub(self, rhs: &PauliOp) -> PauliOp {
        assert_eq!(self.n, rhs.n, "operator qubit count mismatch");
        let mut out = self.clone();
        for (p, c) in &rhs.terms {
            out.add_term(-*c, *p);
        }
        out
    }
}

impl fmt::Display for PauliOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        for (i, (p, c)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if c.im.abs() < 1e-15 {
                write!(f, "{}*{}", c.re, p)?;
            } else {
                write!(f, "({})*{}", c, p)?;
            }
        }
        Ok(())
    }
}

impl FromStr for PauliOp {
    type Err = ParsePauliError;

    /// Parses expressions like `0.1*XYXY + 0.5*IZZI - 2e-3*ZZZZ` or bare
    /// strings like `XX` (unit coefficient). An optional trailing `i` on a
    /// coefficient marks it imaginary: `0.5i*XY`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Split into signed chunks at top-level +/-, keeping exponent signs
        // (`2e-3`) intact.
        let mut chunks: Vec<String> = Vec::new();
        let mut current = String::new();
        let mut prev_non_space = '\0';
        for ch in s.chars() {
            if (ch == '+' || ch == '-')
                && !current.trim().is_empty()
                && !matches!(prev_non_space, 'e' | 'E' | '+' | '-' | '*')
            {
                chunks.push(std::mem::take(&mut current));
            }
            current.push(ch);
            if !ch.is_whitespace() {
                prev_non_space = ch;
            }
        }
        if !current.trim().is_empty() {
            chunks.push(current);
        }
        if chunks.is_empty() {
            return Err(ParsePauliError::new("empty operator expression"));
        }
        let mut terms: Vec<(Complex64, PauliString)> = Vec::new();
        let mut n = None;
        for chunk in &chunks {
            let chunk = chunk.trim();
            let (coeff, pauli_text) = match chunk.split_once('*') {
                Some((c, p)) => {
                    let c: String = c.chars().filter(|ch| !ch.is_whitespace()).collect();
                    let (body, imag) = match c.strip_suffix(['i', 'j']) {
                        Some(b) => (b, true),
                        None => (c.as_str(), false),
                    };
                    let body = match body {
                        "" | "+" => "1".to_string(),
                        "-" => "-1".to_string(),
                        other => other.to_string(),
                    };
                    let v: f64 = body
                        .parse()
                        .map_err(|_| ParsePauliError::new(format!("bad coefficient '{c}'")))?;
                    let coeff = if imag { Complex64::new(0.0, v) } else { Complex64::from(v) };
                    (coeff, p.trim())
                }
                None => match chunk.strip_prefix('-') {
                    Some(rest) => (Complex64::from(-1.0), rest.trim()),
                    None => (Complex64::ONE, chunk.strip_prefix('+').unwrap_or(chunk).trim()),
                },
            };
            let p: PauliString = pauli_text.parse()?;
            match n {
                None => n = Some(p.num_qubits()),
                Some(nq) if nq != p.num_qubits() => {
                    return Err(ParsePauliError::new(format!(
                        "term '{pauli_text}' has {} qubits, expected {nq}",
                        p.num_qubits()
                    )))
                }
                _ => {}
            }
            terms.push((coeff, p));
        }
        Ok(PauliOp::from_terms(n.unwrap(), terms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(s: &str) -> PauliOp {
        s.parse().unwrap()
    }

    #[test]
    fn parse_paper_example() {
        let h = op("0.1*XYXY + 0.5*IZZI");
        assert_eq!(h.num_qubits(), 4);
        assert_eq!(h.num_terms(), 2);
        assert_eq!(h.coefficient(&"XYXY".parse().unwrap()).re, 0.1);
        assert_eq!(h.coefficient(&"IZZI".parse().unwrap()).re, 0.5);
    }

    #[test]
    fn parse_signs_and_bare_terms() {
        let h = op("-ZZ + 2*XX - 0.5*YY");
        assert_eq!(h.coefficient(&"ZZ".parse().unwrap()).re, -1.0);
        assert_eq!(h.coefficient(&"XX".parse().unwrap()).re, 2.0);
        assert_eq!(h.coefficient(&"YY".parse().unwrap()).re, -0.5);
    }

    #[test]
    fn parse_imaginary_coefficient() {
        let h = op("0.5i*XY");
        assert_eq!(h.coefficient(&"XY".parse().unwrap()), Complex64::new(0.0, 0.5));
        assert!(!h.is_hermitian(1e-12));
    }

    #[test]
    fn parse_rejects_qubit_mismatch() {
        assert!("XX + ZZZ".parse::<PauliOp>().is_err());
    }

    #[test]
    fn duplicate_terms_merge() {
        let h = op("0.5*XX + 0.25*XX");
        assert_eq!(h.num_terms(), 1);
        assert_eq!(h.coefficient(&"XX".parse().unwrap()).re, 0.75);
    }

    #[test]
    fn pruning_drops_cancelled_terms() {
        let h = op("0.5*XX - 0.5*XX + 1.0*ZZ").pruned(1e-14);
        assert_eq!(h.num_terms(), 1);
    }

    #[test]
    fn product_of_anticommuting_singles() {
        // (X)(Y) = iZ
        let prod = op("X").mul_op(&op("Y"));
        assert_eq!(prod.coefficient(&"Z".parse().unwrap()), Complex64::I);
    }

    #[test]
    fn squared_pauli_is_identity() {
        let h = op("XZ");
        let sq = h.mul_op(&h).pruned(1e-14);
        assert_eq!(sq.num_terms(), 1);
        assert_eq!(sq.identity_coefficient(), Complex64::ONE);
    }

    #[test]
    fn basis_expectation_diagonal_only() {
        let h = op("0.5*IZZI + 0.1*XYXY");
        // |0110⟩: bits 1 and 2 set -> ZZ on qubits 1,2 gives (+1)(-1)(-1)=...
        // z-mask bits 1,2 overlap with b=0b0110 in two positions -> +1.
        assert_eq!(h.expectation_basis(0b0110), 0.5);
        assert_eq!(h.expectation_basis(0b0010), -0.5);
    }

    #[test]
    fn dense_matrix_of_z() {
        let h = op("Z");
        let m = h.to_dense();
        assert_eq!(m[0], Complex64::ONE);
        assert_eq!(m[3], Complex64::new(-1.0, 0.0));
        assert_eq!(m[1], Complex64::ZERO);
    }

    #[test]
    fn dense_matrix_of_y_is_imaginary() {
        let h = op("Y");
        let m = h.to_dense();
        // Y = [[0, -i], [i, 0]] with column-to-row layout m[row*2+col].
        assert_eq!(m[1], Complex64::new(0.0, -1.0));
        assert_eq!(m[2], Complex64::I);
    }

    #[test]
    fn real_basis_terms_for_even_y() {
        let h = op("0.5*YY + 0.25*XX");
        let terms = h.real_basis_terms(1e-12).unwrap();
        assert_eq!(terms.len(), 2);
        // YY factor: 0.5 * i^2 = -0.5.
        let yy = terms.iter().find(|(_, x, z)| *x == 0b11 && *z == 0b11).unwrap();
        assert_eq!(yy.0, -0.5);
    }

    #[test]
    fn real_basis_terms_rejects_single_y_real_coeff() {
        let h = op("0.5*Y");
        assert!(h.real_basis_terms(1e-12).is_none());
    }

    #[test]
    fn apply_to_state_matches_dense() {
        let h = op("0.3*XZ + 0.7*YI - 0.2*ZZ");
        let dim = 4;
        let m = h.to_dense();
        let x: Vec<Complex64> =
            (0..dim).map(|k| Complex64::new(0.1 * k as f64 + 0.3, 0.05 * k as f64 - 0.1)).collect();
        let mut y = vec![Complex64::ZERO; dim];
        h.apply_to_state(&x, &mut y);
        for row in 0..dim {
            let mut expect = Complex64::ZERO;
            for col in 0..dim {
                expect += m[row * dim + col] * x[col];
            }
            assert!(y[row].approx_eq(expect, 1e-12), "row {row}: {} vs {}", y[row], expect);
        }
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = op("0.5*XX + 0.1*ZZ");
        let b = op("0.2*XX - 0.4*YY");
        let s = (&(&a + &b) - &b).pruned(1e-14);
        assert_eq!(s.num_terms(), a.num_terms());
        for (p, c) in a.iter() {
            assert!(s.coefficient(p).approx_eq(*c, 1e-12));
        }
    }
}
