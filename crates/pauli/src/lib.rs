//! Bit-packed Pauli strings and sum-of-Paulis operators.
//!
//! Every Hamiltonian in the CAFQA reproduction — molecular, Ising/MaxCut,
//! or hand-written — is a [`PauliOp`]: a linear combination of
//! [`PauliString`]s. Strings on up to 64 qubits are stored as one `u64`
//! X-mask and one `u64` Z-mask, which makes multiplication, commutation
//! checks and stabilizer bookkeeping a handful of word operations. The
//! paper's largest system (Cr2-class, 34 qubits) fits in a single word.
//!
//! # Examples
//!
//! ```
//! use cafqa_pauli::{PauliOp, PauliString};
//!
//! let h: PauliOp = "0.5*XX - 0.5*ZZ".parse().unwrap();
//! let zz: PauliString = "ZZ".parse().unwrap();
//! assert_eq!(h.coefficient(&zz).re, -0.5);
//! // ⟨00|H|00⟩ only sees the diagonal part.
//! assert_eq!(h.expectation_basis(0b00), -0.5);
//! ```

#![warn(missing_docs)]

mod op;
mod string;

pub use op::PauliOp;
pub use string::{phase_exponent, ParsePauliError, Pauli, PauliString, MAX_QUBITS};

#[cfg(test)]
mod proptests {
    use super::*;
    use cafqa_linalg::Complex64;
    use proptest::prelude::*;

    fn pauli_string(n: usize) -> impl Strategy<Value = PauliString> {
        proptest::collection::vec(0u8..4, n).prop_map(move |v| {
            let mut x = 0u64;
            let mut z = 0u64;
            for (q, p) in v.iter().enumerate() {
                x |= ((p & 1) as u64) << q;
                z |= (((p >> 1) & 1) as u64) << q;
            }
            PauliString::from_masks(n, x, z)
        })
    }

    fn dense_mul(n: usize, a: &PauliOp, b: &PauliOp) -> Vec<Complex64> {
        let dim = 1usize << n;
        let ma = a.to_dense();
        let mb = b.to_dense();
        let mut out = vec![Complex64::ZERO; dim * dim];
        for i in 0..dim {
            for k in 0..dim {
                let aik = ma[i * dim + k];
                if aik.norm_sqr() == 0.0 {
                    continue;
                }
                for j in 0..dim {
                    out[i * dim + j] += aik * mb[k * dim + j];
                }
            }
        }
        out
    }

    proptest! {
        #[test]
        fn mul_phase_matches_dense(a in pauli_string(3), b in pauli_string(3)) {
            let oa = PauliOp::from_terms(3, [(Complex64::ONE, a)]);
            let ob = PauliOp::from_terms(3, [(Complex64::ONE, b)]);
            let symbolic = oa.mul_op(&ob).to_dense();
            let dense = dense_mul(3, &oa, &ob);
            for (s, d) in symbolic.iter().zip(&dense) {
                prop_assert!(s.approx_eq(*d, 1e-12));
            }
        }

        #[test]
        fn commutator_matches_symplectic(a in pauli_string(4), b in pauli_string(4)) {
            let (ka, ab) = a.mul(&b);
            let (kb, ba) = b.mul(&a);
            prop_assert_eq!(ab, ba);
            if a.commutes_with(&b) {
                prop_assert_eq!(ka, kb);
            } else {
                prop_assert_eq!((ka + 2) % 4, kb % 4);
            }
        }

        #[test]
        fn parse_display_roundtrip(p in pauli_string(6)) {
            let s = p.to_string();
            let q: PauliString = s.parse().unwrap();
            prop_assert_eq!(p, q);
        }

        #[test]
        fn self_product_is_identity(p in pauli_string(5)) {
            let (k, sq) = p.mul(&p);
            prop_assert_eq!(k, 0);
            prop_assert!(sq.is_identity());
        }

        #[test]
        fn basis_application_preserves_norm(p in pauli_string(5), b in 0u64..32) {
            let (b2, _k) = p.apply_to_basis(b);
            let (b3, k2) = p.apply_to_basis(b2);
            // P² = I so applying twice returns to b with total phase 0.
            prop_assert_eq!(b3, b);
            let (_, k1) = p.apply_to_basis(b);
            prop_assert_eq!((k1 + k2) % 4, 0);
        }

        #[test]
        fn op_algebra_distributes(a in pauli_string(3), b in pauli_string(3), c in pauli_string(3)) {
            let oa = PauliOp::from_terms(3, [(Complex64::new(0.5, 0.0), a)]);
            let ob = PauliOp::from_terms(3, [(Complex64::new(-1.5, 0.0), b)]);
            let oc = PauliOp::from_terms(3, [(Complex64::new(2.0, 0.0), c)]);
            let lhs = oa.mul_op(&(&ob + &oc));
            let rhs = &oa.mul_op(&ob) + &oa.mul_op(&oc);
            let (l, r) = (lhs.to_dense(), rhs.to_dense());
            for (x, y) in l.iter().zip(&r) {
                prop_assert!(x.approx_eq(*y, 1e-12));
            }
        }
    }
}
