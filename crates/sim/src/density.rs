//! Density-matrix simulation for noisy ("NISQ machine") evaluation.

use cafqa_circuit::{Circuit, Gate};
use cafqa_linalg::Complex64;
use cafqa_pauli::{PauliOp, PauliString};

/// Maximum register width for density-matrix simulation (dim `4^n`).
pub const MAX_DENSITY_QUBITS: usize = 10;

/// A dense `2^n × 2^n` density matrix.
///
/// Used by the noisy-device experiments (paper Fig. 5 and Fig. 14); the
/// systems there have 2–4 qubits, far below the 10-qubit guard.
#[derive(Debug, Clone)]
pub struct DensityMatrix {
    n: usize,
    dim: usize,
    data: Vec<Complex64>, // row-major dim × dim
}

impl DensityMatrix {
    /// The pure state `|0…0⟩⟨0…0|`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 10`.
    pub fn zero_state(n: usize) -> Self {
        assert!(
            n <= MAX_DENSITY_QUBITS,
            "density simulation limited to {MAX_DENSITY_QUBITS} qubits"
        );
        let dim = 1usize << n;
        let mut data = vec![Complex64::ZERO; dim * dim];
        data[0] = Complex64::ONE;
        DensityMatrix { n, dim, data }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Matrix element `ρ[r, c]`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Complex64 {
        self.data[r * self.dim + c]
    }

    /// The trace (1 for any physical state).
    pub fn trace(&self) -> Complex64 {
        (0..self.dim).map(|i| self.get(i, i)).sum()
    }

    /// The purity `Tr(ρ²)`; 1 for pure states, `1/2^n` for fully mixed.
    pub fn purity(&self) -> f64 {
        let mut acc = 0.0;
        for r in 0..self.dim {
            for c in 0..self.dim {
                // Tr(ρ²) = Σ_{r,c} ρ_{rc} ρ_{cr} = Σ |ρ_{rc}|² for Hermitian ρ.
                acc += self.get(r, c).norm_sqr();
            }
        }
        acc
    }

    /// Applies a unitary gate, `ρ → U ρ U†`.
    pub fn apply_gate(&mut self, gate: &Gate) {
        match *gate {
            Gate::Cx { control, target } => {
                let perm = |b: usize| {
                    if b & (1 << control) != 0 {
                        b ^ (1 << target)
                    } else {
                        b
                    }
                };
                self.permute(perm);
            }
            Gate::Cz(a, b) => {
                let mask = (1usize << a) | (1usize << b);
                for r in 0..self.dim {
                    for c in 0..self.dim {
                        let mut f = 1.0;
                        if r & mask == mask {
                            f = -f;
                        }
                        if c & mask == mask {
                            f = -f;
                        }
                        if f < 0.0 {
                            self.data[r * self.dim + c] = -self.data[r * self.dim + c];
                        }
                    }
                }
            }
            ref g => {
                let u = g.single_qubit_unitary().expect("all single-qubit gates provide a unitary");
                let q = g.qubits()[0];
                self.apply_single_qubit(q, &u);
            }
        }
    }

    fn permute(&mut self, perm: impl Fn(usize) -> usize) {
        let mut out = vec![Complex64::ZERO; self.data.len()];
        for r in 0..self.dim {
            let pr = perm(r);
            for c in 0..self.dim {
                out[pr * self.dim + perm(c)] = self.data[r * self.dim + c];
            }
        }
        self.data = out;
    }

    fn apply_single_qubit(&mut self, q: usize, u: &[Complex64; 4]) {
        let qm = 1usize << q;
        // Left multiply: rows.
        for c in 0..self.dim {
            for r in 0..self.dim {
                if r & qm == 0 {
                    let a0 = self.data[r * self.dim + c];
                    let a1 = self.data[(r | qm) * self.dim + c];
                    self.data[r * self.dim + c] = u[0] * a0 + u[1] * a1;
                    self.data[(r | qm) * self.dim + c] = u[2] * a0 + u[3] * a1;
                }
            }
        }
        // Right multiply by U†: columns with conjugated transpose.
        let ud = [u[0].conj(), u[2].conj(), u[1].conj(), u[3].conj()];
        for r in 0..self.dim {
            for c in 0..self.dim {
                if c & qm == 0 {
                    let a0 = self.data[r * self.dim + c];
                    let a1 = self.data[r * self.dim + (c | qm)];
                    // ρ U† on columns: (ρ U†)[r, c] = Σ_k ρ[r,k] U†[k,c].
                    self.data[r * self.dim + c] = a0 * ud[0] + a1 * ud[2];
                    self.data[r * self.dim + (c | qm)] = a0 * ud[1] + a1 * ud[3];
                }
            }
        }
    }

    /// Conjugates by a Pauli string: `ρ → P ρ P†`.
    pub fn apply_pauli(&mut self, p: &PauliString) {
        assert_eq!(p.num_qubits(), self.n, "pauli width mismatch");
        let xm = p.x_mask() as usize;
        let zm = p.z_mask();
        let mut out = vec![Complex64::ZERO; self.data.len()];
        for r in 0..self.dim {
            let (r2, kr) = p.apply_to_basis(r as u64);
            let _ = (xm, zm);
            for c in 0..self.dim {
                let (c2, kc) = p.apply_to_basis(c as u64);
                let phase = Complex64::i_pow(kr - kc);
                out[r2 as usize * self.dim + c2 as usize] = phase * self.data[r * self.dim + c];
            }
        }
        self.data = out;
    }

    /// Single-qubit depolarizing channel with error probability `p`:
    /// `ρ → (1-p) ρ + p/3 (XρX + YρY + ZρZ)`.
    pub fn depolarize1(&mut self, qubit: usize, p: f64) {
        if p <= 0.0 {
            return;
        }
        let mut mixed = vec![Complex64::ZERO; self.data.len()];
        for pauli in [cafqa_pauli::Pauli::X, cafqa_pauli::Pauli::Y, cafqa_pauli::Pauli::Z] {
            let mut branch = self.clone();
            branch.apply_pauli(&PauliString::single(self.n, qubit, pauli));
            for (m, b) in mixed.iter_mut().zip(&branch.data) {
                *m += *b;
            }
        }
        for (d, m) in self.data.iter_mut().zip(&mixed) {
            *d = d.scale(1.0 - p) + m.scale(p / 3.0);
        }
    }

    /// Two-qubit depolarizing channel with error probability `p`, mixing
    /// over the 15 non-identity two-qubit Paulis on `(a, b)`.
    pub fn depolarize2(&mut self, a: usize, b: usize, p: f64) {
        if p <= 0.0 {
            return;
        }
        let mut mixed = vec![Complex64::ZERO; self.data.len()];
        use cafqa_pauli::Pauli::{I, X, Y, Z};
        for pa in [I, X, Y, Z] {
            for pb in [I, X, Y, Z] {
                if pa == I && pb == I {
                    continue;
                }
                let ps = PauliString::identity(self.n).with_pauli(a, pa).with_pauli(b, pb);
                let mut branch = self.clone();
                branch.apply_pauli(&ps);
                for (m, q) in mixed.iter_mut().zip(&branch.data) {
                    *m += *q;
                }
            }
        }
        for (d, m) in self.data.iter_mut().zip(&mixed) {
            *d = d.scale(1.0 - p) + m.scale(p / 15.0);
        }
    }

    /// Exact expectation `Tr(ρ H)` of a Pauli-sum operator.
    pub fn expectation(&self, op: &PauliOp) -> f64 {
        assert_eq!(op.num_qubits(), self.n, "operator width mismatch");
        let mut total = Complex64::ZERO;
        for (p, c) in op.iter() {
            // Tr(ρP) = Σ_b ⟨b|ρP|b⟩ = Σ_b ρ[b, P(b)] phase.
            let base = Complex64::i_pow(p.y_count() as i32);
            let zm = p.z_mask();
            let xm = p.x_mask();
            let mut acc = Complex64::ZERO;
            for b in 0..self.dim {
                let sign = if (zm & b as u64).count_ones() % 2 == 0 { 1.0 } else { -1.0 };
                // P|b⟩ lands on |b ^ x⟩, so column b contributes ρ[b, b^x].
                acc += self.get(b, b ^ xm as usize) * (base * sign);
            }
            total += *c * acc;
        }
        total.re
    }

    /// Applies a full circuit without noise.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(circuit.num_qubits() <= self.n, "circuit wider than state");
        for g in circuit.gates() {
            self.apply_gate(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::statevector::Statevector;

    fn op(s: &str) -> PauliOp {
        s.parse().unwrap()
    }

    fn random_circuit(n: usize, len: usize, seed: u64) -> Circuit {
        // Deterministic little generator to avoid rand dependency wiring.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut c = Circuit::new(n);
        for _ in 0..len {
            match next() % 5 {
                0 => {
                    c.h(next() % n);
                }
                1 => {
                    c.s(next() % n);
                }
                2 => {
                    let theta = (next() % 628) as f64 / 100.0;
                    c.ry(next() % n, theta);
                }
                3 => {
                    let theta = (next() % 628) as f64 / 100.0;
                    c.rz(next() % n, theta);
                }
                _ => {
                    if n > 1 {
                        let a = next() % n;
                        let mut b = next() % n;
                        if a == b {
                            b = (b + 1) % n;
                        }
                        c.cx(a, b);
                    }
                }
            }
        }
        c
    }

    #[test]
    fn pure_evolution_matches_statevector() {
        for seed in 0..5 {
            let circuit = random_circuit(3, 25, seed);
            let psi = Statevector::from_circuit(&circuit);
            let mut rho = DensityMatrix::zero_state(3);
            rho.apply_circuit(&circuit);
            assert!((rho.trace().re - 1.0).abs() < 1e-10);
            assert!((rho.purity() - 1.0).abs() < 1e-10);
            for h in ["ZII + 0.5*XXI", "0.3*YZX", "ZZZ - XIX"] {
                let h = op(h);
                let sv = psi.expectation(&h).re;
                let dm = rho.expectation(&h);
                assert!((sv - dm).abs() < 1e-10, "seed {seed} op {h}: {sv} vs {dm}");
            }
        }
    }

    #[test]
    fn full_depolarizing_kills_bloch_vector() {
        let mut rho = DensityMatrix::zero_state(1);
        rho.depolarize1(0, 0.75); // p=3/4 is the fully depolarizing point.
        assert!(rho.expectation(&op("Z")).abs() < 1e-12);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_shrinks_expectation_linearly() {
        let mut c = Circuit::new(1);
        c.h(0);
        let mut rho = DensityMatrix::zero_state(1);
        rho.apply_circuit(&c);
        rho.depolarize1(0, 0.3);
        // ⟨X⟩ scales by (1 - 4p/3).
        assert!((rho.expectation(&op("X")) - (1.0 - 0.4)).abs() < 1e-12);
    }

    #[test]
    fn two_qubit_depolarizing_preserves_trace() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_circuit(&c);
        rho.depolarize2(0, 1, 0.1);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        // Bell ⟨XX⟩ shrinks by (1 - 16p/15).
        let expect = 1.0 - 16.0 * 0.1 / 15.0;
        assert!((rho.expectation(&op("XX")) - expect).abs() < 1e-12);
    }

    #[test]
    fn pauli_conjugation_is_involution() {
        let circuit = random_circuit(2, 15, 9);
        let mut rho = DensityMatrix::zero_state(2);
        rho.apply_circuit(&circuit);
        let before = rho.clone();
        let p: PauliString = "YX".parse().unwrap();
        rho.apply_pauli(&p);
        rho.apply_pauli(&p);
        for (a, b) in rho.data.iter().zip(&before.data) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }
}
