//! Finite-shot expectation estimation.
//!
//! Real devices estimate each Pauli term from a finite number of
//! measurement shots: rotate every non-identity site into the Z basis,
//! sample bitstrings, optionally flip bits with the readout-error
//! probability, and average parities. This estimator reproduces that
//! statistics path on top of the statevector backend, with one
//! stabilizer-aware refinement (the paper's §3 step 7): when readout is
//! noiseless and a term's parity distribution is deterministic or
//! exactly unbiased — always the case on stabilizer states — the term
//! needs at most one shot, so even `shots = 1` reproduces the exact
//! expectation on a Clifford circuit. The criterion is per term, not
//! per state: a non-stabilizer state whose term happens to be exactly
//! unbiased (e.g. by symmetry) also short-circuits to its exact zero
//! rather than sampling. Terms with any other bias always go through
//! honest shot statistics.

use cafqa_circuit::Circuit;
use cafqa_pauli::{Pauli, PauliOp, PauliString};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::statevector::Statevector;

/// A finite-shot, readout-noisy expectation estimator.
#[derive(Debug, Clone)]
pub struct ShotEstimator {
    /// Shots per Pauli term.
    pub shots: usize,
    /// Symmetric readout flip probability per measured qubit.
    pub readout_error: f64,
    /// RNG seed (deterministic sampling).
    pub seed: u64,
}

impl ShotEstimator {
    /// A noiseless estimator with the given shot budget.
    pub fn new(shots: usize) -> Self {
        ShotEstimator { shots, readout_error: 0.0, seed: 0x5807 }
    }

    /// The basis-change circuit that maps a Pauli string's eigenbasis onto
    /// the computational basis (`X → H`, `Y → S† H`).
    fn basis_change(p: &PauliString) -> Circuit {
        let mut c = Circuit::new(p.num_qubits());
        for (q, site) in p.iter().enumerate() {
            match site {
                Pauli::X => {
                    c.h(q);
                }
                Pauli::Y => {
                    c.sdg(q).h(q);
                }
                Pauli::I | Pauli::Z => {}
            }
        }
        c
    }

    /// Estimates `⟨ψ(circuit)|H|ψ(circuit)⟩` from sampled shots.
    ///
    /// Identity terms contribute exactly; every other term is estimated
    /// with `self.shots` samples in its own measurement basis.
    pub fn expectation(&self, circuit: &Circuit, op: &PauliOp) -> f64 {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let base = Statevector::from_circuit(circuit);
        let mut total = 0.0;
        for (p, c) in op.iter() {
            if p.is_identity() {
                total += c.re;
                continue;
            }
            let mut rotated = base.clone();
            rotated.apply_circuit(&Self::basis_change(p));
            let support = p.x_mask() | p.z_mask();
            if self.readout_error == 0.0 {
                // Stabilizer shortcut (paper §3 step 7): on a stabilizer
                // state every Pauli has parity bias exactly +1, −1 or 0.
                // Deterministic terms are exact from a single shot, and
                // exactly-unbiased terms are *known* to average to zero,
                // so neither needs statistical sampling. Terms with any
                // other bias (non-stabilizer states) fall through to
                // honest shot statistics below.
                let bias = Self::parity_bias(&rotated, support);
                if (bias.abs() - 1.0).abs() < 1e-12 || bias.abs() < 1e-12 {
                    total += c.re * bias.round();
                    continue;
                }
            }
            let samples = rotated.sample(&mut rng, self.shots);
            let mut acc = 0i64;
            for mut bits in samples {
                if self.readout_error > 0.0 {
                    for q in 0..op.num_qubits() {
                        if support & (1 << q) != 0 && rng.gen::<f64>() < self.readout_error {
                            bits ^= 1 << q;
                        }
                    }
                }
                let parity = (bits & support).count_ones() % 2;
                acc += if parity == 0 { 1 } else { -1 };
            }
            total += c.re * acc as f64 / self.shots as f64;
        }
        total
    }

    /// The exact parity bias `P(even) − P(odd)` of `state` over the
    /// measured `support` qubits.
    fn parity_bias(state: &Statevector, support: u64) -> f64 {
        state
            .amplitudes()
            .iter()
            .enumerate()
            .map(|(bits, amp)| {
                let sign = if (bits as u64 & support).count_ones() % 2 == 0 { 1.0 } else { -1.0 };
                sign * amp.norm_sqr()
            })
            .sum()
    }

    /// Worst-case shots this estimator spends on an operator: one batch
    /// of `self.shots` per non-identity term. The stabilizer shortcut
    /// can reduce the actual spend — to zero on a noiseless Clifford
    /// circuit, which is the saving the paper's one-shot-per-term
    /// observation quantifies. (Per-circuit spend would need the
    /// circuit; this is the budget a shortcut-unaware device run pays.)
    pub fn shot_budget(&self, op: &PauliOp) -> usize {
        op.iter().filter(|(p, _)| !p.is_identity()).count() * self.shots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn converges_to_exact_expectation() {
        let c = bell();
        let h: PauliOp = "0.5*XX + 0.5*ZZ - 0.25*YY".parse().unwrap();
        let exact = Statevector::from_circuit(&c).expectation(&h).re;
        let estimator = ShotEstimator::new(20_000);
        let est = estimator.expectation(&c, &h);
        assert!((est - exact).abs() < 0.03, "{est} vs {exact}");
    }

    #[test]
    fn deterministic_terms_need_few_shots() {
        // On the Bell state ⟨ZZ⟩ = +1 deterministically: even 1 shot is
        // exact — the stabilizer one-shot observation from the paper.
        let c = bell();
        let zz: PauliOp = "ZZ".parse().unwrap();
        let estimator = ShotEstimator::new(1);
        assert_eq!(estimator.expectation(&c, &zz), 1.0);
    }

    #[test]
    fn readout_error_attenuates() {
        let c = bell();
        let zz: PauliOp = "ZZ".parse().unwrap();
        let noisy = ShotEstimator { shots: 40_000, readout_error: 0.1, seed: 3 };
        let est = noisy.expectation(&c, &zz);
        // Expect (1-2·0.1)² = 0.64 up to sampling error.
        assert!((est - 0.64).abs() < 0.03, "{est}");
    }

    #[test]
    fn identity_is_exact_and_free() {
        let c = bell();
        let op: PauliOp = "2.5*II".parse().unwrap();
        let estimator = ShotEstimator::new(1);
        assert_eq!(estimator.expectation(&c, &op), 2.5);
        assert_eq!(estimator.shot_budget(&op), 0);
    }

    #[test]
    fn unbiased_stabilizer_term_is_exact_with_one_shot() {
        // ⟨Z⟩ on |+⟩ is exactly 0; the stabilizer shortcut recognizes the
        // unbiased parity instead of returning a random ±1 single shot.
        let mut c = Circuit::new(1);
        c.h(0);
        let z: PauliOp = "Z".parse().unwrap();
        for seed in 0..8 {
            let estimator = ShotEstimator { shots: 1, readout_error: 0.0, seed };
            assert_eq!(estimator.expectation(&c, &z), 0.0);
        }
    }

    #[test]
    fn non_stabilizer_terms_still_sample() {
        // ⟨Z⟩ of Ry(0.7)|0⟩ = cos(0.7) ≈ 0.765: neither deterministic nor
        // unbiased, so a single shot must be a raw ±1 parity outcome.
        let mut c = Circuit::new(1);
        c.ry(0, 0.7);
        let z: PauliOp = "Z".parse().unwrap();
        let estimator = ShotEstimator { shots: 1, readout_error: 0.0, seed: 1 };
        let est = estimator.expectation(&c, &z);
        assert!(est == 1.0 || est == -1.0, "{est}");
    }

    #[test]
    fn y_basis_rotation_is_correct() {
        // Ry(π/2)|0⟩... use S|+⟩ = |+i⟩ with ⟨Y⟩ = +1.
        let mut c = Circuit::new(1);
        c.h(0).s(0);
        let y: PauliOp = "Y".parse().unwrap();
        let estimator = ShotEstimator::new(100);
        assert_eq!(estimator.expectation(&c, &y), 1.0);
    }
}
