//! Dense quantum simulators for the CAFQA reproduction.
//!
//! Three backends cover the paper's evaluation settings:
//!
//! - [`Statevector`] — the "ideal machine": exact pure-state evolution,
//!   used for exact expectation sweeps and to validate the stabilizer
//!   simulator.
//! - [`DensityMatrix`] — mixed-state evolution with Pauli channels.
//! - [`NoiseModel`] — gate-level depolarizing + readout presets standing in
//!   for the paper's IBMQ Casablanca / Manhattan snapshots (see DESIGN.md
//!   §4.3 for the substitution rationale).
//!
//! # Examples
//!
//! ```
//! use cafqa_circuit::Circuit;
//! use cafqa_sim::{NoiseModel, Statevector};
//!
//! let mut c = Circuit::new(2);
//! c.ry(0, 4.71).cx(0, 1);
//! let ideal = Statevector::from_circuit(&c).expectation(&"XX".parse().unwrap()).re;
//! let noisy = NoiseModel::manhattan_class().expectation(&c, &"XX".parse().unwrap());
//! assert!(ideal < noisy); // noise pulls the minimum up, as in Fig. 5
//! ```

#![warn(missing_docs)]

mod density;
mod noise;
mod shots;
mod statevector;

pub use density::{DensityMatrix, MAX_DENSITY_QUBITS};
pub use noise::NoiseModel;
pub use shots::ShotEstimator;
pub use statevector::{Statevector, MAX_DENSE_QUBITS};
