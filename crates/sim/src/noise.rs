//! Parametric NISQ device noise models.
//!
//! The paper evaluates against Qiskit noise-model snapshots of IBMQ
//! Casablanca and IBMQ Manhattan. Those snapshots are not redistributable,
//! so this module provides the documented substitution from `DESIGN.md`
//! §4.3: gate-level depolarizing errors plus symmetric readout flips, with
//! per-device strengths chosen to reproduce the paper's observed
//! microbenchmark minima (≈ −0.85 for the Casablanca-class device and
//! ≈ −0.70 for the Manhattan-class device on the 2-qubit XX system).

use cafqa_circuit::{Circuit, Gate};
use cafqa_pauli::PauliOp;

use crate::density::DensityMatrix;

/// A gate-level noise model: depolarizing error after every gate plus a
/// symmetric readout flip per measured qubit.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    /// Human-readable device name.
    pub name: String,
    /// Depolarizing probability after each single-qubit gate.
    pub p1: f64,
    /// Depolarizing probability after each two-qubit gate.
    pub p2: f64,
    /// Symmetric readout bit-flip probability per qubit.
    pub readout: f64,
}

impl NoiseModel {
    /// A noiseless model (useful as a control).
    pub fn ideal() -> Self {
        NoiseModel { name: "ideal".into(), p1: 0.0, p2: 0.0, readout: 0.0 }
    }

    /// Casablanca-class 7-qubit Falcon device (the "less noisy" machine of
    /// the paper's Fig. 5).
    pub fn casablanca_class() -> Self {
        NoiseModel { name: "ibmq-casablanca-class".into(), p1: 4e-4, p2: 1.2e-2, readout: 2.2e-2 }
    }

    /// Manhattan-class 65-qubit Hummingbird device (the noisier machine of
    /// the paper's Fig. 5).
    pub fn manhattan_class() -> Self {
        NoiseModel { name: "ibmq-manhattan-class".into(), p1: 9e-4, p2: 3.2e-2, readout: 6.0e-2 }
    }

    /// Runs a circuit on `|0…0⟩` with this noise model, inserting a
    /// depolarizing channel after every gate.
    pub fn run(&self, circuit: &Circuit) -> DensityMatrix {
        let mut rho = DensityMatrix::zero_state(circuit.num_qubits());
        for g in circuit.gates() {
            rho.apply_gate(g);
            match g {
                Gate::Cx { control, target } => rho.depolarize2(*control, *target, self.p2),
                Gate::Cz(a, b) => rho.depolarize2(*a, *b, self.p2),
                other => rho.depolarize1(other.qubits()[0], self.p1),
            }
        }
        rho
    }

    /// Expectation of `op` after running `circuit` noisily, including the
    /// readout-error attenuation.
    ///
    /// Measuring a weight-`w` Pauli term through symmetric per-qubit
    /// readout flips with probability `ε` attenuates its expectation by
    /// `(1 − 2ε)^w` exactly, so the readout channel is applied analytically
    /// per term rather than by sampling.
    pub fn expectation(&self, circuit: &Circuit, op: &PauliOp) -> f64 {
        let rho = self.run(circuit);
        self.expectation_of(&rho, op)
    }

    /// Readout-attenuated expectation on an already-evolved state.
    pub fn expectation_of(&self, rho: &DensityMatrix, op: &PauliOp) -> f64 {
        let damp = 1.0 - 2.0 * self.readout;
        let mut total = 0.0;
        for (p, c) in op.iter() {
            let single = PauliOp::from_terms(op.num_qubits(), [(*c, *p)]);
            total += rho.expectation(&single) * damp.powi(p.weight() as i32);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xx() -> PauliOp {
        "XX".parse().unwrap()
    }

    fn microbench_circuit(theta: f64) -> Circuit {
        let mut c = Circuit::new(2);
        c.ry(0, theta).cx(0, 1);
        c
    }

    fn sweep_min(model: &NoiseModel) -> f64 {
        let mut best = f64::INFINITY;
        for k in 0..128 {
            let theta = k as f64 / 128.0 * std::f64::consts::TAU;
            let v = model.expectation(&microbench_circuit(theta), &xx());
            best = best.min(v);
        }
        best
    }

    #[test]
    fn ideal_model_reaches_exact_minimum() {
        let min = sweep_min(&NoiseModel::ideal());
        assert!((min + 1.0).abs() < 1e-3);
    }

    #[test]
    fn casablanca_class_matches_paper_band() {
        // Paper Fig. 5: the better device bottoms out around −0.85.
        let min = sweep_min(&NoiseModel::casablanca_class());
        assert!(min > -0.93 && min < -0.78, "got {min}");
    }

    #[test]
    fn manhattan_class_matches_paper_band() {
        // Paper Fig. 5: the noisier device bottoms out around −0.70.
        let min = sweep_min(&NoiseModel::manhattan_class());
        assert!(min > -0.80 && min < -0.60, "got {min}");
    }

    #[test]
    fn noise_ordering_is_monotone() {
        let ideal = sweep_min(&NoiseModel::ideal());
        let good = sweep_min(&NoiseModel::casablanca_class());
        let bad = sweep_min(&NoiseModel::manhattan_class());
        assert!(ideal < good && good < bad);
    }

    #[test]
    fn readout_attenuation_by_weight() {
        let model = NoiseModel { name: "t".into(), p1: 0.0, p2: 0.0, readout: 0.1 };
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        // ⟨XX⟩ = 1 ideally, attenuated by (1-0.2)² = 0.64.
        let v = model.expectation(&c, &xx());
        assert!((v - 0.64).abs() < 1e-12);
    }
}
