//! Dense statevector simulation (the "ideal machine" of the paper).

use cafqa_circuit::{Circuit, Gate};
use cafqa_linalg::Complex64;
use cafqa_pauli::PauliOp;

/// Maximum register width for dense simulation (memory guard).
pub const MAX_DENSE_QUBITS: usize = 24;

/// A dense `2^n`-amplitude pure state.
///
/// Qubit `q` corresponds to bit `q` of the basis index.
///
/// # Examples
///
/// ```
/// use cafqa_circuit::Circuit;
/// use cafqa_sim::Statevector;
///
/// // Bell state ⟨XX⟩ = 1.
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let psi = Statevector::from_circuit(&c);
/// let xx = "XX".parse().unwrap();
/// assert!((psi.expectation(&xx).re - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Statevector {
    n: usize,
    amps: Vec<Complex64>,
}

impl Statevector {
    /// The all-zeros state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 24`.
    pub fn zero_state(n: usize) -> Self {
        assert!(n <= MAX_DENSE_QUBITS, "dense simulation limited to {MAX_DENSE_QUBITS} qubits");
        let mut amps = vec![Complex64::ZERO; 1 << n];
        amps[0] = Complex64::ONE;
        Statevector { n, amps }
    }

    /// The computational basis state `|bits⟩`.
    pub fn basis_state(n: usize, bits: u64) -> Self {
        let mut s = Statevector::zero_state(n);
        s.amps[0] = Complex64::ZERO;
        s.amps[bits as usize] = Complex64::ONE;
        s
    }

    /// Runs `circuit` on `|0…0⟩`.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let mut s = Statevector::zero_state(circuit.num_qubits());
        s.apply_circuit(circuit);
        s
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The raw amplitudes, indexed by basis state.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// The amplitude `⟨bits|ψ⟩`.
    #[inline]
    pub fn amplitude(&self, bits: u64) -> Complex64 {
        self.amps[bits as usize]
    }

    /// Overwrites the amplitude vector (used by the Clifford+T branch
    /// engine to install a weighted branch sum).
    ///
    /// # Panics
    ///
    /// Panics if `amps.len() != 2^n`.
    pub fn set_amplitudes(&mut self, amps: &[Complex64]) {
        assert_eq!(amps.len(), self.amps.len(), "amplitude vector length mismatch");
        self.amps.copy_from_slice(amps);
    }

    /// Applies one gate in place.
    pub fn apply_gate(&mut self, gate: &Gate) {
        match *gate {
            Gate::Cx { control, target } => {
                let cm = 1usize << control;
                let tm = 1usize << target;
                for b in 0..self.amps.len() {
                    if b & cm != 0 && b & tm == 0 {
                        self.amps.swap(b, b | tm);
                    }
                }
            }
            Gate::Cz(a, b) => {
                let mask = (1usize << a) | (1usize << b);
                for (idx, amp) in self.amps.iter_mut().enumerate() {
                    if idx & mask == mask {
                        *amp = -*amp;
                    }
                }
            }
            ref g => {
                let u = g.single_qubit_unitary().expect("all single-qubit gates provide a unitary");
                let q = g.qubits()[0];
                let qm = 1usize << q;
                for b in 0..self.amps.len() {
                    if b & qm == 0 {
                        let a0 = self.amps[b];
                        let a1 = self.amps[b | qm];
                        self.amps[b] = u[0] * a0 + u[1] * a1;
                        self.amps[b | qm] = u[2] * a0 + u[3] * a1;
                    }
                }
            }
        }
    }

    /// Applies every gate of a circuit in order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is wider than the state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(circuit.num_qubits() <= self.n, "circuit wider than state");
        for g in circuit.gates() {
            self.apply_gate(g);
        }
    }

    /// The inner product `⟨self|other⟩`.
    pub fn inner(&self, other: &Statevector) -> Complex64 {
        assert_eq!(self.n, other.n, "statevector width mismatch");
        self.amps.iter().zip(&other.amps).map(|(a, b)| a.conj() * *b).sum()
    }

    /// The squared norm (1 for any circuit output).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Exact expectation value `⟨ψ|H|ψ⟩` of a Pauli-sum operator.
    pub fn expectation(&self, op: &PauliOp) -> Complex64 {
        assert_eq!(op.num_qubits(), self.n, "operator width mismatch");
        let mut total = Complex64::ZERO;
        for (p, c) in op.iter() {
            let base = Complex64::i_pow(p.y_count() as i32);
            let xm = p.x_mask() as usize;
            let zm = p.z_mask();
            let mut acc = Complex64::ZERO;
            for (b, amp) in self.amps.iter().enumerate() {
                if amp.norm_sqr() == 0.0 {
                    continue;
                }
                let sign = if (zm & b as u64).count_ones() % 2 == 0 { 1.0 } else { -1.0 };
                acc += self.amps[b ^ xm].conj() * (base * sign * *amp);
            }
            total += *c * acc;
        }
        total
    }

    /// Measurement probabilities in the computational basis.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Samples `shots` computational-basis outcomes.
    pub fn sample(&self, rng: &mut impl rand::Rng, shots: usize) -> Vec<u64> {
        let probs = self.probabilities();
        let mut cumulative = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for p in probs {
            acc += p;
            cumulative.push(acc);
        }
        (0..shots)
            .map(|_| {
                let r: f64 = rng.gen::<f64>() * acc;
                cumulative.partition_point(|&c| c < r) as u64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn op(s: &str) -> PauliOp {
        s.parse().unwrap()
    }

    #[test]
    fn zero_state_probabilities() {
        let s = Statevector::zero_state(3);
        assert_eq!(s.amplitude(0), Complex64::ONE);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn x_flips() {
        let mut c = Circuit::new(2);
        c.x(1);
        let s = Statevector::from_circuit(&c);
        assert_eq!(s.amplitude(0b10), Complex64::ONE);
    }

    #[test]
    fn bell_state_correlations() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = Statevector::from_circuit(&c);
        assert!((s.expectation(&op("XX")).re - 1.0).abs() < 1e-12);
        assert!((s.expectation(&op("ZZ")).re - 1.0).abs() < 1e-12);
        assert!((s.expectation(&op("YY")).re + 1.0).abs() < 1e-12);
        assert!(s.expectation(&op("ZI")).re.abs() < 1e-12);
    }

    #[test]
    fn ry_rotation_expectation_curve() {
        // ⟨Z⟩ after Ry(θ)|0⟩ is cos θ; ⟨X⟩ is sin θ.
        for &theta in &[0.3, 1.2, 2.8, -0.7] {
            let mut c = Circuit::new(1);
            c.ry(0, theta);
            let s = Statevector::from_circuit(&c);
            assert!((s.expectation(&op("Z")).re - theta.cos()).abs() < 1e-12);
            assert!((s.expectation(&op("X")).re - theta.sin()).abs() < 1e-12);
        }
    }

    #[test]
    fn microbenchmark_xx_curve() {
        // The paper's Fig. 5 system: Ry(θ) on q0 then CX gives ⟨XX⟩ = sin θ.
        for &theta in &[0.0, FRAC_PI_2, PI, 4.0] {
            let mut c = Circuit::new(2);
            c.ry(0, theta).cx(0, 1);
            let s = Statevector::from_circuit(&c);
            assert!((s.expectation(&op("XX")).re - theta.sin()).abs() < 1e-12, "theta={theta}");
        }
    }

    #[test]
    fn global_phase_invisible_in_expectations() {
        let mut c1 = Circuit::new(1);
        c1.z(0).x(0).z(0).x(0); // = -I
        let s = Statevector::from_circuit(&c1);
        assert!((s.amplitude(0) - Complex64::new(-1.0, 0.0)).norm() < 1e-12);
        assert!((s.expectation(&op("Z")).re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rz_phases_basis_states() {
        let mut c = Circuit::new(1);
        c.x(0).rz(0, FRAC_PI_2);
        let s = Statevector::from_circuit(&c);
        let expect = Complex64::from_polar(1.0, FRAC_PI_2 / 2.0);
        assert!(s.amplitude(1).approx_eq(expect, 1e-12));
    }

    #[test]
    fn cz_is_symmetric() {
        let mut c1 = Circuit::new(2);
        c1.h(0).h(1).cz(0, 1);
        let mut c2 = Circuit::new(2);
        c2.h(0).h(1).cz(1, 0);
        let s1 = Statevector::from_circuit(&c1);
        let s2 = Statevector::from_circuit(&c2);
        assert!((s1.inner(&s2).re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_circuit_returns_to_zero() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(2, 0.9).s(1).cx(1, 2).rz(0, -0.4);
        let mut s = Statevector::from_circuit(&c);
        s.apply_circuit(&c.inverse());
        assert!((s.amplitude(0).norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut c = Circuit::new(1);
        c.h(0);
        let s = Statevector::from_circuit(&c);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let samples = s.sample(&mut rng, 4000);
        let ones = samples.iter().filter(|&&b| b == 1).count();
        assert!((ones as f64 / 4000.0 - 0.5).abs() < 0.05);
    }
}
