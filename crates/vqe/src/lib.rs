//! Variational quantum eigensolver tuning loop (the paper's blue box).
//!
//! After CAFQA picks a Clifford initialization classically, traditional
//! VQA tuning explores the continuous parameter space on a (noisy)
//! quantum device (paper §3 step 10, Fig. 14). This crate provides that
//! loop: an SPSA optimizer over rotation angles, running against either
//! the ideal statevector backend or a noisy density-matrix backend.

#![warn(missing_docs)]

use cafqa_circuit::{Ansatz, Circuit};
use cafqa_pauli::PauliOp;
use cafqa_sim::{NoiseModel, Statevector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An energy-evaluation backend for VQE.
pub trait EnergyBackend {
    /// Expectation `⟨ψ(θ)|H|ψ(θ)⟩` for the bound circuit.
    fn energy(&self, circuit: &Circuit, hamiltonian: &PauliOp) -> f64;
    /// Human-readable backend name.
    fn name(&self) -> &str;
}

/// Noise-free statevector evaluation (the "ideal machine").
#[derive(Debug, Clone, Default)]
pub struct IdealBackend;

impl EnergyBackend for IdealBackend {
    fn energy(&self, circuit: &Circuit, hamiltonian: &PauliOp) -> f64 {
        Statevector::from_circuit(circuit).expectation(hamiltonian).re
    }
    fn name(&self) -> &str {
        "ideal"
    }
}

/// Noisy density-matrix evaluation under a device [`NoiseModel`].
#[derive(Debug, Clone)]
pub struct NoisyBackend {
    /// The device noise model.
    pub model: NoiseModel,
}

impl EnergyBackend for NoisyBackend {
    fn energy(&self, circuit: &Circuit, hamiltonian: &PauliOp) -> f64 {
        self.model.expectation(circuit, hamiltonian)
    }
    fn name(&self) -> &str {
        &self.model.name
    }
}

/// SPSA hyperparameters (Spall's standard gain schedules).
#[derive(Debug, Clone)]
pub struct SpsaOptions {
    /// Number of iterations.
    pub iterations: usize,
    /// Initial step-size numerator `a`.
    pub a: f64,
    /// Initial perturbation size `c`.
    pub c: f64,
    /// Step-size decay exponent (0.602 per Spall).
    pub alpha: f64,
    /// Perturbation decay exponent (0.101 per Spall).
    pub gamma: f64,
    /// Stability constant `A` (≈ 10% of iterations).
    pub big_a: f64,
    /// RNG seed for the Rademacher perturbations.
    pub seed: u64,
}

impl Default for SpsaOptions {
    fn default() -> Self {
        SpsaOptions {
            iterations: 300,
            a: 0.15,
            c: 0.12,
            alpha: 0.602,
            gamma: 0.101,
            big_a: 30.0,
            seed: 0x5B5A,
        }
    }
}

/// The outcome of one VQE run.
#[derive(Debug, Clone)]
pub struct VqeResult {
    /// Final parameters.
    pub parameters: Vec<f64>,
    /// Final energy (at the final parameters).
    pub energy: f64,
    /// Best energy observed during tuning.
    pub best_energy: f64,
    /// Energy at the current iterate per iteration — Fig. 14's y-axis.
    pub trace: Vec<f64>,
}

impl VqeResult {
    /// First iteration (1-based) whose trace energy is within `tol` of
    /// `target`, or `None`. This is the convergence-speed metric behind
    /// the paper's "2.5× faster" claim.
    pub fn iterations_to_reach(&self, target: f64, tol: f64) -> Option<usize> {
        self.trace.iter().position(|&e| e <= target + tol).map(|i| i + 1)
    }
}

/// Runs SPSA minimization of `⟨H⟩` starting from `initial` angles.
///
/// Each iteration uses two objective evaluations for the gradient
/// estimate plus one for the recorded trace.
///
/// # Panics
///
/// Panics if `initial.len() != ansatz.num_parameters()`.
pub fn run_vqe(
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    initial: &[f64],
    backend: &dyn EnergyBackend,
    opts: &SpsaOptions,
) -> VqeResult {
    assert_eq!(initial.len(), ansatz.num_parameters(), "initial parameter count mismatch");
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut theta: Vec<f64> = initial.to_vec();
    let mut trace = Vec::with_capacity(opts.iterations);
    let mut best = f64::INFINITY;
    let mut best_theta = theta.clone();
    let eval = |t: &[f64]| backend.energy(&ansatz.bind(t), hamiltonian);
    for k in 0..opts.iterations {
        let current = eval(&theta);
        trace.push(current);
        if current < best {
            best = current;
            best_theta = theta.clone();
        }
        let ak = opts.a / (k as f64 + 1.0 + opts.big_a).powf(opts.alpha);
        let ck = opts.c / (k as f64 + 1.0).powf(opts.gamma);
        let delta: Vec<f64> =
            (0..theta.len()).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect();
        let plus: Vec<f64> = theta.iter().zip(&delta).map(|(t, d)| t + ck * d).collect();
        let minus: Vec<f64> = theta.iter().zip(&delta).map(|(t, d)| t - ck * d).collect();
        let g = (eval(&plus) - eval(&minus)) / (2.0 * ck);
        for (t, d) in theta.iter_mut().zip(&delta) {
            *t -= ak * g * d;
        }
    }
    let energy = eval(&theta);
    if energy > best {
        // Return the best iterate rather than a late noisy step.
        theta = best_theta;
    }
    let final_energy = eval(&theta);
    VqeResult {
        parameters: theta,
        energy: final_energy,
        best_energy: best.min(final_energy),
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafqa_circuit::EfficientSu2;

    fn xx() -> PauliOp {
        "XX".parse().unwrap()
    }

    #[test]
    fn spsa_finds_xx_minimum_from_zero() {
        let ansatz = EfficientSu2::new(2, 1);
        let initial = vec![0.05; ansatz.num_parameters()];
        let opts = SpsaOptions { iterations: 400, ..Default::default() };
        let result = run_vqe(&ansatz, &xx(), &initial, &IdealBackend, &opts);
        assert!(result.best_energy < -0.95, "best {}", result.best_energy);
    }

    #[test]
    fn good_initialization_converges_faster() {
        // Start at the known optimum vs a flat start: the optimum start
        // reaches −0.99 immediately.
        let ansatz = EfficientSu2::new(2, 1);
        let mut good = vec![0.0; 8];
        good[0] = 3.0 * std::f64::consts::FRAC_PI_2;
        let opts = SpsaOptions { iterations: 60, ..Default::default() };
        let from_good = run_vqe(&ansatz, &xx(), &good, &IdealBackend, &opts);
        let from_flat = run_vqe(&ansatz, &xx(), &[0.0; 8], &IdealBackend, &opts);
        let good_hit = from_good.iterations_to_reach(-0.99, 0.05);
        let flat_hit = from_flat.iterations_to_reach(-0.99, 0.05);
        assert_eq!(good_hit, Some(1), "good start is already converged");
        assert!(flat_hit.map_or(true, |k| k > 1));
    }

    #[test]
    fn noisy_backend_floor_is_above_ideal() {
        let ansatz = EfficientSu2::new(2, 1);
        let mut good = vec![0.0; 8];
        good[0] = 3.0 * std::f64::consts::FRAC_PI_2;
        let opts = SpsaOptions { iterations: 120, ..Default::default() };
        let ideal = run_vqe(&ansatz, &xx(), &good, &IdealBackend, &opts);
        let noisy = run_vqe(
            &ansatz,
            &xx(),
            &good,
            &NoisyBackend { model: NoiseModel::manhattan_class() },
            &opts,
        );
        assert!(noisy.best_energy > ideal.best_energy + 0.05);
    }

    #[test]
    fn trace_has_one_entry_per_iteration() {
        let ansatz = EfficientSu2::new(2, 0);
        let opts = SpsaOptions { iterations: 25, ..Default::default() };
        let result = run_vqe(&ansatz, &xx(), &[0.3; 4], &IdealBackend, &opts);
        assert_eq!(result.trace.len(), 25);
    }

    #[test]
    fn iterations_to_reach_none_when_unreachable() {
        let ansatz = EfficientSu2::new(2, 0);
        let opts = SpsaOptions { iterations: 10, ..Default::default() };
        let result = run_vqe(&ansatz, &xx(), &[0.0; 4], &IdealBackend, &opts);
        assert_eq!(result.iterations_to_reach(-5.0, 1e-3), None);
    }
}
