//! Tableau-backed Clifford+T branch ensemble (paper §8, beyond 20 qubits).
//!
//! [`crate::CliffordTState`] evaluates the `2^t` Clifford branches of a
//! Clifford+T circuit by summing dense statevectors — exact, but capped at
//! [`cafqa_sim::MAX_DENSE_QUBITS`] qubits. This module removes that cap:
//! the ensemble keeps **one** stabilizer tableau plus `t` *frame* Paulis
//! and recovers every branch (and every `O(4^t)` cross term) analytically.
//!
//! The identity behind it: a branch circuit differs from the branch-free
//! base circuit only by Pauli insertions, and a Pauli commuted through the
//! Clifford suffix `S_j` after its insertion point stays a signed Pauli
//! `R_j = S_j P_j S_j†`. Hence
//!
//! ```text
//! |φ_a⟩ = R_t^{a_t} ⋯ R_1^{a_1} |φ_0⟩,        a ∈ {0,1}^t,
//! ```
//!
//! with `|φ_0⟩` the base stabilizer state. Every subset product
//! `S_a = Π_{j∈a} R_j` is again `i^{k_a}` times a Hermitian Pauli
//! `P(sx_a, sz_a)`, so each cross term collapses to one signed-Pauli
//! expectation on the base tableau:
//!
//! ```text
//! ⟨φ_a|P|φ_b⟩ = i^{K_ab} · ⟨φ_0| P(px ⊕ sx_a ⊕ sx_b, pz ⊕ sz_a ⊕ sz_b) |φ_0⟩,
//! ```
//!
//! which [`Tableau::expectation_masks`] answers in `{+1, 0, −1}`. Pairs
//! are grouped by the XOR class `c = a ⊕ b` (the mask above depends only
//! on `c`), so a vanishing base expectation skips `2^{t−1}` pairs at once.
//!
//! Global phases — the Clifford-lowering phases and the `e^{±iπ/8}` of
//! `T`/`T†` — multiply every branch equally and cancel in expectations,
//! so they are never tracked.

use std::ops::Range;

use cafqa_circuit::Circuit;
use cafqa_circuit::{eighth_angle, CliffordAngle, CompiledAnsatz, Gate, RotationAxis, TemplateOp};
use cafqa_linalg::Complex64;
use cafqa_pauli::{phase_exponent, PauliOp};

use crate::clifford_t::{CliffordTError, MAX_BRANCH_GATES};
use crate::tableau::{conjugate_rows, conjugate_rows_rotation, Row, Tableau};

/// `i^k` for `k ∈ 0..4`.
const I_POW: [Complex64; 4] = [
    Complex64 { re: 1.0, im: 0.0 },
    Complex64 { re: 0.0, im: 1.0 },
    Complex64 { re: -1.0, im: 0.0 },
    Complex64 { re: 0.0, im: -1.0 },
];

/// The per-mask subset products of a [`BranchEnsemble`], precomputed once
/// and shared by every Pauli-term evaluation of the same state.
///
/// For each branch mask `a`, `S_a = Π_{j∈a} R_j = i^{k[a]} · P(sx[a], sz[a])`
/// with `P` Hermitian, and `w[a]` is the branch amplitude
/// `Π_j (a_j ? −i·sin(θ_j/2) : cos(θ_j/2))`.
#[derive(Debug, Clone)]
pub struct BranchFrames {
    sx: Vec<u64>,
    sz: Vec<u64>,
    k: Vec<u8>,
    w: Vec<Complex64>,
    bound: Vec<f64>,
}

impl BranchFrames {
    /// Number of branches `2^t` (equivalently, of XOR classes).
    #[inline]
    pub fn num_branches(&self) -> usize {
        self.w.len()
    }

    /// The quadratic-Clifford magnitude bound of XOR class `c`:
    /// `|Σ_{a⊕b=c} conj(w_a)·w_b·⟨φ_a|P|φ_b⟩| ≤ Π_{j∈c} |sin θ_j|`
    /// for **any** Pauli `P` (amplitude product summed over the class,
    /// with `|⟨φ_a|P|φ_b⟩| ≤ 1`). For `±π/4` branch angles (`T`/`T†`)
    /// every factor is `1/√2`, so the bound is `2^{-ν(c)/2}` with `ν(c)`
    /// the overlap rank (popcount) of the class — the stabilizer-overlap
    /// decay of the quadratic Clifford expansion (arXiv 2011.09927).
    ///
    /// Cached at [`BranchEnsemble::frames`] time via the same
    /// lowest-set-bit recursion as the subset products, so a screen
    /// query is one array read instead of a phase-sensitive inner
    /// product. Strictly positive: a branch angle with `sin θ = 0`
    /// would be an on-grid (Clifford) rotation and never opens a frame.
    #[inline]
    pub fn class_bound(&self, c: usize) -> f64 {
        self.bound[c]
    }
}

/// The result of a [`BranchEnsemble::pair_sum_screened`] fold: the sum
/// over the surviving classes plus what the bound screen dropped.
///
/// `|pair_sum − sum| ≤ skipped_mass` always (each skipped class
/// contributes at most its [`BranchFrames::class_bound`]), so the caller
/// can turn the reported mass into a rigorous per-term error bound.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScreenedSum {
    /// The pair sum over classes whose bound cleared the tolerance.
    pub sum: f64,
    /// Number of classes skipped by the bound screen.
    pub skipped_classes: usize,
    /// Total class-bound mass of the skipped classes.
    pub skipped_mass: f64,
}

/// A Clifford+T state held as a base stabilizer tableau plus suffix-
/// conjugated branch frames — the stabilizer-rank backend of the CAFQA+kT
/// search, exact at any width the tableau supports (≤ 64 qubits).
///
/// Mirrors the [`Tableau`] compiled-template API (`run_compiled` /
/// `run_compiled_prefix` / `apply_range` / `copy_from`) so the incremental
/// polish kernel carries over unchanged, with eighth-turn configurations
/// (`k·π/4`; odd `k` opens a branch) instead of quarter-turn ones.
///
/// # Examples
///
/// ```
/// use cafqa_circuit::Circuit;
/// use cafqa_clifford::BranchEnsemble;
///
/// let mut c = Circuit::new(1);
/// c.h(0).t(0);
/// let e = BranchEnsemble::from_circuit(&c).unwrap();
/// let x = e.expectation(&"X".parse().unwrap());
/// assert!((x - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BranchEnsemble {
    base: Tableau,
    /// Frame Paulis `R_j = S_j P_j S_j†`, in branch-point order.
    frames: Vec<Row>,
    /// `(cos(θ_j/2), sin(θ_j/2))` per branch point.
    half_weights: Vec<(f64, f64)>,
}

impl BranchEnsemble {
    /// The branch-free `|0…0⟩` state.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 64` (the tableau width limits).
    pub fn zero_state(n: usize) -> Self {
        BranchEnsemble {
            base: Tableau::zero_state(n),
            frames: Vec::new(),
            half_weights: Vec::new(),
        }
    }

    /// Prepares the state of a Clifford+T circuit (`T`/`T†` and rotations
    /// off the π/2 grid become branch points; everything else is applied
    /// as Clifford).
    ///
    /// # Errors
    ///
    /// Returns [`CliffordTError::TooManyBranches`] when the circuit has
    /// more than [`MAX_BRANCH_GATES`] non-Clifford gates.
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, CliffordTError> {
        let mut e = BranchEnsemble::zero_state(circuit.num_qubits());
        let (gates, _phase) = circuit.to_clifford_t_gates();
        for g in &gates {
            e.apply_gate(g)?;
        }
        Ok(e)
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.base.num_qubits()
    }

    /// Number of branch points opened so far.
    #[inline]
    pub fn t_count(&self) -> usize {
        self.frames.len()
    }

    /// Number of Clifford branches, `2^t`.
    #[inline]
    pub fn num_branches(&self) -> usize {
        1usize << self.frames.len()
    }

    /// Applies one gate: Clifford gates (including on-grid rotations)
    /// advance the base tableau and conjugate every open frame; `T`/`T†`
    /// and off-grid rotations open a new branch point.
    fn apply_gate(&mut self, gate: &Gate) -> Result<(), CliffordTError> {
        match *gate {
            Gate::T(q) => self.push_branch(RotationAxis::Z, q, eighth_angle(1)),
            Gate::Tdg(q) => self.push_branch(RotationAxis::Z, q, eighth_angle(7)),
            Gate::Rx { qubit, theta } => self.apply_rotation(RotationAxis::X, qubit, theta),
            Gate::Ry { qubit, theta } => self.apply_rotation(RotationAxis::Y, qubit, theta),
            Gate::Rz { qubit, theta } => self.apply_rotation(RotationAxis::Z, qubit, theta),
            ref clifford => {
                self.base.apply_primitive(clifford);
                conjugate_rows(&mut self.frames, clifford);
                Ok(())
            }
        }
    }

    /// An on-grid rotation conjugates; an off-grid one branches.
    fn apply_rotation(
        &mut self,
        axis: RotationAxis,
        qubit: usize,
        theta: f64,
    ) -> Result<(), CliffordTError> {
        match CliffordAngle::from_radians(theta) {
            Some(angle) => {
                self.base.apply_rotation(axis, qubit, angle);
                conjugate_rows_rotation(&mut self.frames, axis, qubit, angle);
                Ok(())
            }
            None => self.push_branch(axis, qubit, theta),
        }
    }

    /// Opens a branch point for the rotation `R_P(θ) = cos(θ/2)·I −
    /// i·sin(θ/2)·P`: the frame starts as the bare Pauli (its Clifford
    /// suffix is still empty) and is conjugated by every later gate.
    fn push_branch(
        &mut self,
        axis: RotationAxis,
        qubit: usize,
        theta: f64,
    ) -> Result<(), CliffordTError> {
        if self.frames.len() >= MAX_BRANCH_GATES {
            return Err(CliffordTError::TooManyBranches { count: self.frames.len() + 1 });
        }
        let m = 1u64 << qubit;
        let (x, z) = match axis {
            RotationAxis::X => (m, 0),
            RotationAxis::Y => (m, m),
            RotationAxis::Z => (0, m),
        };
        self.frames.push(Row { x, z, sign: false });
        let half = theta / 2.0;
        self.half_weights.push((half.cos(), half.sin()));
        Ok(())
    }

    /// Re-prepares the state as a compiled template bound to an
    /// *eighth-turn* configuration, in place: even indices are Clifford
    /// rotations, odd indices and [`TemplateOp::Branch`] markers open
    /// branch points. Equivalent to
    /// `BranchEnsemble::from_circuit(&template.to_circuit_eighth(config))`
    /// without the per-candidate lowering or circuit allocation.
    ///
    /// # Errors
    ///
    /// Returns [`CliffordTError::TooManyBranches`] past the branch budget
    /// (the state is left partially prepared; re-run before reuse).
    ///
    /// # Panics
    ///
    /// Panics if the template width differs from the ensemble width or if
    /// `config` has the wrong length.
    pub fn run_compiled(
        &mut self,
        template: &CompiledAnsatz,
        config: &[usize],
    ) -> Result<(), CliffordTError> {
        self.run_compiled_prefix(template, config, template.ops().len())
    }

    /// Prepares the *prefix* state: `|0…0⟩`, then template ops `0..end`
    /// only — the checkpoint half of the incremental polish kernel,
    /// extended across the T-gate frontier (a prefix may already hold
    /// open branch frames; the suffix conjugates them like any other
    /// state).
    ///
    /// # Errors / Panics
    ///
    /// As for [`Self::run_compiled`], plus a panic if
    /// `end > template.ops().len()`.
    pub fn run_compiled_prefix(
        &mut self,
        template: &CompiledAnsatz,
        config: &[usize],
        end: usize,
    ) -> Result<(), CliffordTError> {
        self.base.reset_zero();
        self.frames.clear();
        self.half_weights.clear();
        self.apply_range(template, config, 0, end)
    }

    /// Replays template ops `start..end` on the current state, with no
    /// reset — the delta half of the incremental kernel. Prefix + suffix
    /// is the same op sequence as a full [`Self::run_compiled`], so the
    /// resulting ensemble is bit-identical (same base tableau, same
    /// frames, same weights).
    ///
    /// # Errors / Panics
    ///
    /// As for [`Self::run_compiled`], plus a panic if `start..end` is not
    /// a valid range into `template.ops()`.
    pub fn apply_range(
        &mut self,
        template: &CompiledAnsatz,
        config: &[usize],
        start: usize,
        end: usize,
    ) -> Result<(), CliffordTError> {
        assert_eq!(template.num_qubits(), self.num_qubits(), "template width mismatch");
        assert_eq!(config.len(), template.num_parameters(), "config length mismatch");
        for op in &template.ops()[start..end] {
            match *op {
                TemplateOp::Fixed(ref g) => {
                    self.base.apply_primitive(g);
                    conjugate_rows(&mut self.frames, g);
                }
                TemplateOp::Rotation { axis, qubit, param } => {
                    let k = config[param] % 8;
                    if k % 2 == 0 {
                        let angle = CliffordAngle::from_index(k / 2);
                        self.base.apply_rotation(axis, qubit, angle);
                        conjugate_rows_rotation(&mut self.frames, axis, qubit, angle);
                    } else {
                        self.push_branch(axis, qubit, eighth_angle(k))?;
                    }
                }
                TemplateOp::Branch { axis, qubit, eighths } => {
                    self.push_branch(axis, qubit, eighth_angle(eighths))?;
                }
            }
        }
        Ok(())
    }

    /// Copies another ensemble's state into this one, reusing storage —
    /// the checkpoint-restore of the incremental polish kernel.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn copy_from(&mut self, src: &BranchEnsemble) {
        self.base.copy_from(&src.base);
        self.frames.clone_from(&src.frames);
        self.half_weights.clone_from(&src.half_weights);
    }

    /// Precomputes the subset products `S_a` for every branch mask, via
    /// the lowest-set-bit recursion `S_a = S_{a∖low} · R_low` (`R_low`
    /// rightmost: lower-indexed branch points act first). `O(t·2^t)`
    /// time, done once per prepared state and reused across all Pauli
    /// terms.
    pub fn frames(&self) -> BranchFrames {
        let t = self.frames.len();
        let size = 1usize << t;
        let mut sx = vec![0u64; size];
        let mut sz = vec![0u64; size];
        let mut k = vec![0u8; size];
        let mut w = vec![Complex64::ZERO; size];
        // Per-class screen bounds Π_{j∈c} |sin θ_j| (2·|cos(θ/2)·sin(θ/2)|
        // per branch point), built by the same recursion as the products.
        let mut bound = vec![1.0f64; size];
        for a in 1..size {
            let low = a.trailing_zeros() as usize;
            let rest = a & (a - 1);
            let f = self.frames[low];
            let e = i32::from(k[rest])
                + phase_exponent(sx[rest], sz[rest], f.x, f.z)
                + if f.sign { 2 } else { 0 };
            sx[a] = sx[rest] ^ f.x;
            sz[a] = sz[rest] ^ f.z;
            k[a] = e.rem_euclid(4) as u8;
            let (cos_half, sin_half) = self.half_weights[low];
            bound[a] = bound[rest] * 2.0 * (cos_half * sin_half).abs();
        }
        for (a, slot) in w.iter_mut().enumerate() {
            let mut wa = Complex64::ONE;
            for (j, &(cos_half, sin_half)) in self.half_weights.iter().enumerate() {
                wa *= if (a >> j) & 1 == 1 {
                    Complex64::new(0.0, -sin_half)
                } else {
                    Complex64::new(cos_half, 0.0)
                };
            }
            *slot = wa;
        }
        BranchFrames { sx, sz, k, w, bound }
    }

    /// One XOR class of the branch-pair sum: `eps_c · Σ_{a⊕b=c} …` with
    /// `eps_c` the base-tableau expectation of the class-shifted Pauli.
    /// Shared verbatim by [`Self::pair_sum`] and
    /// [`Self::pair_sum_screened`], so the two fold bit-identical class
    /// values (a vanishing `eps` returns exactly `0.0`, which leaves any
    /// accumulator's bits unchanged).
    fn class_sum(&self, frames: &BranchFrames, px: u64, pz: u64, c: usize) -> f64 {
        let size = frames.w.len();
        let eps = self.base.expectation_masks(px ^ frames.sx[c], pz ^ frames.sz[c]);
        if eps == 0 {
            return 0.0;
        }
        let eps = f64::from(eps);
        if c == 0 {
            // Diagonal class: ⟨φ_a|P|φ_a⟩ = ±eps with the sign from
            // conjugating P by the (Hermitian) subset product S_a.
            let mut diag = 0.0;
            for a in 0..size {
                let e1 = phase_exponent(frames.sx[a], frames.sz[a], px, pz);
                let e2 = phase_exponent(
                    frames.sx[a] ^ px,
                    frames.sz[a] ^ pz,
                    frames.sx[a],
                    frames.sz[a],
                );
                let kk = (e1 + e2).rem_euclid(4);
                debug_assert!(kk % 2 == 0, "diagonal cross term acquired an odd i power");
                let sign = if kk == 0 { 1.0 } else { -1.0 };
                diag += frames.w[a].norm_sqr() * sign;
            }
            eps * diag
        } else {
            // Each unordered pair {a, b = a⊕c} appears once: fix the
            // top set bit of c clear in a (so b has it set, b > a) and
            // fold both orientations via 2·Re(conj(w_a)·w_b·i^K).
            let high = 1usize << (usize::BITS - 1 - c.leading_zeros());
            let mut cls = 0.0;
            for a in 0..size {
                if a & high != 0 {
                    continue;
                }
                let b = a ^ c;
                let e1 = phase_exponent(frames.sx[a], frames.sz[a], px, pz);
                let e2 = phase_exponent(
                    frames.sx[a] ^ px,
                    frames.sz[a] ^ pz,
                    frames.sx[b],
                    frames.sz[b],
                );
                let kk = (i32::from(frames.k[b]) - i32::from(frames.k[a]) + e1 + e2).rem_euclid(4)
                    as usize;
                let z = frames.w[a].conj() * frames.w[b] * I_POW[kk];
                cls += 2.0 * z.re;
            }
            eps * cls
        }
    }

    /// The branch-pair sum `Σ_{a⊕b ∈ classes} conj(w_a)·w_b·⟨φ_a|P|φ_b⟩`
    /// of one Pauli term over a contiguous range of XOR classes — the
    /// shardable kernel behind [`Self::expectation`]. Each call is a pure
    /// function of `(state, term, range)`, so partial sums over a *fixed*
    /// chunking of `0..2^t`, folded in a fixed order, are reproducible at
    /// any worker count (chunk boundaries, not worker count, decide the
    /// f64 association).
    ///
    /// One base-tableau expectation decides each class: if
    /// `⟨φ_0|P(px⊕sx_c, pz⊕sz_c)|φ_0⟩ = 0`, all `2^{t−1}` pairs of the
    /// class vanish together.
    pub fn pair_sum(&self, frames: &BranchFrames, px: u64, pz: u64, classes: Range<usize>) -> f64 {
        debug_assert!(classes.end <= frames.w.len(), "class range beyond 2^t");
        let mut acc = 0.0;
        for c in classes {
            acc += self.class_sum(frames, px, pz, c);
        }
        acc
    }

    /// [`Self::pair_sum`] behind the quadratic-Clifford bound screen:
    /// folds only the classes whose [`BranchFrames::class_bound`] exceeds
    /// `tol`, and reports the skipped classes and their total bound mass
    /// alongside the sum. The true discarded contribution is at most
    /// [`ScreenedSum::skipped_mass`], so
    /// `|pair_sum − pair_sum_screened.sum| ≤ skipped_mass`.
    ///
    /// `tol = 0.0` skips nothing (bounds are strictly positive) and is
    /// **bit-identical** to [`Self::pair_sum`] on any class range — the
    /// surviving classes fold through the same per-class kernel in the
    /// same order. Partial sums over a fixed chunking of the class range
    /// compose exactly as for `pair_sum`: per-chunk `sum`s fold to the
    /// full-range result up to f64 association, and `skipped_classes`
    /// counts add exactly.
    pub fn pair_sum_screened(
        &self,
        frames: &BranchFrames,
        px: u64,
        pz: u64,
        classes: Range<usize>,
        tol: f64,
    ) -> ScreenedSum {
        debug_assert!(classes.end <= frames.w.len(), "class range beyond 2^t");
        let mut out = ScreenedSum::default();
        for c in classes {
            let bound = frames.bound[c];
            if bound <= tol {
                out.skipped_classes += 1;
                out.skipped_mass += bound;
                continue;
            }
            out.sum += self.class_sum(frames, px, pz, c);
        }
        out
    }

    /// Expectation value of a Pauli-sum operator, cross terms included:
    /// `Σ_k c_k Σ_{a,b} conj(w_a)·w_b·⟨φ_a|P_k|φ_b⟩`. Matches
    /// [`crate::CliffordTState::expectation`] wherever the dense backend
    /// can run, and keeps working beyond its qubit cap.
    pub fn expectation(&self, op: &PauliOp) -> f64 {
        assert_eq!(op.num_qubits(), self.num_qubits(), "operator width mismatch");
        let frames = self.frames();
        let classes = frames.num_branches();
        op.iter()
            .map(|(p, c)| c.re * self.pair_sum(&frames, p.x_mask(), p.z_mask(), 0..classes))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CliffordTState;
    use std::f64::consts::FRAC_1_SQRT_2;

    fn op(s: &str) -> PauliOp {
        s.parse().unwrap()
    }

    #[test]
    fn single_t_gate_exact_values() {
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let e = BranchEnsemble::from_circuit(&c).unwrap();
        assert_eq!(e.t_count(), 1);
        assert_eq!(e.num_branches(), 2);
        assert!((e.expectation(&op("X")) - FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((e.expectation(&op("Y")) - FRAC_1_SQRT_2).abs() < 1e-12);
        assert!(e.expectation(&op("Z")).abs() < 1e-12);
    }

    #[test]
    fn clifford_only_matches_plain_tableau() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).s(1).ry(2, std::f64::consts::PI).cz(1, 2);
        let e = BranchEnsemble::from_circuit(&c).unwrap();
        assert_eq!(e.t_count(), 0);
        let t = Tableau::from_circuit(&c).unwrap();
        for h in ["ZZZ", "XXI", "0.3*YYX - 0.2*IZZ"] {
            let h = op(h);
            assert!((e.expectation(&h) - t.expectation(&h)).abs() < 1e-12, "{h}");
        }
    }

    #[test]
    fn multi_t_circuit_matches_dense_backend() {
        let mut c = Circuit::new(3);
        c.h(0).t(0).cx(0, 1).ry(2, 1.1).t(1).cx(1, 2).rz(2, 0.4).push(Gate::Tdg(2)).h(1);
        let e = BranchEnsemble::from_circuit(&c).unwrap();
        let dense = CliffordTState::from_circuit(&c).unwrap();
        assert_eq!(e.t_count(), 5);
        for h in ["ZZZ", "XIY", "0.3*XXI + 0.2*IZZ - 0.1*YYY", "ZII + IZI + IIZ"] {
            let h = op(h);
            let a = dense.expectation(&h);
            let b = e.expectation(&h);
            assert!((a - b).abs() < 1e-10, "{h}: dense {a} vs ensemble {b}");
        }
    }

    #[test]
    fn works_beyond_the_dense_qubit_cap() {
        // 30 qubits: CliffordTState refuses, the ensemble answers exactly.
        let n = 30;
        let single = |q: usize, p: cafqa_pauli::Pauli| {
            PauliOp::from_terms(n, [(Complex64::ONE, cafqa_pauli::PauliString::single(n, q, p))])
        };
        // A lone T on a wide register first: ⟨X_0⟩ = cos(π/4) exercises
        // the |w_a|² magnitudes at full width.
        let mut lone = Circuit::new(n);
        lone.h(0).t(0);
        assert!(matches!(
            CliffordTState::from_circuit(&lone),
            Err(CliffordTError::TooManyQubits { .. })
        ));
        let e = BranchEnsemble::from_circuit(&lone).unwrap();
        assert!((e.expectation(&single(0, cafqa_pauli::Pauli::X)) - FRAC_1_SQRT_2).abs() < 1e-12);
        // Then a GHZ-like chain with T at both ends:
        // |ψ⟩ = (|0…0⟩ + i·|1…1⟩)/√2 up to global phase.
        let mut c = Circuit::new(n);
        c.h(0).t(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c.t(n - 1);
        let e = BranchEnsemble::from_circuit(&c).unwrap();
        assert_eq!(e.t_count(), 2);
        // Single-qubit coherences vanish; all-Z parity is +1 on both
        // basis components (0 and 30 ones are both even).
        assert!(e.expectation(&single(0, cafqa_pauli::Pauli::Z)).abs() < 1e-12);
        let all = (1u64 << n) - 1;
        let all_z = PauliOp::from_terms(
            n,
            [(Complex64::ONE, cafqa_pauli::PauliString::from_masks(n, 0, all))],
        );
        assert!((e.expectation(&all_z) - 1.0).abs() < 1e-12);
        // All-X flips between the components: ⟨X…X⟩ = Re(i) = 0, while
        // Y_0·X_1…X_29 rotates the relative phase onto the real axis:
        // ⟨Y_0 X…X⟩ = 2·Re(−i·conj(α)·β) = 1 for β = i·α.
        let all_x = PauliOp::from_terms(
            n,
            [(Complex64::ONE, cafqa_pauli::PauliString::from_masks(n, all, 0))],
        );
        assert!(e.expectation(&all_x).abs() < 1e-12);
        let y0_xrest = PauliOp::from_terms(
            n,
            [(Complex64::ONE, cafqa_pauli::PauliString::from_masks(n, all, 1))],
        );
        assert!((e.expectation(&y0_xrest) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn branch_budget_enforced() {
        let mut c = Circuit::new(1);
        for _ in 0..(MAX_BRANCH_GATES + 1) {
            c.t(0);
        }
        assert!(matches!(
            BranchEnsemble::from_circuit(&c),
            Err(CliffordTError::TooManyBranches { .. })
        ));
    }

    #[test]
    fn run_compiled_matches_from_circuit() {
        use cafqa_circuit::{Ansatz, EfficientSu2};
        let ansatz = EfficientSu2::new(3, 1);
        let template = CompiledAnsatz::compile_clifford_t(&ansatz).unwrap();
        let mut scratch = BranchEnsemble::zero_state(3);
        for config in [
            vec![0usize; 12],
            vec![6; 12],
            vec![1, 2, 3, 0, 4, 5, 6, 7, 0, 2, 4, 6],
            vec![0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 7, 0],
        ] {
            scratch.run_compiled(&template, &config).unwrap();
            let reference = BranchEnsemble::from_circuit(&ansatz.bind_eighth(&config)).unwrap();
            assert_eq!(scratch, reference, "{config:?}");
        }
    }

    #[test]
    fn prefix_plus_suffix_equals_full_run() {
        use cafqa_circuit::EfficientSu2;
        let ansatz = EfficientSu2::new(3, 1);
        let template = CompiledAnsatz::compile_clifford_t(&ansatz).unwrap();
        // Branches on both sides of the entangling ladder exercise frame
        // conjugation across the split.
        let config = vec![1usize, 2, 3, 0, 4, 5, 6, 7, 0, 3, 5, 6];
        let mut full = BranchEnsemble::zero_state(3);
        full.run_compiled(&template, &config).unwrap();
        for split in 0..=template.ops().len() {
            let mut pieced = BranchEnsemble::zero_state(3);
            pieced.run_compiled_prefix(&template, &config, split).unwrap();
            pieced.apply_range(&template, &config, split, template.ops().len()).unwrap();
            assert_eq!(pieced, full, "split at {split}");
        }
    }

    #[test]
    fn copy_from_restores_a_checkpoint() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1);
        let checkpoint = BranchEnsemble::from_circuit(&c).unwrap();
        let mut scratch = BranchEnsemble::zero_state(2);
        scratch.copy_from(&checkpoint);
        assert_eq!(scratch, checkpoint);
        scratch.apply_gate(&Gate::H(1)).unwrap();
        assert_ne!(scratch, checkpoint);
        scratch.copy_from(&checkpoint);
        assert_eq!(scratch, checkpoint);
    }

    #[test]
    fn class_bounds_match_the_overlap_rank_for_t_gates() {
        // All-T branch points: every factor is |sin(π/4)| = 1/√2, so the
        // cached bound is exactly 2^{-popcount(c)/2}.
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1).t(1).h(1).t(0);
        let e = BranchEnsemble::from_circuit(&c).unwrap();
        let frames = e.frames();
        for cls in 0..frames.num_branches() {
            let nu = cls.count_ones();
            let expected = FRAC_1_SQRT_2.powi(nu as i32);
            assert!(
                (frames.class_bound(cls) - expected).abs() < 1e-12,
                "class {cls}: bound {} vs 2^(-{nu}/2) = {expected}",
                frames.class_bound(cls)
            );
        }
        // And the bound really bounds each class contribution.
        for h in ["XY", "ZZ", "YI", "IX"] {
            let p = op(h);
            for (s, _) in p.iter() {
                for cls in 0..frames.num_branches() {
                    let v = e.pair_sum(&frames, s.x_mask(), s.z_mask(), cls..cls + 1);
                    assert!(
                        v.abs() <= frames.class_bound(cls) + 1e-12,
                        "{h} class {cls}: |{v}| above bound {}",
                        frames.class_bound(cls)
                    );
                }
            }
        }
    }

    #[test]
    fn screened_at_zero_tolerance_is_bit_identical() {
        let mut c = Circuit::new(3);
        c.h(0).t(0).cx(0, 1).ry(2, 1.1).t(1).cx(1, 2).rz(2, 0.4).push(Gate::Tdg(2)).h(1);
        let e = BranchEnsemble::from_circuit(&c).unwrap();
        let frames = e.frames();
        let n = frames.num_branches();
        for h in ["ZZZ", "XIY", "YYY", "IZZ"] {
            let p = op(h);
            for (s, _) in p.iter() {
                let exact = e.pair_sum(&frames, s.x_mask(), s.z_mask(), 0..n);
                let screened = e.pair_sum_screened(&frames, s.x_mask(), s.z_mask(), 0..n, 0.0);
                assert_eq!(exact.to_bits(), screened.sum.to_bits(), "{h}");
                assert_eq!(screened.skipped_classes, 0, "{h}");
                assert_eq!(screened.skipped_mass, 0.0, "{h}");
            }
        }
    }

    #[test]
    fn screened_error_stays_within_the_reported_mass() {
        let mut c = Circuit::new(3);
        c.h(0).t(0).cx(0, 1).ry(2, 0.9).t(1).cx(1, 2).t(2).h(1).rz(0, 2.2);
        let e = BranchEnsemble::from_circuit(&c).unwrap();
        let frames = e.frames();
        let n = frames.num_branches();
        for tol in [0.1, 0.4, 0.8, 2.0] {
            for h in ["ZZZ", "XIY", "YYY"] {
                let p = op(h);
                for (s, _) in p.iter() {
                    let exact = e.pair_sum(&frames, s.x_mask(), s.z_mask(), 0..n);
                    let scr = e.pair_sum_screened(&frames, s.x_mask(), s.z_mask(), 0..n, tol);
                    assert!(
                        (exact - scr.sum).abs() <= scr.skipped_mass + 1e-12,
                        "{h} tol {tol}: |{exact} - {}| above mass {}",
                        scr.sum,
                        scr.skipped_mass
                    );
                }
            }
            // At tol ≥ 1 every class (bound ≤ 1) is skipped.
            if tol >= 1.0 {
                let scr = e.pair_sum_screened(&frames, 0, 1, 0..n, tol);
                assert_eq!(scr.skipped_classes, n);
                assert_eq!(scr.sum, 0.0);
            }
        }
    }

    #[test]
    fn sharded_pair_sum_folds_to_the_full_range() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1).t(1).h(1).t(0);
        let e = BranchEnsemble::from_circuit(&c).unwrap();
        let frames = e.frames();
        let n = frames.num_branches();
        let p = op("XY + 0.5*ZZ");
        for (s, _) in p.iter() {
            let full = e.pair_sum(&frames, s.x_mask(), s.z_mask(), 0..n);
            // Repeating the same chunking is bit-reproducible; different
            // chunkings agree to rounding (f64 association differs).
            for chunk in [1usize, 3, 4] {
                let fold = |_: ()| {
                    let mut acc = 0.0;
                    let mut lo = 0;
                    while lo < n {
                        let hi = (lo + chunk).min(n);
                        acc += e.pair_sum(&frames, s.x_mask(), s.z_mask(), lo..hi);
                        lo = hi;
                    }
                    acc
                };
                let once = fold(());
                assert_eq!(once, fold(()), "chunk {chunk} not reproducible for {s}");
                assert!((once - full).abs() < 1e-12, "chunk {chunk} for {s}: {once} vs {full}");
            }
        }
    }
}
