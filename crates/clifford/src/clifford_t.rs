//! Beyond-Clifford simulation by branch decomposition (paper §8).
//!
//! Every Pauli rotation satisfies `R_P(θ) = cos(θ/2)·I − i·sin(θ/2)·P`
//! exactly (because `P² = I`), so a circuit with `t` non-Clifford rotations
//! expands into a sum of `2^t` Clifford circuits — the low-rank stabilizer
//! decomposition of Bravyi–Gosset specialized to rotation gates. CAFQA+kT
//! keeps `t ≤ k` small (`k ≤ 1` for H2, `k ≤ 4` for LiH in Fig. 16), so the
//! branch count stays tiny while the state escapes the stabilizer polytope.
//!
//! The cross terms `⟨φ_a|P|φ_b⟩` between different Clifford branches need a
//! *phase-sensitive* stabilizer backend; per DESIGN.md §4.4 the shipped
//! backend evaluates branches densely (exact for the ≤20-qubit systems of
//! Fig. 16), with the branch bookkeeping and coefficients kept exactly as
//! the stabilizer-rank method prescribes.

use std::f64::consts::FRAC_PI_4;

use cafqa_circuit::{Circuit, CliffordAngle, Gate};
use cafqa_linalg::Complex64;
use cafqa_pauli::PauliOp;
use cafqa_sim::Statevector;

/// Guard: at most this many non-Clifford rotations (`2^t` branches).
pub const MAX_BRANCH_GATES: usize = 12;

/// Error from the branch decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliffordTError {
    /// The circuit has more non-Clifford gates than [`MAX_BRANCH_GATES`].
    TooManyBranches {
        /// Number of non-Clifford gates found.
        count: usize,
    },
    /// The register is too wide for the dense branch backend.
    TooManyQubits {
        /// Register width.
        qubits: usize,
    },
}

impl std::fmt::Display for CliffordTError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliffordTError::TooManyBranches { count } => write!(
                f,
                "{count} non-Clifford gates exceed the {MAX_BRANCH_GATES}-gate branch budget"
            ),
            CliffordTError::TooManyQubits { qubits } => {
                write!(f, "{qubits} qubits exceed the dense branch backend limit")
            }
        }
    }
}

impl std::error::Error for CliffordTError {}

/// One element of the branch program.
#[derive(Debug, Clone, Copy)]
enum Element {
    /// A Clifford gate applied to every branch.
    Clifford(Gate),
    /// A branch point: identity with weight `cos(θ/2)` or the Pauli gate
    /// with weight `−i·sin(θ/2)`.
    Branch { pauli: Gate, cos_half: f64, sin_half: f64 },
}

/// The exact decomposition of a Clifford+rotations circuit into a weighted
/// sum of Clifford circuits.
#[derive(Debug, Clone)]
pub struct BranchDecomposition {
    n: usize,
    global: Complex64,
    elements: Vec<Element>,
    t_count: usize,
}

impl BranchDecomposition {
    /// Decomposes `circuit`. Clifford gates (including rotations on the
    /// π/2 grid) pass through; every other rotation or T gate becomes a
    /// branch point.
    ///
    /// # Errors
    ///
    /// Returns [`CliffordTError::TooManyBranches`] beyond the branch budget.
    pub fn new(circuit: &Circuit) -> Result<Self, CliffordTError> {
        let mut elements = Vec::with_capacity(circuit.num_gates());
        let mut global = Complex64::ONE;
        let mut t_count = 0usize;
        for g in circuit.gates() {
            match *g {
                Gate::T(q) => {
                    // T = e^{iπ/8} Rz(π/4).
                    global *= Complex64::from_polar(1.0, FRAC_PI_4 / 2.0);
                    elements.push(Element::Branch {
                        pauli: Gate::Z(q),
                        cos_half: (FRAC_PI_4 / 2.0).cos(),
                        sin_half: (FRAC_PI_4 / 2.0).sin(),
                    });
                    t_count += 1;
                }
                Gate::Tdg(q) => {
                    global *= Complex64::from_polar(1.0, -FRAC_PI_4 / 2.0);
                    elements.push(Element::Branch {
                        pauli: Gate::Z(q),
                        cos_half: (FRAC_PI_4 / 2.0).cos(),
                        sin_half: -(FRAC_PI_4 / 2.0).sin(),
                    });
                    t_count += 1;
                }
                Gate::Rx { qubit, theta } if CliffordAngle::from_radians(theta).is_none() => {
                    elements.push(Element::Branch {
                        pauli: Gate::X(qubit),
                        cos_half: (theta / 2.0).cos(),
                        sin_half: (theta / 2.0).sin(),
                    });
                    t_count += 1;
                }
                Gate::Ry { qubit, theta } if CliffordAngle::from_radians(theta).is_none() => {
                    elements.push(Element::Branch {
                        pauli: Gate::Y(qubit),
                        cos_half: (theta / 2.0).cos(),
                        sin_half: (theta / 2.0).sin(),
                    });
                    t_count += 1;
                }
                Gate::Rz { qubit, theta } if CliffordAngle::from_radians(theta).is_none() => {
                    elements.push(Element::Branch {
                        pauli: Gate::Z(qubit),
                        cos_half: (theta / 2.0).cos(),
                        sin_half: (theta / 2.0).sin(),
                    });
                    t_count += 1;
                }
                clifford => elements.push(Element::Clifford(clifford)),
            }
        }
        if t_count > MAX_BRANCH_GATES {
            return Err(CliffordTError::TooManyBranches { count: t_count });
        }
        Ok(BranchDecomposition { n: circuit.num_qubits(), global, elements, t_count })
    }

    /// Number of branch points (non-Clifford gates).
    pub fn t_count(&self) -> usize {
        self.t_count
    }

    /// The stabilizer-rank upper bound `2^t` of the decomposition.
    pub fn rank_bound(&self) -> usize {
        1usize << self.t_count
    }

    /// Materializes every branch as `(weight, Clifford circuit)`.
    ///
    /// The weights include the circuit's global phase; summing
    /// `weight · C|0⟩` over all branches reproduces the original state
    /// exactly.
    pub fn branches(&self) -> Vec<(Complex64, Circuit)> {
        let count = self.rank_bound();
        let mut out = Vec::with_capacity(count);
        for mask in 0..count {
            let mut weight = self.global;
            let mut c = Circuit::new(self.n);
            let mut branch_idx = 0;
            for el in &self.elements {
                match *el {
                    Element::Clifford(g) => {
                        c.push(g);
                    }
                    Element::Branch { pauli, cos_half, sin_half } => {
                        if (mask >> branch_idx) & 1 == 1 {
                            c.push(pauli);
                            // −i · sin(θ/2) factor for the Pauli branch.
                            weight *= Complex64::new(0.0, -sin_half);
                        } else {
                            weight *= Complex64::from(cos_half);
                        }
                        branch_idx += 1;
                    }
                }
            }
            out.push((weight, c));
        }
        out
    }
}

/// A state prepared by a Clifford+rotations circuit, held as the exact
/// weighted sum of its Clifford branches.
#[derive(Debug, Clone)]
pub struct CliffordTState {
    n: usize,
    t_count: usize,
    state: Statevector,
}

impl CliffordTState {
    /// Simulates `circuit` through the branch decomposition.
    ///
    /// # Errors
    ///
    /// Fails if the branch budget or the dense backend's qubit limit is
    /// exceeded.
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, CliffordTError> {
        if circuit.num_qubits() > cafqa_sim::MAX_DENSE_QUBITS {
            return Err(CliffordTError::TooManyQubits { qubits: circuit.num_qubits() });
        }
        let decomp = BranchDecomposition::new(circuit)?;
        let n = circuit.num_qubits();
        let dim = 1usize << n;
        let mut amps = vec![Complex64::ZERO; dim];
        for (weight, branch) in decomp.branches() {
            let phi = Statevector::from_circuit(&branch);
            for (a, b) in amps.iter_mut().zip(phi.amplitudes()) {
                *a += weight * *b;
            }
        }
        // Rebuild through a Statevector by replaying amplitudes.
        let mut state = Statevector::zero_state(n);
        state.set_amplitudes(&amps);
        Ok(CliffordTState { n, t_count: decomp.t_count(), state })
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of branch points the preparation used.
    pub fn t_count(&self) -> usize {
        self.t_count
    }

    /// Expectation value of a Pauli-sum operator, including all `4^t`
    /// branch cross terms (held collapsed in the dense backend).
    pub fn expectation(&self, op: &PauliOp) -> f64 {
        self.state.expectation(op).re
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(s: &str) -> PauliOp {
        s.parse().unwrap()
    }

    #[test]
    fn clifford_only_circuit_has_one_branch() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).ry(1, std::f64::consts::PI);
        let d = BranchDecomposition::new(&c).unwrap();
        assert_eq!(d.t_count(), 0);
        assert_eq!(d.rank_bound(), 1);
    }

    #[test]
    fn t_gate_splits_into_two_branches() {
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        let d = BranchDecomposition::new(&c).unwrap();
        assert_eq!(d.rank_bound(), 2);
        let branches = d.branches();
        assert_eq!(branches.len(), 2);
        // Branch weights: e^{iπ/8}cos(π/8) and e^{iπ/8}(−i sin(π/8)).
        let w0 = branches[0].0.norm();
        let w1 = branches[1].0.norm();
        assert!((w0 - (FRAC_PI_4 / 2.0).cos()).abs() < 1e-12);
        assert!((w1 - (FRAC_PI_4 / 2.0).sin()).abs() < 1e-12);
    }

    #[test]
    fn branch_sum_reproduces_t_state_exactly() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1).ry(1, 0.9).h(1).rz(0, -1.3);
        let reference = Statevector::from_circuit(&c);
        let state = CliffordTState::from_circuit(&c).unwrap();
        for h in ["XX", "ZI + 0.5*YZ", "0.7*XY - 0.2*ZZ"] {
            let h = op(h);
            let a = reference.expectation(&h).re;
            let b = state.expectation(&h);
            assert!((a - b).abs() < 1e-10, "{h}: {a} vs {b}");
        }
    }

    #[test]
    fn eighth_turn_rotation_recovers_correlation() {
        // Ry(π/4) escapes the Clifford grid; ⟨Z⟩ must be cos(π/4).
        let mut c = Circuit::new(1);
        c.ry(0, FRAC_PI_4);
        let state = CliffordTState::from_circuit(&c).unwrap();
        assert_eq!(state.t_count(), 1);
        assert!((state.expectation(&op("Z")) - FRAC_PI_4.cos()).abs() < 1e-12);
    }

    #[test]
    fn tdg_is_inverse_of_t() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).push(Gate::Tdg(0));
        let state = CliffordTState::from_circuit(&c).unwrap();
        assert_eq!(state.t_count(), 2);
        assert!((state.expectation(&op("X")) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn branch_budget_enforced() {
        let mut c = Circuit::new(2);
        for _ in 0..(MAX_BRANCH_GATES + 1) {
            c.t(0);
        }
        assert!(matches!(
            BranchDecomposition::new(&c),
            Err(CliffordTError::TooManyBranches { .. })
        ));
    }

    #[test]
    fn multi_t_circuit_matches_dense() {
        let mut c = Circuit::new(3);
        c.h(0).t(0).cx(0, 1).ry(2, 1.1).t(1).cx(1, 2).rz(2, 0.4).t(2);
        let reference = Statevector::from_circuit(&c);
        let state = CliffordTState::from_circuit(&c).unwrap();
        assert_eq!(state.t_count(), 5);
        for h in ["ZZZ", "XIY", "0.3*XXI + 0.2*IZZ - 0.1*YYY"] {
            let h = op(h);
            assert!((reference.expectation(&h).re - state.expectation(&h)).abs() < 1e-10);
        }
    }
}
