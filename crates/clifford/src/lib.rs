//! Stabilizer simulation for CAFQA.
//!
//! Three engines implement the paper's classical-evaluation layer:
//!
//! - [`Tableau`] — Aaronson–Gottesman stabilizer simulation with exact
//!   `{+1, 0, −1}` Pauli expectations (paper §2.3/§3). This evaluates every
//!   candidate in the CAFQA discrete search in polynomial time.
//! - [`CliffordTState`] / [`BranchDecomposition`] — the beyond-Clifford
//!   extension (paper §8): circuits with `t` non-Clifford rotations expand
//!   into `2^t` Clifford branches via `R_P(θ) = cos(θ/2)·I − i·sin(θ/2)·P`,
//!   summed densely (the ≤ [`cafqa_sim::MAX_DENSE_QUBITS`]-qubit reference
//!   oracle).
//! - [`BranchEnsemble`] — the same branch decomposition held as one
//!   stabilizer tableau plus `t` frame Paulis, with all `O(4^t)` cross
//!   terms recovered through phase-sensitive stabilizer inner products;
//!   exact at any tableau-supported width, which is what lets the CAFQA+kT
//!   search run on 34-qubit systems.
//!
//! # Examples
//!
//! ```
//! use cafqa_circuit::{Ansatz, EfficientSu2};
//! use cafqa_clifford::Tableau;
//!
//! // Evaluate one Clifford-ansatz configuration, paper-style.
//! let ansatz = EfficientSu2::new(4, 1);
//! let circuit = ansatz.bind_clifford(&vec![2; 16]);
//! let tableau = Tableau::from_circuit(&circuit).unwrap();
//! let h = "0.1*XYXY + 0.5*IZZI".parse().unwrap();
//! let energy = tableau.expectation(&h);
//! assert!(energy.abs() <= 0.6);
//! ```

#![warn(missing_docs)]

mod clifford_t;
mod ensemble;
mod tableau;

pub use clifford_t::{BranchDecomposition, CliffordTError, CliffordTState, MAX_BRANCH_GATES};
pub use ensemble::{BranchEnsemble, BranchFrames, ScreenedSum};
pub use tableau::{NonCliffordError, Tableau};

#[cfg(test)]
mod proptests {
    use super::*;
    use cafqa_circuit::{Circuit, Gate};
    use cafqa_pauli::PauliString;
    use cafqa_sim::Statevector;
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Move {
        H(usize),
        S(usize),
        Sdg(usize),
        X(usize),
        Y(usize),
        Z(usize),
        Cx(usize, usize),
        Cz(usize, usize),
        RotY(usize, usize),
        RotZ(usize, usize),
        RotX(usize, usize),
    }

    fn clifford_circuit(n: usize, len: usize) -> impl Strategy<Value = Circuit> {
        let mv = (0usize..11, 0usize..n, 1usize..n.max(2), 0usize..4).prop_map(
            move |(kind, q, offset, rot)| {
                let q2 = (q + offset) % n;
                match kind {
                    0 => Move::H(q),
                    1 => Move::S(q),
                    2 => Move::Sdg(q),
                    3 => Move::X(q),
                    4 => Move::Y(q),
                    5 => Move::Z(q),
                    6 => Move::Cx(q, q2),
                    7 => Move::Cz(q, q2),
                    8 => Move::RotY(q, rot),
                    9 => Move::RotZ(q, rot),
                    _ => Move::RotX(q, rot),
                }
            },
        );
        proptest::collection::vec(mv, 0..len).prop_map(move |moves| {
            let mut c = Circuit::new(n);
            for m in moves {
                match m {
                    Move::H(q) => c.h(q),
                    Move::S(q) => c.s(q),
                    Move::Sdg(q) => c.sdg(q),
                    Move::X(q) => c.x(q),
                    Move::Y(q) => c.y(q),
                    Move::Z(q) => c.z(q),
                    Move::Cx(a, b) if a != b => c.cx(a, b),
                    Move::Cz(a, b) if a != b => c.cz(a, b),
                    Move::Cx(..) | Move::Cz(..) => &mut c,
                    Move::RotY(q, k) => c.ry(q, k as f64 * std::f64::consts::FRAC_PI_2),
                    Move::RotZ(q, k) => c.rz(q, k as f64 * std::f64::consts::FRAC_PI_2),
                    Move::RotX(q, k) => c.rx(q, k as f64 * std::f64::consts::FRAC_PI_2),
                };
            }
            c
        })
    }

    fn pauli_string(n: usize) -> impl Strategy<Value = PauliString> {
        proptest::collection::vec(0u8..4, n).prop_map(move |v| {
            let mut x = 0u64;
            let mut z = 0u64;
            for (q, p) in v.iter().enumerate() {
                x |= ((p & 1) as u64) << q;
                z |= (((p >> 1) & 1) as u64) << q;
            }
            PauliString::from_masks(n, x, z)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The Gottesman–Knill oracle test: tableau expectations equal the
        /// dense-simulation expectations on random Clifford circuits.
        #[test]
        fn tableau_matches_statevector(c in clifford_circuit(4, 30), p in pauli_string(4)) {
            let t = Tableau::from_circuit(&c).unwrap();
            let sv = Statevector::from_circuit(&c);
            let op = cafqa_pauli::PauliOp::from_terms(4, [(cafqa_linalg::Complex64::ONE, p)]);
            let dense = sv.expectation(&op).re;
            let tab = f64::from(t.expectation_pauli(&p));
            prop_assert!((dense - tab).abs() < 1e-9, "{:?} {}: {} vs {}", c, p, dense, tab);
        }

        /// Stabilizer expectations are always exactly −1, 0, or +1.
        #[test]
        fn stabilizer_expectations_quantized(c in clifford_circuit(5, 40), p in pauli_string(5)) {
            let t = Tableau::from_circuit(&c).unwrap();
            let v = t.expectation_pauli(&p);
            prop_assert!(v == -1 || v == 0 || v == 1);
        }

        /// Branch decomposition reproduces dense simulation with T gates.
        #[test]
        fn clifford_t_matches_statevector(
            c in clifford_circuit(3, 15),
            p in pauli_string(3),
            t_qubits in proptest::collection::vec(0usize..3, 0..4),
        ) {
            let mut circuit = c.clone();
            for q in t_qubits {
                circuit.push(Gate::T(q));
            }
            let state = CliffordTState::from_circuit(&circuit).unwrap();
            let sv = Statevector::from_circuit(&circuit);
            let op = cafqa_pauli::PauliOp::from_terms(3, [(cafqa_linalg::Complex64::ONE, p)]);
            let dense = sv.expectation(&op).re;
            let branch = state.expectation(&op);
            prop_assert!((dense - branch).abs() < 1e-9);
        }

        /// The tableau-backed branch ensemble agrees with the dense branch
        /// backend — cross terms, weights, and phases included — on random
        /// Clifford+T circuits (T gates *and* off-grid eighth rotations).
        #[test]
        fn branch_ensemble_matches_dense(
            c in clifford_circuit(6, 40),
            p in pauli_string(6),
            t_moves in proptest::collection::vec((0usize..6, 0usize..3, 1usize..8), 0..5),
        ) {
            let mut circuit = c.clone();
            for (q, kind, odd) in t_moves {
                match kind {
                    0 => { circuit.push(Gate::T(q)); }
                    1 => { circuit.push(Gate::Tdg(q)); }
                    // An odd eighth turn: k·π/4 with k odd.
                    _ => { circuit.rz(q, (odd | 1) as f64 * std::f64::consts::FRAC_PI_4); }
                }
            }
            let ensemble = BranchEnsemble::from_circuit(&circuit).unwrap();
            let dense = CliffordTState::from_circuit(&circuit).unwrap();
            let op = cafqa_pauli::PauliOp::from_terms(6, [(cafqa_linalg::Complex64::ONE, p)]);
            let d = dense.expectation(&op);
            let e = ensemble.expectation(&op);
            prop_assert!((d - e).abs() < 1e-10, "dense {} vs ensemble {}", d, e);
        }

        /// Measuring all qubits of a stabilizer state yields a bitstring
        /// with nonzero amplitude in the dense simulation.
        #[test]
        fn measurement_supported_outcomes(c in clifford_circuit(4, 25)) {
            let mut t = Tableau::from_circuit(&c).unwrap();
            let sv = Statevector::from_circuit(&c);
            let mut bit = false;
            let mut flip = || { bit = !bit; bit };
            let mut outcome = 0u64;
            for q in 0..4 {
                if t.measure(q, &mut flip) {
                    outcome |= 1 << q;
                }
            }
            prop_assert!(sv.amplitude(outcome).norm_sqr() > 1e-12);
        }
    }
}
