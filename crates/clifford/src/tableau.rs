//! Aaronson–Gottesman stabilizer tableau simulation.
//!
//! This is the classical-simulation workhorse of CAFQA: every candidate
//! Clifford ansatz in the discrete search is evaluated here, in polynomial
//! time per the Gottesman–Knill theorem (paper §2.3). Rows are bit-packed
//! into single `u64` words (the workspace caps registers at 64 qubits; the
//! paper's largest system is 34).

use std::fmt;

use cafqa_circuit::{Circuit, Gate};
use cafqa_pauli::{PauliOp, PauliString};

/// Error returned when a circuit contains non-Clifford gates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonCliffordError {
    /// Number of non-Clifford gates found.
    pub count: usize,
}

impl fmt::Display for NonCliffordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "circuit contains {} non-Clifford gate(s)", self.count)
    }
}

impl std::error::Error for NonCliffordError {}

/// One row of the tableau: a signed Pauli `(-1)^sign · P(x, z)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Row {
    x: u64,
    z: u64,
    sign: bool,
}

/// A stabilizer state on `n ≤ 64` qubits, tracked as `n` stabilizer and
/// `n` destabilizer generators (Aaronson–Gottesman 2004).
///
/// # Examples
///
/// ```
/// use cafqa_circuit::Circuit;
/// use cafqa_clifford::Tableau;
///
/// // Bell state: stabilizers ⟨XX, ZZ⟩.
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let t = Tableau::from_circuit(&c).unwrap();
/// assert_eq!(t.expectation_pauli(&"XX".parse().unwrap()), 1);
/// assert_eq!(t.expectation_pauli(&"ZZ".parse().unwrap()), 1);
/// assert_eq!(t.expectation_pauli(&"ZI".parse().unwrap()), 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tableau {
    n: usize,
    /// Destabilizer rows (indices `0..n`), then stabilizer rows (`n..2n`).
    rows: Vec<Row>,
}

impl Tableau {
    /// The `|0…0⟩` state: stabilizers `Z_i`, destabilizers `X_i`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 64`.
    pub fn zero_state(n: usize) -> Self {
        assert!(n > 0 && n <= 64, "tableau supports 1..=64 qubits");
        let mut rows = Vec::with_capacity(2 * n);
        for i in 0..n {
            rows.push(Row { x: 1 << i, z: 0, sign: false });
        }
        for i in 0..n {
            rows.push(Row { x: 0, z: 1 << i, sign: false });
        }
        Tableau { n, rows }
    }

    /// Runs a Clifford circuit on `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`NonCliffordError`] if the circuit has gates outside the
    /// Clifford group (T gates or rotations off the π/2 grid).
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, NonCliffordError> {
        let (gates, _phase) = circuit
            .to_clifford_gates()
            .ok_or(NonCliffordError { count: circuit.non_clifford_count().max(1) })?;
        let mut t = Tableau::zero_state(circuit.num_qubits());
        for g in &gates {
            t.apply_primitive(g);
        }
        Ok(t)
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Applies a primitive Clifford gate (`H`, `S`, `S†`, Paulis, `CX`,
    /// `CZ`). Rotations must be lowered first (see
    /// [`Circuit::to_clifford_gates`]).
    ///
    /// # Panics
    ///
    /// Panics on parameterized or T gates.
    pub fn apply_primitive(&mut self, gate: &Gate) {
        match *gate {
            Gate::H(q) => {
                let m = 1u64 << q;
                for r in &mut self.rows {
                    r.sign ^= (r.x & r.z & m) != 0;
                    let xq = r.x & m;
                    let zq = r.z & m;
                    r.x = (r.x & !m) | zq;
                    r.z = (r.z & !m) | xq;
                }
            }
            Gate::S(q) => {
                let m = 1u64 << q;
                for r in &mut self.rows {
                    r.sign ^= (r.x & r.z & m) != 0;
                    r.z ^= r.x & m;
                }
            }
            Gate::Sdg(q) => {
                let m = 1u64 << q;
                for r in &mut self.rows {
                    r.sign ^= (r.x & !r.z & m) != 0;
                    r.z ^= r.x & m;
                }
            }
            Gate::X(q) => {
                let m = 1u64 << q;
                for r in &mut self.rows {
                    r.sign ^= (r.z & m) != 0;
                }
            }
            Gate::Y(q) => {
                let m = 1u64 << q;
                for r in &mut self.rows {
                    r.sign ^= ((r.x ^ r.z) & m) != 0;
                }
            }
            Gate::Z(q) => {
                let m = 1u64 << q;
                for r in &mut self.rows {
                    r.sign ^= (r.x & m) != 0;
                }
            }
            Gate::Cx { control, target } => {
                let cm = 1u64 << control;
                let tm = 1u64 << target;
                for r in &mut self.rows {
                    let xc = (r.x & cm) != 0;
                    let zc = (r.z & cm) != 0;
                    let xt = (r.x & tm) != 0;
                    let zt = (r.z & tm) != 0;
                    r.sign ^= xc && zt && (xt == zc);
                    if xc {
                        r.x ^= tm;
                    }
                    if zt {
                        r.z ^= cm;
                    }
                }
            }
            Gate::Cz(a, b) => {
                // CZ = H(b) · CX(a, b) · H(b).
                self.apply_primitive(&Gate::H(b));
                self.apply_primitive(&Gate::Cx { control: a, target: b });
                self.apply_primitive(&Gate::H(b));
            }
            ref other => panic!("apply_primitive got non-primitive gate {other:?}"),
        }
    }

    /// The stabilizer generators as signed Pauli strings
    /// (`(sign, string)`; the state satisfies `(-1)^sign P |ψ⟩ = |ψ⟩`).
    pub fn stabilizers(&self) -> Vec<(bool, PauliString)> {
        self.rows[self.n..]
            .iter()
            .map(|r| (r.sign, PauliString::from_masks(self.n, r.x, r.z)))
            .collect()
    }

    /// Expectation value of a single Pauli string on the stabilizer state:
    /// exactly `+1`, `-1`, or `0` (paper §3 step 7).
    ///
    /// `0` when the string anticommutes with some stabilizer; otherwise the
    /// string is (up to sign) a product of stabilizer generators, and the
    /// destabilizer pairing identifies exactly which product.
    pub fn expectation_pauli(&self, p: &PauliString) -> i8 {
        assert_eq!(p.num_qubits(), self.n, "pauli width mismatch");
        let px = p.x_mask();
        let pz = p.z_mask();
        let anticommutes = |r: &Row| ((r.x & pz).count_ones() + (r.z & px).count_ones()) % 2 == 1;
        // Any anticommuting stabilizer ⇒ expectation 0.
        if self.rows[self.n..].iter().any(anticommutes) {
            return 0;
        }
        // P = ± Π_{i ∈ I} S_i where I = { i : P anticommutes with D_i }.
        // Accumulate the product with exact phase via PauliString::mul.
        let mut acc = PauliString::identity(self.n);
        let mut k: i32 = 0; // phase exponent of i
        for i in 0..self.n {
            if anticommutes(&self.rows[i]) {
                let s = &self.rows[self.n + i];
                let sp = PauliString::from_masks(self.n, s.x, s.z);
                let (dk, prod) = acc.mul(&sp);
                k += dk + if s.sign { 2 } else { 0 };
                acc = prod;
            }
        }
        debug_assert_eq!(
            (acc.x_mask(), acc.z_mask()),
            (px, pz),
            "destabilizer decomposition failed"
        );
        match k.rem_euclid(4) {
            0 => 1,
            2 => -1,
            _ => unreachable!("hermitian pauli product acquired an odd i power"),
        }
    }

    /// Expectation value of a Pauli-sum operator: `Σ_k c_k ⟨P_k⟩` with
    /// each `⟨P_k⟩ ∈ {+1, 0, −1}`.
    ///
    /// Only real parts of coefficients contribute (stabilizer expectations
    /// of Hermitian operators are real).
    pub fn expectation(&self, op: &PauliOp) -> f64 {
        assert_eq!(op.num_qubits(), self.n, "operator width mismatch");
        op.iter().map(|(p, c)| c.re * f64::from(self.expectation_pauli(p))).sum()
    }

    /// Measures qubit `q` in the computational basis, collapsing the state.
    ///
    /// Returns the outcome bit. `random_bit` supplies the coin flip for
    /// non-deterministic outcomes (called only when needed).
    pub fn measure(&mut self, q: usize, random_bit: &mut impl FnMut() -> bool) -> bool {
        assert!(q < self.n, "qubit out of range");
        let m = 1u64 << q;
        // A stabilizer with X on q ⇒ random outcome.
        if let Some(p) = (self.n..2 * self.n).find(|&i| self.rows[i].x & m != 0) {
            let outcome = random_bit();
            // Replace every other row anticommuting with Z_q by row·rows[p].
            for i in 0..2 * self.n {
                if i != p && self.rows[i].x & m != 0 {
                    self.row_mul_into(i, p);
                }
            }
            // Destabilizer p−n becomes the old stabilizer; stabilizer p
            // becomes ±Z_q.
            self.rows[p - self.n] = self.rows[p];
            self.rows[p] = Row { x: 0, z: m, sign: outcome };
            outcome
        } else {
            // Deterministic: ±Z_q is in the stabilizer group; recover its
            // sign through the destabilizer pairing, like expectation_pauli.
            let sign = self.expectation_pauli(&PauliString::from_masks(self.n, 0, m));
            debug_assert!(sign != 0);
            sign < 0
        }
    }

    /// Replaces row `i` by `row_i · row_j`, with exact sign tracking.
    fn row_mul_into(&mut self, i: usize, j: usize) {
        let a = self.rows[i];
        let b = self.rows[j];
        let pa = PauliString::from_masks(self.n, a.x, a.z);
        let pb = PauliString::from_masks(self.n, b.x, b.z);
        let (k, prod) = pa.mul(&pb);
        let k = k + if a.sign { 2 } else { 0 } + if b.sign { 2 } else { 0 };
        // Stabilizer rows commute mutually, so a stabilizer×stabilizer
        // product has real phase (±1). Destabilizer rows may anticommute
        // with the multiplier; their sign bit is unused, so an odd power
        // of i there is harmless.
        debug_assert!(i < self.n || j < self.n || k.rem_euclid(2) == 0);
        self.rows[i] = Row { x: prod.x_mask(), z: prod.z_mask(), sign: k.rem_euclid(4) == 2 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> Tableau {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        Tableau::from_circuit(&c).unwrap()
    }

    #[test]
    fn zero_state_stabilizers() {
        let t = Tableau::zero_state(3);
        for q in 0..3 {
            let z = PauliString::single(3, q, cafqa_pauli::Pauli::Z);
            assert_eq!(t.expectation_pauli(&z), 1);
            let x = PauliString::single(3, q, cafqa_pauli::Pauli::X);
            assert_eq!(t.expectation_pauli(&x), 0);
        }
    }

    #[test]
    fn bell_state_expectations() {
        let t = bell();
        let e = |s: &str| t.expectation_pauli(&s.parse().unwrap());
        assert_eq!(e("XX"), 1);
        assert_eq!(e("ZZ"), 1);
        assert_eq!(e("YY"), -1);
        assert_eq!(e("XY"), 0);
        assert_eq!(e("IZ"), 0);
        assert_eq!(e("II"), 1);
    }

    #[test]
    fn minus_state_from_x_then_h() {
        let mut c = Circuit::new(1);
        c.x(0).h(0); // |−⟩
        let t = Tableau::from_circuit(&c).unwrap();
        assert_eq!(t.expectation_pauli(&"X".parse().unwrap()), -1);
        assert_eq!(t.expectation_pauli(&"Z".parse().unwrap()), 0);
    }

    #[test]
    fn s_gate_turns_plus_into_plus_i() {
        let mut c = Circuit::new(1);
        c.h(0).s(0); // |+i⟩, stabilized by +Y.
        let t = Tableau::from_circuit(&c).unwrap();
        assert_eq!(t.expectation_pauli(&"Y".parse().unwrap()), 1);
        c.sdg(0).sdg(0); // net S† on |+⟩ → |−i⟩.
        let t = Tableau::from_circuit(&c).unwrap();
        assert_eq!(t.expectation_pauli(&"Y".parse().unwrap()), -1);
    }

    #[test]
    fn ghz_parity() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        let t = Tableau::from_circuit(&c).unwrap();
        assert_eq!(t.expectation_pauli(&"XXXX".parse().unwrap()), 1);
        assert_eq!(t.expectation_pauli(&"ZZII".parse().unwrap()), 1);
        assert_eq!(t.expectation_pauli(&"ZIII".parse().unwrap()), 0);
        assert_eq!(t.expectation_pauli(&"YYXX".parse().unwrap()), -1);
    }

    #[test]
    fn operator_expectation_sums_terms() {
        let t = bell();
        let h: PauliOp = "0.5*XX - 0.25*YY + 3.0*IZ".parse().unwrap();
        assert!((t.expectation(&h) - (0.5 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_clifford() {
        let mut c = Circuit::new(1);
        c.ry(0, 0.3);
        assert!(Tableau::from_circuit(&c).is_err());
    }

    #[test]
    fn clifford_rotations_accepted() {
        let mut c = Circuit::new(2);
        c.ry(0, std::f64::consts::FRAC_PI_2)
            .rz(1, std::f64::consts::PI)
            .rx(0, 3.0 * std::f64::consts::FRAC_PI_2)
            .cx(0, 1);
        assert!(Tableau::from_circuit(&c).is_ok());
    }

    #[test]
    fn deterministic_measurement() {
        let mut c = Circuit::new(2);
        c.x(0);
        let mut t = Tableau::from_circuit(&c).unwrap();
        let mut flips = || panic!("deterministic measurement should not flip coins");
        assert!(t.measure(0, &mut flips));
        let mut flips = || panic!("deterministic measurement should not flip coins");
        assert!(!t.measure(1, &mut flips));
    }

    #[test]
    fn random_measurement_collapses() {
        let mut t = bell();
        let mut coin = || true;
        let b0 = t.measure(0, &mut coin);
        // After measuring qubit 0, qubit 1 is perfectly correlated.
        let mut flips = || panic!("collapsed qubit must be deterministic");
        let b1 = t.measure(1, &mut flips);
        assert_eq!(b0, b1);
    }

    #[test]
    fn y_gate_signs() {
        let mut c = Circuit::new(1);
        c.y(0); // |1⟩ up to phase: ⟨Z⟩ = −1.
        let t = Tableau::from_circuit(&c).unwrap();
        assert_eq!(t.expectation_pauli(&"Z".parse().unwrap()), -1);
    }
}
