//! Aaronson–Gottesman stabilizer tableau simulation.
//!
//! This is the classical-simulation workhorse of CAFQA: every candidate
//! Clifford ansatz in the discrete search is evaluated here, in polynomial
//! time per the Gottesman–Knill theorem (paper §2.3). Rows are bit-packed
//! into single `u64` words (the workspace caps registers at 64 qubits; the
//! paper's largest system is 34).

use std::fmt;

use cafqa_circuit::{Circuit, CliffordAngle, CompiledAnsatz, Gate, RotationAxis, TemplateOp};
use cafqa_pauli::{phase_exponent, PauliOp, PauliString};

/// Error returned when a circuit contains non-Clifford gates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonCliffordError {
    /// Number of non-Clifford gates found.
    pub count: usize,
}

impl fmt::Display for NonCliffordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "circuit contains {} non-Clifford gate(s)", self.count)
    }
}

impl std::error::Error for NonCliffordError {}

/// One row of the tableau: a signed Pauli `(-1)^sign · P(x, z)`.
///
/// `pub(crate)` because the Clifford+T branch ensemble reuses the same
/// representation for its suffix-conjugated branch Paulis (frames) and
/// the same per-gate update rules (see [`conjugate_rows`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Row {
    pub(crate) x: u64,
    pub(crate) z: u64,
    pub(crate) sign: bool,
}

/// Conjugates every signed Pauli row by a primitive Clifford gate:
/// `row ↦ G · row · G†`, with exact sign tracking.
///
/// This is the single source of truth for the per-gate bit rules: both
/// the tableau generators ([`Tableau::apply_primitive`]) and the branch
/// ensemble's frame Paulis evolve through it, so the two can never drift.
///
/// # Panics
///
/// Panics on parameterized or T gates.
pub(crate) fn conjugate_rows(rows: &mut [Row], gate: &Gate) {
    match *gate {
        Gate::H(q) => {
            let m = 1u64 << q;
            for r in rows {
                r.sign ^= (r.x & r.z & m) != 0;
                let xq = r.x & m;
                let zq = r.z & m;
                r.x = (r.x & !m) | zq;
                r.z = (r.z & !m) | xq;
            }
        }
        Gate::S(q) => {
            let m = 1u64 << q;
            for r in rows {
                r.sign ^= (r.x & r.z & m) != 0;
                r.z ^= r.x & m;
            }
        }
        Gate::Sdg(q) => {
            let m = 1u64 << q;
            for r in rows {
                r.sign ^= (r.x & !r.z & m) != 0;
                r.z ^= r.x & m;
            }
        }
        Gate::X(q) => {
            let m = 1u64 << q;
            for r in rows {
                r.sign ^= (r.z & m) != 0;
            }
        }
        Gate::Y(q) => {
            let m = 1u64 << q;
            for r in rows {
                r.sign ^= ((r.x ^ r.z) & m) != 0;
            }
        }
        Gate::Z(q) => {
            let m = 1u64 << q;
            for r in rows {
                r.sign ^= (r.x & m) != 0;
            }
        }
        Gate::Cx { control, target } => {
            let cm = 1u64 << control;
            let tm = 1u64 << target;
            for r in rows {
                let xc = (r.x & cm) != 0;
                let zc = (r.z & cm) != 0;
                let xt = (r.x & tm) != 0;
                let zt = (r.z & tm) != 0;
                r.sign ^= xc && zt && (xt == zc);
                if xc {
                    r.x ^= tm;
                }
                if zt {
                    r.z ^= cm;
                }
            }
        }
        Gate::Cz(a, b) => {
            // CZ = H(b) · CX(a, b) · H(b).
            conjugate_rows(rows, &Gate::H(b));
            conjugate_rows(rows, &Gate::Cx { control: a, target: b });
            conjugate_rows(rows, &Gate::H(b));
        }
        ref other => panic!("conjugate_rows got non-primitive gate {other:?}"),
    }
}

/// Conjugates every signed Pauli row by a Clifford-angle rotation, fused
/// into a single pass (the rotation counterpart of [`conjugate_rows`];
/// see [`Tableau::apply_rotation`] for the derivation).
pub(crate) fn conjugate_rows_rotation(
    rows: &mut [Row],
    axis: RotationAxis,
    qubit: usize,
    angle: CliffordAngle,
) {
    let m = 1u64 << qubit;
    match (axis, angle) {
        (_, CliffordAngle::Zero) => {}
        // Rz(π/2) ~ S: X→Y, Y→−X.
        (RotationAxis::Z, CliffordAngle::Quarter) => {
            for r in rows {
                r.sign ^= (r.x & r.z & m) != 0;
                r.z ^= r.x & m;
            }
        }
        // Rz(π) ~ Z: X→−X, Y→−Y.
        (RotationAxis::Z, CliffordAngle::Half) => {
            for r in rows {
                r.sign ^= (r.x & m) != 0;
            }
        }
        // Rz(3π/2) ~ S†: X→−Y, Y→X.
        (RotationAxis::Z, CliffordAngle::ThreeQuarter) => {
            for r in rows {
                r.sign ^= (r.x & !r.z & m) != 0;
                r.z ^= r.x & m;
            }
        }
        // Ry(π/2) ~ Z·H: X→−Z, Z→X.
        (RotationAxis::Y, CliffordAngle::Quarter) => {
            for r in rows {
                r.sign ^= (r.x & !r.z & m) != 0;
                let xq = r.x & m;
                let zq = r.z & m;
                r.x = (r.x & !m) | zq;
                r.z = (r.z & !m) | xq;
            }
        }
        // Ry(π) ~ Y: X→−X, Z→−Z.
        (RotationAxis::Y, CliffordAngle::Half) => {
            for r in rows {
                r.sign ^= ((r.x ^ r.z) & m) != 0;
            }
        }
        // Ry(3π/2) ~ X·H: X→Z, Z→−X.
        (RotationAxis::Y, CliffordAngle::ThreeQuarter) => {
            for r in rows {
                r.sign ^= (!r.x & r.z & m) != 0;
                let xq = r.x & m;
                let zq = r.z & m;
                r.x = (r.x & !m) | zq;
                r.z = (r.z & !m) | xq;
            }
        }
        // Rx(π/2) ~ H·S·H: Z→−Y, Y→Z.
        (RotationAxis::X, CliffordAngle::Quarter) => {
            for r in rows {
                r.sign ^= (!r.x & r.z & m) != 0;
                r.x ^= r.z & m;
            }
        }
        // Rx(π) ~ X: Z→−Z, Y→−Y.
        (RotationAxis::X, CliffordAngle::Half) => {
            for r in rows {
                r.sign ^= (r.z & m) != 0;
            }
        }
        // Rx(3π/2) ~ H·S†·H: Z→Y, Y→−Z.
        (RotationAxis::X, CliffordAngle::ThreeQuarter) => {
            for r in rows {
                r.sign ^= (r.x & r.z & m) != 0;
                r.x ^= r.z & m;
            }
        }
    }
}

/// Rows folded per iteration of the lane-blocked expectation kernel
/// (see [`Tableau::expectation_masks`]): the parities of this many rows
/// are combined branchlessly before the screen's single early-exit test.
const LANE_BLOCK: usize = 4;

/// A stabilizer state on `n ≤ 64` qubits, tracked as `n` stabilizer and
/// `n` destabilizer generators (Aaronson–Gottesman 2004).
///
/// # Examples
///
/// ```
/// use cafqa_circuit::Circuit;
/// use cafqa_clifford::Tableau;
///
/// // Bell state: stabilizers ⟨XX, ZZ⟩.
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let t = Tableau::from_circuit(&c).unwrap();
/// assert_eq!(t.expectation_pauli(&"XX".parse().unwrap()), 1);
/// assert_eq!(t.expectation_pauli(&"ZZ".parse().unwrap()), 1);
/// assert_eq!(t.expectation_pauli(&"ZI".parse().unwrap()), 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tableau {
    n: usize,
    /// Destabilizer rows (indices `0..n`), then stabilizer rows (`n..2n`).
    rows: Vec<Row>,
}

impl Tableau {
    /// The `|0…0⟩` state: stabilizers `Z_i`, destabilizers `X_i`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 64`.
    pub fn zero_state(n: usize) -> Self {
        assert!(n > 0 && n <= 64, "tableau supports 1..=64 qubits");
        let mut rows = Vec::with_capacity(2 * n);
        for i in 0..n {
            rows.push(Row { x: 1 << i, z: 0, sign: false });
        }
        for i in 0..n {
            rows.push(Row { x: 0, z: 1 << i, sign: false });
        }
        Tableau { n, rows }
    }

    /// Runs a Clifford circuit on `|0…0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`NonCliffordError`] if the circuit has gates outside the
    /// Clifford group (T gates or rotations off the π/2 grid).
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, NonCliffordError> {
        let (gates, _phase) = circuit
            .to_clifford_gates()
            .ok_or(NonCliffordError { count: circuit.non_clifford_count().max(1) })?;
        let mut t = Tableau::zero_state(circuit.num_qubits());
        for g in &gates {
            t.apply_primitive(g);
        }
        Ok(t)
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Applies a primitive Clifford gate (`H`, `S`, `S†`, Paulis, `CX`,
    /// `CZ`). Rotations must be lowered first (see
    /// [`Circuit::to_clifford_gates`]).
    ///
    /// # Panics
    ///
    /// Panics on parameterized or T gates.
    pub fn apply_primitive(&mut self, gate: &Gate) {
        conjugate_rows(&mut self.rows, gate);
    }

    /// The stabilizer generators as signed Pauli strings
    /// (`(sign, string)`; the state satisfies `(-1)^sign P |ψ⟩ = |ψ⟩`).
    pub fn stabilizers(&self) -> Vec<(bool, PauliString)> {
        self.rows[self.n..]
            .iter()
            .map(|r| (r.sign, PauliString::from_masks(self.n, r.x, r.z)))
            .collect()
    }

    /// The destabilizer generators as signed Pauli strings, paired with
    /// [`Self::stabilizers`] index-by-index (Aaronson–Gottesman layout).
    /// Destabilizer sign bits are bookkeeping only and carry no physics.
    pub fn destabilizers(&self) -> Vec<(bool, PauliString)> {
        self.rows[..self.n]
            .iter()
            .map(|r| (r.sign, PauliString::from_masks(self.n, r.x, r.z)))
            .collect()
    }

    /// Resets the state to `|0…0⟩` in place, reusing the row storage —
    /// the scratch-reuse entry point for batched candidate evaluation.
    pub fn reset_zero(&mut self) {
        for i in 0..self.n {
            self.rows[i] = Row { x: 1 << i, z: 0, sign: false };
            self.rows[self.n + i] = Row { x: 0, z: 1 << i, sign: false };
        }
    }

    /// Applies a Clifford-angle rotation, fused into a single row pass
    /// (the primitive-gate lowering would sweep the rows up to three
    /// times). Global phase is ignored, as everywhere in the tableau; each
    /// fused update equals the [`cafqa_circuit::clifford_rotation`] gate
    /// sequence exactly (tested against it per axis/angle/qubit).
    ///
    /// Derivation: conjugation by a single-qubit Clifford permutes the
    /// qubit's `(x, z)` bits and flips the row sign on a fixed subset of
    /// the three non-identity Paulis, so one pass with the right masks
    /// suffices.
    pub fn apply_rotation(&mut self, axis: RotationAxis, qubit: usize, angle: CliffordAngle) {
        conjugate_rows_rotation(&mut self.rows, axis, qubit, angle);
    }

    /// Re-prepares the state as a compiled ansatz bound to `config`,
    /// in place: `|0…0⟩`, then the template's fixed primitives and
    /// per-slot Clifford rotations. Equivalent to
    /// `Tableau::from_circuit(&ansatz.bind_clifford(config))` but with no
    /// per-candidate lowering or allocation.
    ///
    /// # Panics
    ///
    /// Panics if the template width differs from the tableau width or if
    /// `config` has the wrong length.
    pub fn run_compiled(&mut self, template: &CompiledAnsatz, config: &[usize]) {
        self.run_compiled_prefix(template, config, template.ops().len());
    }

    /// Prepares the *prefix* state of a compiled ansatz: `|0…0⟩`, then
    /// template ops `0..end` only. Combined with [`Self::apply_from`]
    /// this is the checkpoint half of the incremental polish kernel: a
    /// prefix prepared once can be restored with [`Self::copy_from`] and
    /// finished with any suffix whose configuration agrees on the slots
    /// the prefix already consumed.
    ///
    /// `run_compiled_prefix(t, c, t.ops().len())` is exactly
    /// [`Self::run_compiled`].
    ///
    /// # Panics
    ///
    /// Panics if the template width differs from the tableau width, if
    /// `config` has the wrong length, or if `end > template.ops().len()`.
    pub fn run_compiled_prefix(&mut self, template: &CompiledAnsatz, config: &[usize], end: usize) {
        assert_eq!(template.num_qubits(), self.n, "template width mismatch");
        assert_eq!(config.len(), template.num_parameters(), "config length mismatch");
        self.reset_zero();
        self.apply_template_ops(template, config, 0, end);
    }

    /// Replays template ops `start..template.ops().len()` on the current
    /// state, with **no reset** — the delta half of the incremental
    /// polish kernel. When `self` holds the prefix state of the same
    /// template for a configuration that agrees with `config` on every
    /// slot read before `start` (see `CompiledAnsatz::first_op_of`), the
    /// resulting tableau is bit-identical to a full
    /// [`Self::run_compiled`] of `config`: prefix + suffix is literally
    /// the same integer gate sequence.
    ///
    /// # Panics
    ///
    /// Panics if the template width differs from the tableau width, if
    /// `config` has the wrong length, or if `start > template.ops().len()`.
    pub fn apply_from(&mut self, template: &CompiledAnsatz, config: &[usize], start: usize) {
        self.apply_range(template, config, start, template.ops().len());
    }

    /// Replays template ops `start..end` on the current state (no reset)
    /// — the generalization of [`Self::apply_from`] that lets a prefix
    /// checkpoint *advance* from one rotation slot to the next instead of
    /// being rebuilt from `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the template width differs from the tableau width, if
    /// `config` has the wrong length, or if `start..end` is not a valid
    /// range into `template.ops()`.
    pub fn apply_range(
        &mut self,
        template: &CompiledAnsatz,
        config: &[usize],
        start: usize,
        end: usize,
    ) {
        assert_eq!(template.num_qubits(), self.n, "template width mismatch");
        assert_eq!(config.len(), template.num_parameters(), "config length mismatch");
        self.apply_template_ops(template, config, start, end);
    }

    /// The shared op-application loop of every compiled entry point.
    fn apply_template_ops(
        &mut self,
        template: &CompiledAnsatz,
        config: &[usize],
        start: usize,
        end: usize,
    ) {
        for op in &template.ops()[start..end] {
            match *op {
                TemplateOp::Fixed(ref g) => self.apply_primitive(g),
                TemplateOp::Rotation { axis, qubit, param } => {
                    self.apply_rotation(axis, qubit, CliffordAngle::from_index(config[param]));
                }
                TemplateOp::Branch { .. } => panic!(
                    "Clifford tableau cannot execute a branch op; \
                     use BranchEnsemble for Clifford+T templates"
                ),
            }
        }
    }

    /// Copies another tableau's state into this one without allocating —
    /// the checkpoint-restore of the incremental polish kernel (and the
    /// reason polish scratch tableaus never reallocate between
    /// neighbors).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn copy_from(&mut self, src: &Tableau) {
        assert_eq!(src.n, self.n, "tableau width mismatch");
        self.rows.copy_from_slice(&src.rows);
    }

    /// Expectation value of a single Pauli string on the stabilizer state:
    /// exactly `+1`, `-1`, or `0` (paper §3 step 7).
    ///
    /// `0` when the string anticommutes with some stabilizer; otherwise the
    /// string is (up to sign) a product of stabilizer generators, and the
    /// destabilizer pairing identifies exactly which product.
    pub fn expectation_pauli(&self, p: &PauliString) -> i8 {
        assert_eq!(p.num_qubits(), self.n, "pauli width mismatch");
        self.expectation_masks(p.x_mask(), p.z_mask())
    }

    /// Mask-level [`Self::expectation_pauli`]: the expectation of the
    /// unsigned Pauli `P(px, pz)` from raw bit masks.
    ///
    /// This is the hot kernel of the CAFQA search — pure bitwise phase
    /// accumulation over the `(x, z, sign)` row words, with no intermediate
    /// `PauliString` values (see [`cafqa_pauli::phase_exponent`]).
    ///
    /// The row loops are *lane-blocked*: [`LANE_BLOCK`] rows are folded per
    /// iteration with branchless single-popcount parities
    /// (`parity(|x∧pz| + |z∧px|) = parity((x∧pz) ⊕ (z∧px))`, since the
    /// double-counted overlap `|x∧pz∧z∧px|` enters twice), so the
    /// stabilizer screen takes one branch per block instead of one per
    /// row, and the destabilizer anticommutation pattern is packed into a
    /// single `u64` selection mask (the register caps at 64 qubits) whose
    /// set bits drive the inherently sequential phase fold. The pre-block
    /// scalar loop survives as [`Self::expectation_masks_scalar`], the
    /// pinned reference the kernel-equivalence proptests compare against.
    ///
    /// Mask bits at or above [`Self::num_qubits`] are a caller error: the
    /// register has no such qubits, so the result would be meaningless.
    /// Checked with a `debug_assert!` only, to keep the release-mode hot
    /// loop branch-free ([`Self::expectation_pauli`] guarantees the
    /// invariant structurally via `PauliString`'s own width check).
    pub fn expectation_masks(&self, px: u64, pz: u64) -> i8 {
        debug_assert!(
            self.n == 64 || (px | pz) >> self.n == 0,
            "mask bits above the register width"
        );
        // 1 when the row anticommutes with P(px, pz), else 0.
        let parity = |r: &Row| ((r.x & pz) ^ (r.z & px)).count_ones() & 1;
        // Zipped contiguous slices keep the loops free of bounds checks.
        let (destab, stab) = self.rows.split_at(self.n);
        // Any anticommuting stabilizer ⇒ expectation 0. OR-fold the block
        // parities so each block costs one branch, not LANE_BLOCK.
        let mut blocks = stab.chunks_exact(LANE_BLOCK);
        for block in blocks.by_ref() {
            if parity(&block[0]) | parity(&block[1]) | parity(&block[2]) | parity(&block[3]) != 0 {
                return 0;
            }
        }
        if blocks.remainder().iter().fold(0, |acc, r| acc | parity(r)) != 0 {
            return 0;
        }
        // P = ± Π_{i ∈ I} S_i where I = { i : P anticommutes with D_i }.
        // Pack I into one u64 (bit i set ⇔ destabilizer i anticommutes).
        let mut select = 0u64;
        let mut shift = 0u32;
        let mut dblocks = destab.chunks_exact(LANE_BLOCK);
        for block in dblocks.by_ref() {
            let bits = u64::from(parity(&block[0]))
                | u64::from(parity(&block[1])) << 1
                | u64::from(parity(&block[2])) << 2
                | u64::from(parity(&block[3])) << 3;
            select |= bits << shift;
            shift += LANE_BLOCK as u32;
        }
        for r in dblocks.remainder() {
            select |= u64::from(parity(r)) << shift;
            shift += 1;
        }
        // Accumulate the product phase over the set bits of `select`; the
        // (ax, az) accumulator chain is inherently sequential.
        let mut ax = 0u64;
        let mut az = 0u64;
        let mut k: i32 = 0; // phase exponent of i
        while select != 0 {
            let s = &stab[select.trailing_zeros() as usize];
            select &= select - 1;
            k += phase_exponent(ax, az, s.x, s.z) + if s.sign { 2 } else { 0 };
            ax ^= s.x;
            az ^= s.z;
        }
        debug_assert_eq!((ax, az), (px, pz), "destabilizer decomposition failed");
        match k.rem_euclid(4) {
            0 => 1,
            2 => -1,
            _ => unreachable!("hermitian pauli product acquired an odd i power"),
        }
    }

    /// The pre-lane-blocking scalar [`Self::expectation_masks`], kept
    /// verbatim as the pinned reference for the kernel-equivalence
    /// proptests and the lane-blocked A/B bench. Not used on any hot
    /// path.
    pub fn expectation_masks_scalar(&self, px: u64, pz: u64) -> i8 {
        debug_assert!(
            self.n == 64 || (px | pz) >> self.n == 0,
            "mask bits above the register width"
        );
        let anticommutes = |r: &Row| ((r.x & pz).count_ones() + (r.z & px).count_ones()) % 2 == 1;
        // Zipped contiguous slices keep the loops free of bounds checks.
        let (destab, stab) = self.rows.split_at(self.n);
        // Any anticommuting stabilizer ⇒ expectation 0.
        if stab.iter().any(anticommutes) {
            return 0;
        }
        // P = ± Π_{i ∈ I} S_i where I = { i : P anticommutes with D_i }.
        // Accumulate the product phase via popcounts on the raw masks.
        let mut ax = 0u64;
        let mut az = 0u64;
        let mut k: i32 = 0; // phase exponent of i
        for (d, s) in destab.iter().zip(stab) {
            if anticommutes(d) {
                k += phase_exponent(ax, az, s.x, s.z) + if s.sign { 2 } else { 0 };
                ax ^= s.x;
                az ^= s.z;
            }
        }
        debug_assert_eq!((ax, az), (px, pz), "destabilizer decomposition failed");
        match k.rem_euclid(4) {
            0 => 1,
            2 => -1,
            _ => unreachable!("hermitian pauli product acquired an odd i power"),
        }
    }

    /// Expectation value of a Pauli-sum operator: `Σ_k c_k ⟨P_k⟩` with
    /// each `⟨P_k⟩ ∈ {+1, 0, −1}`.
    ///
    /// Only real parts of coefficients contribute (stabilizer expectations
    /// of Hermitian operators are real).
    pub fn expectation(&self, op: &PauliOp) -> f64 {
        assert_eq!(op.num_qubits(), self.n, "operator width mismatch");
        op.iter().map(|(p, c)| c.re * f64::from(self.expectation_pauli(p))).sum()
    }

    /// Measures qubit `q` in the computational basis, collapsing the state.
    ///
    /// Returns the outcome bit. `random_bit` supplies the coin flip for
    /// non-deterministic outcomes (called only when needed).
    pub fn measure(&mut self, q: usize, random_bit: &mut impl FnMut() -> bool) -> bool {
        assert!(q < self.n, "qubit out of range");
        let m = 1u64 << q;
        // A stabilizer with X on q ⇒ random outcome.
        if let Some(p) = (self.n..2 * self.n).find(|&i| self.rows[i].x & m != 0) {
            let outcome = random_bit();
            // Replace every other row anticommuting with Z_q by row·rows[p].
            for i in 0..2 * self.n {
                if i != p && self.rows[i].x & m != 0 {
                    self.row_mul_into(i, p);
                }
            }
            // Destabilizer p−n becomes the old stabilizer; stabilizer p
            // becomes ±Z_q.
            self.rows[p - self.n] = self.rows[p];
            self.rows[p] = Row { x: 0, z: m, sign: outcome };
            outcome
        } else {
            // Deterministic: ±Z_q is in the stabilizer group; recover its
            // sign through the destabilizer pairing, like expectation_pauli.
            let sign = self.expectation_masks(0, m);
            debug_assert!(sign != 0);
            sign < 0
        }
    }

    /// Replaces row `i` by `row_i · row_j`, with exact sign tracking —
    /// pure bitwise, no intermediate `PauliString`s.
    fn row_mul_into(&mut self, i: usize, j: usize) {
        let a = self.rows[i];
        let b = self.rows[j];
        let k = phase_exponent(a.x, a.z, b.x, b.z)
            + if a.sign { 2 } else { 0 }
            + if b.sign { 2 } else { 0 };
        // Stabilizer rows commute mutually, so a stabilizer×stabilizer
        // product has real phase (±1). Destabilizer rows may anticommute
        // with the multiplier; their sign bit is unused, so an odd power
        // of i there is harmless.
        debug_assert!(i < self.n || j < self.n || k.rem_euclid(2) == 0);
        self.rows[i] = Row { x: a.x ^ b.x, z: a.z ^ b.z, sign: k.rem_euclid(4) == 2 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> Tableau {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        Tableau::from_circuit(&c).unwrap()
    }

    #[test]
    fn zero_state_stabilizers() {
        let t = Tableau::zero_state(3);
        for q in 0..3 {
            let z = PauliString::single(3, q, cafqa_pauli::Pauli::Z);
            assert_eq!(t.expectation_pauli(&z), 1);
            let x = PauliString::single(3, q, cafqa_pauli::Pauli::X);
            assert_eq!(t.expectation_pauli(&x), 0);
        }
    }

    #[test]
    fn bell_state_expectations() {
        let t = bell();
        let e = |s: &str| t.expectation_pauli(&s.parse().unwrap());
        assert_eq!(e("XX"), 1);
        assert_eq!(e("ZZ"), 1);
        assert_eq!(e("YY"), -1);
        assert_eq!(e("XY"), 0);
        assert_eq!(e("IZ"), 0);
        assert_eq!(e("II"), 1);
    }

    #[test]
    fn minus_state_from_x_then_h() {
        let mut c = Circuit::new(1);
        c.x(0).h(0); // |−⟩
        let t = Tableau::from_circuit(&c).unwrap();
        assert_eq!(t.expectation_pauli(&"X".parse().unwrap()), -1);
        assert_eq!(t.expectation_pauli(&"Z".parse().unwrap()), 0);
    }

    #[test]
    fn s_gate_turns_plus_into_plus_i() {
        let mut c = Circuit::new(1);
        c.h(0).s(0); // |+i⟩, stabilized by +Y.
        let t = Tableau::from_circuit(&c).unwrap();
        assert_eq!(t.expectation_pauli(&"Y".parse().unwrap()), 1);
        c.sdg(0).sdg(0); // net S† on |+⟩ → |−i⟩.
        let t = Tableau::from_circuit(&c).unwrap();
        assert_eq!(t.expectation_pauli(&"Y".parse().unwrap()), -1);
    }

    #[test]
    fn ghz_parity() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        let t = Tableau::from_circuit(&c).unwrap();
        assert_eq!(t.expectation_pauli(&"XXXX".parse().unwrap()), 1);
        assert_eq!(t.expectation_pauli(&"ZZII".parse().unwrap()), 1);
        assert_eq!(t.expectation_pauli(&"ZIII".parse().unwrap()), 0);
        assert_eq!(t.expectation_pauli(&"YYXX".parse().unwrap()), -1);
    }

    #[test]
    fn operator_expectation_sums_terms() {
        let t = bell();
        let h: PauliOp = "0.5*XX - 0.25*YY + 3.0*IZ".parse().unwrap();
        assert!((t.expectation(&h) - (0.5 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_clifford() {
        let mut c = Circuit::new(1);
        c.ry(0, 0.3);
        assert!(Tableau::from_circuit(&c).is_err());
    }

    #[test]
    fn clifford_rotations_accepted() {
        let mut c = Circuit::new(2);
        c.ry(0, std::f64::consts::FRAC_PI_2)
            .rz(1, std::f64::consts::PI)
            .rx(0, 3.0 * std::f64::consts::FRAC_PI_2)
            .cx(0, 1);
        assert!(Tableau::from_circuit(&c).is_ok());
    }

    #[test]
    fn deterministic_measurement() {
        let mut c = Circuit::new(2);
        c.x(0);
        let mut t = Tableau::from_circuit(&c).unwrap();
        let mut flips = || panic!("deterministic measurement should not flip coins");
        assert!(t.measure(0, &mut flips));
        let mut flips = || panic!("deterministic measurement should not flip coins");
        assert!(!t.measure(1, &mut flips));
    }

    #[test]
    fn random_measurement_collapses() {
        let mut t = bell();
        let mut coin = || true;
        let b0 = t.measure(0, &mut coin);
        // After measuring qubit 0, qubit 1 is perfectly correlated.
        let mut flips = || panic!("collapsed qubit must be deterministic");
        let b1 = t.measure(1, &mut flips);
        assert_eq!(b0, b1);
    }

    #[test]
    fn apply_rotation_matches_clifford_rotation_lowering() {
        use cafqa_circuit::{clifford_rotation, RotationAxis, CLIFFORD_ANGLES};
        // Start from a non-trivial state so sign bookkeeping is exercised.
        let mut base = Circuit::new(2);
        base.h(0).cx(0, 1).s(1).x(0);
        for axis in [RotationAxis::X, RotationAxis::Y, RotationAxis::Z] {
            for angle in CLIFFORD_ANGLES {
                for qubit in 0..2 {
                    let mut direct = Tableau::from_circuit(&base).unwrap();
                    direct.apply_rotation(axis, qubit, angle);
                    let mut reference = Tableau::from_circuit(&base).unwrap();
                    for g in clifford_rotation(axis, qubit, angle).0 {
                        reference.apply_primitive(&g);
                    }
                    assert_eq!(direct, reference, "{axis:?} {angle:?} q{qubit}");
                }
            }
        }
    }

    #[test]
    fn reset_zero_restores_the_initial_state() {
        let mut t = bell();
        t.reset_zero();
        assert_eq!(t, Tableau::zero_state(2));
    }

    #[test]
    fn run_compiled_matches_from_circuit() {
        use cafqa_circuit::{Ansatz, CompiledAnsatz, EfficientSu2};
        let ansatz = EfficientSu2::new(3, 1);
        let template = CompiledAnsatz::compile(&ansatz).unwrap();
        let mut scratch = Tableau::zero_state(3);
        for config in [vec![0usize; 12], vec![3; 12], vec![1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0]] {
            scratch.run_compiled(&template, &config);
            let reference = Tableau::from_circuit(&ansatz.bind_clifford(&config)).unwrap();
            assert_eq!(scratch, reference, "{config:?}");
        }
    }

    #[test]
    fn prefix_plus_suffix_equals_full_run() {
        use cafqa_circuit::{CompiledAnsatz, EfficientSu2};
        let ansatz = EfficientSu2::new(3, 1);
        let template = CompiledAnsatz::compile(&ansatz).unwrap();
        let config = vec![1usize, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0];
        let mut full = Tableau::zero_state(3);
        full.run_compiled(&template, &config);
        for split in 0..=template.ops().len() {
            let mut pieced = Tableau::zero_state(3);
            pieced.run_compiled_prefix(&template, &config, split);
            pieced.apply_from(&template, &config, split);
            assert_eq!(pieced, full, "split at {split}");
        }
        // Advancing a prefix in several apply_range hops is the same as
        // one prefix preparation.
        let mut hopped = Tableau::zero_state(3);
        hopped.reset_zero();
        let mut at = 0;
        for stop in [2usize, 5, 9, template.ops().len()] {
            hopped.apply_range(&template, &config, at, stop);
            at = stop;
        }
        assert_eq!(hopped, full);
    }

    #[test]
    fn copy_from_restores_a_checkpoint() {
        let mut checkpoint = bell();
        let mut scratch = Tableau::zero_state(2);
        scratch.copy_from(&checkpoint);
        assert_eq!(scratch, checkpoint);
        // Mutating the copy leaves the checkpoint untouched.
        scratch.apply_primitive(&Gate::H(0));
        assert_ne!(scratch, checkpoint);
        scratch.copy_from(&checkpoint);
        assert_eq!(scratch, checkpoint);
        // And the other direction works too (it is just a memcpy).
        checkpoint.copy_from(&Tableau::zero_state(2));
        assert_eq!(checkpoint, Tableau::zero_state(2));
    }

    #[test]
    fn expectation_masks_equals_expectation_pauli() {
        let t = bell();
        for code in 0u64..16 {
            let (px, pz) = (code & 3, code >> 2);
            let p = PauliString::from_masks(2, px, pz);
            assert_eq!(t.expectation_masks(px, pz), t.expectation_pauli(&p));
        }
    }

    #[test]
    fn lane_blocked_kernel_matches_scalar_reference() {
        // Widths straddling the LANE_BLOCK boundary (remainder 0..=3),
        // exhaustive masks at small n, xorshift-sampled masks above.
        for n in [1usize, 3, 4, 5, 7, 8, 9] {
            let mut c = Circuit::new(n);
            for q in 0..n {
                c.h(q);
                if q % 2 == 0 {
                    c.s(q);
                }
                if q + 1 < n {
                    c.cx(q, q + 1);
                }
            }
            let t = Tableau::from_circuit(&c).unwrap();
            let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            if n <= 7 {
                for code in 0..(1u64 << (2 * n)) {
                    let (px, pz) = (code & mask, code >> n);
                    assert_eq!(
                        t.expectation_masks(px, pz),
                        t.expectation_masks_scalar(px, pz),
                        "n={n} px={px:#b} pz={pz:#b}"
                    );
                }
            } else {
                let mut seed = 0x5EEDu64 + n as u64;
                for _ in 0..512 {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    let px = seed & mask;
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    let pz = seed & mask;
                    assert_eq!(
                        t.expectation_masks(px, pz),
                        t.expectation_masks_scalar(px, pz),
                        "n={n} px={px:#b} pz={pz:#b}"
                    );
                }
            }
        }
    }

    #[test]
    fn destabilizers_pair_with_stabilizers() {
        let t = bell();
        let stabs = t.stabilizers();
        let destabs = t.destabilizers();
        assert_eq!(stabs.len(), 2);
        assert_eq!(destabs.len(), 2);
        for (i, (_, d)) in destabs.iter().enumerate() {
            for (j, (_, s)) in stabs.iter().enumerate() {
                // D_i anticommutes with S_i and commutes with every other S_j.
                assert_eq!(d.commutes_with(s), i != j, "D{i} vs S{j}");
            }
        }
    }

    #[test]
    fn y_gate_signs() {
        let mut c = Circuit::new(1);
        c.y(0); // |1⟩ up to phase: ⟨Z⟩ = −1.
        let t = Tableau::from_circuit(&c).unwrap();
        assert_eq!(t.expectation_pauli(&"Z".parse().unwrap()), -1);
    }
}
