//! Randomized old-vs-new kernel equivalence suite.
//!
//! The tableau's hot kernel (`expectation_pauli` / the row products inside
//! `measure`) was rewritten from allocation-based `PauliString::mul`
//! accumulation to pure bitwise phase accumulation. This suite pins the
//! rewrite to the old semantics: on random Clifford circuits × random
//! Pauli strings, the bitwise kernel must match the allocation-based
//! reference exactly — for expectation values, for mask-level queries, and
//! for measurement collapse (which exercises the bitwise row products).

use cafqa_circuit::Circuit;
use cafqa_clifford::Tableau;
use cafqa_pauli::{Pauli, PauliString};
use proptest::prelude::*;

/// The pre-rewrite expectation algorithm, reconstructed over the public
/// generator accessors: decompose the Pauli over stabilizer generators via
/// the destabilizer pairing, accumulating phase through materialized
/// `PauliString::mul` products.
fn reference_expectation(t: &Tableau, p: &PauliString) -> i8 {
    let stabilizers = t.stabilizers();
    let destabilizers = t.destabilizers();
    if stabilizers.iter().any(|(_, s)| !s.commutes_with(p)) {
        return 0;
    }
    let mut acc = PauliString::identity(p.num_qubits());
    let mut k: i32 = 0;
    for ((_, d), (sign, s)) in destabilizers.iter().zip(&stabilizers) {
        if !d.commutes_with(p) {
            let (dk, prod) = acc.mul(s);
            k += dk + if *sign { 2 } else { 0 };
            acc = prod;
        }
    }
    assert_eq!(
        (acc.x_mask(), acc.z_mask()),
        (p.x_mask(), p.z_mask()),
        "destabilizer decomposition failed"
    );
    match k.rem_euclid(4) {
        0 => 1,
        2 => -1,
        other => panic!("hermitian pauli product acquired phase i^{other}"),
    }
}

/// A random Clifford circuit: primitive Cliffords plus π/2-grid rotations.
fn clifford_circuit(n: usize, len: usize) -> impl Strategy<Value = Circuit> {
    let mv = (0usize..11, 0usize..n, 1usize..n.max(2), 0usize..4);
    proptest::collection::vec(mv, 0..len).prop_map(move |moves| {
        let mut c = Circuit::new(n);
        for (kind, q, offset, rot) in moves {
            let q2 = (q + offset) % n;
            match kind {
                0 => c.h(q),
                1 => c.s(q),
                2 => c.sdg(q),
                3 => c.x(q),
                4 => c.y(q),
                5 => c.z(q),
                6 if q != q2 => c.cx(q, q2),
                7 if q != q2 => c.cz(q, q2),
                6 | 7 => &mut c,
                8 => c.ry(q, rot as f64 * std::f64::consts::FRAC_PI_2),
                9 => c.rz(q, rot as f64 * std::f64::consts::FRAC_PI_2),
                _ => c.rx(q, rot as f64 * std::f64::consts::FRAC_PI_2),
            };
        }
        c
    })
}

fn pauli_string(n: usize) -> impl Strategy<Value = PauliString> {
    proptest::collection::vec(0u8..4, n).prop_map(move |v| {
        let mut p = PauliString::identity(n);
        for (q, &code) in v.iter().enumerate() {
            p = p.with_pauli(q, Pauli::from_bits(code & 1 == 1, code >> 1 == 1));
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Expectation values: bitwise kernel == allocation-based reference.
    #[test]
    fn expectation_matches_reference(c in clifford_circuit(6, 48), p in pauli_string(6)) {
        let t = Tableau::from_circuit(&c).unwrap();
        prop_assert_eq!(t.expectation_pauli(&p), reference_expectation(&t, &p));
    }

    /// The mask-level entry point agrees with the string-level one (and
    /// therefore with the reference, by the test above).
    #[test]
    fn mask_entry_point_matches(c in clifford_circuit(5, 40), p in pauli_string(5)) {
        let t = Tableau::from_circuit(&c).unwrap();
        prop_assert_eq!(
            t.expectation_masks(p.x_mask(), p.z_mask()),
            t.expectation_pauli(&p)
        );
    }

    /// The lane-blocked `expectation_masks` equals the pinned scalar
    /// reference on a width that exercises full lane blocks plus a
    /// remainder (6 = 4 + 2).
    #[test]
    fn lane_blocked_masks_match_scalar(c in clifford_circuit(6, 48), p in pauli_string(6)) {
        let t = Tableau::from_circuit(&c).unwrap();
        prop_assert_eq!(
            t.expectation_masks(p.x_mask(), p.z_mask()),
            t.expectation_masks_scalar(p.x_mask(), p.z_mask())
        );
    }

    /// Same pin across every width straddling the 4-row lane-block
    /// boundary (3, 4, 5) and one spanning two full blocks plus a
    /// remainder (9 = 2·4 + 1), so block, remainder, and select-mask
    /// packing paths are all hit.
    #[test]
    fn lane_blocked_masks_match_scalar_across_boundary_widths(
        seed_moves in proptest::collection::vec((0usize..11, 0usize..9, 1usize..9, 0usize..4), 0..48),
        codes in proptest::collection::vec(0u8..4, 9),
    ) {
        for n in [3usize, 4, 5, 9] {
            let mut c = Circuit::new(n);
            for &(kind, q, offset, rot) in &seed_moves {
                let q = q % n;
                let q2 = (q + offset) % n;
                match kind {
                    0 => c.h(q),
                    1 => c.s(q),
                    2 => c.sdg(q),
                    3 => c.x(q),
                    4 => c.y(q),
                    5 => c.z(q),
                    6 if q != q2 => c.cx(q, q2),
                    7 if q != q2 => c.cz(q, q2),
                    6 | 7 => &mut c,
                    8 => c.ry(q, rot as f64 * std::f64::consts::FRAC_PI_2),
                    9 => c.rz(q, rot as f64 * std::f64::consts::FRAC_PI_2),
                    _ => c.rx(q, rot as f64 * std::f64::consts::FRAC_PI_2),
                };
            }
            let t = Tableau::from_circuit(&c).unwrap();
            let mut p = PauliString::identity(n);
            for (q, &code) in codes.iter().take(n).enumerate() {
                p = p.with_pauli(q, Pauli::from_bits(code & 1 == 1, code >> 1 == 1));
            }
            prop_assert_eq!(
                t.expectation_masks(p.x_mask(), p.z_mask()),
                t.expectation_masks_scalar(p.x_mask(), p.z_mask())
            );
        }
    }

    /// Measurement collapse: after measuring every qubit (exercising the
    /// bitwise row products on both stabilizer and destabilizer rows), the
    /// collapsed state must still satisfy the reference kernel on random
    /// Paulis, report the measured bitstring deterministically, and leave
    /// a valid ±Z_q stabilizer per qubit.
    #[test]
    fn measurement_collapse_matches_reference(
        c in clifford_circuit(5, 40),
        p in pauli_string(5),
        coins in proptest::collection::vec(0u8..2, 5),
    ) {
        let mut t = Tableau::from_circuit(&c).unwrap();
        let mut flips = coins.iter().map(|&b| b == 1);
        let mut outcomes = [false; 5];
        for q in 0..5 {
            let mut coin = || flips.next().unwrap_or(false);
            outcomes[q] = t.measure(q, &mut coin);
        }
        // Post-collapse, the bitwise and reference kernels still agree.
        prop_assert_eq!(t.expectation_pauli(&p), reference_expectation(&t, &p));
        // Each qubit is now deterministic with the recorded outcome.
        for q in 0..5 {
            let z = PauliString::single(5, q, Pauli::Z);
            let expected = if outcomes[q] { -1 } else { 1 };
            prop_assert_eq!(t.expectation_pauli(&z), expected);
            prop_assert_eq!(reference_expectation(&t, &z), expected);
            let mut no_coin = || panic!("collapsed qubit must be deterministic");
            prop_assert_eq!(t.clone().measure(q, &mut no_coin), outcomes[q]);
        }
    }

    /// Collapse keeps agreement on states prepared through the compiled
    /// ansatz template as well (scratch-reuse path).
    #[test]
    fn compiled_template_states_match_reference(
        config in proptest::collection::vec(0usize..4, 12),
        p in pauli_string(3),
    ) {
        use cafqa_circuit::{Ansatz, CompiledAnsatz, EfficientSu2};
        let ansatz = EfficientSu2::new(3, 1);
        let template = CompiledAnsatz::compile(&ansatz).unwrap();
        let mut t = Tableau::zero_state(3);
        t.run_compiled(&template, &config);
        prop_assert_eq!(t.expectation_pauli(&p), reference_expectation(&t, &p));
        let direct = Tableau::from_circuit(&ansatz.bind_clifford(&config)).unwrap();
        prop_assert_eq!(t, direct);
    }
}
