//! The screened-pair-sum equivalence suite: `pair_sum_screened` at
//! `tol = 0` must be **bit-identical** to the frozen `pair_sum` — on any
//! class sub-range, including ranges straddling the power-of-two
//! boundaries of the lowest-set-bit subset recursion — and a *binding*
//! screen must stay within its own reported skipped-class mass, with
//! sharded folds composing exactly like the unscreened kernel. The kT
//! screening layer in `cafqa-core` is built entirely on these
//! guarantees, at the class-sum level.

use cafqa_circuit::Circuit;
use cafqa_clifford::{BranchEnsemble, ScreenedSum};
use proptest::prelude::*;

/// A deterministic pseudo-random Clifford+T circuit with `t` branch
/// points (T or off-grid rotations) interleaved with Clifford gates.
fn circuit_for(seed: u64, nq: usize, t: usize) -> Circuit {
    let mut state = seed.wrapping_mul(0x9E37_79B9).wrapping_add(0xCAF9A);
    let mut next = move |m: u64| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % m) as usize
    };
    let mut c = Circuit::new(nq);
    for q in 0..nq {
        c.h(q);
    }
    for _ in 0..t {
        // A couple of Clifford gates, then one branch point.
        for _ in 0..2 {
            match next(4) {
                0 => {
                    c.h(next(nq as u64));
                }
                1 => {
                    c.s(next(nq as u64));
                }
                2 if nq > 1 => {
                    let a = next(nq as u64);
                    let b = (a + 1 + next(nq as u64 - 1)) % nq;
                    c.cx(a, b);
                }
                _ => {
                    c.rz(next(nq as u64), std::f64::consts::FRAC_PI_2);
                }
            }
        }
        match next(3) {
            // Mixed branch angles so class bounds are not all 2^{-ν/2}.
            0 => {
                c.t(next(nq as u64));
            }
            1 => {
                c.ry(next(nq as u64), 0.9);
            }
            _ => {
                c.rz(next(nq as u64), 2.0);
            }
        }
    }
    c
}

/// A deterministic pseudo-random Pauli mask pair within `nq` qubits.
fn masks_for(seed: u64, nq: usize) -> (u64, u64) {
    let m = (1u64 << nq) - 1;
    let x = seed.wrapping_mul(0x2545_F491_4F6C_DD1D);
    let z = x.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 7;
    (x & m, z & m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `tol = 0` is bit-identical to `pair_sum` on arbitrary sub-ranges,
    /// with nothing skipped.
    #[test]
    fn zero_tolerance_is_bit_identical_on_any_subrange(
        seed in 0u64..10_000,
        nq in 1usize..5,
        t in 0usize..6,
        lo_pick in 0usize..64,
        len_pick in 0usize..64,
    ) {
        let e = BranchEnsemble::from_circuit(&circuit_for(seed, nq, t)).unwrap();
        let frames = e.frames();
        let n = frames.num_branches();
        let lo = lo_pick % n;
        let hi = (lo + 1 + len_pick % n).min(n);
        let (px, pz) = masks_for(seed, nq);
        let exact = e.pair_sum(&frames, px, pz, lo..hi);
        let screened = e.pair_sum_screened(&frames, px, pz, lo..hi, 0.0);
        prop_assert_eq!(exact.to_bits(), screened.sum.to_bits());
        prop_assert_eq!(screened.skipped_classes, 0);
        prop_assert_eq!(screened.skipped_mass.to_bits(), 0.0f64.to_bits());
    }

    /// Ranges straddling every power-of-two boundary of the subset
    /// recursion (where the lowest-set-bit parent flips from dense to
    /// sparse masks): `[2^k − 1, 2^k + 1)` and the two half-open sides.
    #[test]
    fn zero_tolerance_across_recursion_boundaries(
        seed in 0u64..10_000,
        nq in 1usize..4,
        t in 2usize..6,
    ) {
        let e = BranchEnsemble::from_circuit(&circuit_for(seed, nq, t)).unwrap();
        let frames = e.frames();
        let n = frames.num_branches();
        let (px, pz) = masks_for(seed, nq);
        for k in 1..frames.num_branches().trailing_zeros() {
            let b = 1usize << k;
            for range in [b - 1..b + 1, b - 1..b, b..(2 * b).min(n)] {
                let exact = e.pair_sum(&frames, px, pz, range.clone());
                let screened = e.pair_sum_screened(&frames, px, pz, range.clone(), 0.0);
                prop_assert_eq!(exact.to_bits(), screened.sum.to_bits());
                prop_assert_eq!(screened.skipped_classes, 0);
            }
        }
    }

    /// Sharded screened folds agree with the full-range screened fold:
    /// integer counters add exactly, sums and masses to f64 rounding,
    /// and repeating a chunking is bit-reproducible.
    #[test]
    fn sharded_screened_folds_compose(
        seed in 0u64..10_000,
        nq in 1usize..4,
        t in 1usize..6,
        chunk_pick in 1usize..8,
        tol_pick in 0usize..5,
    ) {
        let tol = [0.0, 0.05, 0.2, 0.5, 0.9][tol_pick];
        let e = BranchEnsemble::from_circuit(&circuit_for(seed, nq, t)).unwrap();
        let frames = e.frames();
        let n = frames.num_branches();
        let (px, pz) = masks_for(seed, nq);
        let full = e.pair_sum_screened(&frames, px, pz, 0..n, tol);
        let fold = || {
            let mut acc = ScreenedSum::default();
            let mut lo = 0;
            while lo < n {
                let hi = (lo + chunk_pick).min(n);
                let part = e.pair_sum_screened(&frames, px, pz, lo..hi, tol);
                acc.sum += part.sum;
                acc.skipped_classes += part.skipped_classes;
                acc.skipped_mass += part.skipped_mass;
                lo = hi;
            }
            acc
        };
        let once = fold();
        prop_assert_eq!(once, fold());
        prop_assert_eq!(once.skipped_classes, full.skipped_classes);
        prop_assert!((once.sum - full.sum).abs() < 1e-12);
        prop_assert!((once.skipped_mass - full.skipped_mass).abs() < 1e-12);
    }

    /// A binding screen stays within its own error certificate:
    /// `|pair_sum − screened.sum| ≤ skipped_mass`, with the mass the sum
    /// of the skipped classes' cached bounds.
    #[test]
    fn screened_error_is_bounded_by_the_skipped_mass(
        seed in 0u64..10_000,
        nq in 1usize..5,
        t in 1usize..6,
        tol_pick in 0usize..5,
    ) {
        let tol = [0.05, 0.2, 0.5, 0.9, 2.0][tol_pick];
        let e = BranchEnsemble::from_circuit(&circuit_for(seed, nq, t)).unwrap();
        let frames = e.frames();
        let n = frames.num_branches();
        let (px, pz) = masks_for(seed, nq);
        let exact = e.pair_sum(&frames, px, pz, 0..n);
        let scr = e.pair_sum_screened(&frames, px, pz, 0..n, tol);
        prop_assert!(
            (exact - scr.sum).abs() <= scr.skipped_mass + 1e-12,
            "|{} - {}| above mass {}", exact, scr.sum, scr.skipped_mass
        );
        // The mass itself is the sum of the skipped bounds, and every
        // surviving class's bound clears the tolerance.
        let mut mass = 0.0;
        let mut skipped = 0usize;
        for c in 0..n {
            if frames.class_bound(c) <= tol {
                mass += frames.class_bound(c);
                skipped += 1;
            }
        }
        prop_assert_eq!(scr.skipped_classes, skipped);
        prop_assert!((scr.skipped_mass - mass).abs() < 1e-12);
        // And each class contribution really is below its bound.
        for c in 0..n {
            let v = e.pair_sum(&frames, px, pz, c..c + 1);
            prop_assert!(v.abs() <= frames.class_bound(c) + 1e-12, "class {}", c);
        }
    }
}
