//! The incremental-tableau equivalence suite: the polish delta kernel
//! (`run_compiled_prefix` + `copy_from` + `apply_from`) must be
//! **bit-identical** to a full `reset_zero` + `run_compiled`
//! re-preparation — for any ansatz, any rotation slot (including slot 0
//! and the last slot), any angle index, and any prefix split. The
//! incremental polish engine in `cafqa-core` is built entirely on these
//! guarantees; every fast path it takes is locked to the frozen
//! semantics here, at the tableau level, where `Tableau: PartialEq`
//! compares the complete `(x, z, sign)` row state.

use cafqa_circuit::{CompiledAnsatz, EfficientSu2};
use cafqa_clifford::Tableau;
use proptest::prelude::*;

/// Full re-preparation: the frozen reference every delta path replays.
fn full(template: &CompiledAnsatz, config: &[usize]) -> Tableau {
    let mut t = Tableau::zero_state(template.num_qubits());
    t.reset_zero();
    t.run_compiled(template, config);
    t
}

/// The incremental path: prefix checkpoint of `base` up to the changed
/// slot's first op, checkpoint restore into a dirty scratch, suffix
/// replay with the neighbor configuration.
fn incremental(
    template: &CompiledAnsatz,
    base: &[usize],
    neighbor: &[usize],
    start: usize,
) -> Tableau {
    let mut prefix = Tableau::zero_state(template.num_qubits());
    prefix.run_compiled_prefix(template, base, start);
    // Deliberately dirty scratch: copy_from must fully overwrite it.
    let mut scratch = Tableau::zero_state(template.num_qubits());
    scratch.run_compiled(template, base);
    scratch.copy_from(&prefix);
    scratch.apply_from(template, neighbor, start);
    scratch
}

/// A deterministic pseudo-random configuration.
fn config_for(seed: u64, d: usize) -> Vec<usize> {
    let mut state = seed.wrapping_mul(0x9E37_79B9).wrapping_add(0xCAF9A);
    (0..d)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 3) as usize
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-slot neighbors: replay from `first_op_of(slot)` equals a
    /// full re-preparation of the neighbor, bit for bit.
    #[test]
    fn single_slot_replay_matches_full_repreparation(
        nq in 2usize..6,
        reps in 0usize..3,
        seed in 0u64..10_000,
        slot_pick in 0usize..64,
        angle in 0usize..4,
    ) {
        let ansatz = EfficientSu2::new(nq, reps);
        let template = CompiledAnsatz::compile(&ansatz).unwrap();
        let d = template.num_parameters();
        let base = config_for(seed, d);
        let slot = slot_pick % d;
        let mut neighbor = base.clone();
        neighbor[slot] = angle;
        let start = template.first_op_of(slot);
        prop_assert_eq!(
            incremental(&template, &base, &neighbor, start),
            full(&template, &neighbor)
        );
    }

    /// Pair (two-slot) neighbors replay from the earlier of the two
    /// slots' first ops — the pair-polish shape.
    #[test]
    fn pair_replay_matches_full_repreparation(
        nq in 2usize..6,
        reps in 0usize..3,
        seed in 0u64..10_000,
        picks in (0usize..64, 0usize..64),
        code in 0usize..16,
    ) {
        let ansatz = EfficientSu2::new(nq, reps);
        let template = CompiledAnsatz::compile(&ansatz).unwrap();
        let d = template.num_parameters();
        let base = config_for(seed, d);
        let (i, j) = (picks.0 % d, picks.1 % d);
        let mut neighbor = base.clone();
        neighbor[i] = code / 4;
        neighbor[j] = code % 4;
        let start = template.first_op_of(i).min(template.first_op_of(j));
        prop_assert_eq!(
            incremental(&template, &base, &neighbor, start),
            full(&template, &neighbor)
        );
    }

    /// Any prefix split at all (not just slot boundaries) composes back
    /// to the full run when base and suffix use the same configuration.
    #[test]
    fn arbitrary_split_composes_to_full_run(
        nq in 2usize..6,
        reps in 0usize..3,
        seed in 0u64..10_000,
        split_pick in 0usize..256,
    ) {
        let ansatz = EfficientSu2::new(nq, reps);
        let template = CompiledAnsatz::compile(&ansatz).unwrap();
        let config = config_for(seed, template.num_parameters());
        let split = split_pick % (template.ops().len() + 1);
        prop_assert_eq!(
            incremental(&template, &config, &config, split),
            full(&template, &config)
        );
    }

    /// A checkpoint advanced in hops (`apply_range`) equals one prepared
    /// in a single `run_compiled_prefix` call — the forward-sweep cursor
    /// of the polish session.
    #[test]
    fn advanced_checkpoint_equals_direct_prefix(
        nq in 2usize..6,
        reps in 0usize..3,
        seed in 0u64..10_000,
        hops in proptest::collection::vec(0usize..64, 1..5),
    ) {
        let ansatz = EfficientSu2::new(nq, reps);
        let template = CompiledAnsatz::compile(&ansatz).unwrap();
        let config = config_for(seed, template.num_parameters());
        let mut stops: Vec<usize> = hops.iter().map(|&h| h % (template.ops().len() + 1)).collect();
        stops.sort_unstable();
        let mut advanced = Tableau::zero_state(nq);
        advanced.reset_zero();
        let mut at = 0usize;
        for &stop in &stops {
            advanced.apply_range(&template, &config, at, stop);
            at = stop;
        }
        let mut direct = Tableau::zero_state(nq);
        direct.run_compiled_prefix(&template, &config, at);
        prop_assert_eq!(advanced, direct);
    }
}

/// The boundary slots called out by the satellite contract: slot 0
/// (empty prefix — the replay degenerates to a full run) and the last
/// slot (maximal prefix — the replay is a minimal suffix), across every
/// angle index.
#[test]
fn slot_zero_and_last_slot_boundaries() {
    for (nq, reps) in [(2usize, 0usize), (3, 1), (4, 2)] {
        let ansatz = EfficientSu2::new(nq, reps);
        let template = CompiledAnsatz::compile(&ansatz).unwrap();
        let d = template.num_parameters();
        let base = config_for(7 * nq as u64 + reps as u64, d);
        for slot in [0, d - 1] {
            let start = template.first_op_of(slot);
            if slot == 0 {
                assert_eq!(start, 0, "slot 0 of EfficientSu2 is the first op");
            } else {
                assert!(start > 0, "the last slot must have a nonempty prefix");
            }
            for angle in 0..4 {
                let mut neighbor = base.clone();
                neighbor[slot] = angle;
                assert_eq!(
                    incremental(&template, &base, &neighbor, start),
                    full(&template, &neighbor),
                    "nq {nq} reps {reps} slot {slot} angle {angle}"
                );
            }
        }
    }
}

/// Expectations — not just row states — agree between the two paths
/// (belt and braces: row-state equality already implies it).
#[test]
fn expectations_agree_between_paths() {
    let ansatz = EfficientSu2::new(4, 1);
    let template = CompiledAnsatz::compile(&ansatz).unwrap();
    let d = template.num_parameters();
    let base = config_for(99, d);
    let paulis = ["ZZII", "XXXX", "IYYI", "ZIZI", "XYZI"];
    for slot in 0..d {
        for angle in 0..4 {
            let mut neighbor = base.clone();
            neighbor[slot] = angle;
            let start = template.first_op_of(slot);
            let inc = incremental(&template, &base, &neighbor, start);
            let reference = full(&template, &neighbor);
            for p in paulis {
                let p = p.parse().unwrap();
                assert_eq!(
                    inc.expectation_pauli(&p),
                    reference.expectation_pauli(&p),
                    "slot {slot} angle {angle}"
                );
            }
        }
    }
}
