//! Dense row-major `f64` matrices with the factorizations the chemistry
//! stack needs: Jacobi symmetric eigendecomposition, `S^{-1/2}`
//! orthogonalization, and linear solves via partial-pivot LU.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Errors produced by dense linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Matrix dimensions were incompatible with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation.
        context: &'static str,
    },
    /// A factorization met a (numerically) singular matrix.
    Singular,
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations attempted.
        iterations: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch in {context}")
            }
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense, row-major `f64` matrix.
///
/// # Examples
///
/// ```
/// use cafqa_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let eig = m.eigh().unwrap();
/// assert!((eig.values[0] - 1.0).abs() < 1e-12);
/// assert!((eig.values[1] - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Result of a symmetric eigendecomposition: `A = V diag(values) Vᵀ`.
///
/// Eigenvalues are sorted ascending; column `k` of [`Eigh::vectors`] is the
/// eigenvector for `values[k]`.
#[derive(Debug, Clone)]
pub struct Eigh {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per column.
    pub vectors: Matrix,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Creates a matrix by evaluating `f(i, j)` for each entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns a view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Extracts column `j` as an owned vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            y[i] = acc;
        }
        y
    }

    /// Maximum absolute difference between `self` and the symmetric part of
    /// itself; zero for exactly symmetric matrices.
    pub fn asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Symmetric eigendecomposition by the cyclic Jacobi method.
    ///
    /// Suitable for the small (≤ ~50×50) symmetric matrices arising in SCF;
    /// eigenvalues return sorted ascending with matching eigenvector columns.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for non-square input and
    /// [`LinalgError::NoConvergence`] if the off-diagonal mass does not
    /// vanish within the sweep budget.
    pub fn eigh(&self) -> Result<Eigh, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::DimensionMismatch { context: "eigh" });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        if n == 0 {
            return Ok(Eigh { values: vec![], vectors: v });
        }
        const MAX_SWEEPS: usize = 128;
        let scale = self.frobenius_norm().max(1.0);
        for _sweep in 0..MAX_SWEEPS {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += a[(i, j)] * a[(i, j)];
                }
            }
            if off.sqrt() <= 1e-14 * scale {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&p, &q| a[(p, p)].partial_cmp(&a[(q, q)]).unwrap());
                let values = order.iter().map(|&k| a[(k, k)]).collect();
                let vectors = Matrix::from_fn(n, n, |i, j| v[(i, order[j])]);
                return Ok(Eigh { values, vectors });
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a[(p, q)];
                    if apq.abs() <= 1e-300 {
                        continue;
                    }
                    let app = a[(p, p)];
                    let aqq = a[(q, q)];
                    // Standard Jacobi rotation: choose t = tan(θ) from the
                    // stable quadratic root so |θ| ≤ π/4.
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = if tau >= 0.0 {
                        1.0 / (tau + (1.0 + tau * tau).sqrt())
                    } else {
                        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    for k in 0..n {
                        let akp = a[(k, p)];
                        let akq = a[(k, q)];
                        a[(k, p)] = c * akp - s * akq;
                        a[(k, q)] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[(p, k)];
                        let aqk = a[(q, k)];
                        a[(p, k)] = c * apk - s * aqk;
                        a[(q, k)] = s * apk + c * aqk;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        Err(LinalgError::NoConvergence { iterations: MAX_SWEEPS })
    }

    /// Computes `A^{-1/2}` for a symmetric positive-definite matrix via its
    /// eigendecomposition, used for Löwdin symmetric orthogonalization of
    /// the AO overlap matrix.
    ///
    /// Eigenvalues below `threshold` are treated as linear dependence and
    /// projected out (their inverse square root is set to zero), mirroring
    /// canonical orthogonalization in quantum-chemistry codes.
    ///
    /// # Errors
    ///
    /// Propagates eigensolver failures.
    pub fn inv_sqrt_symmetric(&self, threshold: f64) -> Result<Matrix, LinalgError> {
        let eig = self.eigh()?;
        let n = self.rows;
        let mut out = Matrix::zeros(n, n);
        for k in 0..n {
            let lambda = eig.values[k];
            if lambda <= threshold {
                continue;
            }
            let w = 1.0 / lambda.sqrt();
            for i in 0..n {
                for j in 0..n {
                    out[(i, j)] += eig.vectors[(i, k)] * w * eig.vectors[(j, k)];
                }
            }
        }
        Ok(out)
    }

    /// Solves `A x = b` by LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if a pivot underflows, and
    /// [`LinalgError::DimensionMismatch`] on shape errors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::DimensionMismatch { context: "solve" });
        }
        if b.len() != self.rows {
            return Err(LinalgError::DimensionMismatch { context: "solve rhs" });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut x: Vec<f64> = b.to_vec();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let (piv, pmax) = (k..n)
                .map(|i| (i, a[(i, k)].abs()))
                .max_by(|l, r| l.1.partial_cmp(&r.1).unwrap())
                .unwrap();
            if pmax < 1e-300 {
                return Err(LinalgError::Singular);
            }
            if piv != k {
                for j in 0..n {
                    let tmp = a[(k, j)];
                    a[(k, j)] = a[(piv, j)];
                    a[(piv, j)] = tmp;
                }
                x.swap(k, piv);
                perm.swap(k, piv);
            }
            for i in (k + 1)..n {
                let factor = a[(i, k)] / a[(k, k)];
                a[(i, k)] = 0.0;
                for j in (k + 1)..n {
                    a[(i, j)] -= factor * a[(k, j)];
                }
                x[i] -= factor * x[k];
            }
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= a[(i, j)] * x[j];
            }
            x[i] = acc / a[(i, i)];
        }
        Ok(x)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        out
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
        out
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
        out
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        let mut out = self.clone();
        for a in out.data.iter_mut() {
            *a *= rhs;
        }
        out
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.6} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
    }

    #[test]
    fn eigh_known_2x2() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = a.eigh().unwrap();
        assert!(approx(e.values[0], 1.0, 1e-12));
        assert!(approx(e.values[1], 3.0, 1e-12));
        // Reconstruct A = V D V^T.
        let d = Matrix::from_fn(2, 2, |i, j| if i == j { e.values[i] } else { 0.0 });
        let recon = &(&e.vectors * &d) * &e.vectors.transpose();
        assert!((&recon - &a).frobenius_norm() < 1e-12);
    }

    #[test]
    fn eigh_orthonormal_vectors() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, -2.0], &[1.0, 2.0, 0.0], &[-2.0, 0.0, 3.0]]);
        let e = a.eigh().unwrap();
        let vtv = &e.vectors.transpose() * &e.vectors;
        assert!((&vtv - &Matrix::identity(3)).frobenius_norm() < 1e-12);
        assert!(e.values.windows(2).all(|w| w[0] <= w[1] + 1e-14));
    }

    #[test]
    fn eigh_diagonal_is_identity_rotation() {
        let a = Matrix::from_fn(4, 4, |i, j| if i == j { i as f64 } else { 0.0 });
        let e = a.eigh().unwrap();
        for k in 0..4 {
            assert!(approx(e.values[k], k as f64, 1e-14));
        }
    }

    #[test]
    fn inv_sqrt_squares_to_inverse() {
        let s = Matrix::from_rows(&[&[1.0, 0.4], &[0.4, 1.0]]);
        let x = s.inv_sqrt_symmetric(1e-10).unwrap();
        // X S X should be the identity.
        let probe = &(&x * &s) * &x;
        assert!((&probe - &Matrix::identity(2)).frobenius_norm() < 1e-12);
    }

    #[test]
    fn solve_roundtrip() {
        let a = Matrix::from_rows(&[&[3.0, 1.0, -1.0], &[1.0, -2.0, 4.0], &[2.0, 0.0, 1.0]]);
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!(approx(*xi, *ti, 1e-12));
        }
    }

    #[test]
    fn solve_singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(a.solve(&[1.0, 2.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]);
        let y = a.matvec(&[3.0, 4.0]);
        assert_eq!(y, vec![-1.0, 8.0]);
    }
}
