//! A minimal double-precision complex number.
//!
//! The workspace deliberately avoids external numerics crates; this type
//! provides exactly the operations the simulators and chemistry stack need.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use cafqa_linalg::Complex64;
///
/// let i = Complex64::I;
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// assert!((Complex64::from_polar(2.0, std::f64::consts::PI).re + 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a complex number from polar coordinates `r * e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Returns the squared magnitude `|z|²`, avoiding the square root.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the magnitude `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Returns the argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Returns the multiplicative inverse `1/z`.
    ///
    /// Dividing by zero yields non-finite components, mirroring `f64`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Multiplies by the imaginary unit (a 90° rotation), cheaper than `* I`.
    #[inline]
    pub fn mul_i(self) -> Self {
        Complex64::new(-self.im, self.re)
    }

    /// Scales both components by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64::new(self.re * s, self.im * s)
    }

    /// Returns `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Returns `i^k` for integer `k` (used by Pauli phase bookkeeping).
    #[inline]
    pub fn i_pow(k: i32) -> Self {
        match k.rem_euclid(4) {
            0 => Complex64::ONE,
            1 => Complex64::I,
            2 => Complex64::new(-1.0, 0.0),
            _ => Complex64::new(0.0, -1.0),
        }
    }

    /// Returns true when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Returns true if `|self - other| <= tol`.
    #[inline]
    pub fn approx_eq(self, other: Complex64, tol: f64) -> bool {
        (self - other).norm() <= tol
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::new(re, 0.0)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w ≡ z · w⁻¹
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.25, 4.0);
        assert_eq!(a + b, Complex64::new(1.25, 2.0));
        assert_eq!(a - b, Complex64::new(1.75, -6.0));
        assert!((a * b - Complex64::new(7.625, 6.5)).norm() < 1e-14);
        assert!(((a / b) * b - a).norm() < 1e-14);
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert!((z * z.conj() - Complex64::from(25.0)).norm() < 1e-14);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, FRAC_PI_2);
        assert!(z.approx_eq(Complex64::new(0.0, 2.0), 1e-14));
        assert!((z.arg() - FRAC_PI_2).abs() < 1e-14);
        assert!((z.norm() - 2.0).abs() < 1e-14);
    }

    #[test]
    fn i_pow_cycles() {
        assert_eq!(Complex64::i_pow(0), Complex64::ONE);
        assert_eq!(Complex64::i_pow(1), Complex64::I);
        assert_eq!(Complex64::i_pow(2), Complex64::new(-1.0, 0.0));
        assert_eq!(Complex64::i_pow(3), Complex64::new(0.0, -1.0));
        assert_eq!(Complex64::i_pow(-1), Complex64::i_pow(3));
        assert_eq!(Complex64::i_pow(7), Complex64::i_pow(3));
    }

    #[test]
    fn exp_euler() {
        let z = Complex64::new(0.0, PI);
        assert!(z.exp().approx_eq(Complex64::new(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn mul_i_matches_multiplication() {
        let z = Complex64::new(0.7, -1.3);
        assert_eq!(z.mul_i(), z * Complex64::I);
    }

    #[test]
    fn inv_of_inv() {
        let z = Complex64::new(-2.5, 0.5);
        assert!(z.inv().inv().approx_eq(z, 1e-13));
    }
}
