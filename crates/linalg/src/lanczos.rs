//! Lanczos iteration for the lowest eigenpair of a large symmetric operator.
//!
//! Used as the "Exact" reference solver on qubit Hamiltonians (dimension
//! `2^n`) and on FCI determinant spaces, where the operator is only
//! available as a matrix-vector product.

use crate::matrix::{LinalgError, Matrix};

/// A symmetric linear operator defined by its action on a vector.
///
/// Implementors must be symmetric (`⟨x, A y⟩ = ⟨A x, y⟩`); Lanczos silently
/// produces garbage otherwise.
pub trait SymmetricOp {
    /// Dimension of the space the operator acts on.
    fn dim(&self) -> usize;
    /// Computes `y = A x`. `y` is zero-initialized by the caller.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

impl<F: Fn(&[f64], &mut [f64])> SymmetricOp for (usize, F) {
    fn dim(&self) -> usize {
        self.0
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (self.1)(x, y)
    }
}

impl SymmetricOp for Matrix {
    fn dim(&self) -> usize {
        self.rows()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(&self.matvec(x));
    }
}

/// Options controlling [`lowest_eigenpair`].
#[derive(Debug, Clone)]
pub struct LanczosOptions {
    /// Maximum Krylov subspace dimension per restart.
    pub max_subspace: usize,
    /// Maximum number of restarts.
    pub max_restarts: usize,
    /// Convergence threshold on the residual norm `‖A v − λ v‖`.
    pub tolerance: f64,
    /// Seed for the deterministic pseudo-random start vector.
    pub seed: u64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions { max_subspace: 80, max_restarts: 40, tolerance: 1e-9, seed: 0x5eed_cafa }
    }
}

/// Result of a converged Lanczos run.
#[derive(Debug, Clone)]
pub struct Eigenpair {
    /// The lowest eigenvalue found.
    pub value: f64,
    /// The corresponding unit-norm eigenvector.
    pub vector: Vec<f64>,
    /// Final residual norm `‖A v − λ v‖`.
    pub residual: f64,
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// A tiny xorshift generator so start vectors are reproducible without
/// pulling `rand` into this crate.
fn splitmix_fill(seed: u64, out: &mut [f64]) {
    let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    for x in out.iter_mut() {
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        *x = (z as f64 / u64::MAX as f64) - 0.5;
    }
}

/// Finds the lowest eigenvalue and eigenvector of a symmetric operator by
/// restarted Lanczos with full reorthogonalization.
///
/// Full reorthogonalization keeps the Krylov basis numerically orthonormal,
/// which avoids the classic ghost-eigenvalue problem at the subspace sizes
/// used here (≤ ~100).
///
/// # Errors
///
/// Returns [`LinalgError::NoConvergence`] if the residual does not reach
/// `opts.tolerance` within the restart budget, and propagates eigensolver
/// failures from the tridiagonal solve.
///
/// # Examples
///
/// ```
/// use cafqa_linalg::{lanczos, Matrix};
///
/// let a = Matrix::from_rows(&[&[2.0, -1.0], &[-1.0, 2.0]]);
/// let pair = lanczos::lowest_eigenpair(&a, &lanczos::LanczosOptions::default()).unwrap();
/// assert!((pair.value - 1.0).abs() < 1e-9);
/// ```
pub fn lowest_eigenpair(
    op: &dyn SymmetricOp,
    opts: &LanczosOptions,
) -> Result<Eigenpair, LinalgError> {
    let n = op.dim();
    if n == 0 {
        return Err(LinalgError::DimensionMismatch { context: "lanczos on empty space" });
    }
    if n == 1 {
        let mut y = vec![0.0];
        op.apply(&[1.0], &mut y);
        return Ok(Eigenpair { value: y[0], vector: vec![1.0], residual: 0.0 });
    }
    let m = opts.max_subspace.min(n).max(2);
    let mut v0 = vec![0.0; n];
    splitmix_fill(opts.seed, &mut v0);
    let nv = norm(&v0);
    for x in v0.iter_mut() {
        *x /= nv;
    }

    let mut current = v0;
    let mut last = Eigenpair { value: f64::INFINITY, vector: vec![], residual: f64::INFINITY };
    for _restart in 0..opts.max_restarts {
        let mut basis: Vec<Vec<f64>> = vec![current.clone()];
        let mut alphas: Vec<f64> = Vec::with_capacity(m);
        let mut betas: Vec<f64> = Vec::with_capacity(m);
        let mut w = vec![0.0; n];
        for j in 0..m {
            w.iter_mut().for_each(|x| *x = 0.0);
            op.apply(&basis[j], &mut w);
            let alpha = dot(&w, &basis[j]);
            alphas.push(alpha);
            // Full reorthogonalization (twice is enough).
            for _ in 0..2 {
                for q in &basis {
                    let c = dot(&w, q);
                    for (wi, qi) in w.iter_mut().zip(q) {
                        *wi -= c * qi;
                    }
                }
            }
            let beta = norm(&w);
            if j + 1 == m || beta < 1e-13 {
                break;
            }
            betas.push(beta);
            basis.push(w.iter().map(|x| x / beta).collect());
        }

        // Solve the tridiagonal projection with the dense symmetric solver.
        let k = alphas.len();
        let t = Matrix::from_fn(k, k, |i, j| {
            if i == j {
                alphas[i]
            } else if i + 1 == j || j + 1 == i {
                betas[i.min(j)]
            } else {
                0.0
            }
        });
        let eig = t.eigh()?;
        let theta = eig.values[0];
        let mut ritz = vec![0.0; n];
        for (j, q) in basis.iter().enumerate() {
            let c = eig.vectors[(j, 0)];
            for (ri, qi) in ritz.iter_mut().zip(q) {
                *ri += c * qi;
            }
        }
        let nr = norm(&ritz);
        for x in ritz.iter_mut() {
            *x /= nr;
        }
        let mut av = vec![0.0; n];
        op.apply(&ritz, &mut av);
        let mut residual = 0.0;
        for (ai, vi) in av.iter().zip(&ritz) {
            let r = ai - theta * vi;
            residual += r * r;
        }
        let residual = residual.sqrt();
        last = Eigenpair { value: theta, vector: ritz.clone(), residual };
        if residual <= opts.tolerance {
            return Ok(last);
        }
        current = ritz;
    }
    if last.residual.is_finite() && last.residual <= opts.tolerance * 100.0 {
        // Close enough to be useful for energy reporting; accept with the
        // residual recorded so the caller can decide.
        return Ok(last);
    }
    Err(LinalgError::NoConvergence { iterations: opts.max_restarts })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_dense_agrees_with_eigh() {
        let a = Matrix::from_rows(&[
            &[4.0, 1.0, 0.5, 0.0],
            &[1.0, 3.0, -0.5, 0.2],
            &[0.5, -0.5, 1.0, 0.1],
            &[0.0, 0.2, 0.1, -2.0],
        ]);
        let reference = a.eigh().unwrap().values[0];
        let pair = lowest_eigenpair(&a, &LanczosOptions::default()).unwrap();
        assert!((pair.value - reference).abs() < 1e-8, "{} vs {reference}", pair.value);
    }

    #[test]
    fn matrix_free_operator() {
        // Diagonal operator with known minimum -7 at index 3.
        let diag = [1.0, 5.0, 0.5, -7.0, 2.0, 9.0, 3.0, 4.0];
        let op = (diag.len(), move |x: &[f64], y: &mut [f64]| {
            for i in 0..x.len() {
                y[i] = diag[i] * x[i];
            }
        });
        let pair = lowest_eigenpair(&op, &LanczosOptions::default()).unwrap();
        assert!((pair.value + 7.0).abs() < 1e-9);
        assert!(pair.vector[3].abs() > 0.999);
    }

    #[test]
    fn eigenvector_satisfies_equation() {
        let a = Matrix::from_fn(16, 16, |i, j| {
            if i == j {
                i as f64 - 4.0
            } else if i.abs_diff(j) == 1 {
                0.7
            } else {
                0.0
            }
        });
        let pair = lowest_eigenpair(&a, &LanczosOptions::default()).unwrap();
        let av = a.matvec(&pair.vector);
        for (x, v) in av.iter().zip(&pair.vector) {
            assert!((x - pair.value * v).abs() < 1e-7);
        }
    }

    #[test]
    fn degenerate_lowest_eigenvalue() {
        // -3 twice; Lanczos must still land on -3.
        let a = Matrix::from_fn(6, 6, |i, j| {
            if i != j {
                0.0
            } else if i < 2 {
                -3.0
            } else {
                i as f64
            }
        });
        let pair = lowest_eigenpair(&a, &LanczosOptions::default()).unwrap();
        assert!((pair.value + 3.0).abs() < 1e-8);
    }

    #[test]
    fn dimension_one() {
        let a = Matrix::from_rows(&[&[42.0]]);
        let pair = lowest_eigenpair(&a, &LanczosOptions::default()).unwrap();
        assert_eq!(pair.value, 42.0);
    }
}
