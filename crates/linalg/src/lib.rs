//! Dense linear algebra for the CAFQA reproduction.
//!
//! The CAFQA workspace is self-contained: no external numerics crates.
//! This crate provides the complex scalar type shared by the simulators
//! ([`Complex64`]), small dense matrices with a Jacobi symmetric
//! eigensolver ([`Matrix`]), and a restarted [`lanczos`] iteration used as
//! the exact-diagonalization reference for qubit Hamiltonians and FCI
//! spaces.
//!
//! # Examples
//!
//! ```
//! use cafqa_linalg::{Matrix, lanczos};
//!
//! // Lowest eigenvalue of a symmetric matrix two ways.
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, -3.0]]);
//! let dense = a.eigh().unwrap().values[0];
//! let krylov = lanczos::lowest_eigenpair(&a, &Default::default()).unwrap().value;
//! assert!((dense - krylov).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

mod complex;
pub mod lanczos;
mod matrix;

pub use complex::Complex64;
pub use matrix::{Eigh, LinalgError, Matrix};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn symmetric_matrix(n: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-5.0f64..5.0, n * n).prop_map(move |v| {
            let mut m = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    let x = v[i * n + j];
                    m[(i, j)] += x / 2.0;
                    m[(j, i)] += x / 2.0;
                }
            }
            m
        })
    }

    proptest! {
        #[test]
        fn eigh_reconstructs(m in symmetric_matrix(5)) {
            let e = m.eigh().unwrap();
            let d = Matrix::from_fn(5, 5, |i, j| if i == j { e.values[i] } else { 0.0 });
            let recon = &(&e.vectors * &d) * &e.vectors.transpose();
            prop_assert!((&recon - &m).frobenius_norm() < 1e-9);
        }

        #[test]
        fn eigh_trace_preserved(m in symmetric_matrix(6)) {
            let trace: f64 = (0..6).map(|i| m[(i, i)]).sum();
            let e = m.eigh().unwrap();
            let sum: f64 = e.values.iter().sum();
            prop_assert!((trace - sum).abs() < 1e-9);
        }

        #[test]
        fn lanczos_matches_eigh(m in symmetric_matrix(8)) {
            let dense = m.eigh().unwrap().values[0];
            let pair = lanczos::lowest_eigenpair(&m, &lanczos::LanczosOptions::default()).unwrap();
            prop_assert!((dense - pair.value).abs() < 1e-7);
        }

        #[test]
        fn solve_is_inverse(m in symmetric_matrix(4), x in proptest::collection::vec(-3.0f64..3.0, 4)) {
            // Shift the diagonal to keep it well-conditioned.
            let mut a = m.clone();
            for i in 0..4 { a[(i, i)] += 10.0; }
            let b = a.matvec(&x);
            let solved = a.solve(&b).unwrap();
            for (s, t) in solved.iter().zip(&x) {
                prop_assert!((s - t).abs() < 1e-8);
            }
        }

        #[test]
        fn complex_field_axioms(ar in -3.0f64..3.0, ai in -3.0f64..3.0, br in -3.0f64..3.0, bi in -3.0f64..3.0) {
            let a = Complex64::new(ar, ai);
            let b = Complex64::new(br, bi);
            prop_assert!((a * b - b * a).norm() < 1e-12);
            prop_assert!(((a + b).conj() - (a.conj() + b.conj())).norm() < 1e-12);
            prop_assert!(((a * b).conj() - (a.conj() * b.conj())).norm() < 1e-12);
            prop_assert!(((a * b).norm() - a.norm() * b.norm()).abs() < 1e-10);
        }
    }
}
