//! Gate set: Cliffords, parameterized rotations, and T gates.

use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

use cafqa_linalg::Complex64;

/// A gate in the CAFQA circuit IR.
///
/// The set is exactly what the paper's pipeline needs: the Clifford
/// generators (`H`, `S`, `S†`, Paulis, `CX`, `CZ`), the parameterized
/// single-qubit rotations of the hardware-efficient ansatz, and `T`/`T†`
/// for the beyond-Clifford extension (§8 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(usize),
    /// Phase gate `S = diag(1, i)`.
    S(usize),
    /// Inverse phase gate `S† = diag(1, -i)`.
    Sdg(usize),
    /// Pauli-X.
    X(usize),
    /// Pauli-Y.
    Y(usize),
    /// Pauli-Z.
    Z(usize),
    /// Controlled-X.
    Cx {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// Controlled-Z (symmetric in its qubits).
    Cz(usize, usize),
    /// X-rotation `exp(-i θ X / 2)`.
    Rx {
        /// Target qubit.
        qubit: usize,
        /// Rotation angle in radians.
        theta: f64,
    },
    /// Y-rotation `exp(-i θ Y / 2)`.
    Ry {
        /// Target qubit.
        qubit: usize,
        /// Rotation angle in radians.
        theta: f64,
    },
    /// Z-rotation `exp(-i θ Z / 2)`.
    Rz {
        /// Target qubit.
        qubit: usize,
        /// Rotation angle in radians.
        theta: f64,
    },
    /// T gate `diag(1, e^{iπ/4})`.
    T(usize),
    /// Inverse T gate.
    Tdg(usize),
}

impl Gate {
    /// The qubits this gate touches (one or two entries).
    pub fn qubits(&self) -> Vec<usize> {
        match *self {
            Gate::H(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::Rx { qubit: q, .. }
            | Gate::Ry { qubit: q, .. }
            | Gate::Rz { qubit: q, .. } => vec![q],
            Gate::Cx { control, target } => vec![control, target],
            Gate::Cz(a, b) => vec![a, b],
        }
    }

    /// True if this gate is Clifford regardless of parameters (rotations
    /// count only when their angle is a multiple of π/2; see
    /// [`CliffordAngle::from_radians`]).
    pub fn is_structurally_clifford(&self) -> bool {
        match self {
            Gate::Rx { theta, .. } | Gate::Ry { theta, .. } | Gate::Rz { theta, .. } => {
                CliffordAngle::from_radians(*theta).is_some()
            }
            Gate::T(_) | Gate::Tdg(_) => false,
            _ => true,
        }
    }

    /// The 2×2 unitary of a single-qubit gate, row-major; `None` for
    /// two-qubit gates.
    pub fn single_qubit_unitary(&self) -> Option<[Complex64; 4]> {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let c = |re: f64, im: f64| Complex64::new(re, im);
        Some(match *self {
            Gate::H(_) => [c(s, 0.0), c(s, 0.0), c(s, 0.0), c(-s, 0.0)],
            Gate::S(_) => [c(1.0, 0.0), c(0.0, 0.0), c(0.0, 0.0), c(0.0, 1.0)],
            Gate::Sdg(_) => [c(1.0, 0.0), c(0.0, 0.0), c(0.0, 0.0), c(0.0, -1.0)],
            Gate::X(_) => [c(0.0, 0.0), c(1.0, 0.0), c(1.0, 0.0), c(0.0, 0.0)],
            Gate::Y(_) => [c(0.0, 0.0), c(0.0, -1.0), c(0.0, 1.0), c(0.0, 0.0)],
            Gate::Z(_) => [c(1.0, 0.0), c(0.0, 0.0), c(0.0, 0.0), c(-1.0, 0.0)],
            Gate::T(_) => {
                [c(1.0, 0.0), c(0.0, 0.0), c(0.0, 0.0), Complex64::from_polar(1.0, FRAC_PI_4)]
            }
            Gate::Tdg(_) => {
                [c(1.0, 0.0), c(0.0, 0.0), c(0.0, 0.0), Complex64::from_polar(1.0, -FRAC_PI_4)]
            }
            Gate::Rx { theta, .. } => {
                let (ch, sh) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                [c(ch, 0.0), c(0.0, -sh), c(0.0, -sh), c(ch, 0.0)]
            }
            Gate::Ry { theta, .. } => {
                let (ch, sh) = ((theta / 2.0).cos(), (theta / 2.0).sin());
                [c(ch, 0.0), c(-sh, 0.0), c(sh, 0.0), c(ch, 0.0)]
            }
            Gate::Rz { theta, .. } => [
                Complex64::from_polar(1.0, -theta / 2.0),
                c(0.0, 0.0),
                c(0.0, 0.0),
                Complex64::from_polar(1.0, theta / 2.0),
            ],
            Gate::Cx { .. } | Gate::Cz(..) => return None,
        })
    }
}

/// One of the four Clifford rotation angles `{0, π/2, π, 3π/2}` that the
/// CAFQA discrete search draws from (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CliffordAngle {
    /// θ = 0.
    Zero,
    /// θ = π/2.
    Quarter,
    /// θ = π.
    Half,
    /// θ = 3π/2.
    ThreeQuarter,
}

/// All four Clifford angles, in index order.
pub const CLIFFORD_ANGLES: [CliffordAngle; 4] =
    [CliffordAngle::Zero, CliffordAngle::Quarter, CliffordAngle::Half, CliffordAngle::ThreeQuarter];

impl CliffordAngle {
    /// The discrete index `k` with θ = k·π/2.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            CliffordAngle::Zero => 0,
            CliffordAngle::Quarter => 1,
            CliffordAngle::Half => 2,
            CliffordAngle::ThreeQuarter => 3,
        }
    }

    /// Builds from a discrete index (mod 4).
    #[inline]
    pub fn from_index(k: usize) -> Self {
        CLIFFORD_ANGLES[k % 4]
    }

    /// The angle in radians.
    #[inline]
    pub fn radians(self) -> f64 {
        self.index() as f64 * FRAC_PI_2
    }

    /// Classifies an arbitrary angle as Clifford if it is within `1e-9` of
    /// a multiple of π/2 (mod 2π).
    pub fn from_radians(theta: f64) -> Option<Self> {
        let k = theta / FRAC_PI_2;
        let rounded = k.round();
        if (k - rounded).abs() < 1e-9 {
            Some(CliffordAngle::from_index(rounded.rem_euclid(4.0) as usize))
        } else {
            None
        }
    }
}

/// The angle `k·π/4` of an eighth-turn index (taken mod 8) — the extended
/// rotation grid of the CAFQA+kT search. Shared by
/// [`crate::Ansatz::bind_eighth`] and the compiled-template eighth-turn
/// renderer so both compute bit-identical angles.
#[inline]
pub fn eighth_angle(k: usize) -> f64 {
    (k % 8) as f64 * (FRAC_PI_2 / 2.0)
}

/// The Pauli rotation axis of a parameterized gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotationAxis {
    /// `Rx` rotations.
    X,
    /// `Ry` rotations.
    Y,
    /// `Rz` rotations.
    Z,
}

/// Decomposes a Clifford-angle rotation into Clifford gates plus an exact
/// global phase: `R_axis(k·π/2) = phase · (gate list applied in order)`.
///
/// The tableau simulator ignores the phase; the Clifford+T cross-term
/// engine multiplies it back in.
///
/// The identities used (all exact):
/// `Rz(π/2) = e^{-iπ/4} S`, `Rz(π) = -i Z`, `Rz(3π/2) = e^{-i3π/4} S†`,
/// `Ry(π/2) = H·Z`, `Ry(π) = -i Y`, `Ry(3π/2) = -(H·X)`,
/// `Rx(θ) = H · Rz(θ) · H`.
pub fn clifford_rotation(
    axis: RotationAxis,
    qubit: usize,
    angle: CliffordAngle,
) -> (Vec<Gate>, Complex64) {
    // Gate lists are in application (circuit) order: first entry acts first.
    let phase_s = Complex64::from_polar(1.0, -FRAC_PI_4);
    let phase_z = Complex64::new(0.0, -1.0);
    let phase_sdg = Complex64::from_polar(1.0, -3.0 * FRAC_PI_4);
    match (axis, angle) {
        (_, CliffordAngle::Zero) => (vec![], Complex64::ONE),
        (RotationAxis::Z, CliffordAngle::Quarter) => (vec![Gate::S(qubit)], phase_s),
        (RotationAxis::Z, CliffordAngle::Half) => (vec![Gate::Z(qubit)], phase_z),
        (RotationAxis::Z, CliffordAngle::ThreeQuarter) => (vec![Gate::Sdg(qubit)], phase_sdg),
        (RotationAxis::Y, CliffordAngle::Quarter) => {
            (vec![Gate::Z(qubit), Gate::H(qubit)], Complex64::ONE)
        }
        (RotationAxis::Y, CliffordAngle::Half) => (vec![Gate::Y(qubit)], phase_z),
        (RotationAxis::Y, CliffordAngle::ThreeQuarter) => {
            (vec![Gate::X(qubit), Gate::H(qubit)], Complex64::new(-1.0, 0.0))
        }
        (RotationAxis::X, CliffordAngle::Quarter) => {
            (vec![Gate::H(qubit), Gate::S(qubit), Gate::H(qubit)], phase_s)
        }
        (RotationAxis::X, CliffordAngle::Half) => (vec![Gate::X(qubit)], phase_z),
        (RotationAxis::X, CliffordAngle::ThreeQuarter) => {
            (vec![Gate::H(qubit), Gate::Sdg(qubit), Gate::H(qubit)], phase_sdg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_mul(a: &[Complex64; 4], b: &[Complex64; 4]) -> [Complex64; 4] {
        [
            a[0] * b[0] + a[1] * b[2],
            a[0] * b[1] + a[1] * b[3],
            a[2] * b[0] + a[3] * b[2],
            a[2] * b[1] + a[3] * b[3],
        ]
    }

    fn rotation_gate(axis: RotationAxis, theta: f64) -> Gate {
        match axis {
            RotationAxis::X => Gate::Rx { qubit: 0, theta },
            RotationAxis::Y => Gate::Ry { qubit: 0, theta },
            RotationAxis::Z => Gate::Rz { qubit: 0, theta },
        }
    }

    #[test]
    fn clifford_rotation_decompositions_are_exact() {
        for axis in [RotationAxis::X, RotationAxis::Y, RotationAxis::Z] {
            for angle in CLIFFORD_ANGLES {
                let reference =
                    rotation_gate(axis, angle.radians()).single_qubit_unitary().unwrap();
                let (gates, phase) = clifford_rotation(axis, 0, angle);
                // Compose in application order: matrix = G_k ... G_1.
                let mut acc = [Complex64::ONE, Complex64::ZERO, Complex64::ZERO, Complex64::ONE];
                for g in &gates {
                    acc = mat_mul(&g.single_qubit_unitary().unwrap(), &acc);
                }
                for (i, r) in reference.iter().enumerate() {
                    let lhs = phase * acc[i];
                    assert!(lhs.approx_eq(*r, 1e-12), "{axis:?} {angle:?} entry {i}: {lhs} vs {r}");
                }
            }
        }
    }

    #[test]
    fn clifford_angle_classification() {
        assert_eq!(CliffordAngle::from_radians(0.0), Some(CliffordAngle::Zero));
        assert_eq!(CliffordAngle::from_radians(FRAC_PI_2), Some(CliffordAngle::Quarter));
        assert_eq!(CliffordAngle::from_radians(3.0 * FRAC_PI_2), Some(CliffordAngle::ThreeQuarter));
        assert_eq!(
            CliffordAngle::from_radians(2.0 * std::f64::consts::PI),
            Some(CliffordAngle::Zero)
        );
        assert_eq!(CliffordAngle::from_radians(-FRAC_PI_2), Some(CliffordAngle::ThreeQuarter));
        assert_eq!(CliffordAngle::from_radians(FRAC_PI_4), None);
    }

    #[test]
    fn structurally_clifford_detection() {
        assert!(Gate::H(0).is_structurally_clifford());
        assert!(Gate::Cx { control: 0, target: 1 }.is_structurally_clifford());
        assert!(Gate::Ry { qubit: 0, theta: std::f64::consts::PI }.is_structurally_clifford());
        assert!(!Gate::Ry { qubit: 0, theta: 0.3 }.is_structurally_clifford());
        assert!(!Gate::T(0).is_structurally_clifford());
    }

    #[test]
    fn unitaries_are_unitary() {
        let gates = [
            Gate::H(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::X(0),
            Gate::Y(0),
            Gate::Z(0),
            Gate::T(0),
            Gate::Tdg(0),
            Gate::Rx { qubit: 0, theta: 0.7 },
            Gate::Ry { qubit: 0, theta: -1.1 },
            Gate::Rz { qubit: 0, theta: 2.9 },
        ];
        for g in gates {
            let u = g.single_qubit_unitary().unwrap();
            let dag = [u[0].conj(), u[2].conj(), u[1].conj(), u[3].conj()];
            let prod = mat_mul(&dag, &u);
            assert!(prod[0].approx_eq(Complex64::ONE, 1e-12), "{g:?}");
            assert!(prod[3].approx_eq(Complex64::ONE, 1e-12), "{g:?}");
            assert!(prod[1].norm() < 1e-12 && prod[2].norm() < 1e-12, "{g:?}");
        }
    }

    #[test]
    fn qubit_lists() {
        assert_eq!(Gate::Cx { control: 3, target: 1 }.qubits(), vec![3, 1]);
        assert_eq!(Gate::Rz { qubit: 2, theta: 0.1 }.qubits(), vec![2]);
    }
}
