//! Hardware-efficient parameterized ansatz circuits.
//!
//! CAFQA builds on a hardware-efficient `EfficientSU2`-style ansatz
//! (paper §2.2 and Fig. 3): alternating layers of parameterized RY/RZ
//! rotations and ladders of entangling CX gates, whose *fixed* gates are
//! all Clifford. Restricting the rotation angles to multiples of π/2
//! makes the whole circuit Clifford.

use crate::circuit::Circuit;
use crate::gate::CliffordAngle;

/// The single-qubit measurement basis a qubit is rotated into by a
/// per-qubit single-Clifford change of basis.
///
/// The Ising fast path (`cafqa_core::ising`) classifies Hamiltonians
/// whose every qubit column is I/Z-only, I/X-only, or I/Y-only; the
/// per-qubit basis records which, so the winning ±1 eigenvalue
/// assignment can be lifted back to a product eigenstate through
/// [`Ansatz::eigenstate_config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalBasis {
    /// Computational basis (Z eigenstates `|0⟩`/`|1⟩`) — the default for
    /// qubits outside every term's support.
    #[default]
    Z,
    /// Hadamard basis (X eigenstates `|+⟩`/`|−⟩`).
    X,
    /// Circular basis (Y eigenstates `|+i⟩`/`|−i⟩`).
    Y,
}

/// A parameterized circuit family that CAFQA can search over.
///
/// Implementors define a fixed structure whose tunable rotation angles are
/// supplied at bind time. All fixed gates must be Clifford for the bound
/// circuit to be Clifford at Clifford angles.
///
/// `Sync` is a supertrait so candidate evaluation can be sharded across
/// worker threads while borrowing one ansatz (implementors are plain
/// structural descriptions, so this costs nothing).
pub trait Ansatz: Sync {
    /// Width of the circuit.
    fn num_qubits(&self) -> usize;
    /// Number of tunable rotation parameters.
    fn num_parameters(&self) -> usize;
    /// Binds concrete angles (radians) and returns the circuit.
    ///
    /// # Panics
    ///
    /// Implementations panic if `params.len() != self.num_parameters()`.
    fn bind(&self, params: &[f64]) -> Circuit;

    /// Binds discrete Clifford indices `k` (angle `k·π/2`).
    fn bind_clifford(&self, indices: &[usize]) -> Circuit {
        let params: Vec<f64> =
            indices.iter().map(|&k| CliffordAngle::from_index(k).radians()).collect();
        self.bind(&params)
    }

    /// Binds discrete eighth-turn indices `k` (angle `k·π/4`), the extended
    /// grid of the CAFQA+kT search. Even `k` are Clifford; odd `k` each cost
    /// one T-branch doubling in the stabilizer-rank engine.
    fn bind_eighth(&self, indices: &[usize]) -> Circuit {
        let params: Vec<f64> = indices.iter().map(|&k| crate::gate::eighth_angle(k)).collect();
        self.bind(&params)
    }

    /// The discrete Clifford configuration preparing the product state
    /// whose qubit `q` is the `±1` eigenstate of `bases[q]` — eigenvalue
    /// `+1` where bit `q` of `bits` is 0, `−1` where it is 1.
    ///
    /// Returns `None` when this ansatz family cannot express such a
    /// product state exactly (the default): the Ising fast path then
    /// declines to route and the full search runs unchanged. `bases`
    /// must have length [`num_qubits`](Self::num_qubits).
    fn eigenstate_config(&self, bits: u64, bases: &[LocalBasis]) -> Option<Vec<usize>> {
        let _ = (bits, bases);
        None
    }
}

/// Entanglement topology for the CX ladder between rotation layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Entanglement {
    /// `CX(q, q+1)` for `q = 0..n-1` (the paper's choice: "one layer of
    /// linear entanglement", §6).
    #[default]
    Linear,
    /// Linear plus a wrap-around `CX(n-1, 0)`.
    Circular,
    /// All ordered pairs `CX(i, j)` with `i < j`.
    Full,
}

/// The `EfficientSU2`-equivalent hardware-efficient ansatz.
///
/// Structure for `reps = r`: `r + 1` rotation layers (RY on every qubit,
/// then RZ on every qubit), with an entangling ladder between consecutive
/// rotation layers. Parameter count is `2 · n · (r + 1)`.
///
/// Parameter layout is layer-major: layer 0's RY angles (qubit order),
/// layer 0's RZ angles, layer 1's RY angles, …
///
/// # Examples
///
/// ```
/// use cafqa_circuit::{Ansatz, EfficientSu2};
///
/// let ansatz = EfficientSu2::new(4, 1);
/// assert_eq!(ansatz.num_parameters(), 16);
/// let circuit = ansatz.bind_clifford(&vec![0; 16]);
/// assert!(circuit.is_clifford());
/// ```
#[derive(Debug, Clone)]
pub struct EfficientSu2 {
    num_qubits: usize,
    reps: usize,
    entanglement: Entanglement,
}

impl EfficientSu2 {
    /// Creates the ansatz with linear entanglement (the paper's default).
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits == 0`.
    pub fn new(num_qubits: usize, reps: usize) -> Self {
        assert!(num_qubits > 0, "ansatz needs at least one qubit");
        EfficientSu2 { num_qubits, reps, entanglement: Entanglement::Linear }
    }

    /// Selects a different entanglement topology.
    pub fn with_entanglement(mut self, entanglement: Entanglement) -> Self {
        self.entanglement = entanglement;
        self
    }

    /// Number of repetition blocks.
    pub fn reps(&self) -> usize {
        self.reps
    }

    /// The entangling pairs for one ladder.
    fn entangling_pairs(&self) -> Vec<(usize, usize)> {
        let n = self.num_qubits;
        match self.entanglement {
            Entanglement::Linear => (0..n.saturating_sub(1)).map(|q| (q, q + 1)).collect(),
            Entanglement::Circular => {
                let mut pairs: Vec<(usize, usize)> =
                    (0..n.saturating_sub(1)).map(|q| (q, q + 1)).collect();
                if n > 2 {
                    pairs.push((n - 1, 0));
                }
                pairs
            }
            Entanglement::Full => {
                let mut pairs = Vec::new();
                for i in 0..n {
                    for j in (i + 1)..n {
                        pairs.push((i, j));
                    }
                }
                pairs
            }
        }
    }

    /// The discrete Clifford configuration that prepares the computational
    /// basis state `|bits⟩` exactly — all angles zero except the *final* RY
    /// layer, which applies `Ry(π)` wherever `bits` has a 1.
    ///
    /// CAFQA seeds its Bayesian search with this configuration for the
    /// Hartree-Fock bitstring, which guarantees the search result is never
    /// worse than HF (paper §1: "always equal or outperform").
    pub fn basis_state_config(&self, bits: u64) -> Vec<usize> {
        let mut cfg = vec![0usize; self.num_parameters()];
        let last_ry_base = self.reps * 2 * self.num_qubits;
        for q in 0..self.num_qubits {
            if (bits >> q) & 1 == 1 {
                cfg[last_ry_base + q] = 2; // Ry(π) = -iY flips |0⟩ → |1⟩.
            }
        }
        cfg
    }

    /// Describes parameter `k` as `(layer, axis, qubit)` with axis `'y'` or
    /// `'z'`; useful for logs and tests.
    pub fn parameter_info(&self, k: usize) -> (usize, char, usize) {
        let per_layer = 2 * self.num_qubits;
        let layer = k / per_layer;
        let within = k % per_layer;
        if within < self.num_qubits {
            (layer, 'y', within)
        } else {
            (layer, 'z', within - self.num_qubits)
        }
    }
}

impl Ansatz for EfficientSu2 {
    fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    fn num_parameters(&self) -> usize {
        2 * self.num_qubits * (self.reps + 1)
    }

    /// All gates before the final rotation layer act as the identity on
    /// `|0…0⟩` (zero-angle rotations, and CX ladders whose controls are
    /// all `|0⟩`), so the final RY/RZ pair on each qubit prepares the
    /// product state directly: `Ry(kπ/2)` selects the eigenstate axis
    /// (`k ∈ {0,2}` for Z, `{1,3}` for X/Y) and `Rz(π/2)` turns `|±⟩`
    /// into `|±i⟩` for Y columns.
    fn eigenstate_config(&self, bits: u64, bases: &[LocalBasis]) -> Option<Vec<usize>> {
        assert_eq!(bases.len(), self.num_qubits, "one basis per qubit");
        if self.num_qubits > 64 {
            return None;
        }
        let mut cfg = vec![0usize; self.num_parameters()];
        let last_ry_base = self.reps * 2 * self.num_qubits;
        let last_rz_base = last_ry_base + self.num_qubits;
        for (q, &basis) in bases.iter().enumerate() {
            let minus = (bits >> q) & 1 == 1;
            let (k_ry, k_rz) = match basis {
                LocalBasis::Z => (if minus { 2 } else { 0 }, 0),
                LocalBasis::X => (if minus { 3 } else { 1 }, 0),
                LocalBasis::Y => (if minus { 3 } else { 1 }, 1),
            };
            cfg[last_ry_base + q] = k_ry;
            cfg[last_rz_base + q] = k_rz;
        }
        Some(cfg)
    }

    fn bind(&self, params: &[f64]) -> Circuit {
        assert_eq!(
            params.len(),
            self.num_parameters(),
            "expected {} parameters",
            self.num_parameters()
        );
        let n = self.num_qubits;
        let mut c = Circuit::new(n);
        let mut next = 0usize;
        for layer in 0..=self.reps {
            for q in 0..n {
                c.ry(q, params[next]);
                next += 1;
            }
            for q in 0..n {
                c.rz(q, params[next]);
                next += 1;
            }
            if layer < self.reps {
                for (a, b) in self.entangling_pairs() {
                    c.cx(a, b);
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn parameter_count_matches_qiskit_efficient_su2() {
        // reps=1 EfficientSU2 on n qubits has 4n parameters.
        for n in [2, 4, 10] {
            assert_eq!(EfficientSu2::new(n, 1).num_parameters(), 4 * n);
        }
        assert_eq!(EfficientSu2::new(3, 2).num_parameters(), 18);
    }

    #[test]
    fn clifford_binding_is_clifford() {
        let a = EfficientSu2::new(3, 1);
        let c = a.bind_clifford(&[1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0]);
        assert!(c.is_clifford());
    }

    #[test]
    fn generic_binding_counts_gates() {
        let a = EfficientSu2::new(4, 1);
        let c = a.bind(&[0.1; 16]);
        // 8 rotations per layer × 2 layers + 3 CX.
        assert_eq!(c.num_gates(), 19);
        let cx = c.gates().iter().filter(|g| matches!(g, Gate::Cx { .. })).count();
        assert_eq!(cx, 3);
    }

    #[test]
    fn entanglement_topologies() {
        assert_eq!(EfficientSu2::new(4, 1).entangling_pairs().len(), 3);
        assert_eq!(
            EfficientSu2::new(4, 1)
                .with_entanglement(Entanglement::Circular)
                .entangling_pairs()
                .len(),
            4
        );
        assert_eq!(
            EfficientSu2::new(4, 1).with_entanglement(Entanglement::Full).entangling_pairs().len(),
            6
        );
    }

    #[test]
    fn eighth_binding_has_non_clifford_rotations() {
        let a = EfficientSu2::new(2, 0);
        // indices: one odd index -> one non-Clifford rotation.
        let c = a.bind_eighth(&[1, 0, 0, 0]);
        assert_eq!(c.non_clifford_count(), 1);
        assert!(!c.is_clifford());
    }

    #[test]
    fn basis_state_config_layout() {
        let a = EfficientSu2::new(3, 1);
        let cfg = a.basis_state_config(0b101);
        // Final RY layer starts at index 2*3*1 = 6.
        assert_eq!(cfg[6], 2);
        assert_eq!(cfg[7], 0);
        assert_eq!(cfg[8], 2);
        assert!(cfg[..6].iter().all(|&k| k == 0));
    }

    #[test]
    fn eigenstate_config_z_matches_basis_state_config() {
        // All-Z bases degenerate to the computational-basis preparation.
        let a = EfficientSu2::new(4, 1);
        for bits in [0b0000u64, 0b1010, 0b1111] {
            let cfg = a.eigenstate_config(bits, &[LocalBasis::Z; 4]).unwrap();
            assert_eq!(cfg, a.basis_state_config(bits));
        }
    }

    #[test]
    fn eigenstate_config_layout_and_clifford() {
        let a = EfficientSu2::new(3, 1);
        let bases = [LocalBasis::X, LocalBasis::Y, LocalBasis::Z];
        let cfg = a.eigenstate_config(0b110, &bases).unwrap();
        // Only the final layer (indices 6..12) is touched.
        assert!(cfg[..6].iter().all(|&k| k == 0));
        // q0: |+⟩ → Ry(π/2); q1: |−i⟩ → Ry(3π/2)Rz(π/2); q2: |1⟩ → Ry(π).
        assert_eq!(&cfg[6..9], &[1, 3, 2]);
        assert_eq!(&cfg[9..12], &[0, 1, 0]);
        assert!(a.bind_clifford(&cfg).is_clifford());
    }

    #[test]
    fn eigenstate_config_default_is_none() {
        struct Opaque;
        impl Ansatz for Opaque {
            fn num_qubits(&self) -> usize {
                1
            }
            fn num_parameters(&self) -> usize {
                0
            }
            fn bind(&self, _params: &[f64]) -> Circuit {
                Circuit::new(1)
            }
        }
        assert!(Opaque.eigenstate_config(0, &[LocalBasis::Z]).is_none());
    }

    #[test]
    fn parameter_info_layout() {
        let a = EfficientSu2::new(3, 1);
        assert_eq!(a.parameter_info(0), (0, 'y', 0));
        assert_eq!(a.parameter_info(3), (0, 'z', 0));
        assert_eq!(a.parameter_info(6), (1, 'y', 0));
        assert_eq!(a.parameter_info(11), (1, 'z', 2));
    }
}
