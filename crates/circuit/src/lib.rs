//! Quantum circuit IR and hardware-efficient ansatz builders for CAFQA.
//!
//! The circuit model is deliberately small: the Clifford generators, the
//! three parameterized Pauli rotations, and `T`/`T†`. A [`Circuit`] bound
//! from an [`EfficientSu2`] ansatz at Clifford angles (`k·π/2`) lowers via
//! [`Circuit::to_clifford_gates`] to primitive Cliffords plus an exact
//! global phase, which is what the stabilizer simulator and the
//! Clifford+T stabilizer-rank engine consume.
//!
//! # Examples
//!
//! ```
//! use cafqa_circuit::{Ansatz, EfficientSu2};
//!
//! // The paper's hardware-efficient ansatz with one entangling layer.
//! let ansatz = EfficientSu2::new(10, 1);
//! assert_eq!(ansatz.num_parameters(), 40);
//! let clifford = ansatz.bind_clifford(&vec![1; 40]);
//! let (gates, _phase) = clifford.to_clifford_gates().unwrap();
//! assert!(!gates.is_empty());
//! ```

#![warn(missing_docs)]

mod ansatz;
mod circuit;
mod gate;
mod template;

pub use ansatz::{Ansatz, EfficientSu2, Entanglement, LocalBasis};
pub use circuit::Circuit;
pub use gate::{
    clifford_rotation, eighth_angle, CliffordAngle, Gate, RotationAxis, CLIFFORD_ANGLES,
};
pub use template::{CompiledAnsatz, TemplateOp};
