//! A linear-sequence quantum circuit IR.

use cafqa_linalg::Complex64;

use crate::gate::{clifford_rotation, CliffordAngle, Gate, RotationAxis};

/// An ordered list of gates on a fixed-width qubit register.
///
/// # Examples
///
/// ```
/// use cafqa_circuit::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.ry(0, std::f64::consts::FRAC_PI_2).cx(0, 1);
/// assert_eq!(c.num_gates(), 2);
/// assert!(c.is_clifford());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    n: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// An empty circuit on `n` qubits.
    pub fn new(n: usize) -> Self {
        Circuit { n, gates: Vec::new() }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of gates.
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// The gate sequence in application order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate touches a qubit outside the register or if a
    /// two-qubit gate reuses a qubit.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        let qs = gate.qubits();
        for &q in &qs {
            assert!(q < self.n, "gate {gate:?} touches qubit {q} outside register of {}", self.n);
        }
        if qs.len() == 2 {
            assert_ne!(qs[0], qs[1], "two-qubit gate with duplicate qubit");
        }
        self.gates.push(gate);
        self
    }

    /// Appends all gates of another circuit.
    ///
    /// # Panics
    ///
    /// Panics if the other circuit is wider than this one.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert!(other.n <= self.n, "appending a wider circuit");
        for g in &other.gates {
            self.push(*g);
        }
        self
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H(q))
    }
    /// Appends an S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Gate::S(q))
    }
    /// Appends an S† gate.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Sdg(q))
    }
    /// Appends a Pauli-X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X(q))
    }
    /// Appends a Pauli-Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Y(q))
    }
    /// Appends a Pauli-Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Z(q))
    }
    /// Appends a T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push(Gate::T(q))
    }
    /// Appends a CX gate.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cx { control, target })
    }
    /// Appends a CZ gate.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Cz(a, b))
    }
    /// Appends an Rx rotation.
    pub fn rx(&mut self, qubit: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rx { qubit, theta })
    }
    /// Appends an Ry rotation.
    pub fn ry(&mut self, qubit: usize, theta: f64) -> &mut Self {
        self.push(Gate::Ry { qubit, theta })
    }
    /// Appends an Rz rotation.
    pub fn rz(&mut self, qubit: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rz { qubit, theta })
    }

    /// True when every gate is Clifford (rotations restricted to multiples
    /// of π/2), i.e. the circuit is a valid CAFQA "Clifford Ansatz" instance.
    pub fn is_clifford(&self) -> bool {
        self.gates.iter().all(Gate::is_structurally_clifford)
    }

    /// Number of T/T† gates plus non-Clifford rotations, each of which
    /// costs one branch doubling in the stabilizer-rank engine.
    pub fn non_clifford_count(&self) -> usize {
        self.gates.iter().filter(|g| !g.is_structurally_clifford()).count()
    }

    /// Lowers the circuit to primitive Clifford gates (`H`, `S`, `S†`,
    /// Paulis, `CX`, `CZ`), expanding Clifford-angle rotations and tracking
    /// the exact global phase.
    ///
    /// Returns `None` if any gate is non-Clifford.
    pub fn to_clifford_gates(&self) -> Option<(Vec<Gate>, Complex64)> {
        let mut out = Vec::with_capacity(self.gates.len() * 2);
        let mut phase = Complex64::ONE;
        for g in &self.gates {
            match *g {
                Gate::Rx { qubit, theta } => {
                    let angle = CliffordAngle::from_radians(theta)?;
                    let (gates, p) = clifford_rotation(RotationAxis::X, qubit, angle);
                    out.extend(gates);
                    phase *= p;
                }
                Gate::Ry { qubit, theta } => {
                    let angle = CliffordAngle::from_radians(theta)?;
                    let (gates, p) = clifford_rotation(RotationAxis::Y, qubit, angle);
                    out.extend(gates);
                    phase *= p;
                }
                Gate::Rz { qubit, theta } => {
                    let angle = CliffordAngle::from_radians(theta)?;
                    let (gates, p) = clifford_rotation(RotationAxis::Z, qubit, angle);
                    out.extend(gates);
                    phase *= p;
                }
                Gate::T(_) | Gate::Tdg(_) => return None,
                other => out.push(other),
            }
        }
        Some((out, phase))
    }

    /// Lowers the circuit to primitive Clifford gates *plus branch gates*:
    /// Clifford-angle rotations expand exactly as in
    /// [`Self::to_clifford_gates`] (with the same global-phase tracking),
    /// while `T`/`T†` and off-grid rotations pass through unchanged — the
    /// lowering the stabilizer-rank branch engines consume.
    ///
    /// Unlike [`Self::to_clifford_gates`] this never fails: a circuit with
    /// no non-Clifford gates lowers to exactly the same gate list.
    pub fn to_clifford_t_gates(&self) -> (Vec<Gate>, Complex64) {
        let mut out = Vec::with_capacity(self.gates.len() * 2);
        let mut phase = Complex64::ONE;
        for g in &self.gates {
            let lowered = match *g {
                Gate::Rx { qubit, theta } => {
                    CliffordAngle::from_radians(theta).map(|a| (RotationAxis::X, qubit, a))
                }
                Gate::Ry { qubit, theta } => {
                    CliffordAngle::from_radians(theta).map(|a| (RotationAxis::Y, qubit, a))
                }
                Gate::Rz { qubit, theta } => {
                    CliffordAngle::from_radians(theta).map(|a| (RotationAxis::Z, qubit, a))
                }
                _ => None,
            };
            match lowered {
                Some((axis, qubit, angle)) => {
                    let (gates, p) = clifford_rotation(axis, qubit, angle);
                    out.extend(gates);
                    phase *= p;
                }
                None => out.push(*g),
            }
        }
        (out, phase)
    }

    /// The inverse circuit (reversed order, each gate inverted).
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::new(self.n);
        for g in self.gates.iter().rev() {
            let ig = match *g {
                Gate::S(q) => Gate::Sdg(q),
                Gate::Sdg(q) => Gate::S(q),
                Gate::T(q) => Gate::Tdg(q),
                Gate::Tdg(q) => Gate::T(q),
                Gate::Rx { qubit, theta } => Gate::Rx { qubit, theta: -theta },
                Gate::Ry { qubit, theta } => Gate::Ry { qubit, theta: -theta },
                Gate::Rz { qubit, theta } => Gate::Rz { qubit, theta: -theta },
                self_inverse => self_inverse,
            };
            inv.push(ig);
        }
        inv
    }

    /// Circuit depth under the usual as-soon-as-possible schedule.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.n];
        let mut depth = 0;
        for g in &self.gates {
            let qs = g.qubits();
            let next = qs.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for q in qs {
                level[q] = next;
            }
            depth = depth.max(next);
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ry(2, 0.5).cz(1, 2);
        assert_eq!(c.num_gates(), 4);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    #[should_panic(expected = "outside register")]
    fn rejects_out_of_range() {
        Circuit::new(2).h(2);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn rejects_self_cx() {
        Circuit::new(2).cx(1, 1);
    }

    #[test]
    fn clifford_detection() {
        let mut c = Circuit::new(2);
        c.ry(0, std::f64::consts::PI).cx(0, 1);
        assert!(c.is_clifford());
        c.ry(1, 0.3);
        assert!(!c.is_clifford());
        assert_eq!(c.non_clifford_count(), 1);
    }

    #[test]
    fn lowering_expands_rotations() {
        let mut c = Circuit::new(1);
        c.ry(0, std::f64::consts::FRAC_PI_2);
        let (gates, phase) = c.to_clifford_gates().unwrap();
        assert_eq!(gates, vec![Gate::Z(0), Gate::H(0)]);
        assert_eq!(phase, Complex64::ONE);
    }

    #[test]
    fn lowering_fails_on_t() {
        let mut c = Circuit::new(1);
        c.t(0);
        assert!(c.to_clifford_gates().is_none());
    }

    #[test]
    fn clifford_t_lowering_passes_branches_through() {
        let mut c = Circuit::new(2);
        c.ry(0, std::f64::consts::FRAC_PI_2).t(0).rz(1, 0.3).cx(0, 1);
        let (gates, phase) = c.to_clifford_t_gates();
        assert_eq!(
            gates,
            vec![
                Gate::Z(0),
                Gate::H(0),
                Gate::T(0),
                Gate::Rz { qubit: 1, theta: 0.3 },
                Gate::Cx { control: 0, target: 1 },
            ]
        );
        assert_eq!(phase, Complex64::ONE);
        // Pure-Clifford circuits agree with the fallible lowering exactly.
        let mut cl = Circuit::new(2);
        cl.h(0).rx(1, std::f64::consts::PI).cz(0, 1);
        let (a, pa) = cl.to_clifford_gates().unwrap();
        let (b, pb) = cl.to_clifford_t_gates();
        assert_eq!(a, b);
        assert_eq!(pa, pb);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.s(0).cx(0, 1).ry(1, 0.7);
        let inv = c.inverse();
        assert_eq!(
            inv.gates(),
            &[Gate::Ry { qubit: 1, theta: -0.7 }, Gate::Cx { control: 0, target: 1 }, Gate::Sdg(0)]
        );
    }

    #[test]
    fn depth_of_parallel_layers() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3); // depth 1
        c.cx(0, 1).cx(2, 3); // depth 2
        assert_eq!(c.depth(), 2);
    }
}
