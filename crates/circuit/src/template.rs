//! Compile-once ansatz templates for the CAFQA hot loop.
//!
//! The discrete search evaluates the *same* ansatz structure at millions
//! of different Clifford configurations. Binding and re-lowering the
//! circuit per candidate (`bind_clifford` + `to_clifford_gates`) is pure
//! overhead: the structure never changes, only the rotation angles do.
//! [`CompiledAnsatz`] lowers the structure once into a sequence of fixed
//! primitive Clifford gates and parameter *slots*; each candidate then
//! patches its four-valued angle indices into the slots, with no circuit
//! construction or gate-list allocation on the hot path.

use crate::ansatz::Ansatz;
use crate::circuit::Circuit;
use crate::gate::{clifford_rotation, CliffordAngle, Gate, RotationAxis};

/// One element of a compiled ansatz template.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TemplateOp {
    /// A fixed primitive Clifford gate, identical for every candidate.
    Fixed(Gate),
    /// A tunable rotation slot: the candidate's `config[param]` selects
    /// one of the four Clifford angles `k·π/2`.
    Rotation {
        /// The rotation axis.
        axis: RotationAxis,
        /// The target qubit.
        qubit: usize,
        /// Index into the configuration vector.
        param: usize,
    },
}

/// Quiet-NaN base for the sentinel angles used to locate parameter slots.
/// A NaN payload survives `bind` untouched as long as the ansatz stores
/// parameters verbatim (any arithmetic would destroy the payload, which
/// compilation detects and rejects).
const SENTINEL_BASE: u64 = 0x7FF8_CAFA_0000_0000;
const SENTINEL_PAYLOAD_MASK: u64 = 0x0000_0000_FFFF_FFFF;

/// An [`Ansatz`] lowered once into primitive Clifford gates plus rotation
/// slots, for allocation-free batched candidate evaluation.
///
/// Compilation probes the ansatz with sentinel angles to discover which
/// rotation belongs to which parameter, then validates the template
/// against the ordinary `bind_clifford` lowering on a spread of probe
/// configurations. Ansätze whose *structure* depends on the parameter
/// values (or that contain non-Clifford fixed gates) fail to compile and
/// fall back to the per-candidate path.
///
/// # Examples
///
/// ```
/// use cafqa_circuit::{Ansatz, CompiledAnsatz, EfficientSu2};
///
/// let ansatz = EfficientSu2::new(3, 1);
/// let template = CompiledAnsatz::compile(&ansatz).unwrap();
/// assert_eq!(template.num_parameters(), 12);
/// // The rendered circuit matches the ordinary lowering, gate for gate.
/// let config = vec![1usize; 12];
/// let (lowered, _) = ansatz.bind_clifford(&config).to_clifford_gates().unwrap();
/// assert_eq!(template.to_circuit(&config).gates(), &lowered[..]);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledAnsatz {
    num_qubits: usize,
    num_parameters: usize,
    ops: Vec<TemplateOp>,
    /// Index of the first op reading each parameter (`ops.len()` for
    /// parameters no rotation slot reads) — the prefix cache behind
    /// incremental neighbor evaluation: everything before
    /// `param_first_op[k]` is unaffected by a change to slot `k`.
    param_first_op: Vec<usize>,
}

impl CompiledAnsatz {
    /// Lowers the ansatz structure into a template, or `None` when the
    /// ansatz cannot be compiled (parameter-dependent structure, fixed
    /// non-Clifford gates, or more than `2³²` parameters).
    pub fn compile(ansatz: &dyn Ansatz) -> Option<CompiledAnsatz> {
        let d = ansatz.num_parameters();
        if d as u64 > SENTINEL_PAYLOAD_MASK {
            return None;
        }
        let sentinels: Vec<f64> =
            (0..d).map(|i| f64::from_bits(SENTINEL_BASE | i as u64)).collect();
        let probe = ansatz.bind(&sentinels);
        let mut ops = Vec::with_capacity(probe.num_gates());
        for g in probe.gates() {
            match *g {
                Gate::Rx { qubit, theta } => {
                    push_rotation(&mut ops, RotationAxis::X, qubit, theta, d)?
                }
                Gate::Ry { qubit, theta } => {
                    push_rotation(&mut ops, RotationAxis::Y, qubit, theta, d)?
                }
                Gate::Rz { qubit, theta } => {
                    push_rotation(&mut ops, RotationAxis::Z, qubit, theta, d)?
                }
                Gate::T(_) | Gate::Tdg(_) => return None,
                fixed => ops.push(TemplateOp::Fixed(fixed)),
            }
        }
        let mut param_first_op = vec![ops.len(); d];
        for (i, op) in ops.iter().enumerate() {
            if let TemplateOp::Rotation { param, .. } = *op {
                if param_first_op[param] > i {
                    param_first_op[param] = i;
                }
            }
        }
        let template = CompiledAnsatz {
            num_qubits: ansatz.num_qubits(),
            num_parameters: d,
            ops,
            param_first_op,
        };
        // Validate against the per-candidate lowering on a spread of probe
        // configurations: the four uniform configs plus a mixed pattern.
        // An ansatz whose gate *structure* depends on parameter values
        // (NaN comparisons are all false) is caught here and rejected.
        let mut probes: Vec<Vec<usize>> = (0..4).map(|k| vec![k; d]).collect();
        probes.push((0..d).map(|i| (i * 7 + 1) % 4).collect());
        for config in &probes {
            let (lowered, _phase) = ansatz.bind_clifford(config).to_clifford_gates()?;
            if template.to_circuit(config).gates() != &lowered[..] {
                return None;
            }
        }
        Some(template)
    }

    /// Width of the compiled circuit.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of tunable parameters (rotation slots may share one).
    #[inline]
    pub fn num_parameters(&self) -> usize {
        self.num_parameters
    }

    /// The template operations in application order.
    #[inline]
    pub fn ops(&self) -> &[TemplateOp] {
        &self.ops
    }

    /// Index of the first template op affected by a change to parameter
    /// `param` — its earliest rotation slot, or [`Self::ops`]`.len()` if
    /// no slot reads it (an unused parameter changes nothing). Every op
    /// before this index is identical for two configurations that differ
    /// only at `param`, which is what lets polish neighbors replay the
    /// suffix from a cached prefix state instead of re-preparing the
    /// whole circuit (see `Tableau::apply_from` in `cafqa-clifford`).
    ///
    /// # Panics
    ///
    /// Panics if `param >= num_parameters`.
    #[inline]
    pub fn first_op_of(&self, param: usize) -> usize {
        self.param_first_op[param]
    }

    /// Renders the primitive-gate circuit for one configuration — the
    /// reference (allocating) counterpart of the tableau's direct template
    /// execution, used for validation and debugging.
    ///
    /// # Panics
    ///
    /// Panics if `config` has the wrong length.
    pub fn to_circuit(&self, config: &[usize]) -> Circuit {
        assert_eq!(config.len(), self.num_parameters, "config length mismatch");
        let mut c = Circuit::new(self.num_qubits);
        for op in &self.ops {
            match *op {
                TemplateOp::Fixed(g) => {
                    c.push(g);
                }
                TemplateOp::Rotation { axis, qubit, param } => {
                    let angle = CliffordAngle::from_index(config[param]);
                    for g in clifford_rotation(axis, qubit, angle).0 {
                        c.push(g);
                    }
                }
            }
        }
        c
    }
}

fn push_rotation(
    ops: &mut Vec<TemplateOp>,
    axis: RotationAxis,
    qubit: usize,
    theta: f64,
    num_parameters: usize,
) -> Option<()> {
    let bits = theta.to_bits();
    if bits & !SENTINEL_PAYLOAD_MASK == SENTINEL_BASE {
        let param = (bits & SENTINEL_PAYLOAD_MASK) as usize;
        if param >= num_parameters {
            return None;
        }
        ops.push(TemplateOp::Rotation { axis, qubit, param });
        return Some(());
    }
    // A structural rotation with a fixed angle: lower it now. Non-Clifford
    // fixed angles make the whole ansatz uncompilable (and unsearchable).
    let angle = CliffordAngle::from_radians(theta)?;
    for g in clifford_rotation(axis, qubit, angle).0 {
        ops.push(TemplateOp::Fixed(g));
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::EfficientSu2;

    #[test]
    fn compiles_efficient_su2() {
        let ansatz = EfficientSu2::new(4, 2);
        let t = CompiledAnsatz::compile(&ansatz).unwrap();
        assert_eq!(t.num_qubits(), 4);
        assert_eq!(t.num_parameters(), 24);
        let slots = t.ops().iter().filter(|op| matches!(op, TemplateOp::Rotation { .. })).count();
        assert_eq!(slots, 24);
    }

    #[test]
    fn rendering_matches_lowering_on_all_uniform_configs() {
        let ansatz = EfficientSu2::new(3, 1);
        let t = CompiledAnsatz::compile(&ansatz).unwrap();
        for k in 0..4 {
            let config = vec![k; 12];
            let (lowered, _) = ansatz.bind_clifford(&config).to_clifford_gates().unwrap();
            assert_eq!(t.to_circuit(&config).gates(), &lowered[..], "uniform {k}");
        }
    }

    #[test]
    fn first_op_of_points_at_the_earliest_slot_of_each_parameter() {
        let ansatz = EfficientSu2::new(3, 1);
        let t = CompiledAnsatz::compile(&ansatz).unwrap();
        for param in 0..t.num_parameters() {
            let first = t.first_op_of(param);
            assert!(first < t.ops().len(), "every EfficientSu2 parameter has a slot");
            // No earlier op may read the parameter, and the op at `first`
            // must be a rotation slot reading exactly it.
            for (i, op) in t.ops().iter().enumerate() {
                if let TemplateOp::Rotation { param: p, .. } = *op {
                    if p == param {
                        assert!(i >= first, "param {param} read at {i} before {first}");
                    }
                }
            }
            assert!(
                matches!(t.ops()[first], TemplateOp::Rotation { param: p, .. } if p == param),
                "first_op_of({param}) = {first} is not a slot of that parameter"
            );
        }
        // Parameter order follows op order for this ansatz, so the prefix
        // indices are non-decreasing — the property that makes forward
        // polish sweeps advance (rather than rebuild) the prefix cache.
        let firsts: Vec<usize> = (0..t.num_parameters()).map(|p| t.first_op_of(p)).collect();
        assert!(firsts.windows(2).all(|w| w[0] <= w[1]), "{firsts:?}");
    }

    #[test]
    fn rejects_structure_that_depends_on_parameters() {
        /// Pathological ansatz: gate structure branches on the angle value.
        struct Branchy;
        impl Ansatz for Branchy {
            fn num_qubits(&self) -> usize {
                1
            }
            fn num_parameters(&self) -> usize {
                1
            }
            fn bind(&self, params: &[f64]) -> Circuit {
                let mut c = Circuit::new(1);
                if params[0] > 1.0 {
                    c.x(0);
                }
                c.ry(0, params[0]);
                c
            }
        }
        assert!(CompiledAnsatz::compile(&Branchy).is_none());
    }

    #[test]
    fn rejects_arithmetic_on_parameters() {
        /// Ansatz that rescales its parameter (destroys the sentinel).
        struct Scaled;
        impl Ansatz for Scaled {
            fn num_qubits(&self) -> usize {
                1
            }
            fn num_parameters(&self) -> usize {
                1
            }
            fn bind(&self, params: &[f64]) -> Circuit {
                let mut c = Circuit::new(1);
                c.rz(0, 2.0 * params[0]);
                c
            }
        }
        assert!(CompiledAnsatz::compile(&Scaled).is_none());
    }

    #[test]
    fn fixed_clifford_rotations_are_lowered_into_the_template() {
        /// A structure with a fixed Ry(π/2) basis change around one slot.
        struct FixedRot;
        impl Ansatz for FixedRot {
            fn num_qubits(&self) -> usize {
                2
            }
            fn num_parameters(&self) -> usize {
                1
            }
            fn bind(&self, params: &[f64]) -> Circuit {
                let mut c = Circuit::new(2);
                c.ry(0, std::f64::consts::FRAC_PI_2).rz(0, params[0]).cx(0, 1);
                c
            }
        }
        let t = CompiledAnsatz::compile(&FixedRot).unwrap();
        let (lowered, _) = FixedRot.bind_clifford(&[3]).to_clifford_gates().unwrap();
        assert_eq!(t.to_circuit(&[3]).gates(), &lowered[..]);
    }
}
