//! Compile-once ansatz templates for the CAFQA hot loop.
//!
//! The discrete search evaluates the *same* ansatz structure at millions
//! of different Clifford configurations. Binding and re-lowering the
//! circuit per candidate (`bind_clifford` + `to_clifford_gates`) is pure
//! overhead: the structure never changes, only the rotation angles do.
//! [`CompiledAnsatz`] lowers the structure once into a sequence of fixed
//! primitive Clifford gates and parameter *slots*; each candidate then
//! patches its four-valued angle indices into the slots, with no circuit
//! construction or gate-list allocation on the hot path.

use crate::ansatz::Ansatz;
use crate::circuit::Circuit;
use crate::gate::{clifford_rotation, eighth_angle, CliffordAngle, Gate, RotationAxis};

/// One element of a compiled ansatz template.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TemplateOp {
    /// A fixed primitive Clifford gate, identical for every candidate.
    Fixed(Gate),
    /// A tunable rotation slot: the candidate's `config[param]` selects
    /// one of the four Clifford angles `k·π/2` (or, under eighth-turn
    /// binding, one of the eight angles `k·π/4` — odd `k` makes the slot
    /// a dynamic branch point in the Clifford+T branch ensemble).
    Rotation {
        /// The rotation axis.
        axis: RotationAxis,
        /// The target qubit.
        qubit: usize,
        /// Index into the configuration vector.
        param: usize,
    },
    /// A fixed non-Clifford branch point — a structural `T`/`T†` gate,
    /// identical for every candidate. Reads no parameter, so the prefix
    /// cache (`first_op_of`) is unaffected; only templates produced by
    /// [`CompiledAnsatz::compile_clifford_t`] contain it, and only the
    /// branch-ensemble executor can run it (the plain Clifford tableau
    /// panics).
    Branch {
        /// The Pauli rotation axis of the branch (always `Z` for `T`/`T†`).
        axis: RotationAxis,
        /// The target qubit.
        qubit: usize,
        /// Odd eighth-turn count `k`: the branch rotation angle is `k·π/4`
        /// (`1` for `T`, `7` for `T†`, up to global phase).
        eighths: usize,
    },
}

/// Quiet-NaN base for the sentinel angles used to locate parameter slots.
/// A NaN payload survives `bind` untouched as long as the ansatz stores
/// parameters verbatim (any arithmetic would destroy the payload, which
/// compilation detects and rejects).
const SENTINEL_BASE: u64 = 0x7FF8_CAFA_0000_0000;
const SENTINEL_PAYLOAD_MASK: u64 = 0x0000_0000_FFFF_FFFF;

/// Cap on recorded layer boundaries: deeper templates are downsampled to
/// at most this many starts, bounding the per-session checkpoint-stack
/// memory (each boundary costs one tableau snapshot in the polish
/// sessions) while keeping restore hops short.
const MAX_LAYER_STARTS: usize = 16;

/// An [`Ansatz`] lowered once into primitive Clifford gates plus rotation
/// slots, for allocation-free batched candidate evaluation.
///
/// Compilation probes the ansatz with sentinel angles to discover which
/// rotation belongs to which parameter, then validates the template
/// against the ordinary `bind_clifford` lowering on a spread of probe
/// configurations. Ansätze whose *structure* depends on the parameter
/// values (or that contain non-Clifford fixed gates) fail to compile and
/// fall back to the per-candidate path.
///
/// # Examples
///
/// ```
/// use cafqa_circuit::{Ansatz, CompiledAnsatz, EfficientSu2};
///
/// let ansatz = EfficientSu2::new(3, 1);
/// let template = CompiledAnsatz::compile(&ansatz).unwrap();
/// assert_eq!(template.num_parameters(), 12);
/// // The rendered circuit matches the ordinary lowering, gate for gate.
/// let config = vec![1usize; 12];
/// let (lowered, _) = ansatz.bind_clifford(&config).to_clifford_gates().unwrap();
/// assert_eq!(template.to_circuit(&config).gates(), &lowered[..]);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledAnsatz {
    num_qubits: usize,
    num_parameters: usize,
    ops: Vec<TemplateOp>,
    /// Index of the first op reading each parameter (`ops.len()` for
    /// parameters no rotation slot reads) — the prefix cache behind
    /// incremental neighbor evaluation: everything before
    /// `param_first_op[k]` is unaffected by a change to slot `k`.
    param_first_op: Vec<usize>,
    /// Ansatz layer boundaries (see [`Self::layer_starts`]): strictly
    /// increasing op indices in `1..ops.len()` where a parameterized run
    /// begins after fixed structure, downsampled to [`MAX_LAYER_STARTS`].
    layer_starts: Vec<usize>,
}

impl CompiledAnsatz {
    /// Lowers the ansatz structure into a template, or `None` when the
    /// ansatz cannot be compiled (parameter-dependent structure, fixed
    /// non-Clifford gates, or more than `2³²` parameters).
    pub fn compile(ansatz: &dyn Ansatz) -> Option<CompiledAnsatz> {
        let template = CompiledAnsatz::probe(ansatz, false)?;
        // Validate against the per-candidate lowering on a spread of probe
        // configurations: the four uniform configs plus a mixed pattern.
        // An ansatz whose gate *structure* depends on parameter values
        // (NaN comparisons are all false) is caught here and rejected.
        let d = template.num_parameters;
        let mut probes: Vec<Vec<usize>> = (0..4).map(|k| vec![k; d]).collect();
        probes.push((0..d).map(|i| (i * 7 + 1) % 4).collect());
        for config in &probes {
            let (lowered, _phase) = ansatz.bind_clifford(config).to_clifford_gates()?;
            if template.to_circuit(config).gates() != &lowered[..] {
                return None;
            }
        }
        Some(template)
    }

    /// [`Self::compile`] extended to the Clifford+T tier: structural
    /// `T`/`T†` gates become [`TemplateOp::Branch`] markers instead of
    /// failing compilation, and validation runs over the *eighth-turn*
    /// grid (`bind_eighth` + [`Circuit::to_clifford_t_gates`]) so odd
    /// angle indices — the dynamic branch points of the CAFQA+kT search —
    /// are covered too. On a purely-Clifford ansatz the produced template
    /// is identical to [`Self::compile`]'s (same ops, same prefix cache),
    /// so 4-ary binding semantics are untouched.
    pub fn compile_clifford_t(ansatz: &dyn Ansatz) -> Option<CompiledAnsatz> {
        let template = CompiledAnsatz::probe(ansatz, true)?;
        let d = template.num_parameters;
        let mut probes: Vec<Vec<usize>> = (0..8).map(|k| vec![k; d]).collect();
        probes.push((0..d).map(|i| (i * 5 + 3) % 8).collect());
        probes.push((0..d).map(|i| (i * 7 + 1) % 8).collect());
        for config in &probes {
            let (lowered, _phase) = ansatz.bind_eighth(config).to_clifford_t_gates();
            if template.to_circuit_eighth(config).gates() != &lowered[..] {
                return None;
            }
        }
        Some(template)
    }

    /// The shared sentinel-probe pass behind both compile entry points.
    /// `allow_t` maps structural `T`/`T†` to branch markers instead of
    /// rejecting them; fixed rotations off the π/2 grid are rejected
    /// either way (no production ansatz has them, and accepting them
    /// would make every candidate pay their branch doubling).
    fn probe(ansatz: &dyn Ansatz, allow_t: bool) -> Option<CompiledAnsatz> {
        let d = ansatz.num_parameters();
        if d as u64 > SENTINEL_PAYLOAD_MASK {
            return None;
        }
        let sentinels: Vec<f64> =
            (0..d).map(|i| f64::from_bits(SENTINEL_BASE | i as u64)).collect();
        let probe = ansatz.bind(&sentinels);
        let mut ops = Vec::with_capacity(probe.num_gates());
        for g in probe.gates() {
            match *g {
                Gate::Rx { qubit, theta } => {
                    push_rotation(&mut ops, RotationAxis::X, qubit, theta, d)?
                }
                Gate::Ry { qubit, theta } => {
                    push_rotation(&mut ops, RotationAxis::Y, qubit, theta, d)?
                }
                Gate::Rz { qubit, theta } => {
                    push_rotation(&mut ops, RotationAxis::Z, qubit, theta, d)?
                }
                Gate::T(q) if allow_t => {
                    ops.push(TemplateOp::Branch { axis: RotationAxis::Z, qubit: q, eighths: 1 })
                }
                Gate::Tdg(q) if allow_t => {
                    ops.push(TemplateOp::Branch { axis: RotationAxis::Z, qubit: q, eighths: 7 })
                }
                Gate::T(_) | Gate::Tdg(_) => return None,
                fixed => ops.push(TemplateOp::Fixed(fixed)),
            }
        }
        let mut param_first_op = vec![ops.len(); d];
        for (i, op) in ops.iter().enumerate() {
            if let TemplateOp::Rotation { param, .. } = *op {
                if param_first_op[param] > i {
                    param_first_op[param] = i;
                }
            }
        }
        // Layer boundaries: each op index (> 0) where a parameterized run
        // (rotation slots / branch points) begins after fixed structure —
        // the natural checkpoint grid of alternating-layer ansätze.
        let mut layer_starts: Vec<usize> = (1..ops.len())
            .filter(|&i| {
                !matches!(ops[i], TemplateOp::Fixed(_))
                    && matches!(ops[i - 1], TemplateOp::Fixed(_))
            })
            .collect();
        if layer_starts.len() > MAX_LAYER_STARTS {
            let len = layer_starts.len();
            layer_starts =
                (0..MAX_LAYER_STARTS).map(|k| layer_starts[k * len / MAX_LAYER_STARTS]).collect();
        }
        Some(CompiledAnsatz {
            num_qubits: ansatz.num_qubits(),
            num_parameters: d,
            ops,
            param_first_op,
            layer_starts,
        })
    }

    /// Width of the compiled circuit.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of tunable parameters (rotation slots may share one).
    #[inline]
    pub fn num_parameters(&self) -> usize {
        self.num_parameters
    }

    /// The template operations in application order.
    #[inline]
    pub fn ops(&self) -> &[TemplateOp] {
        &self.ops
    }

    /// Index of the first template op affected by a change to parameter
    /// `param` — its earliest rotation slot, or [`Self::ops`]`.len()` if
    /// no slot reads it (an unused parameter changes nothing). Every op
    /// before this index is identical for two configurations that differ
    /// only at `param`, which is what lets polish neighbors replay the
    /// suffix from a cached prefix state instead of re-preparing the
    /// whole circuit (see `Tableau::apply_from` in `cafqa-clifford`).
    ///
    /// # Panics
    ///
    /// Panics if `param >= num_parameters`.
    #[inline]
    pub fn first_op_of(&self, param: usize) -> usize {
        self.param_first_op[param]
    }

    /// Ansatz layer boundaries: strictly increasing op indices in
    /// `1..ops.len()`, each the start of a run of parameterized ops
    /// (rotation slots or branch points) immediately after fixed
    /// structure (entanglement layers). These are the natural checkpoint
    /// positions for a layered prefix cache: a tableau snapshotted at
    /// boundary `b` is valid for every configuration agreeing on the
    /// parameters whose [`Self::first_op_of`] index is `< b`, so a
    /// backward seek can restore the nearest dominating snapshot instead
    /// of re-preparing the whole prefix from `|0…0⟩`. Downsampled to at
    /// most 16 boundaries on very deep templates. Empty when the template
    /// has no parameterized run after its first op.
    #[inline]
    pub fn layer_starts(&self) -> &[usize] {
        &self.layer_starts
    }

    /// Renders the primitive-gate circuit for one configuration — the
    /// reference (allocating) counterpart of the tableau's direct template
    /// execution, used for validation and debugging.
    ///
    /// # Panics
    ///
    /// Panics if `config` has the wrong length.
    pub fn to_circuit(&self, config: &[usize]) -> Circuit {
        assert_eq!(config.len(), self.num_parameters, "config length mismatch");
        let mut c = Circuit::new(self.num_qubits);
        for op in &self.ops {
            match *op {
                TemplateOp::Fixed(g) => {
                    c.push(g);
                }
                TemplateOp::Rotation { axis, qubit, param } => {
                    let angle = CliffordAngle::from_index(config[param]);
                    for g in clifford_rotation(axis, qubit, angle).0 {
                        c.push(g);
                    }
                }
                TemplateOp::Branch { axis, qubit, eighths } => {
                    c.push(branch_gate(axis, qubit, eighths));
                }
            }
        }
        c
    }

    /// Renders the circuit for one *eighth-turn* configuration (angles
    /// `k·π/4`): even indices lower to primitive Cliffords exactly like
    /// [`Self::to_circuit`], odd indices stay as non-Clifford rotation
    /// gates, and branch markers render as their `T`/`T†` gate — the
    /// reference counterpart of the branch ensemble's direct template
    /// execution, gate-for-gate equal to
    /// `ansatz.bind_eighth(config).to_clifford_t_gates()`.
    ///
    /// # Panics
    ///
    /// Panics if `config` has the wrong length.
    pub fn to_circuit_eighth(&self, config: &[usize]) -> Circuit {
        assert_eq!(config.len(), self.num_parameters, "config length mismatch");
        let mut c = Circuit::new(self.num_qubits);
        for op in &self.ops {
            match *op {
                TemplateOp::Fixed(g) => {
                    c.push(g);
                }
                TemplateOp::Rotation { axis, qubit, param } => {
                    let k = config[param] % 8;
                    if k % 2 == 0 {
                        let angle = CliffordAngle::from_index(k / 2);
                        for g in clifford_rotation(axis, qubit, angle).0 {
                            c.push(g);
                        }
                    } else {
                        // Odd slots stay as the rotation gate `bind_eighth`
                        // emits (never `T`: that spelling is reserved for
                        // structural branch markers).
                        c.push(rotation_gate(axis, qubit, eighth_angle(k)));
                    }
                }
                TemplateOp::Branch { axis, qubit, eighths } => {
                    c.push(branch_gate(axis, qubit, eighths));
                }
            }
        }
        c
    }
}

/// The single gate realizing an odd-eighth branch rotation: `T`/`T†` for
/// the Z-axis eighth turns the ansatz writes structurally, a rotation gate
/// (with the exact [`eighth_angle`] used by `bind_eighth`) otherwise.
fn branch_gate(axis: RotationAxis, qubit: usize, eighths: usize) -> Gate {
    match (axis, eighths % 8) {
        (RotationAxis::Z, 1) => Gate::T(qubit),
        (RotationAxis::Z, 7) => Gate::Tdg(qubit),
        (RotationAxis::X, k) => Gate::Rx { qubit, theta: eighth_angle(k) },
        (RotationAxis::Y, k) => Gate::Ry { qubit, theta: eighth_angle(k) },
        (RotationAxis::Z, k) => Gate::Rz { qubit, theta: eighth_angle(k) },
    }
}

/// The rotation gate for one axis with a literal angle.
fn rotation_gate(axis: RotationAxis, qubit: usize, theta: f64) -> Gate {
    match axis {
        RotationAxis::X => Gate::Rx { qubit, theta },
        RotationAxis::Y => Gate::Ry { qubit, theta },
        RotationAxis::Z => Gate::Rz { qubit, theta },
    }
}

fn push_rotation(
    ops: &mut Vec<TemplateOp>,
    axis: RotationAxis,
    qubit: usize,
    theta: f64,
    num_parameters: usize,
) -> Option<()> {
    let bits = theta.to_bits();
    if bits & !SENTINEL_PAYLOAD_MASK == SENTINEL_BASE {
        let param = (bits & SENTINEL_PAYLOAD_MASK) as usize;
        if param >= num_parameters {
            return None;
        }
        ops.push(TemplateOp::Rotation { axis, qubit, param });
        return Some(());
    }
    // A structural rotation with a fixed angle: lower it now. Non-Clifford
    // fixed angles make the whole ansatz uncompilable (and unsearchable).
    let angle = CliffordAngle::from_radians(theta)?;
    for g in clifford_rotation(axis, qubit, angle).0 {
        ops.push(TemplateOp::Fixed(g));
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::EfficientSu2;

    #[test]
    fn compiles_efficient_su2() {
        let ansatz = EfficientSu2::new(4, 2);
        let t = CompiledAnsatz::compile(&ansatz).unwrap();
        assert_eq!(t.num_qubits(), 4);
        assert_eq!(t.num_parameters(), 24);
        let slots = t.ops().iter().filter(|op| matches!(op, TemplateOp::Rotation { .. })).count();
        assert_eq!(slots, 24);
    }

    #[test]
    fn rendering_matches_lowering_on_all_uniform_configs() {
        let ansatz = EfficientSu2::new(3, 1);
        let t = CompiledAnsatz::compile(&ansatz).unwrap();
        for k in 0..4 {
            let config = vec![k; 12];
            let (lowered, _) = ansatz.bind_clifford(&config).to_clifford_gates().unwrap();
            assert_eq!(t.to_circuit(&config).gates(), &lowered[..], "uniform {k}");
        }
    }

    #[test]
    fn first_op_of_points_at_the_earliest_slot_of_each_parameter() {
        let ansatz = EfficientSu2::new(3, 1);
        let t = CompiledAnsatz::compile(&ansatz).unwrap();
        for param in 0..t.num_parameters() {
            let first = t.first_op_of(param);
            assert!(first < t.ops().len(), "every EfficientSu2 parameter has a slot");
            // No earlier op may read the parameter, and the op at `first`
            // must be a rotation slot reading exactly it.
            for (i, op) in t.ops().iter().enumerate() {
                if let TemplateOp::Rotation { param: p, .. } = *op {
                    if p == param {
                        assert!(i >= first, "param {param} read at {i} before {first}");
                    }
                }
            }
            assert!(
                matches!(t.ops()[first], TemplateOp::Rotation { param: p, .. } if p == param),
                "first_op_of({param}) = {first} is not a slot of that parameter"
            );
        }
        // Parameter order follows op order for this ansatz, so the prefix
        // indices are non-decreasing — the property that makes forward
        // polish sweeps advance (rather than rebuild) the prefix cache.
        let firsts: Vec<usize> = (0..t.num_parameters()).map(|p| t.first_op_of(p)).collect();
        assert!(firsts.windows(2).all(|w| w[0] <= w[1]), "{firsts:?}");
    }

    #[test]
    fn layer_starts_mark_parameterized_runs_after_fixed_structure() {
        let ansatz = EfficientSu2::new(4, 2);
        let t = CompiledAnsatz::compile(&ansatz).unwrap();
        let starts = t.layer_starts();
        // EfficientSu2(reps = 2) alternates three rotation layers with two
        // entanglement layers: two post-entanglement boundaries.
        assert_eq!(starts.len(), 2, "{starts:?}");
        assert!(starts.windows(2).all(|w| w[0] < w[1]), "{starts:?}");
        for &b in starts {
            assert!(b > 0 && b < t.ops().len());
            assert!(!matches!(t.ops()[b], TemplateOp::Fixed(_)), "boundary {b} not a slot");
            assert!(matches!(t.ops()[b - 1], TemplateOp::Fixed(_)), "boundary {b} mid-run");
        }
    }

    #[test]
    fn layer_starts_are_capped_on_deep_templates() {
        // 40 reps ⇒ 40 post-entanglement boundaries, downsampled to 16.
        let ansatz = EfficientSu2::new(3, 40);
        let t = CompiledAnsatz::compile(&ansatz).unwrap();
        let starts = t.layer_starts();
        assert_eq!(starts.len(), 16, "{starts:?}");
        assert!(starts.windows(2).all(|w| w[0] < w[1]), "{starts:?}");
        for &b in starts {
            assert!(!matches!(t.ops()[b], TemplateOp::Fixed(_)));
            assert!(matches!(t.ops()[b - 1], TemplateOp::Fixed(_)));
        }
    }

    #[test]
    fn rejects_structure_that_depends_on_parameters() {
        /// Pathological ansatz: gate structure branches on the angle value.
        struct Branchy;
        impl Ansatz for Branchy {
            fn num_qubits(&self) -> usize {
                1
            }
            fn num_parameters(&self) -> usize {
                1
            }
            fn bind(&self, params: &[f64]) -> Circuit {
                let mut c = Circuit::new(1);
                if params[0] > 1.0 {
                    c.x(0);
                }
                c.ry(0, params[0]);
                c
            }
        }
        assert!(CompiledAnsatz::compile(&Branchy).is_none());
    }

    #[test]
    fn rejects_arithmetic_on_parameters() {
        /// Ansatz that rescales its parameter (destroys the sentinel).
        struct Scaled;
        impl Ansatz for Scaled {
            fn num_qubits(&self) -> usize {
                1
            }
            fn num_parameters(&self) -> usize {
                1
            }
            fn bind(&self, params: &[f64]) -> Circuit {
                let mut c = Circuit::new(1);
                c.rz(0, 2.0 * params[0]);
                c
            }
        }
        assert!(CompiledAnsatz::compile(&Scaled).is_none());
    }

    #[test]
    fn clifford_t_compile_matches_plain_compile_on_clifford_ansatz() {
        let ansatz = EfficientSu2::new(3, 1);
        let plain = CompiledAnsatz::compile(&ansatz).unwrap();
        let ct = CompiledAnsatz::compile_clifford_t(&ansatz).unwrap();
        assert_eq!(plain.ops(), ct.ops());
        for p in 0..plain.num_parameters() {
            assert_eq!(plain.first_op_of(p), ct.first_op_of(p));
        }
    }

    #[test]
    fn clifford_t_rendering_matches_eighth_lowering() {
        let ansatz = EfficientSu2::new(2, 1);
        let t = CompiledAnsatz::compile_clifford_t(&ansatz).unwrap();
        for k in 0..8 {
            let config = vec![k; 8];
            let (lowered, _) = ansatz.bind_eighth(&config).to_clifford_t_gates();
            assert_eq!(t.to_circuit_eighth(&config).gates(), &lowered[..], "uniform {k}");
        }
        let mixed: Vec<usize> = (0..8).map(|i| (i * 3 + 1) % 8).collect();
        let (lowered, _) = ansatz.bind_eighth(&mixed).to_clifford_t_gates();
        assert_eq!(t.to_circuit_eighth(&mixed).gates(), &lowered[..]);
    }

    #[test]
    fn structural_t_gates_become_branch_markers() {
        /// An ansatz with fixed `T`/`T†` gates around one slot.
        struct WithT;
        impl Ansatz for WithT {
            fn num_qubits(&self) -> usize {
                2
            }
            fn num_parameters(&self) -> usize {
                1
            }
            fn bind(&self, params: &[f64]) -> Circuit {
                let mut c = Circuit::new(2);
                c.t(0).ry(1, params[0]).push(Gate::Tdg(0)).cx(0, 1);
                c
            }
        }
        // The plain compile rejects structural T gates...
        assert!(CompiledAnsatz::compile(&WithT).is_none());
        // ...while the Clifford+T compile marks them as branch points.
        let t = CompiledAnsatz::compile_clifford_t(&WithT).unwrap();
        let branches: Vec<&TemplateOp> =
            t.ops().iter().filter(|op| matches!(op, TemplateOp::Branch { .. })).collect();
        assert_eq!(branches.len(), 2);
        assert_eq!(
            *branches[0],
            TemplateOp::Branch { axis: RotationAxis::Z, qubit: 0, eighths: 1 }
        );
        assert_eq!(
            *branches[1],
            TemplateOp::Branch { axis: RotationAxis::Z, qubit: 0, eighths: 7 }
        );
        // And the rendered circuit keeps the T spellings.
        let c = t.to_circuit_eighth(&[3]);
        let (lowered, _) = WithT.bind_eighth(&[3]).to_clifford_t_gates();
        assert_eq!(c.gates(), &lowered[..]);
    }

    #[test]
    fn fixed_clifford_rotations_are_lowered_into_the_template() {
        /// A structure with a fixed Ry(π/2) basis change around one slot.
        struct FixedRot;
        impl Ansatz for FixedRot {
            fn num_qubits(&self) -> usize {
                2
            }
            fn num_parameters(&self) -> usize {
                1
            }
            fn bind(&self, params: &[f64]) -> Circuit {
                let mut c = Circuit::new(2);
                c.ry(0, std::f64::consts::FRAC_PI_2).rz(0, params[0]).cx(0, 1);
                c
            }
        }
        let t = CompiledAnsatz::compile(&FixedRot).unwrap();
        let (lowered, _) = FixedRot.bind_clifford(&[3]).to_clifford_gates().unwrap();
        assert_eq!(t.to_circuit(&[3]).gates(), &lowered[..]);
    }
}
