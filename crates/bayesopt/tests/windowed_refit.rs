//! Property contract of windowed surrogate refits: the no-op window
//! configurations (`window == 0` and any `window >= history.len()`) must
//! reproduce the classic full-history `RandomForest::fit` **bit for
//! bit**, on the **same RNG stream** — window selection draws no
//! randomness, so the bootstrap indices, the tree structure and every
//! prediction are unchanged.

use cafqa_bayesopt::{minimize, BoOptions, ForestOptions, RandomForest, SearchSpace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DIMS: usize = 6;
const CARD: usize = 4;

/// A deterministic random history of `n` evaluations.
fn random_history(seed: u64, n: usize) -> (Vec<Vec<usize>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<usize>> =
        (0..n).map(|_| (0..DIMS).map(|_| rng.gen_range(0..CARD)).collect()).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| {
            let base: f64 = x.iter().map(|&v| (v as f64 - 1.3).powi(2)).sum();
            base + rng.gen::<f64>()
        })
        .collect();
    (xs, ys)
}

fn fit_with_window(
    xs: &[Vec<usize>],
    ys: &[f64],
    window: usize,
    rng_seed: u64,
) -> (RandomForest, StdRng) {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let opts = ForestOptions { window, ..Default::default() };
    let forest = RandomForest::fit(xs, ys, &[CARD; DIMS], &opts, &mut rng);
    (forest, rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `window = 0` and `window >= n` are exact no-ops: identical
    /// predictions on arbitrary probes, and identical RNG state after
    /// the fit (proving the same draws were consumed).
    #[test]
    fn noop_windows_reproduce_full_fit_bitwise(
        data_seed in 0u64..10_000,
        rng_seed in 0u64..10_000,
        n in 5usize..120,
        slack in 0usize..40,
    ) {
        let (xs, ys) = random_history(data_seed, n);
        for window in [n, n + slack, usize::MAX] {
            let (reference, mut reference_rng) = fit_with_window(&xs, &ys, 0, rng_seed);
            let (forest, mut rng) = fit_with_window(&xs, &ys, window, rng_seed);
            // Same RNG stream: the generators are in identical states.
            for _ in 0..4 {
                prop_assert_eq!(rng.gen::<u64>(), reference_rng.gen::<u64>());
            }
            // Bit-identical predictions everywhere we probe.
            let mut probe_rng = StdRng::seed_from_u64(data_seed ^ 0xABCD);
            for _ in 0..32 {
                let probe: Vec<usize> =
                    (0..DIMS).map(|_| probe_rng.gen_range(0..CARD)).collect();
                prop_assert_eq!(
                    forest.predict(&probe).to_bits(),
                    reference.predict(&probe).to_bits()
                );
            }
        }
    }

    /// A binding window still yields a valid forest, and the incumbent's
    /// neighborhood stays represented: predictions remain finite and the
    /// fit only sees `window + 1` samples (cost contract — indirectly
    /// observed through determinism: two fits over histories that agree
    /// on the window and the incumbent are identical).
    #[test]
    fn binding_window_ignores_pre_window_noise(
        data_seed in 0u64..10_000,
        rng_seed in 0u64..10_000,
        n in 40usize..120,
        window in 8usize..32,
    ) {
        let (xs, ys) = random_history(data_seed, n);
        // Locate the incumbent as the windowed fit defines it.
        let incumbent = ys
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        let (forest, _) = fit_with_window(&xs, &ys, window, rng_seed);
        // Scramble everything outside the window and the incumbent: the
        // windowed fit must not see any of it.
        let mut scrambled_ys = ys.clone();
        for i in 0..n - window {
            if i != incumbent {
                scrambled_ys[i] += 1e6;
            }
        }
        // The scramble may not displace the incumbent (1e6 dwarfs the
        // objective scale, and the incumbent itself is untouched).
        let (scrambled, _) = fit_with_window(&xs, &scrambled_ys, window, rng_seed);
        let mut probe_rng = StdRng::seed_from_u64(data_seed ^ 0xF00D);
        for _ in 0..16 {
            let probe: Vec<usize> = (0..DIMS).map(|_| probe_rng.gen_range(0..CARD)).collect();
            prop_assert_eq!(
                forest.predict(&probe).to_bits(),
                scrambled.predict(&probe).to_bits()
            );
        }
    }
}

/// End-to-end no-op equivalence through `minimize`: a huge window and the
/// classic full-history refits produce the *same search trace*, bit for
/// bit (windowing changes nothing until it binds).
#[test]
fn minimize_with_huge_window_matches_full_history() {
    let space = SearchSpace::uniform(8, 4);
    let objective = |batch: &[Vec<usize>]| {
        batch
            .iter()
            .map(|c| {
                c.iter()
                    .enumerate()
                    .map(|(i, &v)| (v as f64 - ((i * 3 + 1) % 4) as f64).powi(2))
                    .sum::<f64>()
            })
            .collect::<Vec<f64>>()
    };
    let run = |window: usize| {
        let opts = BoOptions {
            warmup: 40,
            iterations: 80,
            seed: 0xCAF9A,
            forest: ForestOptions { window, ..Default::default() },
            ..Default::default()
        };
        minimize(&space, objective, &[], &opts)
    };
    let full = run(0);
    let huge = run(1 << 30);
    assert_eq!(full.history.len(), huge.history.len());
    for (a, b) in full.history.iter().zip(&huge.history) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(a.best_so_far.to_bits(), b.best_so_far.to_bits());
    }
    assert_eq!(full.best_config, huge.best_config);
    assert_eq!(full.iterations_to_best, huge.iterations_to_best);
}
