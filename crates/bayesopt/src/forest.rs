//! Bagged random-forest regression — the CAFQA surrogate model.
//!
//! The paper (§5) picks a random forest "as it is flexible enough to model
//! the discrete space and scales well", following HyperMapper.

use std::sync::Arc;

use rand::Rng;

use crate::exec::{map_jobs, Executor};
use crate::tree::{RegressionTree, TreeOptions};

/// Random-forest options.
#[derive(Debug, Clone)]
pub struct ForestOptions {
    /// Number of trees.
    pub n_trees: usize,
    /// Bootstrap sample size (`0` = same as training-set size).
    pub bootstrap: usize,
    /// Per-split feature subsample (`0` = `√d + 1`).
    pub feature_subsample: usize,
    /// Windowed refits: fit on only the `window` most recent samples —
    /// plus the **incumbent** (the earliest minimum of `ys`), which is
    /// kept in the training set even after it slides out of the window,
    /// so the surrogate never forgets the best point found. `0` (the
    /// default) fits on the full history.
    ///
    /// This is what makes refit cost `O(window·log window)` instead of
    /// growing with the evaluation count (the pacing item of Cr2-scale
    /// searches). Index selection is pure — it draws nothing from the
    /// RNG — so `window == 0` *and* any `window >= ys.len()` reproduce
    /// the classic full-history fit bit-for-bit on the same RNG stream;
    /// see the determinism notes on
    /// [`BoOptions`](crate::BoOptions#determinism-and-refit-cadence).
    pub window: usize,
    /// Tree growth options.
    pub tree: TreeOptions,
}

impl Default for ForestOptions {
    fn default() -> Self {
        ForestOptions {
            n_trees: 24,
            bootstrap: 0,
            feature_subsample: 0,
            window: 0,
            tree: TreeOptions::default(),
        }
    }
}

/// The training indices of a windowed fit: the `window` most recent
/// samples plus the incumbent (earliest index achieving the minimum of
/// `ys`, NaN excluded) when it precedes the window. Returns all indices
/// for `window == 0` or `window >= ys.len()` — and consumes no
/// randomness in any case, which is what keeps the no-op configurations
/// bit-identical to the classic full-history fit.
fn window_indices(ys: &[f64], window: usize) -> Vec<usize> {
    let n = ys.len();
    if window == 0 || window >= n {
        return (0..n).collect();
    }
    let start = n - window;
    let incumbent = ys
        .iter()
        .enumerate()
        .filter(|(_, y)| !y.is_nan())
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i);
    let mut selected = Vec::with_capacity(window + 1);
    if let Some(best) = incumbent {
        if best < start {
            selected.push(best);
        }
    }
    selected.extend(start..n);
    selected
}

/// A bagged ensemble of [`RegressionTree`]s.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fits the forest on the `(xs, ys)` pairs selected by
    /// [`ForestOptions::window`]: the whole history when `window` is `0`
    /// (or at least `ys.len()`), otherwise the most recent `window`
    /// samples plus the incumbent. Bootstrap resampling draws only from
    /// the selected indices, so the fit costs `O(n_trees · w log w)` in
    /// the window size `w`, not in the history length.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or lengths mismatch.
    pub fn fit(
        xs: &[Vec<usize>],
        ys: &[f64],
        cardinalities: &[usize],
        opts: &ForestOptions,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!xs.is_empty(), "cannot fit a forest on no samples");
        assert_eq!(xs.len(), ys.len());
        // `selected[j] == j` in the full-history case, so the bootstrap
        // below draws the same values from the same RNG stream as the
        // pre-window implementation — bit-for-bit the classic fit.
        let selected = window_indices(ys, opts.window);
        let m = selected.len();
        let boot = if opts.bootstrap == 0 { m } else { opts.bootstrap.min(m) };
        let d = cardinalities.len();
        let feature_subsample = if opts.feature_subsample == 0 {
            ((d as f64).sqrt() as usize + 1).min(d)
        } else {
            opts.feature_subsample
        };
        let tree_opts = TreeOptions { feature_subsample, ..opts.tree.clone() };
        let trees = (0..opts.n_trees)
            .map(|_| {
                let idx: Vec<usize> = (0..boot).map(|_| selected[rng.gen_range(0..m)]).collect();
                RegressionTree::fit(xs, ys, &idx, cardinalities, &tree_opts, rng)
            })
            .collect();
        RandomForest { trees }
    }

    /// Mean prediction over the ensemble.
    pub fn predict(&self, config: &[usize]) -> f64 {
        self.trees.iter().map(|t| t.predict(config)).sum::<f64>() / self.trees.len() as f64
    }

    /// [`Self::predict`] over a whole candidate pool, in input order.
    /// The serial convenience path; the search loop shards large pools
    /// over the runner's execution engine via [`Self::predict_batch_on`].
    pub fn predict_batch(&self, configs: &[Vec<usize>]) -> Vec<f64> {
        configs.iter().map(|c| self.predict(c)).collect()
    }

    /// [`Self::predict_batch`] sharded across an [`Executor`] (the
    /// CAFQA runner passes its persistent worker-pool engine). Results
    /// are in input order and bit-identical to per-candidate calls at
    /// any worker count — each prediction is independent, and shard
    /// results are reassembled by index. Small pools (where tree
    /// traversal is cheaper than dispatch) stay on the calling thread.
    ///
    /// Takes `Arc<Self>` because the executor's workers outlive this
    /// call frame: shards carry an owned handle to the forest.
    pub fn predict_batch_on(
        self: &Arc<Self>,
        configs: &[Vec<usize>],
        exec: &dyn Executor,
    ) -> Vec<f64> {
        // Tree traversals are cheap; only pools with substantial total
        // work amortize the dispatch.
        let shards = if configs.len() * self.trees.len() < 8192 { 1 } else { exec.workers() };
        let shards = shards.min(configs.len());
        if shards <= 1 {
            return self.predict_batch(configs);
        }
        let chunk = configs.len().div_ceil(shards);
        let tasks: Vec<Box<dyn FnOnce() -> Vec<f64> + Send>> = configs
            .chunks(chunk)
            .map(|chunk_configs| {
                let forest = Arc::clone(self);
                let chunk_configs: Vec<Vec<usize>> = chunk_configs.to_vec();
                Box::new(move || forest.predict_batch(&chunk_configs))
                    as Box<dyn FnOnce() -> Vec<f64> + Send>
            })
            .collect();
        map_jobs(exec, tasks).into_iter().flatten().collect()
    }

    /// The forest's predicted minimum over each *group* of candidate
    /// configurations, with all groups flattened through one sharded
    /// [`Self::predict_batch_on`] pass — the screening score behind
    /// CAFQA's surrogate-screened pair polish: group `g` holds the joint
    /// moves of one coordinate pair, and the pairs whose groups predict
    /// the lowest minima are the ones worth sweeping. `NaN` predictions
    /// are excluded; an all-`NaN` (or empty) group scores `+∞`, i.e.
    /// last. Results are in group order and bit-identical at any
    /// executor width (each prediction is independent, and the per-group
    /// fold is a plain minimum).
    pub fn predict_group_min_on(
        self: &Arc<Self>,
        groups: &[Vec<Vec<usize>>],
        exec: &dyn Executor,
    ) -> Vec<f64> {
        let flat: Vec<Vec<usize>> = groups.iter().flatten().cloned().collect();
        let predictions = self.predict_batch_on(&flat, exec);
        let mut cursor = 0usize;
        groups
            .iter()
            .map(|group| {
                let scores = &predictions[cursor..cursor + group.len()];
                cursor += group.len();
                scores.iter().copied().filter(|p| !p.is_nan()).fold(f64::INFINITY, f64::min)
            })
            .collect()
    }

    /// Mean and standard deviation over the ensemble (a cheap uncertainty
    /// proxy, useful for exploration diagnostics).
    pub fn predict_with_std(&self, config: &[usize]) -> (f64, f64) {
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(config)).collect();
        let m = preds.iter().sum::<f64>() / preds.len() as f64;
        let var = preds.iter().map(|p| (p - m).powi(2)).sum::<f64>() / preds.len() as f64;
        (m, var.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Job;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forest_beats_mean_baseline() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..600 {
            let x: Vec<usize> = (0..6).map(|_| rng.gen_range(0..4usize)).collect();
            let y = (x[0] as f64 - 1.5).powi(2) + 0.5 * x[3] as f64 - 0.2 * x[5] as f64;
            xs.push(x);
            ys.push(y);
        }
        let forest = RandomForest::fit(&xs, &ys, &[4; 6], &ForestOptions::default(), &mut rng);
        let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
        let mut sse_forest = 0.0;
        let mut sse_mean = 0.0;
        for (x, y) in xs.iter().zip(&ys) {
            sse_forest += (forest.predict(x) - y).powi(2);
            sse_mean += (mean_y - y).powi(2);
        }
        assert!(sse_forest < 0.3 * sse_mean, "forest {sse_forest} vs mean {sse_mean}");
    }

    /// A deliberately unfair test double: runs jobs in *reverse*
    /// submission order on freshly spawned threads, so any ordering
    /// assumption in the shard/merge logic fails loudly.
    struct ReversedThreadExec(usize);

    impl Executor for ReversedThreadExec {
        fn workers(&self) -> usize {
            self.0
        }
        fn execute(&self, mut jobs: Vec<Job>) {
            jobs.reverse();
            let handles: Vec<_> = jobs.into_iter().map(std::thread::spawn).collect();
            for h in handles {
                h.join().expect("exec test worker panicked");
            }
        }
    }

    #[test]
    fn batch_predictions_match_serial() {
        let mut rng = StdRng::seed_from_u64(23);
        let xs: Vec<Vec<usize>> =
            (0..300).map(|_| (0..8).map(|_| rng.gen_range(0..4usize)).collect()).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<usize>() as f64).collect();
        let forest =
            Arc::new(RandomForest::fit(&xs, &ys, &[4; 8], &ForestOptions::default(), &mut rng));
        let pool: Vec<Vec<usize>> =
            (0..512).map(|_| (0..8).map(|_| rng.gen_range(0..4usize)).collect()).collect();
        // Forced executor widths exercise the sharded path on any host;
        // the reversed executor proves order-independence of the merge.
        for workers in [4usize, 16] {
            let batch = forest.predict_batch_on(&pool, &ReversedThreadExec(workers));
            for (config, &predicted) in pool.iter().zip(&batch) {
                assert_eq!(predicted.to_bits(), forest.predict(config).to_bits());
            }
        }
        let serial = forest.predict_batch_on(&pool, &crate::SerialExec);
        assert_eq!(serial.len(), pool.len());
        assert_eq!(forest.predict_batch(&pool), serial);
    }

    #[test]
    fn tiny_pools_stay_on_the_calling_thread() {
        // Below the dispatch threshold the sharded entry point must not
        // submit jobs at all (the executor would panic if used).
        struct PanicExec;
        impl Executor for PanicExec {
            fn workers(&self) -> usize {
                8
            }
            fn execute(&self, _jobs: Vec<Job>) {
                panic!("tiny pool must not dispatch");
            }
        }
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<Vec<usize>> = (0..50).map(|i| vec![i % 4, (i / 4) % 4]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] as f64).collect();
        let forest =
            Arc::new(RandomForest::fit(&xs, &ys, &[4, 4], &ForestOptions::default(), &mut rng));
        let pool: Vec<Vec<usize>> = (0..16).map(|i| vec![i % 4, (i / 4) % 4]).collect();
        assert_eq!(forest.predict_batch_on(&pool, &PanicExec), forest.predict_batch(&pool));
    }

    #[test]
    fn group_min_scores_match_per_group_serial_minima() {
        let mut rng = StdRng::seed_from_u64(41);
        let xs: Vec<Vec<usize>> =
            (0..200).map(|_| (0..6).map(|_| rng.gen_range(0..4usize)).collect()).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<usize>() as f64).collect();
        let forest =
            Arc::new(RandomForest::fit(&xs, &ys, &[4; 6], &ForestOptions::default(), &mut rng));
        let groups: Vec<Vec<Vec<usize>>> = (0..40)
            .map(|g| (0..16).map(|k| (0..6).map(|i| (g + k + i) % 4).collect()).collect())
            .collect();
        // Sharded scores equal the serial per-group fold, bit for bit,
        // through an order-scrambling executor.
        for exec in [&ReversedThreadExec(6) as &dyn Executor, &crate::SerialExec] {
            let scores = forest.predict_group_min_on(&groups, exec);
            assert_eq!(scores.len(), groups.len());
            for (group, &score) in groups.iter().zip(&scores) {
                let expected =
                    group.iter().map(|c| forest.predict(c)).fold(f64::INFINITY, f64::min);
                assert_eq!(score.to_bits(), expected.to_bits());
            }
        }
        // Empty groups score +∞ (rank last), without disturbing others.
        let with_empty = vec![groups[0].clone(), Vec::new(), groups[1].clone()];
        let scores = forest.predict_group_min_on(&with_empty, &crate::SerialExec);
        assert_eq!(scores[1], f64::INFINITY);
        assert!(scores[0].is_finite() && scores[2].is_finite());
    }

    #[test]
    fn window_selection_keeps_the_incumbent() {
        let ys = [5.0, 1.0, 7.0, 9.0, 8.0, 6.0];
        // Window of 2 → most recent two indices, plus incumbent 1.
        assert_eq!(window_indices(&ys, 2), vec![1, 4, 5]);
        // Incumbent already inside the window → no duplicate.
        assert_eq!(window_indices(&ys, 5), vec![1, 2, 3, 4, 5]);
        // No-op configurations return the identity selection.
        assert_eq!(window_indices(&ys, 0), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(window_indices(&ys, 6), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(window_indices(&ys, 100), vec![0, 1, 2, 3, 4, 5]);
        // Ties resolve to the earliest index (stable incumbent identity).
        assert_eq!(window_indices(&[3.0, 1.0, 1.0, 2.0, 4.0], 1), vec![1, 4]);
        // NaN values can never be the incumbent; an all-NaN history
        // degrades to the bare window.
        let nan = f64::NAN;
        assert_eq!(window_indices(&[nan, 1.0, 5.0, 6.0], 1), vec![1, 3]);
        assert_eq!(window_indices(&[nan, nan, nan], 2), vec![1, 2]);
    }

    #[test]
    fn windowed_fit_trains_only_on_window_and_incumbent() {
        // History where the early (incumbent) region and the recent
        // window disagree wildly with the middle: a windowed forest must
        // reflect window + incumbent, not the middle.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        xs.push(vec![0usize, 0]);
        ys.push(-10.0); // the incumbent, far before the window
        for _ in 0..50 {
            xs.push(vec![3usize, 3]);
            ys.push(100.0); // stale middle, must be forgotten
        }
        for _ in 0..20 {
            xs.push(vec![1usize, 1]);
            ys.push(5.0); // the live window
        }
        let mut rng = StdRng::seed_from_u64(3);
        let opts = ForestOptions { window: 20, ..Default::default() };
        let forest = RandomForest::fit(&xs, &ys, &[4, 4], &opts, &mut rng);
        // Every training target is either −10 or 5, so no prediction can
        // come anywhere near the forgotten 100.0 plateau.
        for probe in [[3usize, 3], [1, 1], [0, 0]] {
            assert!(forest.predict(&probe) <= 5.0 + 1e-9, "probe {probe:?}");
        }
    }

    #[test]
    fn prediction_std_is_finite_and_nonnegative() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<Vec<usize>> = (0..50).map(|i| vec![i % 4, (i / 4) % 4]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] as f64).collect();
        let forest = RandomForest::fit(&xs, &ys, &[4, 4], &ForestOptions::default(), &mut rng);
        let (m, s) = forest.predict_with_std(&[2, 1]);
        assert!(m.is_finite() && s >= 0.0);
    }
}
