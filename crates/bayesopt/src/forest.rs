//! Bagged random-forest regression — the CAFQA surrogate model.
//!
//! The paper (§5) picks a random forest "as it is flexible enough to model
//! the discrete space and scales well", following HyperMapper.

use rand::Rng;

use crate::tree::{RegressionTree, TreeOptions};

/// Random-forest options.
#[derive(Debug, Clone)]
pub struct ForestOptions {
    /// Number of trees.
    pub n_trees: usize,
    /// Bootstrap sample size (`0` = same as training-set size).
    pub bootstrap: usize,
    /// Per-split feature subsample (`0` = `√d + 1`).
    pub feature_subsample: usize,
    /// Tree growth options.
    pub tree: TreeOptions,
}

impl Default for ForestOptions {
    fn default() -> Self {
        ForestOptions {
            n_trees: 24,
            bootstrap: 0,
            feature_subsample: 0,
            tree: TreeOptions::default(),
        }
    }
}

/// A bagged ensemble of [`RegressionTree`]s.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fits the forest on all `(xs, ys)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or lengths mismatch.
    pub fn fit(
        xs: &[Vec<usize>],
        ys: &[f64],
        cardinalities: &[usize],
        opts: &ForestOptions,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!xs.is_empty(), "cannot fit a forest on no samples");
        assert_eq!(xs.len(), ys.len());
        let n = xs.len();
        let boot = if opts.bootstrap == 0 { n } else { opts.bootstrap.min(n) };
        let d = cardinalities.len();
        let feature_subsample = if opts.feature_subsample == 0 {
            ((d as f64).sqrt() as usize + 1).min(d)
        } else {
            opts.feature_subsample
        };
        let tree_opts = TreeOptions { feature_subsample, ..opts.tree.clone() };
        let trees = (0..opts.n_trees)
            .map(|_| {
                let idx: Vec<usize> = (0..boot).map(|_| rng.gen_range(0..n)).collect();
                RegressionTree::fit(xs, ys, &idx, cardinalities, &tree_opts, rng)
            })
            .collect();
        RandomForest { trees }
    }

    /// Mean prediction over the ensemble.
    pub fn predict(&self, config: &[usize]) -> f64 {
        self.trees.iter().map(|t| t.predict(config)).sum::<f64>() / self.trees.len() as f64
    }

    /// [`Self::predict`] over a whole candidate pool, sharded across
    /// worker threads for large pools. Results are in input order and
    /// identical to per-candidate calls (each prediction is independent).
    pub fn predict_batch(&self, configs: &[Vec<usize>]) -> Vec<f64> {
        // Tree traversals are cheap; only pools with substantial total
        // work amortize the thread spawns.
        let workers = if configs.len() * self.trees.len() < 8192 {
            1
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get()).min(16)
        };
        self.predict_batch_with_workers(configs, workers)
    }

    /// [`Self::predict_batch`] with an explicit worker count; exposed so
    /// the sharded path stays testable regardless of the host's cores.
    pub fn predict_batch_with_workers(&self, configs: &[Vec<usize>], workers: usize) -> Vec<f64> {
        let workers = workers.min(configs.len());
        if workers <= 1 {
            return configs.iter().map(|c| self.predict(c)).collect();
        }
        let mut out = vec![0.0f64; configs.len()];
        let chunk = configs.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for (config_chunk, out_chunk) in configs.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (config, slot) in config_chunk.iter().zip(out_chunk.iter_mut()) {
                        *slot = self.predict(config);
                    }
                });
            }
        });
        out
    }

    /// Mean and standard deviation over the ensemble (a cheap uncertainty
    /// proxy, useful for exploration diagnostics).
    pub fn predict_with_std(&self, config: &[usize]) -> (f64, f64) {
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(config)).collect();
        let m = preds.iter().sum::<f64>() / preds.len() as f64;
        let var = preds.iter().map(|p| (p - m).powi(2)).sum::<f64>() / preds.len() as f64;
        (m, var.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forest_beats_mean_baseline() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..600 {
            let x: Vec<usize> = (0..6).map(|_| rng.gen_range(0..4usize)).collect();
            let y = (x[0] as f64 - 1.5).powi(2) + 0.5 * x[3] as f64 - 0.2 * x[5] as f64;
            xs.push(x);
            ys.push(y);
        }
        let forest = RandomForest::fit(&xs, &ys, &[4; 6], &ForestOptions::default(), &mut rng);
        let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
        let mut sse_forest = 0.0;
        let mut sse_mean = 0.0;
        for (x, y) in xs.iter().zip(&ys) {
            sse_forest += (forest.predict(x) - y).powi(2);
            sse_mean += (mean_y - y).powi(2);
        }
        assert!(sse_forest < 0.3 * sse_mean, "forest {sse_forest} vs mean {sse_mean}");
    }

    #[test]
    fn batch_predictions_match_serial() {
        let mut rng = StdRng::seed_from_u64(23);
        let xs: Vec<Vec<usize>> =
            (0..300).map(|_| (0..8).map(|_| rng.gen_range(0..4usize)).collect()).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<usize>() as f64).collect();
        let forest = RandomForest::fit(&xs, &ys, &[4; 8], &ForestOptions::default(), &mut rng);
        let pool: Vec<Vec<usize>> =
            (0..512).map(|_| (0..8).map(|_| rng.gen_range(0..4usize)).collect()).collect();
        // Forced worker counts exercise the sharded path on any host.
        for workers in [1usize, 4, 16] {
            let batch = forest.predict_batch_with_workers(&pool, workers);
            for (config, &predicted) in pool.iter().zip(&batch) {
                assert_eq!(predicted.to_bits(), forest.predict(config).to_bits());
            }
        }
        assert_eq!(forest.predict_batch(&pool).len(), pool.len());
    }

    #[test]
    fn prediction_std_is_finite_and_nonnegative() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<Vec<usize>> = (0..50).map(|i| vec![i % 4, (i / 4) % 4]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] as f64).collect();
        let forest = RandomForest::fit(&xs, &ys, &[4, 4], &ForestOptions::default(), &mut rng);
        let (m, s) = forest.predict_with_std(&[2, 1]);
        assert!(m.is_finite() && s >= 0.0);
    }
}
