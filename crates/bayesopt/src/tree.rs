//! Regression trees over discrete integer configurations.

use rand::Rng;

/// A binary regression tree node.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        /// Go left when `config[feature] <= threshold`.
        threshold: usize,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// Tree growth options.
#[derive(Debug, Clone)]
pub struct TreeOptions {
    /// Minimum samples in a leaf.
    pub min_leaf: usize,
    /// Maximum depth.
    pub max_depth: usize,
    /// Number of candidate features per split (`0` = all).
    pub feature_subsample: usize,
}

impl Default for TreeOptions {
    fn default() -> Self {
        TreeOptions { min_leaf: 3, max_depth: 18, feature_subsample: 0 }
    }
}

/// A variance-reduction regression tree on integer feature vectors.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    root: Node,
}

fn mean(ys: &[f64], idx: &[usize]) -> f64 {
    idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len() as f64
}

fn sse(ys: &[f64], idx: &[usize]) -> f64 {
    let m = mean(ys, idx);
    idx.iter().map(|&i| (ys[i] - m).powi(2)).sum()
}

impl RegressionTree {
    /// Fits a tree on `(xs[i], ys[i])` pairs restricted to `indices`.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty.
    pub fn fit(
        xs: &[Vec<usize>],
        ys: &[f64],
        indices: &[usize],
        cardinalities: &[usize],
        opts: &TreeOptions,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!indices.is_empty(), "cannot fit a tree on no samples");
        let root = Self::grow(xs, ys, indices, cardinalities, opts, rng, 0);
        RegressionTree { root }
    }

    fn grow(
        xs: &[Vec<usize>],
        ys: &[f64],
        idx: &[usize],
        cards: &[usize],
        opts: &TreeOptions,
        rng: &mut impl Rng,
        depth: usize,
    ) -> Node {
        if idx.len() < 2 * opts.min_leaf || depth >= opts.max_depth {
            return Node::Leaf { value: mean(ys, idx) };
        }
        let parent_sse = sse(ys, idx);
        if parent_sse < 1e-18 {
            return Node::Leaf { value: mean(ys, idx) };
        }
        let d = cards.len();
        let k = if opts.feature_subsample == 0 { d } else { opts.feature_subsample.min(d) };
        // Sample k distinct features.
        let mut features: Vec<usize> = (0..d).collect();
        for i in 0..k {
            let j = rng.gen_range(i..d);
            features.swap(i, j);
        }
        let mut best: Option<(usize, usize, f64)> = None;
        for &f in &features[..k] {
            let card = cards[f];
            if card < 2 {
                continue;
            }
            // Bucket statistics per feature value.
            let mut count = vec![0usize; card];
            let mut sum = vec![0.0; card];
            let mut sumsq = vec![0.0; card];
            for &i in idx {
                let v = xs[i][f];
                count[v] += 1;
                sum[v] += ys[i];
                sumsq[v] += ys[i] * ys[i];
            }
            // Prefix scan over thresholds.
            let total_n = idx.len() as f64;
            let total_sum: f64 = sum.iter().sum();
            let total_sumsq: f64 = sumsq.iter().sum();
            let mut ln = 0.0;
            let mut ls = 0.0;
            let mut lss = 0.0;
            for t in 0..card - 1 {
                ln += count[t] as f64;
                ls += sum[t];
                lss += sumsq[t];
                let rn = total_n - ln;
                if (ln as usize) < opts.min_leaf || (rn as usize) < opts.min_leaf {
                    continue;
                }
                let left_sse = lss - ls * ls / ln;
                let right_sse = (total_sumsq - lss) - (total_sum - ls).powi(2) / rn;
                let gain = parent_sse - left_sse - right_sse;
                if best.map_or(true, |(_, _, g)| gain > g) && gain > 1e-15 {
                    best = Some((f, t, gain));
                }
            }
        }
        match best {
            None => Node::Leaf { value: mean(ys, idx) },
            Some((feature, threshold, _)) => {
                let (li, ri): (Vec<usize>, Vec<usize>) =
                    idx.iter().partition(|&&i| xs[i][feature] <= threshold);
                let left = Self::grow(xs, ys, &li, cards, opts, rng, depth + 1);
                let right = Self::grow(xs, ys, &ri, cards, opts, rng, depth + 1);
                Node::Split { feature, threshold, left: Box::new(left), right: Box::new(right) }
            }
        }
    }

    /// Predicted value for a configuration.
    pub fn predict(&self, config: &[usize]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    node = if config[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid_data(f: impl Fn(&[usize]) -> f64) -> (Vec<Vec<usize>>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..4 {
            for b in 0..4 {
                for c in 0..4 {
                    let x = vec![a, b, c];
                    ys.push(f(&x));
                    xs.push(x);
                }
            }
        }
        (xs, ys)
    }

    #[test]
    fn fits_separable_function() {
        let (xs, ys) = grid_data(|x| x[0] as f64 * 2.0 - x[2] as f64);
        let idx: Vec<usize> = (0..xs.len()).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = RegressionTree::fit(
            &xs,
            &ys,
            &idx,
            &[4, 4, 4],
            &TreeOptions { min_leaf: 1, ..Default::default() },
            &mut rng,
        );
        let mut worst = 0.0f64;
        for (x, y) in xs.iter().zip(&ys) {
            worst = worst.max((tree.predict(x) - y).abs());
        }
        assert!(worst < 1e-9, "worst residual {worst}");
    }

    #[test]
    fn constant_data_gives_constant_leaf() {
        let (xs, ys) = grid_data(|_| 7.5);
        let idx: Vec<usize> = (0..xs.len()).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let tree =
            RegressionTree::fit(&xs, &ys, &idx, &[4, 4, 4], &TreeOptions::default(), &mut rng);
        assert_eq!(tree.predict(&[0, 0, 0]), 7.5);
        assert_eq!(tree.predict(&[3, 3, 3]), 7.5);
    }

    #[test]
    fn respects_min_leaf() {
        let (xs, ys) = grid_data(|x| x[0] as f64);
        let idx: Vec<usize> = (0..xs.len()).collect();
        let mut rng = StdRng::seed_from_u64(3);
        // Huge min_leaf forces a single leaf = global mean.
        let tree = RegressionTree::fit(
            &xs,
            &ys,
            &idx,
            &[4, 4, 4],
            &TreeOptions { min_leaf: 100, ..Default::default() },
            &mut rng,
        );
        let global_mean = ys.iter().sum::<f64>() / ys.len() as f64;
        assert_eq!(tree.predict(&[0, 0, 0]), global_mean);
    }
}
