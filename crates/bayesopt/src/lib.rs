//! Discrete Bayesian optimization with a random-forest surrogate.
//!
//! This is the search engine of CAFQA's classical loop (paper §5): the
//! Clifford parameter space is discrete (`4^#params`), so the surrogate
//! is a bagged [`RandomForest`] over integer configurations and the
//! acquisition is greedy (ε-greedy) over a candidate pool of incumbent
//! mutations and uniform samples, after a random warm-up phase — the
//! HyperMapper recipe the paper follows.
//!
//! # Examples
//!
//! ```
//! use cafqa_bayesopt::{minimize, BoOptions, SearchSpace};
//!
//! let space = SearchSpace::uniform(4, 4);
//! let opts = BoOptions { warmup: 20, iterations: 40, ..Default::default() };
//! let result = minimize(&space, |c| c.iter().sum::<usize>() as f64, &[], &opts);
//! assert_eq!(result.best_value, 0.0); // all-zeros config
//! ```
#![warn(missing_docs)]

mod forest;
mod search;
mod tree;

pub use forest::{ForestOptions, RandomForest};
pub use search::{minimize, BoOptions, BoResult, Evaluation, SearchSpace};
pub use tree::{RegressionTree, TreeOptions};
