//! Discrete Bayesian optimization with a random-forest surrogate.
//!
//! This is the search engine of CAFQA's classical loop (paper §5): the
//! Clifford parameter space is discrete (`4^#params`), so the surrogate
//! is a bagged [`RandomForest`] over integer configurations and the
//! acquisition is greedy (ε-greedy) over a candidate pool of incumbent
//! mutations and uniform samples, after a random warm-up phase — the
//! HyperMapper recipe the paper follows.
//!
//! The objective is a **batch** function (`&[Vec<usize>] → Vec<f64>`):
//! warm-up arrives as one embarrassingly-parallel batch and the
//! acquisition proposes the top-B predicted candidates per surrogate
//! refit ([`BoOptions::proposals_per_refit`]), so callers can shard
//! evaluation over a worker pool. Surrogate scoring itself shards over
//! the [`Executor`] seam — `cafqa_core`'s persistent engine implements
//! it, [`SerialExec`] is the dependency-free default. At Cr2 scale the
//! refit *itself* is bounded by [`ForestOptions::window`] (fit on a
//! recent window plus the incumbent instead of the whole history); the
//! knobs and their determinism contract are documented on
//! [`BoOptions`](BoOptions#determinism-and-refit-cadence).
//!
//! # Examples
//!
//! ```
//! use cafqa_bayesopt::{minimize, BoOptions, SearchSpace};
//!
//! let space = SearchSpace::uniform(4, 4);
//! let opts = BoOptions { warmup: 20, iterations: 40, ..Default::default() };
//! let result = minimize(
//!     &space,
//!     |batch| batch.iter().map(|c| c.iter().sum::<usize>() as f64).collect(),
//!     &[],
//!     &opts,
//! );
//! assert_eq!(result.best_value, 0.0); // all-zeros config
//! ```
#![warn(missing_docs)]

mod exec;
mod forest;
mod search;
mod tree;

pub use exec::{map_jobs, Executor, Job, SerialExec};
pub use forest::{ForestOptions, RandomForest};
pub use search::{
    minimize, minimize_suspendable_with, minimize_with, BatchStatus, BoOptions, BoResult,
    Evaluation, SearchSpace,
};
pub use tree::{RegressionTree, TreeOptions};
