//! The Bayesian-optimization minimization loop (paper §5 / Fig. 7).
//!
//! Warm-up: uniform random sampling of the discrete space (the paper uses
//! 1000 warm-up iterations for H2O). Search: fit the random-forest
//! surrogate on everything evaluated so far, score a candidate pool
//! (uniform samples + coordinate mutations of the incumbents), and
//! greedily evaluate the best predicted candidate (ε-greedy for
//! exploration).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::forest::{ForestOptions, RandomForest};

/// The discrete search space: parameter `i` takes values
/// `0..cardinalities[i]` (CAFQA: 4 Clifford angles per parameter).
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Per-parameter value counts.
    pub cardinalities: Vec<usize>,
}

impl SearchSpace {
    /// A uniform space of `dims` parameters with `card` values each.
    pub fn uniform(dims: usize, card: usize) -> Self {
        SearchSpace { cardinalities: vec![card; dims] }
    }

    /// Number of parameters.
    pub fn dims(&self) -> usize {
        self.cardinalities.len()
    }

    /// log₂ of the space size (the paper's `O(4^#params)`).
    pub fn log2_size(&self) -> f64 {
        self.cardinalities.iter().map(|&c| (c as f64).log2()).sum()
    }

    fn sample(&self, rng: &mut impl Rng) -> Vec<usize> {
        self.cardinalities.iter().map(|&c| rng.gen_range(0..c)).collect()
    }

    fn mutate(&self, base: &[usize], rng: &mut impl Rng, max_changes: usize) -> Vec<usize> {
        let mut out = base.to_vec();
        let changes = rng.gen_range(1..=max_changes.max(1));
        for _ in 0..changes {
            let i = rng.gen_range(0..out.len());
            out[i] = rng.gen_range(0..self.cardinalities[i]);
        }
        out
    }
}

/// Options for [`minimize`].
#[derive(Debug, Clone)]
pub struct BoOptions {
    /// Random warm-up evaluations before the surrogate turns on.
    pub warmup: usize,
    /// Surrogate-guided iterations after warm-up.
    pub iterations: usize,
    /// Candidate-pool size per iteration.
    pub candidates: usize,
    /// Number of incumbent configurations to mutate into the pool.
    pub top_k: usize,
    /// ε-greedy exploration probability.
    pub epsilon: f64,
    /// Refit the surrogate every `refit_every` iterations (1 = always).
    pub refit_every: usize,
    /// Random-forest options.
    pub forest: ForestOptions,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Stop early when the best value has not improved by more than
    /// `patience_tol` for `patience` consecutive iterations (0 disables).
    pub patience: usize,
    /// Improvement tolerance for the patience counter.
    pub patience_tol: f64,
}

impl Default for BoOptions {
    fn default() -> Self {
        BoOptions {
            warmup: 200,
            iterations: 300,
            candidates: 96,
            top_k: 5,
            epsilon: 0.05,
            refit_every: 1,
            forest: ForestOptions::default(),
            seed: 0xCAF9A,
            patience: 0,
            patience_tol: 1e-10,
        }
    }
}

/// One evaluated point.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The configuration.
    pub config: Vec<usize>,
    /// Its objective value.
    pub value: f64,
    /// Best value seen up to and including this evaluation.
    pub best_so_far: f64,
}

/// The outcome of a [`minimize`] run.
#[derive(Debug, Clone)]
pub struct BoResult {
    /// The best configuration found.
    pub best_config: Vec<usize>,
    /// Its objective value.
    pub best_value: f64,
    /// Every evaluation in order (warm-up included) — this is the trace
    /// plotted in the paper's Fig. 7.
    pub history: Vec<Evaluation>,
    /// Index (1-based) of the evaluation that first achieved the final
    /// best value — the paper's Fig. 15 metric.
    pub iterations_to_best: usize,
}

/// Minimizes a black-box objective over a discrete space.
///
/// `seeds` are evaluated first (CAFQA seeds the Hartree-Fock
/// configuration, guaranteeing the result is never worse than HF).
///
/// # Examples
///
/// ```
/// use cafqa_bayesopt::{minimize, BoOptions, SearchSpace};
///
/// // Minimize the Hamming distance to a hidden target.
/// let target = [3usize, 1, 0, 2, 3, 0];
/// let space = SearchSpace::uniform(6, 4);
/// let opts = BoOptions { warmup: 40, iterations: 120, ..Default::default() };
/// let result = minimize(
///     &space,
///     |c| c.iter().zip(&target).filter(|(a, b)| a != b).count() as f64,
///     &[],
///     &opts,
/// );
/// assert_eq!(result.best_value, 0.0);
/// ```
pub fn minimize(
    space: &SearchSpace,
    mut objective: impl FnMut(&[usize]) -> f64,
    seeds: &[Vec<usize>],
    opts: &BoOptions,
) -> BoResult {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut xs: Vec<Vec<usize>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let mut history: Vec<Evaluation> = Vec::new();
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    let mut best = f64::INFINITY;
    let mut best_config: Vec<usize> = Vec::new();
    let mut iterations_to_best = 0usize;
    let mut stale = 0usize;

    let evaluate = |config: Vec<usize>,
                    xs: &mut Vec<Vec<usize>>,
                    ys: &mut Vec<f64>,
                    history: &mut Vec<Evaluation>,
                    seen: &mut HashSet<Vec<usize>>,
                    best: &mut f64,
                    best_config: &mut Vec<usize>,
                    iterations_to_best: &mut usize,
                    objective: &mut dyn FnMut(&[usize]) -> f64| {
        let value = objective(&config);
        if value < *best - 1e-15 {
            *best = value;
            *best_config = config.clone();
            *iterations_to_best = history.len() + 1;
        }
        seen.insert(config.clone());
        history.push(Evaluation { config: config.clone(), value, best_so_far: *best });
        xs.push(config);
        ys.push(value);
        value
    };

    // Seeds (e.g. the HF configuration) and warm-up random sampling.
    for seed in seeds {
        assert_eq!(seed.len(), space.dims(), "seed dimensionality mismatch");
        evaluate(
            seed.clone(),
            &mut xs,
            &mut ys,
            &mut history,
            &mut seen,
            &mut best,
            &mut best_config,
            &mut iterations_to_best,
            &mut objective,
        );
    }
    for _ in 0..opts.warmup {
        let c = space.sample(&mut rng);
        evaluate(
            c,
            &mut xs,
            &mut ys,
            &mut history,
            &mut seen,
            &mut best,
            &mut best_config,
            &mut iterations_to_best,
            &mut objective,
        );
    }

    let mut forest: Option<RandomForest> = None;
    for it in 0..opts.iterations {
        // With no history at all (`warmup == 0`, no seeds) there is
        // nothing to fit or mutate: fall back to uniform sampling until
        // the first evaluation lands.
        let pick = if xs.is_empty() {
            space.sample(&mut rng)
        } else {
            if forest.is_none() || it % opts.refit_every.max(1) == 0 {
                forest =
                    Some(RandomForest::fit(&xs, &ys, &space.cardinalities, &opts.forest, &mut rng));
            }
            let model = forest.as_ref().expect("fitted above");
            // Candidate pool: incumbent mutations + uniform samples.
            // NaN objective values (either sign — `0.0/0.0` is −NaN on
            // x86) are excluded outright so they can never seed the
            // incumbent mutations; `total_cmp` keeps the remaining
            // ordering well-defined.
            let mut pool: Vec<Vec<usize>> = Vec::with_capacity(opts.candidates);
            let mut order: Vec<usize> = (0..ys.len()).filter(|&i| !ys[i].is_nan()).collect();
            order.sort_by(|&a, &b| ys[a].total_cmp(&ys[b]));
            if !order.is_empty() {
                let n_mut = (opts.candidates / 2).max(1);
                for k in 0..n_mut {
                    let base = &xs[order[k % opts.top_k.min(order.len()).max(1)]];
                    pool.push(space.mutate(base, &mut rng, 3));
                }
            }
            while pool.len() < opts.candidates {
                pool.push(space.sample(&mut rng));
            }
            // Greedy acquisition with ε-greedy exploration; the surrogate
            // scores the whole pool as one batch. NaN predictions are
            // never acquired greedily.
            if rng.gen::<f64>() < opts.epsilon {
                pool[rng.gen_range(0..pool.len())].clone()
            } else {
                let predictions = model.predict_batch(&pool);
                pool.iter()
                    .zip(&predictions)
                    .filter(|(c, p)| !seen.contains(*c) && !p.is_nan())
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(c, _)| c.clone())
                    .unwrap_or_else(|| space.sample(&mut rng))
            }
        };
        let prev_best = best;
        evaluate(
            pick,
            &mut xs,
            &mut ys,
            &mut history,
            &mut seen,
            &mut best,
            &mut best_config,
            &mut iterations_to_best,
            &mut objective,
        );
        if opts.patience > 0 {
            if prev_best - best > opts.patience_tol {
                stale = 0;
            } else {
                stale += 1;
                if stale >= opts.patience {
                    break;
                }
            }
        }
    }

    BoResult { best_config, best_value: best, history, iterations_to_best }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(target: &[usize]) -> impl Fn(&[usize]) -> f64 + '_ {
        move |c: &[usize]| c.iter().zip(target).map(|(&a, &t)| (a as f64 - t as f64).powi(2)).sum()
    }

    #[test]
    fn finds_global_minimum_of_quadratic() {
        let target = vec![2usize, 0, 3, 1, 2, 3, 0, 1];
        let space = SearchSpace::uniform(8, 4);
        let opts = BoOptions { warmup: 60, iterations: 250, ..Default::default() };
        let f = quadratic(&target);
        let result = minimize(&space, |c| f(c), &[], &opts);
        assert_eq!(result.best_value, 0.0, "best config {:?}", result.best_config);
        assert_eq!(result.best_config, target);
    }

    #[test]
    fn beats_pure_random_search() {
        // Compare best-of-N for BO vs pure random on a rugged function.
        let space = SearchSpace::uniform(10, 4);
        let f = |c: &[usize]| {
            let s: f64 =
                c.iter().enumerate().map(|(i, &v)| ((v as f64) - ((i % 4) as f64)).abs()).sum();
            s + if c[0] == c[9] { 0.0 } else { 2.0 }
        };
        let opts = BoOptions { warmup: 50, iterations: 200, seed: 3, ..Default::default() };
        let bo = minimize(&space, f, &[], &opts);
        let random_opts = BoOptions { warmup: 250, iterations: 0, seed: 3, ..Default::default() };
        let random = minimize(&space, f, &[], &random_opts);
        assert!(bo.best_value <= random.best_value, "{} vs {}", bo.best_value, random.best_value);
    }

    #[test]
    fn seed_guarantees_upper_bound() {
        // A seed at the optimum can never be lost.
        let target = vec![1usize, 1, 1, 1];
        let space = SearchSpace::uniform(4, 4);
        let f = quadratic(&target);
        let opts = BoOptions { warmup: 5, iterations: 10, ..Default::default() };
        let result = minimize(&space, |c| f(c), std::slice::from_ref(&target), &opts);
        assert_eq!(result.best_value, 0.0);
        assert_eq!(result.iterations_to_best, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let space = SearchSpace::uniform(6, 4);
        let f = |c: &[usize]| c.iter().map(|&v| (v as f64 - 1.7).powi(2)).sum::<f64>();
        let opts = BoOptions { warmup: 30, iterations: 50, seed: 42, ..Default::default() };
        let a = minimize(&space, f, &[], &opts);
        let b = minimize(&space, f, &[], &opts);
        assert_eq!(a.best_config, b.best_config);
        assert_eq!(a.history.len(), b.history.len());
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.value, y.value);
        }
    }

    #[test]
    fn history_best_so_far_is_monotone() {
        let space = SearchSpace::uniform(5, 4);
        let f = |c: &[usize]| c.iter().map(|&v| v as f64).sum::<f64>();
        let opts = BoOptions { warmup: 40, iterations: 40, ..Default::default() };
        let result = minimize(&space, f, &[], &opts);
        for w in result.history.windows(2) {
            assert!(w[1].best_so_far <= w[0].best_so_far + 1e-15);
        }
    }

    #[test]
    fn patience_stops_early() {
        let space = SearchSpace::uniform(3, 4);
        let f = |_: &[usize]| 1.0; // flat: nothing to improve
        let opts = BoOptions { warmup: 10, iterations: 500, patience: 20, ..Default::default() };
        let result = minimize(&space, f, &[], &opts);
        assert!(result.history.len() < 100, "stopped after {}", result.history.len());
    }

    #[test]
    fn zero_warmup_without_seeds_does_not_panic() {
        // Regression: an empty history used to hit `k % 0` (and an empty
        // forest fit) on the first surrogate iteration. The search must
        // fall back to uniform sampling instead.
        let space = SearchSpace::uniform(4, 4);
        let f = |c: &[usize]| c.iter().sum::<usize>() as f64;
        let opts = BoOptions { warmup: 0, iterations: 30, ..Default::default() };
        let result = minimize(&space, f, &[], &opts);
        assert_eq!(result.history.len(), 30);
        assert!(result.best_value.is_finite());
        assert_eq!(result.best_config.len(), 4);
    }

    #[test]
    fn nan_objective_degrades_instead_of_panicking() {
        // A NaN objective value must never panic the comparators and must
        // never be reported as the incumbent. `0.0 / 0.0` produces the
        // sign-bit-set NaN on x86, which `total_cmp` sorts *first* — the
        // search must filter it, not merely order it.
        let space = SearchSpace::uniform(3, 4);
        let zero = std::hint::black_box(0.0f64);
        let f = |c: &[usize]| {
            if c[0] == 2 {
                zero / zero
            } else {
                c.iter().sum::<usize>() as f64
            }
        };
        let opts = BoOptions { warmup: 30, iterations: 60, ..Default::default() };
        let result = minimize(&space, f, &[], &opts);
        assert!(result.best_value.is_finite());
        assert_ne!(result.best_config[0], 2);
    }

    #[test]
    fn all_nan_history_falls_back_to_uniform_pool() {
        // Every evaluation NaN: mutation bases are unavailable, so the
        // pool must degrade to uniform sampling without panicking.
        let space = SearchSpace::uniform(3, 4);
        let zero = std::hint::black_box(0.0f64);
        let opts = BoOptions { warmup: 5, iterations: 20, ..Default::default() };
        let result = minimize(&space, |_| zero / zero, &[], &opts);
        assert_eq!(result.history.len(), 25);
        assert!(result.best_value.is_nan() || result.best_value.is_infinite());
    }

    #[test]
    fn log2_size_matches_paper_complexity() {
        // H2O: 48 parameters with 4 angles each → 4^48 configurations.
        let space = SearchSpace::uniform(48, 4);
        assert_eq!(space.log2_size(), 96.0);
    }
}
