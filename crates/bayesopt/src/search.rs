//! The Bayesian-optimization minimization loop (paper §5 / Fig. 7).
//!
//! Warm-up: uniform random sampling of the discrete space (the paper uses
//! 1000 warm-up iterations for H2O), evaluated as **one batch** — warm-up
//! samples are independent given the seed, so they parallelize perfectly.
//! Search: fit the random-forest surrogate on everything evaluated so
//! far, score a candidate pool (uniform samples + coordinate mutations of
//! the incumbents), and evaluate the **top-B** predicted candidates per
//! refit (ε-greedy per proposal for exploration). `B` is
//! [`BoOptions::proposals_per_refit`]; at `B = 1` the trajectory is
//! exactly the classic one-candidate-per-refit loop, while larger `B`
//! amortizes the surrogate refit — the dominant cost at H2O/Cr2 scale —
//! over several objective evaluations.

use std::collections::HashSet;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::exec::{Executor, SerialExec};
use crate::forest::{ForestOptions, RandomForest};

/// The discrete search space: parameter `i` takes values
/// `0..cardinalities[i]` (CAFQA: 4 Clifford angles per parameter).
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Per-parameter value counts.
    pub cardinalities: Vec<usize>,
}

impl SearchSpace {
    /// A uniform space of `dims` parameters with `card` values each.
    pub fn uniform(dims: usize, card: usize) -> Self {
        SearchSpace { cardinalities: vec![card; dims] }
    }

    /// Number of parameters.
    pub fn dims(&self) -> usize {
        self.cardinalities.len()
    }

    /// log₂ of the space size (the paper's `O(4^#params)`).
    pub fn log2_size(&self) -> f64 {
        self.cardinalities.iter().map(|&c| (c as f64).log2()).sum()
    }

    fn sample(&self, rng: &mut impl Rng) -> Vec<usize> {
        self.cardinalities.iter().map(|&c| rng.gen_range(0..c)).collect()
    }

    fn mutate(&self, base: &[usize], rng: &mut impl Rng, max_changes: usize) -> Vec<usize> {
        let mut out = base.to_vec();
        let changes = rng.gen_range(1..=max_changes.max(1));
        for _ in 0..changes {
            let i = rng.gen_range(0..out.len());
            out[i] = rng.gen_range(0..self.cardinalities[i]);
        }
        out
    }
}

/// Options for [`minimize`].
///
/// # Determinism and refit cadence
///
/// Three knobs govern how often (and on how much data) the surrogate is
/// refit, and they compose — this section is the single source of truth
/// for their interaction:
///
/// - [`refit_every`](Self::refit_every): a refit happens every
///   `refit_every` acquisition **cycles**; stale cycles reuse the forest
///   but still rebuild and re-score a fresh candidate pool.
/// - [`proposals_per_refit`](Self::proposals_per_refit) (`B`): each
///   cycle proposes and evaluates the top-`B` unseen candidates, so one
///   fit amortizes over `refit_every · B` objective evaluations.
/// - [`ForestOptions::window`](crate::ForestOptions::window) (via
///   [`forest`](Self::forest)): each fit trains on only the `window`
///   most recent evaluations plus the incumbent, capping the fit cost
///   itself — without it, refits grow `O(history)` no matter how rarely
///   they happen.
///
/// The determinism contract, in decreasing strictness:
///
/// 1. **Every** configuration is deterministic given
///    [`seed`](Self::seed): the same options and objective produce the
///    same trace, bit for bit, on any host — and executor width never
///    matters ([`minimize_with`] shards only independent per-candidate
///    work, reassembled in submission order).
/// 2. `B = 1` reproduces the classic one-candidate-per-refit loop
///    exactly (same RNG draws, same `min_by` tie-breaks, same
///    `refit_every` staleness).
/// 3. `window = 0` — or any `window >=` the current history length —
///    reproduces the full-history fit bit-for-bit on the same RNG
///    stream (window selection draws no randomness).
///
/// Changing `B`, `refit_every` or a *binding* `window` changes which
/// candidates are proposed (a different-but-still-deterministic
/// trajectory); they trade surrogate freshness for refit cost, they do
/// not trade away reproducibility.
#[derive(Debug, Clone)]
pub struct BoOptions {
    /// Random warm-up evaluations before the surrogate turns on.
    pub warmup: usize,
    /// Surrogate-guided iterations (objective evaluations) after warm-up.
    pub iterations: usize,
    /// Candidate-pool size per acquisition cycle.
    pub candidates: usize,
    /// Number of incumbent configurations to mutate into the pool.
    pub top_k: usize,
    /// ε-greedy exploration probability (drawn per proposal).
    pub epsilon: f64,
    /// Refit the surrogate every `refit_every` acquisition cycles
    /// (1 = every cycle). Stale cycles still rebuild and score the
    /// *current* candidate pool — only the forest is reused.
    pub refit_every: usize,
    /// Proposals evaluated per acquisition cycle (the paper-scale knob):
    /// the acquisition ranks the pool once and takes the best `B` unseen
    /// candidates, so one surrogate refit amortizes over `B` objective
    /// evaluations. `1` reproduces the classic loop exactly; the default
    /// of 4 keeps refit cost under ~25 % of the loop at H2O scale.
    pub proposals_per_refit: usize,
    /// Random-forest options, including the refit
    /// [`window`](ForestOptions::window) (see the [determinism and refit
    /// cadence](Self#determinism-and-refit-cadence) notes).
    pub forest: ForestOptions,
    /// RNG seed (runs are fully deterministic given the seed).
    pub seed: u64,
    /// Stop early when the best value has not improved by more than
    /// `patience_tol` for `patience` consecutive evaluations (0 disables).
    pub patience: usize,
    /// Improvement tolerance for the patience counter.
    pub patience_tol: f64,
}

impl Default for BoOptions {
    fn default() -> Self {
        BoOptions {
            warmup: 200,
            iterations: 300,
            candidates: 96,
            top_k: 5,
            epsilon: 0.05,
            refit_every: 1,
            proposals_per_refit: 4,
            forest: ForestOptions::default(),
            seed: 0xCAF9A,
            patience: 0,
            patience_tol: 1e-10,
        }
    }
}

/// One evaluated point.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The configuration.
    pub config: Vec<usize>,
    /// Its objective value.
    pub value: f64,
    /// Best value seen up to and including this evaluation.
    pub best_so_far: f64,
}

/// One step of an interruptible batch objective
/// ([`minimize_suspendable_with`]): either the evaluated values for the
/// proposed batch, or a request to suspend the search *before* the batch
/// is evaluated.
#[derive(Debug, Clone)]
pub enum BatchStatus {
    /// The batch was evaluated: one value per configuration, in order.
    Values(Vec<f64>),
    /// Suspend the search now. The proposed batch is discarded
    /// unevaluated; the returned history contains only completed
    /// evaluations, so a deterministic caller can replay it later and
    /// continue from exactly this point (see the resume notes on
    /// [`minimize_suspendable_with`]).
    Suspend,
}

/// The outcome of a [`minimize`] run.
#[derive(Debug, Clone)]
pub struct BoResult {
    /// The best configuration found.
    pub best_config: Vec<usize>,
    /// Its objective value.
    pub best_value: f64,
    /// Every evaluation in order (warm-up included) — this is the trace
    /// plotted in the paper's Fig. 7.
    pub history: Vec<Evaluation>,
    /// Index (1-based) of the evaluation that first achieved the final
    /// best value — the paper's Fig. 15 metric.
    pub iterations_to_best: usize,
}

/// Bookkeeping shared by the warm-up and acquisition phases: evaluation
/// results are folded in **submission order**, so the trace is identical
/// however the batch was computed.
struct SearchState {
    xs: Vec<Vec<usize>>,
    ys: Vec<f64>,
    history: Vec<Evaluation>,
    seen: HashSet<Vec<usize>>,
    best: f64,
    best_config: Vec<usize>,
    iterations_to_best: usize,
}

impl SearchState {
    fn new() -> Self {
        SearchState {
            xs: Vec::new(),
            ys: Vec::new(),
            history: Vec::new(),
            seen: HashSet::new(),
            best: f64::INFINITY,
            best_config: Vec::new(),
            iterations_to_best: 0,
        }
    }

    fn record(&mut self, config: Vec<usize>, value: f64) {
        if value < self.best - 1e-15 {
            self.best = value;
            self.best_config = config.clone();
            self.iterations_to_best = self.history.len() + 1;
        }
        self.seen.insert(config.clone());
        self.history.push(Evaluation { config: config.clone(), value, best_so_far: self.best });
        self.xs.push(config);
        self.ys.push(value);
    }

    fn into_result(self) -> BoResult {
        BoResult {
            best_config: self.best_config,
            best_value: self.best,
            history: self.history,
            iterations_to_best: self.iterations_to_best,
        }
    }
}

/// Minimizes a black-box **batch** objective over a discrete space.
///
/// The objective receives a slice of configurations and must return one
/// value per configuration, in order — the seam that lets the CAFQA
/// runner evaluate whole warm-up phases and acquisition batches on its
/// worker-pool engine. `seeds` are evaluated first (CAFQA seeds the
/// Hartree-Fock configuration, guaranteeing the result is never worse
/// than HF). Surrogate scoring runs serially; use [`minimize_with`] to
/// shard it over an [`Executor`].
///
/// # Examples
///
/// ```
/// use cafqa_bayesopt::{minimize, BoOptions, SearchSpace};
///
/// // Minimize the Hamming distance to a hidden target.
/// let target = [3usize, 1, 0, 2, 3, 0];
/// let space = SearchSpace::uniform(6, 4);
/// let opts = BoOptions { warmup: 40, iterations: 120, ..Default::default() };
/// let result = minimize(
///     &space,
///     |batch| {
///         batch
///             .iter()
///             .map(|c| c.iter().zip(&target).filter(|(a, b)| a != b).count() as f64)
///             .collect()
///     },
///     &[],
///     &opts,
/// );
/// assert_eq!(result.best_value, 0.0);
/// ```
pub fn minimize(
    space: &SearchSpace,
    objective: impl FnMut(&[Vec<usize>]) -> Vec<f64>,
    seeds: &[Vec<usize>],
    opts: &BoOptions,
) -> BoResult {
    minimize_with(space, objective, seeds, opts, &SerialExec)
}

/// [`minimize`] with surrogate scoring sharded over `exec` (the CAFQA
/// runner passes its persistent worker-pool engine). The trajectory is
/// bit-identical to [`minimize`] at any executor width: predictions are
/// independent per candidate and reassembled in pool order.
pub fn minimize_with(
    space: &SearchSpace,
    mut objective: impl FnMut(&[Vec<usize>]) -> Vec<f64>,
    seeds: &[Vec<usize>],
    opts: &BoOptions,
    exec: &dyn Executor,
) -> BoResult {
    let (result, completed) = minimize_suspendable_with(
        space,
        |batch| BatchStatus::Values(objective(batch)),
        seeds,
        opts,
        exec,
    );
    debug_assert!(completed, "an always-Values objective can never suspend");
    result
}

/// [`minimize_with`] with a cooperative suspension point before every
/// objective batch — the seam behind checkpoint/resume and the job
/// server's fair-share time slicing.
///
/// The objective is consulted once per batch (the whole seeds + warm-up
/// phase is one batch, then one batch per acquisition cycle) and may
/// answer [`BatchStatus::Suspend`] instead of evaluating. The search
/// stops immediately: the proposed batch is discarded and the returned
/// [`BoResult`] holds only the completed evaluations, with the second
/// tuple element `false` (`true` means the budget ran to completion).
///
/// # Resuming
///
/// Every decision the loop makes — RNG draws, pool construction,
/// surrogate fits, acquisition ranking — is a pure function of
/// ([`BoOptions::seed`], the values returned by the objective). A caller
/// that re-runs this function and serves the recorded history values
/// back (instead of recomputing them) therefore reproduces the exact
/// pre-suspension state — same RNG cursor, same incumbent, same pending
/// proposals — and the continuation is **bit-identical to an
/// uninterrupted run**. `cafqa_core::run_cafqa_resumable_on` wraps
/// exactly that replay contract.
pub fn minimize_suspendable_with(
    space: &SearchSpace,
    mut objective: impl FnMut(&[Vec<usize>]) -> BatchStatus,
    seeds: &[Vec<usize>],
    opts: &BoOptions,
    exec: &dyn Executor,
) -> (BoResult, bool) {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut state = SearchState::new();

    // Seeds (e.g. the HF configuration) and warm-up random sampling:
    // sampling touches the RNG, evaluation does not, so drawing the whole
    // phase up front consumes the same RNG stream as the classic
    // interleaved loop — and the evaluation becomes one (embarrassingly
    // parallel) batch.
    let mut warmup_batch: Vec<Vec<usize>> = Vec::with_capacity(seeds.len() + opts.warmup);
    for seed in seeds {
        assert_eq!(seed.len(), space.dims(), "seed dimensionality mismatch");
        warmup_batch.push(seed.clone());
    }
    for _ in 0..opts.warmup {
        warmup_batch.push(space.sample(&mut rng));
    }
    if evaluate_batch(&mut objective, warmup_batch, &mut state).is_none() {
        return (state.into_result(), false);
    }

    let proposals = opts.proposals_per_refit.max(1);
    let mut forest: Option<Arc<RandomForest>> = None;
    let mut evaluated = 0usize;
    let mut cycle = 0usize;
    let mut stale = 0usize;
    'cycles: while evaluated < opts.iterations {
        let batch_size = proposals.min(opts.iterations - evaluated);
        // With no history at all (`warmup == 0`, no seeds) there is
        // nothing to fit or mutate: fall back to uniform sampling until
        // the first evaluations land.
        let picks: Vec<Vec<usize>> = if state.xs.is_empty() {
            (0..batch_size).map(|_| space.sample(&mut rng)).collect()
        } else {
            if forest.is_none() || cycle % opts.refit_every.max(1) == 0 {
                forest = Some(Arc::new(RandomForest::fit(
                    &state.xs,
                    &state.ys,
                    &space.cardinalities,
                    &opts.forest,
                    &mut rng,
                )));
            }
            let model = forest.as_ref().expect("fitted above");
            // Candidate pool: incumbent mutations + uniform samples. The
            // pool scales with the batch size — `candidates` is a
            // *per-proposal* budget, so a B-proposal cycle explores the
            // same diversity per evaluation as B classic iterations (and
            // at B = 1 this is exactly the classic pool). NaN objective
            // values (either sign — `0.0/0.0` is −NaN on x86) are
            // excluded outright so they can never seed the incumbent
            // mutations; `total_cmp` keeps the remaining ordering
            // well-defined.
            let pool_size = opts.candidates.saturating_mul(batch_size).max(1);
            let mut pool: Vec<Vec<usize>> = Vec::with_capacity(pool_size);
            let mut order: Vec<usize> =
                (0..state.ys.len()).filter(|&i| !state.ys[i].is_nan()).collect();
            order.sort_by(|&a, &b| state.ys[a].total_cmp(&state.ys[b]));
            if !order.is_empty() {
                let n_mut = (pool_size / 2).max(1);
                for k in 0..n_mut {
                    let base = &state.xs[order[k % opts.top_k.min(order.len()).max(1)]];
                    pool.push(space.mutate(base, &mut rng, 3));
                }
            }
            while pool.len() < pool_size {
                pool.push(space.sample(&mut rng));
            }
            // Acquisition: the surrogate ranks the whole pool once (a
            // stale forest still scores the *current* pool), then each of
            // the `batch_size` proposal slots draws ε-greedy: explore →
            // uniform pool member, exploit → next-best unseen prediction.
            // Ranking is lazy so an all-explore cycle never pays for it;
            // it consumes no RNG either way, keeping `B = 1` draws
            // identical to the classic loop.
            let mut ranked: Option<Vec<usize>> = None;
            let mut picks: Vec<Vec<usize>> = Vec::with_capacity(batch_size);
            let mut picked: HashSet<Vec<usize>> = HashSet::new();
            for _ in 0..batch_size {
                let pick = if rng.gen::<f64>() < opts.epsilon {
                    pool[rng.gen_range(0..pool.len())].clone()
                } else {
                    let ranked = ranked.get_or_insert_with(|| {
                        let predictions = model.predict_batch_on(&pool, exec);
                        // Stable ascending sort: among equal predictions
                        // the earliest pool entry ranks first, matching
                        // the classic `min_by` tie-break.
                        let mut indices: Vec<usize> =
                            (0..pool.len()).filter(|&i| !predictions[i].is_nan()).collect();
                        indices.sort_by(|&a, &b| predictions[a].total_cmp(&predictions[b]));
                        indices
                    });
                    ranked
                        .iter()
                        .map(|&i| &pool[i])
                        .find(|c| !state.seen.contains(*c) && !picked.contains(*c))
                        .cloned()
                        .unwrap_or_else(|| space.sample(&mut rng))
                };
                picked.insert(pick.clone());
                picks.push(pick);
            }
            picks
        };

        let batch_len = picks.len();
        let Some(best_transitions) = evaluate_batch(&mut objective, picks, &mut state) else {
            return (state.into_result(), false);
        };
        evaluated += batch_len;
        cycle += 1;
        if opts.patience > 0 {
            for (before, after) in best_transitions {
                if before - after > opts.patience_tol {
                    stale = 0;
                } else {
                    stale += 1;
                    if stale >= opts.patience {
                        break 'cycles;
                    }
                }
            }
        }
    }

    (state.into_result(), true)
}

/// Evaluates `batch` through the objective and folds the results into
/// the state in submission order. Returns the `(before, after)`
/// best-so-far transition of each evaluation — the patience counter
/// replays them exactly as the classic per-evaluation loop would —
/// or `None` when the objective chose to suspend (the batch is then
/// discarded unevaluated and the state is untouched).
fn evaluate_batch(
    objective: &mut impl FnMut(&[Vec<usize>]) -> BatchStatus,
    batch: Vec<Vec<usize>>,
    state: &mut SearchState,
) -> Option<Vec<(f64, f64)>> {
    if batch.is_empty() {
        return Some(Vec::new());
    }
    let values = match objective(&batch) {
        BatchStatus::Values(values) => values,
        BatchStatus::Suspend => return None,
    };
    assert_eq!(
        values.len(),
        batch.len(),
        "batch objective must return one value per configuration"
    );
    let mut transitions = Vec::with_capacity(batch.len());
    for (config, value) in batch.into_iter().zip(values) {
        let before = state.best;
        state.record(config, value);
        transitions.push((before, state.best));
    }
    Some(transitions)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Lifts a per-configuration objective into the batch API.
    fn batched<'f>(f: impl Fn(&[usize]) -> f64 + 'f) -> impl FnMut(&[Vec<usize>]) -> Vec<f64> + 'f {
        move |batch: &[Vec<usize>]| batch.iter().map(|c| f(c)).collect()
    }

    fn quadratic(target: &[usize]) -> impl Fn(&[usize]) -> f64 + '_ {
        move |c: &[usize]| c.iter().zip(target).map(|(&a, &t)| (a as f64 - t as f64).powi(2)).sum()
    }

    #[test]
    fn finds_global_minimum_of_quadratic() {
        let target = vec![2usize, 0, 3, 1, 2, 3, 0, 1];
        let space = SearchSpace::uniform(8, 4);
        let opts = BoOptions { warmup: 60, iterations: 250, ..Default::default() };
        let result = minimize(&space, batched(quadratic(&target)), &[], &opts);
        assert_eq!(result.best_value, 0.0, "best config {:?}", result.best_config);
        assert_eq!(result.best_config, target);
    }

    #[test]
    fn beats_pure_random_search() {
        // Compare best-of-N for BO vs pure random on a rugged function.
        let space = SearchSpace::uniform(10, 4);
        let f = |c: &[usize]| {
            let s: f64 =
                c.iter().enumerate().map(|(i, &v)| ((v as f64) - ((i % 4) as f64)).abs()).sum();
            s + if c[0] == c[9] { 0.0 } else { 2.0 }
        };
        let opts = BoOptions { warmup: 50, iterations: 200, seed: 3, ..Default::default() };
        let bo = minimize(&space, batched(f), &[], &opts);
        let random_opts = BoOptions { warmup: 250, iterations: 0, seed: 3, ..Default::default() };
        let random = minimize(&space, batched(f), &[], &random_opts);
        assert!(bo.best_value <= random.best_value, "{} vs {}", bo.best_value, random.best_value);
    }

    #[test]
    fn seed_guarantees_upper_bound() {
        // A seed at the optimum can never be lost.
        let target = vec![1usize, 1, 1, 1];
        let space = SearchSpace::uniform(4, 4);
        let opts = BoOptions { warmup: 5, iterations: 10, ..Default::default() };
        let result =
            minimize(&space, batched(quadratic(&target)), std::slice::from_ref(&target), &opts);
        assert_eq!(result.best_value, 0.0);
        assert_eq!(result.iterations_to_best, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let space = SearchSpace::uniform(6, 4);
        let f = |c: &[usize]| c.iter().map(|&v| (v as f64 - 1.7).powi(2)).sum::<f64>();
        let opts = BoOptions { warmup: 30, iterations: 50, seed: 42, ..Default::default() };
        let a = minimize(&space, batched(f), &[], &opts);
        let b = minimize(&space, batched(f), &[], &opts);
        assert_eq!(a.best_config, b.best_config);
        assert_eq!(a.history.len(), b.history.len());
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.value, y.value);
        }
    }

    #[test]
    fn history_best_so_far_is_monotone() {
        let space = SearchSpace::uniform(5, 4);
        let f = |c: &[usize]| c.iter().map(|&v| v as f64).sum::<f64>();
        let opts = BoOptions { warmup: 40, iterations: 40, ..Default::default() };
        let result = minimize(&space, batched(f), &[], &opts);
        for w in result.history.windows(2) {
            assert!(w[1].best_so_far <= w[0].best_so_far + 1e-15);
        }
    }

    #[test]
    fn patience_stops_early() {
        let space = SearchSpace::uniform(3, 4);
        let f = |_: &[usize]| 1.0; // flat: nothing to improve
        let opts = BoOptions { warmup: 10, iterations: 500, patience: 20, ..Default::default() };
        let result = minimize(&space, batched(f), &[], &opts);
        assert!(result.history.len() < 100, "stopped after {}", result.history.len());
    }

    #[test]
    fn zero_warmup_without_seeds_does_not_panic() {
        // Regression: an empty history used to hit `k % 0` (and an empty
        // forest fit) on the first surrogate iteration. The search must
        // fall back to uniform sampling instead.
        let space = SearchSpace::uniform(4, 4);
        let f = |c: &[usize]| c.iter().sum::<usize>() as f64;
        let opts = BoOptions { warmup: 0, iterations: 30, ..Default::default() };
        let result = minimize(&space, batched(f), &[], &opts);
        assert_eq!(result.history.len(), 30);
        assert!(result.best_value.is_finite());
        assert_eq!(result.best_config.len(), 4);
    }

    #[test]
    fn nan_objective_degrades_instead_of_panicking() {
        // A NaN objective value must never panic the comparators and must
        // never be reported as the incumbent. `0.0 / 0.0` produces the
        // sign-bit-set NaN on x86, which `total_cmp` sorts *first* — the
        // search must filter it, not merely order it.
        let space = SearchSpace::uniform(3, 4);
        let zero = std::hint::black_box(0.0f64);
        let f = |c: &[usize]| {
            if c[0] == 2 {
                zero / zero
            } else {
                c.iter().sum::<usize>() as f64
            }
        };
        let opts = BoOptions { warmup: 30, iterations: 60, ..Default::default() };
        let result = minimize(&space, batched(f), &[], &opts);
        assert!(result.best_value.is_finite());
        assert_ne!(result.best_config[0], 2);
    }

    #[test]
    fn all_nan_history_falls_back_to_uniform_pool() {
        // Every evaluation NaN: mutation bases are unavailable, so the
        // pool must degrade to uniform sampling without panicking.
        let space = SearchSpace::uniform(3, 4);
        let zero = std::hint::black_box(0.0f64);
        let opts = BoOptions { warmup: 5, iterations: 20, ..Default::default() };
        let result = minimize(&space, batched(move |_| zero / zero), &[], &opts);
        assert_eq!(result.history.len(), 25);
        assert!(result.best_value.is_nan() || result.best_value.is_infinite());
    }

    #[test]
    fn warmup_arrives_as_one_batch_and_proposals_as_cycles() {
        // The batch seam itself: seeds + warm-up come in a single call,
        // then every acquisition cycle hands over at most B proposals.
        let space = SearchSpace::uniform(4, 4);
        let mut batch_sizes: Vec<usize> = Vec::new();
        let seeds = vec![vec![0usize; 4]];
        let opts =
            BoOptions { warmup: 17, iterations: 10, proposals_per_refit: 4, ..Default::default() };
        let result = minimize(
            &space,
            |batch: &[Vec<usize>]| {
                batch_sizes.push(batch.len());
                batch.iter().map(|c| c.iter().sum::<usize>() as f64).collect()
            },
            &seeds,
            &opts,
        );
        assert_eq!(result.history.len(), 1 + 17 + 10);
        assert_eq!(batch_sizes[0], 18, "seeds + warm-up in one batch");
        assert_eq!(&batch_sizes[1..], &[4, 4, 2], "B-sized cycles, truncated at the budget");
    }

    #[test]
    fn proposals_within_a_cycle_are_distinct_unless_exploring() {
        // With ε = 0 every proposal is greedy, and greedy picks must not
        // repeat within a cycle (the pool is ranked once, the batch walks
        // down distinct unseen candidates).
        let space = SearchSpace::uniform(5, 4);
        let f = |c: &[usize]| c.iter().map(|&v| (v as f64 - 2.0).powi(2)).sum::<f64>();
        let opts = BoOptions {
            warmup: 20,
            iterations: 40,
            epsilon: 0.0,
            proposals_per_refit: 8,
            ..Default::default()
        };
        let mut cycles: Vec<Vec<Vec<usize>>> = Vec::new();
        minimize(
            &space,
            |batch: &[Vec<usize>]| {
                cycles.push(batch.to_vec());
                batch.iter().map(|c| f(c)).collect()
            },
            &[],
            &opts,
        );
        for cycle in &cycles[1..] {
            let unique: std::collections::HashSet<_> = cycle.iter().collect();
            assert_eq!(unique.len(), cycle.len(), "duplicate proposal in {cycle:?}");
        }
    }

    #[test]
    fn stale_forest_still_scores_fresh_pools() {
        // refit_every > 1: the forest is reused across cycles, but the
        // candidate pool must be rebuilt and re-scored every cycle — a
        // search that cached scored candidates alongside the stale forest
        // would stop discovering new incumbent mutations and stall. The
        // quadratic must still be solved exactly.
        let target = vec![2usize, 0, 3, 1, 2, 0];
        let space = SearchSpace::uniform(6, 4);
        for refit_every in [3usize, 7] {
            let opts = BoOptions { warmup: 40, iterations: 220, refit_every, ..Default::default() };
            let result = minimize(&space, batched(quadratic(&target)), &[], &opts);
            assert_eq!(result.best_value, 0.0, "refit_every = {refit_every}");
            assert_eq!(result.best_config, target, "refit_every = {refit_every}");
        }
    }

    #[test]
    fn batched_acquisition_matches_single_proposal_budget() {
        // B > 1 changes the trajectory but not the evaluation budget or
        // the trace bookkeeping invariants.
        let target = vec![1usize, 3, 0, 2, 1, 3];
        let space = SearchSpace::uniform(6, 4);
        for b in [1usize, 4, 16] {
            let opts = BoOptions {
                warmup: 50,
                iterations: 150,
                proposals_per_refit: b,
                ..Default::default()
            };
            let result = minimize(&space, batched(quadratic(&target)), &[], &opts);
            assert_eq!(result.history.len(), 200, "B = {b}");
            assert_eq!(result.best_value, 0.0, "B = {b}");
            for w in result.history.windows(2) {
                assert!(w[1].best_so_far <= w[0].best_so_far + 1e-15);
            }
        }
    }

    #[test]
    fn minimize_with_serial_exec_is_the_default_path() {
        let space = SearchSpace::uniform(5, 4);
        let f = |c: &[usize]| c.iter().map(|&v| v as f64).sum::<f64>();
        let opts = BoOptions { warmup: 25, iterations: 40, ..Default::default() };
        let a = minimize(&space, batched(f), &[], &opts);
        let b = minimize_with(&space, batched(f), &[], &opts, &SerialExec);
        assert_eq!(a.history.len(), b.history.len());
        for (x, y) in a.history.iter().zip(&b.history) {
            assert_eq!(x.value.to_bits(), y.value.to_bits());
            assert_eq!(x.config, y.config);
        }
    }

    #[test]
    fn suspend_then_replay_is_bit_identical_to_uninterrupted() {
        // The resume contract: suspend after `cut` batches, then re-run
        // serving the recorded values back — the continuation must
        // reproduce the uninterrupted trace bit for bit (same configs,
        // same value bits, same incumbent).
        let space = SearchSpace::uniform(6, 4);
        let f = |c: &[usize]| {
            c.iter().enumerate().map(|(i, &v)| (v as f64 - (i % 3) as f64).powi(2)).sum::<f64>()
                / 1.7
        };
        let opts = BoOptions { warmup: 20, iterations: 37, seed: 9, ..Default::default() };
        let full = minimize(&space, batched(f), &[], &opts);
        for cut in [0usize, 1, 4, 9] {
            // Phase 1: evaluate `cut` batches, then suspend.
            let mut recorded: Vec<f64> = Vec::new();
            let mut batches = 0usize;
            let (partial, completed) = minimize_suspendable_with(
                &space,
                |batch: &[Vec<usize>]| {
                    if batches == cut {
                        return BatchStatus::Suspend;
                    }
                    batches += 1;
                    let values: Vec<f64> = batch.iter().map(|c| f(c)).collect();
                    recorded.extend(values.iter().copied());
                    BatchStatus::Values(values)
                },
                &[],
                &opts,
                &SerialExec,
            );
            assert!(!completed, "cut {cut}");
            assert_eq!(partial.history.len(), recorded.len(), "cut {cut}");
            // Phase 2: replay the recorded values, evaluate live beyond.
            let mut cursor = 0usize;
            let resumed = minimize_with(
                &space,
                |batch: &[Vec<usize>]| {
                    batch
                        .iter()
                        .map(|c| {
                            if cursor < recorded.len() {
                                cursor += 1;
                                recorded[cursor - 1]
                            } else {
                                f(c)
                            }
                        })
                        .collect()
                },
                &[],
                &opts,
                &SerialExec,
            );
            assert_eq!(cursor, recorded.len(), "cut {cut}: whole prefix replayed");
            assert_eq!(resumed.history.len(), full.history.len(), "cut {cut}");
            for (a, b) in resumed.history.iter().zip(&full.history) {
                assert_eq!(a.config, b.config, "cut {cut}");
                assert_eq!(a.value.to_bits(), b.value.to_bits(), "cut {cut}");
            }
            assert_eq!(resumed.best_config, full.best_config, "cut {cut}");
            assert_eq!(resumed.best_value.to_bits(), full.best_value.to_bits(), "cut {cut}");
        }
    }

    #[test]
    fn log2_size_matches_paper_complexity() {
        // H2O: 48 parameters with 4 angles each → 4^48 configurations.
        let space = SearchSpace::uniform(48, 4);
        assert_eq!(space.log2_size(), 96.0);
    }
}
