//! Pluggable parallel-execution backends for the search loop.
//!
//! The Bayesian-optimization layer shards surrogate scoring over worker
//! threads, but it must not own those threads: the CAFQA runner owns one
//! persistent execution engine for the whole search stack (see
//! `cafqa_core::engine`), and spawning a second pool here would
//! oversubscribe the host. This module defines the [`Executor`] seam the
//! engine plugs into: a backend that runs a batch of self-contained jobs
//! to completion. [`SerialExec`] is the dependency-free default used by
//! [`minimize`](crate::minimize) when no engine is supplied.

/// A self-contained unit of work: owns everything it touches, reports
/// its result through a channel (or other sink) captured at build time.
pub type Job = Box<dyn FnOnce() + Send>;

/// An execution backend that runs batches of independent jobs.
///
/// Contract: [`Executor::execute`] returns only after **every** job has
/// run to completion, and a panic inside any job propagates to the
/// caller (after the remaining jobs of the batch have been given the
/// chance to finish). Completion *order* is unspecified — callers encode
/// a shard index into each job so results can be reassembled
/// deterministically regardless of scheduling.
pub trait Executor: Sync {
    /// Number of jobs the backend can run concurrently (1 = serial).
    /// Callers use this to pick shard counts; it must be stable for the
    /// lifetime of the executor so sharding stays deterministic.
    fn workers(&self) -> usize;

    /// Runs every job to completion before returning.
    fn execute(&self, jobs: Vec<Job>);
}

/// The serial backend: runs jobs in submission order on the calling
/// thread. This is the reference semantics every parallel backend must
/// reproduce result-for-result.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExec;

impl Executor for SerialExec {
    fn workers(&self) -> usize {
        1
    }

    fn execute(&self, jobs: Vec<Job>) {
        for job in jobs {
            job();
        }
    }
}

/// Runs boxed tasks through `exec` and returns their results **in
/// submission order** — the one shard→channel→merge implementation the
/// whole stack shares (forest scoring here, `ExecEngine::map` in
/// `cafqa_core`). Serial executors (and single tasks) run in order on
/// the calling thread with identical results; parallel executors may
/// complete in any order, and results are reassembled by index.
///
/// Panics inside tasks propagate per the [`Executor::execute`] contract.
pub fn map_jobs<T: Send + 'static>(
    exec: &dyn Executor,
    tasks: Vec<Box<dyn FnOnce() -> T + Send>>,
) -> Vec<T> {
    if exec.workers() <= 1 || tasks.len() <= 1 {
        return tasks.into_iter().map(|task| task()).collect();
    }
    let shards = tasks.len();
    let (result_tx, result_rx) = std::sync::mpsc::channel::<(usize, T)>();
    let jobs: Vec<Job> = tasks
        .into_iter()
        .enumerate()
        .map(|(index, task)| {
            let tx = result_tx.clone();
            Box::new(move || {
                let _ = tx.send((index, task()));
            }) as Job
        })
        .collect();
    drop(result_tx);
    exec.execute(jobs);
    // `execute` returns only after every job completed (each result send
    // happens-before the executor observes the job as done), so all
    // results are already buffered.
    let mut slots: Vec<Option<T>> = (0..shards).map(|_| None).collect();
    for (index, value) in result_rx.try_iter() {
        slots[index] = Some(value);
    }
    slots.into_iter().map(|slot| slot.expect("every task reports exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn map_jobs_returns_results_in_submission_order() {
        // An executor that runs jobs in reverse on fresh threads: the
        // merge must still put results back in submission order.
        struct ReversedExec;
        impl Executor for ReversedExec {
            fn workers(&self) -> usize {
                4
            }
            fn execute(&self, mut jobs: Vec<Job>) {
                jobs.reverse();
                let handles: Vec<_> = jobs.into_iter().map(std::thread::spawn).collect();
                for h in handles {
                    h.join().expect("map_jobs test worker panicked");
                }
            }
        }
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..16u64)
            .map(|i| Box::new(move || i * 3) as Box<dyn FnOnce() -> u64 + Send>)
            .collect();
        assert_eq!(map_jobs(&ReversedExec, tasks), (0..16).map(|i| i * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn serial_exec_runs_all_jobs_in_order() {
        let (tx, rx) = mpsc::channel();
        let jobs: Vec<Job> = (0..5)
            .map(|i| {
                let tx = tx.clone();
                Box::new(move || tx.send(i).unwrap()) as Job
            })
            .collect();
        SerialExec.execute(jobs);
        drop(tx);
        let order: Vec<usize> = rx.iter().collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }
}
