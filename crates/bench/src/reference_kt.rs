//! The frozen pre-refactor CAFQA+kT search.
//!
//! PR 6 ported the Clifford+T tier onto the compiled/engine/incremental
//! stack: feasibility-aware genome encoding, tableau-backed branch
//! ensembles, engine-batched evaluation, and an 8-ary polish endgame.
//! This module freezes the classic implementation — a plain 8-ary
//! uniform search space, infeasible candidates rejected with a `1e6`
//! penalty constant, serial dense [`CliffordTState`] evaluation per
//! candidate, and no polish — so the old-vs-new A/B in
//! `benches/search.rs` and the equivalence tests always have the genuine
//! pre-refactor semantics to compare against.

use cafqa_bayesopt::{minimize, BoOptions, SearchSpace};
use cafqa_circuit::Ansatz;
use cafqa_clifford::CliffordTState;
use cafqa_core::{CafqaOptions, Penalty};
use cafqa_pauli::PauliOp;
use std::cell::Cell;

/// The outcome of the frozen classic CAFQA+kT search.
#[derive(Debug, Clone)]
pub struct ReferenceKtResult {
    /// Best configuration over the 8-ary grid.
    pub best_config: Vec<usize>,
    /// Raw `⟨H⟩` of the best configuration.
    pub energy: f64,
    /// Number of non-Clifford rotations in the best configuration.
    pub t_count: usize,
    /// Evaluations performed (infeasible configurations included).
    pub evaluations: usize,
    /// Evaluations that were rejected by the `1e6` budget constant
    /// without any simulation — wasted search budget, counted here so
    /// the A/B against the feasible-by-construction genome space can
    /// report the split.
    pub rejected_evaluations: usize,
}

/// Number of odd (non-Clifford) indices in an 8-ary configuration.
fn t_count_of(config: &[usize]) -> usize {
    config.iter().filter(|&&k| k % 2 == 1).count()
}

/// The classic `run_cafqa_kt`, frozen exactly as it shipped before the
/// branch-engine port: `SearchSpace::uniform(d, 8)` with over-budget
/// candidates rejected at `1e6 + t`, each feasible candidate lowered and
/// re-simulated densely from scratch, fully serial, no polish endgame.
pub fn reference_kt(
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: &[Penalty],
    k_max: usize,
    seeds: &[Vec<usize>],
    opts: &CafqaOptions,
) -> ReferenceKtResult {
    let space = SearchSpace::uniform(ansatz.num_parameters(), 8);
    // Infeasible (over-budget) configurations are rejected with a large
    // constant before any simulation runs.
    const INFEASIBLE: f64 = 1e6;
    let rejected = Cell::new(0usize);
    let evaluate = |config: &[usize]| -> f64 {
        let t = t_count_of(config);
        if t > k_max {
            rejected.set(rejected.get() + 1);
            return INFEASIBLE + t as f64;
        }
        let circuit = ansatz.bind_eighth(config);
        let state = CliffordTState::from_circuit(&circuit)
            .expect("t budget keeps the branch count in range");
        let mut value = state.expectation(hamiltonian);
        for p in penalties {
            value += p.weight * state.expectation(p.squared_op());
        }
        value
    };
    let bo_opts = BoOptions {
        warmup: opts.warmup,
        iterations: opts.iterations,
        seed: opts.seed,
        patience: opts.patience,
        proposals_per_refit: opts.proposals_per_refit,
        ..Default::default()
    };
    // Stabilizer-rank branch simulation borrows the ansatz per candidate,
    // so the batch objective maps serially.
    let result = minimize(
        &space,
        |batch: &[Vec<usize>]| batch.iter().map(|config| evaluate(config)).collect(),
        seeds,
        &bo_opts,
    );
    let best_config = result.best_config;
    let circuit = ansatz.bind_eighth(&best_config);
    let state = CliffordTState::from_circuit(&circuit).expect("feasible best configuration");
    ReferenceKtResult {
        energy: state.expectation(hamiltonian),
        t_count: t_count_of(&best_config),
        evaluations: result.history.len(),
        rejected_evaluations: rejected.get(),
        best_config,
    }
}
