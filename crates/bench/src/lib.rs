//! Criterion benchmark crate (see benches/), plus the frozen reference
//! kernels and search loops the A/B benchmarks and equivalence tests
//! compare against.

mod reference_kt;
mod reference_search;

pub use reference_kt::{reference_kt, ReferenceKtResult};
pub use reference_search::{
    reference_evaluate_batch_spawn, reference_minimize, reference_polish, reference_run_cafqa,
    ReferencePolishOutcome,
};

use cafqa_clifford::Tableau;
use cafqa_pauli::{PauliOp, PauliString};

/// Signed generators extracted once per tableau, so the frozen baseline
/// is not charged for re-extraction on every term (the pre-rewrite kernel
/// read rows in place).
pub struct ReferenceGenerators {
    /// `(sign, string)` stabilizer generators.
    pub stabilizers: Vec<(bool, PauliString)>,
    /// `(sign, string)` destabilizers, index-paired with the stabilizers.
    pub destabilizers: Vec<(bool, PauliString)>,
}

impl ReferenceGenerators {
    /// Extracts both generator sets from a tableau.
    pub fn from_tableau(tableau: &Tableau) -> Self {
        ReferenceGenerators {
            stabilizers: tableau.stabilizers(),
            destabilizers: tableau.destabilizers(),
        }
    }
}

/// The pre-optimization expectation kernel, frozen as the benchmark
/// baseline: decompose the Pauli over the stabilizer generators through
/// the destabilizer pairing, accumulating the product phase with
/// materialized [`PauliString`] values via [`PauliString::mul`] —
/// exactly what `Tableau::expectation_pauli` did before the bitwise
/// rewrite. Must always agree with the production kernel (the
/// `kernel_equivalence` suite in `cafqa-clifford` asserts this).
pub fn reference_expectation_pauli(generators: &ReferenceGenerators, p: &PauliString) -> i8 {
    if generators.stabilizers.iter().any(|(_, s)| !s.commutes_with(p)) {
        return 0;
    }
    let mut acc = PauliString::identity(p.num_qubits());
    let mut k: i32 = 0;
    for ((_, d), (sign, s)) in generators.destabilizers.iter().zip(&generators.stabilizers) {
        if !d.commutes_with(p) {
            let (dk, prod) = acc.mul(s);
            k += dk + if *sign { 2 } else { 0 };
            acc = prod;
        }
    }
    debug_assert_eq!((acc.x_mask(), acc.z_mask()), (p.x_mask(), p.z_mask()));
    match k.rem_euclid(4) {
        0 => 1,
        2 => -1,
        _ => unreachable!("hermitian pauli product acquired an odd i power"),
    }
}

/// The pre-optimization operator expectation: per-term
/// [`reference_expectation_pauli`] sums, mirroring the old
/// `Tableau::expectation` path.
pub fn reference_expectation(tableau: &Tableau, op: &PauliOp) -> f64 {
    let generators = ReferenceGenerators::from_tableau(tableau);
    op.iter().map(|(p, c)| c.re * f64::from(reference_expectation_pauli(&generators, p))).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafqa_circuit::Circuit;

    #[test]
    fn reference_matches_production_kernel_on_bell() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let t = Tableau::from_circuit(&c).unwrap();
        let generators = ReferenceGenerators::from_tableau(&t);
        for s in ["XX", "ZZ", "YY", "XY", "IZ", "II"] {
            let p: PauliString = s.parse().unwrap();
            assert_eq!(
                reference_expectation_pauli(&generators, &p),
                t.expectation_pauli(&p),
                "{s}"
            );
        }
    }
}
