//! Criterion benchmark crate (see benches/).
