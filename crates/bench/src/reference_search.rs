//! Frozen pre-refactor search baselines.
//!
//! PR 3 replaced the per-batch `thread::scope` spawns with a persistent
//! worker-pool engine and rebuilt `bayesopt::minimize` around a batch
//! objective. The refactor's contract is *bit-identical results*: at
//! `proposals_per_refit = 1` the new loop must reproduce the classic
//! one-candidate-per-refit trajectory exactly, at any worker count. This
//! module freezes the classic implementations — the serial BO loop, the
//! spawn-per-batch evaluation, and the full serial CAFQA runner — so the
//! equivalence tests and the pooled-vs-spawn benchmarks always have the
//! genuine pre-refactor semantics to compare against, no matter how the
//! production code evolves.
//!
//! Everything here goes through the *public* API of the production
//! crates (`evaluate`, `RandomForest::fit`/`predict_batch`), relying on
//! the already-tested invariant that batched evaluation equals serial
//! evaluation bit-for-bit.

use std::collections::HashSet;

use cafqa_bayesopt::{BoOptions, BoResult, Evaluation, RandomForest};
use cafqa_circuit::Ansatz;
use cafqa_core::{
    CafqaOptions, CafqaResult, CliffordObjective, ObjectiveValue, Penalty, SearchPoint,
};
use cafqa_pauli::PauliOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Frozen copy of the classic uniform sample over a discrete space
/// (identical RNG draw order to `SearchSpace::sample`).
fn sample(cardinalities: &[usize], rng: &mut StdRng) -> Vec<usize> {
    cardinalities.iter().map(|&c| rng.gen_range(0..c)).collect()
}

/// Frozen copy of the classic incumbent mutation (identical RNG draw
/// order to `SearchSpace::mutate`).
fn mutate(
    cardinalities: &[usize],
    base: &[usize],
    rng: &mut StdRng,
    max_changes: usize,
) -> Vec<usize> {
    let mut out = base.to_vec();
    let changes = rng.gen_range(1..=max_changes.max(1));
    for _ in 0..changes {
        let i = rng.gen_range(0..out.len());
        out[i] = rng.gen_range(0..cardinalities[i]);
    }
    out
}

/// The pre-refactor `bayesopt::minimize`, frozen: one candidate proposed
/// per surrogate refit, per-configuration objective, fully serial.
/// `opts.proposals_per_refit` is ignored (the classic loop predates it);
/// every other option keeps its classic meaning.
pub fn reference_minimize(
    cardinalities: &[usize],
    mut objective: impl FnMut(&[usize]) -> f64,
    seeds: &[Vec<usize>],
    opts: &BoOptions,
) -> BoResult {
    let dims = cardinalities.len();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut xs: Vec<Vec<usize>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    let mut history: Vec<Evaluation> = Vec::new();
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    let mut best = f64::INFINITY;
    let mut best_config: Vec<usize> = Vec::new();
    let mut iterations_to_best = 0usize;
    let mut stale = 0usize;

    macro_rules! evaluate {
        ($config:expr) => {{
            let config: Vec<usize> = $config;
            let value = objective(&config);
            if value < best - 1e-15 {
                best = value;
                best_config = config.clone();
                iterations_to_best = history.len() + 1;
            }
            seen.insert(config.clone());
            history.push(Evaluation { config: config.clone(), value, best_so_far: best });
            xs.push(config);
            ys.push(value);
        }};
    }

    for seed in seeds {
        assert_eq!(seed.len(), dims, "seed dimensionality mismatch");
        evaluate!(seed.clone());
    }
    for _ in 0..opts.warmup {
        let c = sample(cardinalities, &mut rng);
        evaluate!(c);
    }

    let mut forest: Option<RandomForest> = None;
    for it in 0..opts.iterations {
        let pick = if xs.is_empty() {
            sample(cardinalities, &mut rng)
        } else {
            if forest.is_none() || it % opts.refit_every.max(1) == 0 {
                forest = Some(RandomForest::fit(&xs, &ys, cardinalities, &opts.forest, &mut rng));
            }
            let model = forest.as_ref().expect("fitted above");
            let mut pool: Vec<Vec<usize>> = Vec::with_capacity(opts.candidates);
            let mut order: Vec<usize> = (0..ys.len()).filter(|&i| !ys[i].is_nan()).collect();
            order.sort_by(|&a, &b| ys[a].total_cmp(&ys[b]));
            if !order.is_empty() {
                let n_mut = (opts.candidates / 2).max(1);
                for k in 0..n_mut {
                    let base = &xs[order[k % opts.top_k.min(order.len()).max(1)]];
                    pool.push(mutate(cardinalities, base, &mut rng, 3));
                }
            }
            while pool.len() < opts.candidates {
                pool.push(sample(cardinalities, &mut rng));
            }
            if rng.gen::<f64>() < opts.epsilon {
                pool[rng.gen_range(0..pool.len())].clone()
            } else {
                let predictions = model.predict_batch(&pool);
                pool.iter()
                    .zip(&predictions)
                    .filter(|(c, p)| !seen.contains(*c) && !p.is_nan())
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(c, _)| c.clone())
                    .unwrap_or_else(|| sample(cardinalities, &mut rng))
            }
        };
        let prev_best = best;
        evaluate!(pick);
        if opts.patience > 0 {
            if prev_best - best > opts.patience_tol {
                stale = 0;
            } else {
                stale += 1;
                if stale >= opts.patience {
                    break;
                }
            }
        }
    }

    BoResult { best_config, best_value: best, history, iterations_to_best }
}

/// The pre-refactor batched candidate evaluation, frozen: a fresh
/// `thread::scope` spawn per batch, one scratch per spawned worker, shard
/// results written in input order — exactly what
/// `CliffordObjective::evaluate_batch_with_workers` did before the
/// persistent engine. This is the spawn-overhead baseline of the
/// pooled-vs-spawn benchmark.
pub fn reference_evaluate_batch_spawn(
    objective: &CliffordObjective<'_>,
    configs: &[Vec<usize>],
    workers: usize,
) -> Vec<ObjectiveValue> {
    let zero = ObjectiveValue { energy: 0.0, penalized: 0.0 };
    let mut out = vec![zero; configs.len()];
    let workers = workers.min(configs.len());
    if workers <= 1 {
        let mut scratch = objective.scratch();
        for (config, slot) in configs.iter().zip(out.iter_mut()) {
            *slot = objective.evaluate_with(config, &mut scratch);
        }
        return out;
    }
    let chunk = configs.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (config_chunk, out_chunk) in configs.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                let mut scratch = objective.scratch();
                for (config, slot) in config_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = objective.evaluate_with(config, &mut scratch);
                }
            });
        }
    });
    out
}

/// The pre-refactor CAFQA runner, frozen: [`reference_minimize`] for the
/// search phase (serial, one candidate per refit) and fully serial polish
/// sweeps with the classic greedy fold. `opts.proposals_per_refit` is
/// ignored, like the classic runner that predates it.
pub fn reference_run_cafqa(
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: Vec<Penalty>,
    seeds: &[Vec<usize>],
    opts: &CafqaOptions,
) -> CafqaResult {
    let mut objective = CliffordObjective::new(ansatz, hamiltonian);
    for p in penalties {
        objective = objective.with_penalty(p);
    }
    let dims = objective.num_parameters();
    let cardinalities = vec![4usize; dims];
    let mut raw_trace: Vec<(f64, f64)> = Vec::new();
    let bo_opts = BoOptions {
        warmup: opts.warmup,
        iterations: opts.iterations,
        seed: opts.seed,
        patience: opts.patience,
        ..Default::default()
    };
    let mut scratch = objective.scratch();
    let result = reference_minimize(
        &cardinalities,
        |config| {
            let v = objective.evaluate_with(config, &mut scratch);
            raw_trace.push((v.energy, v.penalized));
            v.penalized
        },
        seeds,
        &bo_opts,
    );
    let mut best_config = result.best_config;
    let mut best_value = objective.evaluate(&best_config);
    let mut iterations_to_best = result.iterations_to_best;
    let bo_evaluations = raw_trace.len();
    let polish_clock = std::time::Instant::now();
    for _sweep in 0..opts.polish_sweeps {
        let mut improved = false;
        for i in 0..best_config.len() {
            let current = best_config[i];
            let candidates: Vec<Vec<usize>> = (0..4)
                .filter(|&v| v != current)
                .map(|v| {
                    let mut candidate = best_config.clone();
                    candidate[i] = v;
                    candidate
                })
                .collect();
            for candidate in candidates {
                let value = objective.evaluate_with(&candidate, &mut scratch);
                raw_trace.push((value.energy, value.penalized));
                if value.penalized < best_value.penalized - 1e-12 {
                    best_config = candidate;
                    best_value = value;
                    iterations_to_best = raw_trace.len();
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    if opts.polish_sweeps > 0 {
        let d = best_config.len();
        let nq = ansatz.num_qubits();
        let pairs: Vec<(usize, usize)> = if d <= 24 {
            (0..d).flat_map(|i| ((i + 1)..d).map(move |j| (i, j))).collect()
        } else {
            let offsets = [1, 2, nq / 2, nq / 2 + 1, nq.saturating_sub(1), nq, nq + 1, 2 * nq];
            let mut out = Vec::new();
            for i in 0..d {
                for &off in &offsets {
                    if off > 0 && i + off < d {
                        out.push((i, i + off));
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            out
        };
        let sweeps = if d <= 24 { 3 } else { 2 };
        for _sweep in 0..sweeps {
            let mut improved = false;
            for &(i, j) in &pairs {
                let candidates: Vec<Vec<usize>> = (0..16)
                    .map(|code| {
                        let mut candidate = best_config.clone();
                        candidate[i] = code / 4;
                        candidate[j] = code % 4;
                        candidate
                    })
                    .collect();
                for candidate in candidates {
                    if candidate[i] == best_config[i] && candidate[j] == best_config[j] {
                        continue;
                    }
                    let value = objective.evaluate_with(&candidate, &mut scratch);
                    raw_trace.push((value.energy, value.penalized));
                    if value.penalized < best_value.penalized - 1e-12 {
                        best_config = candidate;
                        best_value = value;
                        iterations_to_best = raw_trace.len();
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }
    let polish_seconds = polish_clock.elapsed().as_secs_f64();
    let mut best = f64::INFINITY;
    let trace: Vec<SearchPoint> = raw_trace
        .iter()
        .map(|&(energy, penalized)| {
            best = best.min(penalized);
            SearchPoint { energy, penalized, best_so_far: best }
        })
        .collect();
    CafqaResult {
        best_config,
        energy: best_value.energy,
        penalized: best_value.penalized,
        evaluations: trace.len(),
        iterations_to_best,
        polish_evaluations: trace.len() - bo_evaluations,
        bo_seconds: 0.0,
        polish_seconds,
        polish_seek_stats: (0, 0),
        trace,
    }
}

/// The outcome of the frozen [`reference_polish`] endgame, mirroring
/// `cafqa_core::PolishOutcome` field-for-field so the incremental-polish
/// A/B can assert bitwise trace identity.
pub struct ReferencePolishOutcome {
    /// The polished configuration.
    pub best_config: Vec<usize>,
    /// Its objective value.
    pub best_value: ObjectiveValue,
    /// `(raw energy, penalized)` per polish evaluation, in fold order.
    pub trace: Vec<(f64, f64)>,
    /// 1-based index into `trace` of the final accepted improvement.
    pub last_accept: Option<usize>,
    /// The (always exhaustive/local, never screened) pair list swept.
    pub pairs: Vec<(usize, usize)>,
}

/// The pre-incremental polish endgame, frozen: every candidate is
/// re-prepared from scratch (`reset_zero` + full compiled replay inside
/// `evaluate_with`), the pair list is never screened, and the greedy
/// fold runs fully serially — exactly the polish phase of
/// [`reference_run_cafqa`], exposed standalone so the incremental-polish
/// A/B benchmark can time just the endgame. Pass an objective with a
/// serial (or no) engine to keep the baseline genuinely serial.
pub fn reference_polish(
    objective: &CliffordObjective<'_>,
    num_qubits: usize,
    start: &[usize],
    polish_sweeps: usize,
) -> ReferencePolishOutcome {
    let mut scratch = objective.scratch();
    let mut best_config = start.to_vec();
    let mut best_value = objective.evaluate(&best_config);
    let mut trace: Vec<(f64, f64)> = Vec::new();
    let mut last_accept: Option<usize> = None;
    for _sweep in 0..polish_sweeps {
        let mut improved = false;
        for i in 0..best_config.len() {
            let current = best_config[i];
            let candidates: Vec<Vec<usize>> = (0..4)
                .filter(|&v| v != current)
                .map(|v| {
                    let mut candidate = best_config.clone();
                    candidate[i] = v;
                    candidate
                })
                .collect();
            for candidate in candidates {
                let value = objective.evaluate_with(&candidate, &mut scratch);
                trace.push((value.energy, value.penalized));
                if value.penalized < best_value.penalized - 1e-12 {
                    best_config = candidate;
                    best_value = value;
                    last_accept = Some(trace.len());
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    if polish_sweeps > 0 {
        let d = best_config.len();
        let nq = num_qubits;
        pairs = if d <= 24 {
            (0..d).flat_map(|i| ((i + 1)..d).map(move |j| (i, j))).collect()
        } else {
            let offsets = [1, 2, nq / 2, nq / 2 + 1, nq.saturating_sub(1), nq, nq + 1, 2 * nq];
            let mut out = Vec::new();
            for i in 0..d {
                for &off in &offsets {
                    if off > 0 && i + off < d {
                        out.push((i, i + off));
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            out
        };
        let sweeps = if d <= 24 { 3 } else { 2 };
        for _sweep in 0..sweeps {
            let mut improved = false;
            for &(i, j) in &pairs {
                let candidates: Vec<Vec<usize>> = (0..16)
                    .map(|code| {
                        let mut candidate = best_config.clone();
                        candidate[i] = code / 4;
                        candidate[j] = code % 4;
                        candidate
                    })
                    .collect();
                for candidate in candidates {
                    if candidate[i] == best_config[i] && candidate[j] == best_config[j] {
                        continue;
                    }
                    let value = objective.evaluate_with(&candidate, &mut scratch);
                    trace.push((value.energy, value.penalized));
                    if value.penalized < best_value.penalized - 1e-12 {
                        best_config = candidate;
                        best_value = value;
                        last_accept = Some(trace.len());
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }
    ReferencePolishOutcome { best_config, best_value, trace, last_accept, pairs }
}
