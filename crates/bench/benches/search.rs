//! A/B benchmarks for the batched, allocation-free search stack: the
//! bitwise expectation kernel vs the frozen allocation-based reference,
//! per-candidate evaluation through the compiled template vs the full
//! bind-and-lower path, the H2 exhaustive oracle (4^8 configurations)
//! serial vs sharded, the persistent worker pool vs the frozen
//! spawn-per-batch path on an H2O-class objective, batched vs
//! single-proposal BO acquisition, the intra-candidate term-sharded
//! expectation vs the chunked serial sum on a Cr2-class objective,
//! the lane-blocked phase kernel vs the pinned scalar mask fold, the
//! polish layer-checkpoint stack vs rebuild-from-zero backward seeks,
//! the 32-chunk wide association on a ≥ 65 536-term sum,
//! windowed vs full-history surrogate refits, the Clifford+T branch
//! evaluator (tableau ensemble vs dense branch sum), the full
//! CAFQA+kT search (branch-engine stack vs the frozen dense/serial
//! rejection-sampling loop), and the Ising fast path (structure-routed
//! reduced-space solve vs the full BO pipeline, in instances/second).
//!
//! The engine and BO A/Bs additionally time themselves with raw
//! `Instant` measurements (independent of the harness sampling), assert
//! the pooled/batched side is not slower, and record the numbers in
//! `BENCH_search.json` at the workspace root.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use cafqa_bayesopt::{minimize, BoOptions, ForestOptions, SearchSpace};
use cafqa_bench::{
    reference_evaluate_batch_spawn, reference_expectation_pauli, reference_kt, reference_polish,
    ReferenceGenerators,
};
use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa_circuit::{Ansatz, EfficientSu2};
use cafqa_clifford::{BranchEnsemble, CliffordTState, Tableau};
use cafqa_core::exhaustive::{exhaustive_search_serial, exhaustive_search_with_workers};
use cafqa_core::maxcut::{maxcut_hamiltonian, Graph};
use cafqa_core::{
    kt_session, polish_on, run_cafqa_kt_on, run_cafqa_on, solve_ising_batch_on,
    widen_clifford_config, CafqaOptions, CafqaResult, CliffordObjective, ExecEngine, IsingFastPath,
    IsingInstance, KtPolishSession,
};
use cafqa_linalg::Complex64;
use cafqa_pauli::{PauliOp, PauliString};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Mirrors the harness's substring filter (`cargo bench -- <filter>`):
/// the raw-timing A/B passes below are heavyweight and carry their own
/// assertions, so a filtered run (e.g. the CI `-- h2` kernel smoke) must
/// skip the ones it did not ask for — criterion's filter only gates
/// `bench_function` sampling, not the target function bodies.
fn filter_matches(name: &str) -> bool {
    match std::env::args().skip(1).find(|a| !a.starts_with('-')) {
        Some(filter) => name.contains(&filter),
        None => true,
    }
}

/// Rewrites every numeric token equal to negative zero (`-0.0`,
/// `-0.000000`, `-0e5`, …) without its sign, so formatted values like
/// `{:.6}` of an exactly-zero-but-negative f64 never land in the
/// recorded JSON as `-0.0`. Tokens that merely *start* with `-0` (e.g.
/// `-0.05`) parse nonzero and pass through untouched.
fn normalize_negative_zero(json: &str) -> String {
    let bytes = json.as_bytes();
    let mut out = String::with_capacity(json.len());
    let mut i = 0;
    while i < bytes.len() {
        let is_number_start = bytes[i] == b'-'
            && i + 1 < bytes.len()
            && bytes[i + 1].is_ascii_digit()
            && !matches!(out.as_bytes().last(), Some(p) if p.is_ascii_alphanumeric() || *p == b'.');
        if is_number_start {
            let mut j = i + 1;
            while j < bytes.len()
                && (bytes[j].is_ascii_digit()
                    || bytes[j] == b'.'
                    || bytes[j] == b'e'
                    || bytes[j] == b'E'
                    || ((bytes[j] == b'+' || bytes[j] == b'-')
                        && matches!(bytes[j - 1], b'e' | b'E')))
            {
                j += 1;
            }
            let token = &json[i..j];
            if token.parse::<f64>() == Ok(0.0) {
                out.push_str(&token[1..]); // drop the sign: −0 → 0
            } else {
                out.push_str(token);
            }
            i = j;
        } else {
            out.push(json.as_bytes()[i] as char);
            i += 1;
        }
    }
    out
}

/// Accumulates `name → json` entries and rewrites `BENCH_search.json`
/// (workspace root) on every record. Entries already on disk from
/// *other* (e.g. filtered) runs are preserved — a `-- term_sharded`
/// smoke must not clobber the pooled or windowed numbers — with
/// in-process entries overriding same-named ones. Keys are emitted in
/// sorted order and negative zeros normalized away (both for new and
/// merged-from-disk entries), so re-recorded runs produce clean diffs.
fn record_bench_json(name: &str, json: String) {
    static RESULTS: OnceLock<Mutex<Vec<(String, String)>>> = OnceLock::new();
    let results = RESULTS.get_or_init(|| Mutex::new(Vec::new()));
    let mut results = results.lock().expect("bench json lock");
    results.retain(|(n, _)| n != name);
    results.push((name.to_string(), json));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_search.json");
    // Read-modify-write: the file is our own one-entry-per-line format,
    // so each body line splits into a quoted key and a `{...}` value at
    // the first `": "` (which by construction ends the key).
    let mut merged: Vec<(String, String)> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        for line in existing.lines() {
            let line = line.trim().trim_end_matches(',');
            if let Some((key, value)) = line.split_once("\": ") {
                let key = key.trim_start_matches('"');
                if !key.is_empty() && value.starts_with('{') && value.ends_with('}') {
                    merged.push((key.to_string(), value.to_string()));
                }
            }
        }
    }
    for (n, j) in results.iter() {
        merged.retain(|(k, _)| k != n);
        merged.push((n.clone(), j.clone()));
    }
    merged.sort_by(|a, b| a.0.cmp(&b.0));
    let body: Vec<String> =
        merged.iter().map(|(n, j)| format!("  \"{n}\": {}", normalize_negative_zero(j))).collect();
    let _ = std::fs::write(path, format!("{{\n{}\n}}\n", body.join(",\n")));
}

fn random_pauli(n: usize, seed: &mut u64) -> PauliString {
    let mut next = || {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    };
    let mask = if n == 64 { u64::MAX } else { (1 << n) - 1 };
    PauliString::from_masks(n, next() & mask, next() & mask)
}

/// The per-term expectation kernel, old (PauliString::mul accumulation)
/// vs new (bitwise phase accumulation) on a 14-qubit ansatz state.
///
/// Uniformly random Paulis almost surely anticommute with some stabilizer
/// and take the early-exit zero path, which the rewrite left untouched —
/// so the interesting workload is Paulis drawn from the stabilizer group
/// itself (random generator products, expectation ±1), which drive the
/// full destabilizer-decomposition loop on every term.
fn bench_expectation_kernel(c: &mut Criterion) {
    let ansatz = EfficientSu2::new(14, 1);
    let config: Vec<usize> = (0..ansatz.num_parameters()).map(|i| (i * 5 + 1) % 4).collect();
    let tableau = Tableau::from_circuit(&ansatz.bind_clifford(&config)).unwrap();
    let generators = ReferenceGenerators::from_tableau(&tableau);
    let mut seed = 19;
    let paulis: Vec<PauliString> = (0..256)
        .map(|_| {
            // A random product of stabilizer generators: nonzero expectation.
            let mut pick = random_pauli(14, &mut seed).x_mask() | 1;
            let mut x = 0u64;
            let mut z = 0u64;
            for (_, s) in &generators.stabilizers {
                if pick & 1 != 0 {
                    x ^= s.x_mask();
                    z ^= s.z_mask();
                }
                pick >>= 1;
            }
            PauliString::from_masks(14, x, z)
        })
        .collect();
    assert!(paulis.iter().all(|p| tableau.expectation_pauli(p) != 0));
    let mut group = c.benchmark_group("expectation_kernel_256x14q_in_group");
    group.bench_function("old_allocating", |b| {
        b.iter(|| {
            let s: i32 =
                paulis.iter().map(|p| i32::from(reference_expectation_pauli(&generators, p))).sum();
            black_box(s)
        })
    });
    group.bench_function("new_bitwise", |b| {
        b.iter(|| {
            let s: i32 = paulis.iter().map(|p| i32::from(tableau.expectation_pauli(p))).sum();
            black_box(s)
        })
    });
    group.finish();
}

/// One full candidate evaluation, old style (bind + lower + fresh tableau
/// + allocating expectation) vs the compiled-template scratch path.
fn bench_candidate_evaluation(c: &mut Criterion) {
    let ansatz = EfficientSu2::new(12, 1);
    let mut seed = 77;
    let op = PauliOp::from_terms(
        12,
        (0..128).map(|_| (cafqa_linalg::Complex64::from(0.01), random_pauli(12, &mut seed))),
    );
    let objective = CliffordObjective::new(&ansatz, &op);
    assert!(objective.is_compiled());
    let config: Vec<usize> = (0..ansatz.num_parameters()).map(|i| (i * 3 + 2) % 4).collect();
    let mut group = c.benchmark_group("candidate_evaluation_12q_128terms");
    group.bench_function("old_bind_lower_allocate", |b| {
        b.iter(|| {
            let circuit = ansatz.bind_clifford(&config);
            let tableau = Tableau::from_circuit(&circuit).unwrap();
            black_box(cafqa_bench::reference_expectation(&tableau, &op))
        })
    });
    group.bench_function("new_compiled_scratch", |b| {
        let mut scratch = objective.scratch();
        b.iter(|| black_box(objective.evaluate_with(&config, &mut scratch).energy))
    });
    group.finish();
}

/// Per-evaluation kernel at the paper's headline operating point: one
/// candidate of the H2 ansatz against the tapered H2 Hamiltonian.
fn bench_h2_candidate_evaluation(c: &mut Criterion) {
    let pipe = ChemPipeline::build(MoleculeKind::H2, 2.5, &ScfKind::Rhf).unwrap();
    let problem = pipe.problem(1, 1, true).unwrap();
    let ansatz = EfficientSu2::new(2, 1);
    let hamiltonian = problem.hamiltonian.clone();
    let objective = CliffordObjective::new(&ansatz, &hamiltonian);
    let config = vec![1usize, 2, 3, 0, 1, 2, 3, 0];
    let mut group = c.benchmark_group("candidate_evaluation_h2");
    group.bench_function("old_bind_lower_allocate", |b| {
        b.iter(|| {
            let circuit = ansatz.bind_clifford(&config);
            let tableau = Tableau::from_circuit(&circuit).unwrap();
            black_box(cafqa_bench::reference_expectation(&tableau, &hamiltonian))
        })
    });
    group.bench_function("new_compiled_scratch", |b| {
        let mut scratch = objective.scratch();
        b.iter(|| black_box(objective.evaluate_with(&config, &mut scratch).energy))
    });
    group.finish();
}

/// The H2 exhaustive oracle (4^8 = 65 536 configurations): old-style
/// per-candidate evaluation vs the new serial kernel vs the sharded
/// enumeration. All three must report identical energies.
fn bench_h2_oracle(c: &mut Criterion) {
    let pipe = ChemPipeline::build(MoleculeKind::H2, 2.5, &ScfKind::Rhf).unwrap();
    let problem = pipe.problem(1, 1, true).unwrap();
    let ansatz = EfficientSu2::new(2, 1);
    let hamiltonian = problem.hamiltonian.clone();
    let mut group = c.benchmark_group("h2_exhaustive_oracle_4pow8");
    let reference = exhaustive_search_serial(&ansatz, &hamiltonian, vec![]).unwrap();
    group.bench_function("old_per_candidate", |b| {
        b.iter(|| {
            let mut best = f64::INFINITY;
            let mut config = vec![0usize; 8];
            for code in 0..65_536u64 {
                let mut bits = code;
                for slot in config.iter_mut() {
                    *slot = (bits & 3) as usize;
                    bits >>= 2;
                }
                let circuit = ansatz.bind_clifford(&config);
                let tableau = Tableau::from_circuit(&circuit).unwrap();
                let energy = cafqa_bench::reference_expectation(&tableau, &hamiltonian);
                if energy < best {
                    best = energy;
                }
            }
            assert_eq!(best, reference.energy);
            black_box(best)
        })
    });
    group.bench_function("new_serial", |b| {
        b.iter(|| {
            let result = exhaustive_search_serial(&ansatz, &hamiltonian, vec![]).unwrap();
            assert_eq!(result.energy, reference.energy);
            black_box(result.penalized)
        })
    });
    group.bench_function("new_sharded_8", |b| {
        b.iter(|| {
            let result = exhaustive_search_with_workers(&ansatz, &hamiltonian, vec![], 8).unwrap();
            assert_eq!(result.energy, reference.energy);
            black_box(result.penalized)
        })
    });
    group.finish();
}

/// An H2O-class objective: 14-qubit `EfficientSu2` (56 parameters)
/// against a dense synthetic Hamiltonian of the same order as the
/// paper's 12–14-qubit molecular operators.
fn h2o_class_objective() -> (EfficientSu2, PauliOp) {
    let ansatz = EfficientSu2::new(14, 1);
    let mut seed = 0xB0B5_u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let hamiltonian = PauliOp::from_terms(
        14,
        (0..640).map(|i| {
            let x = next() & 0x3FFF;
            let z = next() & 0x3FFF;
            (Complex64::from(0.01 * ((i % 37) as f64 + 1.0)), PauliString::from_masks(14, x, z))
        }),
    );
    (ansatz, hamiltonian)
}

/// Search-shaped batches: the BO acquisition proposes a handful of
/// candidates per cycle and the polish sweeps try 3–16 alternatives per
/// move, so the production workload is *many small batches* — exactly
/// where per-batch thread spawns hurt most.
fn search_shaped_batches(num_parameters: usize) -> Vec<Vec<Vec<usize>>> {
    (0..200u64)
        .map(|round| {
            (0..8u64)
                .map(|k| {
                    let code = round.wrapping_mul(0x9E37_79B9).wrapping_add(k * 0x85EB_CA6B);
                    (0..num_parameters).map(|i| ((code >> (2 * (i % 29))) & 3) as usize).collect()
                })
                .collect()
        })
        .collect()
}

/// The tentpole A/B: persistent pool vs frozen spawn-per-batch on an
/// H2O-class objective, 200 batches of 8 candidates (the acquisition /
/// polish shape). Asserts pooled energies equal the spawn path bit for
/// bit AND that the pool is at least at pre-refactor throughput, then
/// records the numbers in `BENCH_search.json`.
fn bench_h2o_pooled_vs_spawn(c: &mut Criterion) {
    // Group name deliberately avoids the substring "h2" so the H2
    // kernel smoke filter does not drag this heavyweight A/B along.
    const GROUP: &str = "water_class_pooled_vs_spawn";
    if !filter_matches(GROUP) {
        return;
    }
    const WORKERS: usize = 4;
    let (ansatz, hamiltonian) = h2o_class_objective();
    let engine = ExecEngine::new(WORKERS);
    let objective = CliffordObjective::new(&ansatz, &hamiltonian).with_engine(engine);
    assert!(objective.is_compiled());
    let batches = search_shaped_batches(ansatz.num_parameters());

    // Raw A/B timing (one pass each, interleaved warmup already done by
    // the harness below): the assertion and the recorded numbers.
    let run_pooled = || {
        let mut acc = 0.0f64;
        for batch in &batches {
            acc += objective.evaluate_batch(batch).iter().map(|v| v.energy).sum::<f64>();
        }
        acc
    };
    let run_spawn = || {
        let mut acc = 0.0f64;
        for batch in &batches {
            acc += reference_evaluate_batch_spawn(&objective, batch, WORKERS)
                .iter()
                .map(|v| v.energy)
                .sum::<f64>();
        }
        acc
    };
    // Bitwise equality of every energy on one batch set.
    for batch in batches.iter().take(16) {
        let pooled = objective.evaluate_batch(batch);
        let spawned = reference_evaluate_batch_spawn(&objective, batch, WORKERS);
        for (p, s) in pooled.iter().zip(&spawned) {
            assert_eq!(p.energy.to_bits(), s.energy.to_bits(), "pool/spawn energy mismatch");
            assert_eq!(p.penalized.to_bits(), s.penalized.to_bits());
        }
    }
    // Warm both paths, then time: best of 3 passes each to shave
    // scheduler noise on busy hosts.
    black_box(run_pooled());
    black_box(run_spawn());
    let pooled_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_pooled());
            t.elapsed()
        })
        .min()
        .unwrap();
    let spawn_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_spawn());
            t.elapsed()
        })
        .min()
        .unwrap();
    let speedup = spawn_elapsed.as_secs_f64() / pooled_elapsed.as_secs_f64();
    record_bench_json(
        "h2o_class_pooled_vs_spawn",
        format!(
            "{{\"workers\": {WORKERS}, \"batches\": {}, \"batch_size\": 8, \
             \"spawn_ms\": {:.3}, \"pooled_ms\": {:.3}, \"speedup\": {:.3}, \
             \"energies_bit_identical\": true}}",
            batches.len(),
            spawn_elapsed.as_secs_f64() * 1e3,
            pooled_elapsed.as_secs_f64() * 1e3,
            speedup
        ),
    );
    // The acceptance gate: the persistent pool must be at least at
    // pre-refactor throughput (5 % tolerance for timer/scheduler noise).
    assert!(
        pooled_elapsed.as_secs_f64() <= spawn_elapsed.as_secs_f64() * 1.05,
        "pooled engine slower than spawn-per-batch: {pooled_elapsed:?} vs {spawn_elapsed:?}"
    );

    let mut group = c.benchmark_group(GROUP);
    group.bench_function("old_spawn_per_batch", |b| b.iter(|| black_box(run_spawn())));
    group.bench_function("new_persistent_pool", |b| b.iter(|| black_box(run_pooled())));
    group.finish();
}

/// The acquisition A/B: one candidate per surrogate refit (classic) vs
/// the batched top-B acquisition, same evaluation budget. The objective
/// is cheap, so the measured gap is the refit amortization itself — the
/// pacing item of the paper's H2O (1000 warm-up) and Cr2 runs.
fn bench_bo_batched_vs_single_proposal(c: &mut Criterion) {
    const GROUP: &str = "bo_acquisition_48dim_300evals";
    if !filter_matches(GROUP) {
        return;
    }
    let space = SearchSpace::uniform(48, 4);
    let objective = |batch: &[Vec<usize>]| {
        batch
            .iter()
            .map(|cfg| {
                cfg.iter()
                    .enumerate()
                    .map(|(i, &k)| (k as f64 - ((i * 5 + 1) % 4) as f64).powi(2))
                    .sum::<f64>()
            })
            .collect::<Vec<f64>>()
    };
    let run = |proposals: usize| {
        let opts = BoOptions {
            warmup: 100,
            iterations: 200,
            proposals_per_refit: proposals,
            seed: 0xCAF9A,
            ..Default::default()
        };
        minimize(&space, objective, &[], &opts)
    };
    // Warm both arms (keeping the results — the runs are deterministic
    // given the seed), then take the best of 3 passes each so a noisy
    // host cannot flip the comparison.
    let single = run(1);
    let batched = run(4);
    let single_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run(1));
            t.elapsed()
        })
        .min()
        .unwrap();
    let batched_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run(4));
            t.elapsed()
        })
        .min()
        .unwrap();
    assert_eq!(single.history.len(), batched.history.len(), "same evaluation budget");
    let speedup = single_elapsed.as_secs_f64() / batched_elapsed.as_secs_f64();
    record_bench_json(
        "bo_batched_vs_single_proposal_48dim_300evals",
        format!(
            "{{\"single_ms\": {:.3}, \"batched_b4_ms\": {:.3}, \"speedup\": {:.3}, \
             \"single_best\": {:.6}, \"batched_best\": {:.6}}}",
            single_elapsed.as_secs_f64() * 1e3,
            batched_elapsed.as_secs_f64() * 1e3,
            speedup,
            single.best_value,
            batched.best_value
        ),
    );
    // 5 % tolerance for timer/scheduler noise; the measured gap is ~3.5×.
    assert!(
        batched_elapsed.as_secs_f64() <= single_elapsed.as_secs_f64() * 1.05,
        "batched acquisition not faster: {batched_elapsed:?} vs {single_elapsed:?}"
    );

    let mut group = c.benchmark_group(GROUP);
    group.bench_function("single_proposal_per_refit", |b| b.iter(|| black_box(run(1))));
    group.bench_function("batched_top4_per_refit", |b| b.iter(|| black_box(run(4))));
    group.finish();
}

/// A Cr2-shaped objective: 20 qubits, 24 576 distinct Pauli terms — far
/// over the 4096-term sharding threshold, so one candidate evaluation is
/// hundreds of microseconds of term summing (the regime where the
/// intra-candidate dispatch overhead is genuinely negligible, as at the
/// real 10⁵-term Cr2 operating point).
fn cr2_class_objective() -> (EfficientSu2, PauliOp) {
    const TERMS: u64 = 24_576;
    let ansatz = EfficientSu2::new(20, 1);
    let mut seed = 0xC47_u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let hamiltonian = PauliOp::from_terms(
        20,
        (0..TERMS).map(|code| {
            // The 15-bit code is packed into the low x-mask bits so terms
            // are distinct by construction; the remaining bits come from
            // the xorshift stream for coverage of the whole register.
            let x = (code & 0x7FFF) | (next() & 0xF8000);
            let z = next() & 0xFFFFF;
            (Complex64::from(1e-3 * ((code % 53) as f64 + 1.0)), PauliString::from_masks(20, x, z))
        }),
    );
    assert_eq!(hamiltonian.num_terms(), TERMS as usize, "terms must not collide");
    (ansatz, hamiltonian)
}

/// The intra-candidate A/B: term-sharded expectation (chunks of the
/// fixed 8-chunk association dispatched over the pool from inside each
/// evaluation) vs the chunked serial sum, on single-candidate
/// evaluations — the polish/incumbent shape where outer batching cannot
/// help.
///
/// Two separate concerns, handled separately: **bit-identity** is
/// checked on a *forced* 4-worker engine (exercising the real nested
/// dispatch on any host), while the **throughput gate** times a
/// host-fitting pool (`min(4, cores)` workers) so the comparison never
/// oversubscribes the machine — on a 1-core host that degenerates to
/// serial-vs-serial (the same configuration production would pick via
/// `default_workers()`), and on multicore hosts it shows the real
/// parallel speedup. Energies and numbers land in `BENCH_search.json`.
fn bench_term_sharded_vs_chunked_serial(c: &mut Criterion) {
    const GROUP: &str = "term_sharded_expectation_20q_24k_terms";
    if !filter_matches(GROUP) {
        return;
    }
    let (ansatz, hamiltonian) = cr2_class_objective();
    assert!(hamiltonian.num_terms() >= 4096, "must clear the sharding threshold");
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let timing_workers = host_cores.min(4);
    let serial = CliffordObjective::new(&ansatz, &hamiltonian).with_engine(ExecEngine::serial());
    let sharded =
        CliffordObjective::new(&ansatz, &hamiltonian).with_engine(ExecEngine::new(timing_workers));
    let forced = CliffordObjective::new(&ansatz, &hamiltonian).with_engine(ExecEngine::new(4));
    let configs: Vec<Vec<usize>> = (0..12u64)
        .map(|k| {
            (0..ansatz.num_parameters())
                .map(|i| ((k.wrapping_mul(0x9E37_79B9) >> (2 * (i % 31))) & 3) as usize)
                .collect()
        })
        .collect();
    // Bitwise equality of every energy — through the forced 4-worker
    // nested dispatch AND the host-fitting pool — before any timing.
    let mut scratch_serial = serial.scratch();
    let mut scratch_sharded = sharded.scratch();
    let mut scratch_forced = forced.scratch();
    for config in &configs {
        let reference = serial.evaluate_with(config, &mut scratch_serial);
        let nested = forced.evaluate_with(config, &mut scratch_forced);
        let hostfit = sharded.evaluate_with(config, &mut scratch_sharded);
        assert_eq!(
            reference.energy.to_bits(),
            nested.energy.to_bits(),
            "term-sharded energy mismatch"
        );
        assert_eq!(reference.penalized.to_bits(), nested.penalized.to_bits());
        assert_eq!(reference.energy.to_bits(), hostfit.energy.to_bits());
    }
    // A 1-core host cannot time a parallel speedup: the host-fitting
    // pool degenerates to serial-vs-serial and the recorded ~1.0×
    // number measures nothing. Keep the bit-identity gate above, log
    // the skip, and record no entry — a multicore host supplies the
    // real measurement.
    if host_cores == 1 {
        eprintln!(
            "[{GROUP}] 1-core host: bit-identity checked (forced 4-worker nested dispatch); \
             skipping the serial-vs-serial timing and recording nothing"
        );
        return;
    }
    let run_serial = || {
        let mut scratch = serial.scratch();
        configs.iter().map(|c| serial.evaluate_with(c, &mut scratch).energy).sum::<f64>()
    };
    let run_sharded = || {
        let mut scratch = sharded.scratch();
        configs.iter().map(|c| sharded.evaluate_with(c, &mut scratch).energy).sum::<f64>()
    };
    // Warm both arms, then best of 3 passes each.
    black_box(run_serial());
    black_box(run_sharded());
    let serial_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_serial());
            t.elapsed()
        })
        .min()
        .unwrap();
    let sharded_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_sharded());
            t.elapsed()
        })
        .min()
        .unwrap();
    let speedup = serial_elapsed.as_secs_f64() / sharded_elapsed.as_secs_f64();
    record_bench_json(
        "term_sharded_vs_chunked_serial_20q_24576terms",
        format!(
            "{{\"timing_workers\": {timing_workers}, \"host_cores\": {host_cores}, \
             \"candidates\": {}, \"terms\": 24576, \"chunked_serial_ms\": {:.3}, \
             \"term_sharded_ms\": {:.3}, \"speedup\": {:.3}, \
             \"energies_bit_identical\": true}}",
            configs.len(),
            serial_elapsed.as_secs_f64() * 1e3,
            sharded_elapsed.as_secs_f64() * 1e3,
            speedup
        ),
    );
    // The acceptance gate: at the host-fitting worker count the sharded
    // path must be at least at serial throughput (5 % timer tolerance).
    assert!(
        sharded_elapsed.as_secs_f64() <= serial_elapsed.as_secs_f64() * 1.05,
        "term-sharded slower than chunked serial ({timing_workers} workers, \
         {host_cores} cores): {sharded_elapsed:?} vs {serial_elapsed:?}"
    );

    let mut group = c.benchmark_group(GROUP);
    group.bench_function("chunked_serial", |b| b.iter(|| black_box(run_serial())));
    group.bench_function("term_sharded_hostfit", |b| b.iter(|| black_box(run_sharded())));
    group.finish();
}

/// The lane-blocked kernel A/B: `Tableau::expectation_masks` (4-row
/// lane blocks, branchless parity folds, select-mask phase
/// accumulation) vs the pinned scalar reference
/// (`expectation_masks_scalar`, the pre-refactor loop kept verbatim),
/// at the Cr2-class register width (34 qubits) where the ≥ 10⁵-term
/// sums spend their time. The workload mixes stabilizer-group products
/// (nonzero expectation: the full destabilizer phase fold runs on
/// every call) with uniform random Paulis (almost surely
/// anticommuting: the screen early-exit path). Bit-identity on every
/// mask pair is asserted before timing; numbers land in
/// `BENCH_search.json`. Single-threaded, so the gate is meaningful on
/// any host.
fn bench_lane_blocked_kernel(c: &mut Criterion) {
    const GROUP: &str = "lane_blocked_phase_kernel_34q";
    if !filter_matches(GROUP) {
        return;
    }
    const QUBITS: usize = 34;
    let ansatz = EfficientSu2::new(QUBITS, 1);
    let config: Vec<usize> = (0..ansatz.num_parameters()).map(|i| (i * 5 + 1) % 4).collect();
    let tableau = Tableau::from_circuit(&ansatz.bind_clifford(&config)).unwrap();
    let generators = ReferenceGenerators::from_tableau(&tableau);
    let mut seed = 0x1A9E_u64;
    let mut masks: Vec<(u64, u64)> = (0..192)
        .map(|_| {
            // A random product of stabilizer generators: nonzero
            // expectation, so the phase fold cannot early-exit.
            let mut pick = random_pauli(QUBITS, &mut seed).x_mask() | 1;
            let (mut x, mut z) = (0u64, 0u64);
            for (_, s) in &generators.stabilizers {
                if pick & 1 != 0 {
                    x ^= s.x_mask();
                    z ^= s.z_mask();
                }
                pick >>= 1;
            }
            (x, z)
        })
        .collect();
    masks.extend((0..64).map(|_| {
        let p = random_pauli(QUBITS, &mut seed);
        (p.x_mask(), p.z_mask())
    }));
    assert!(
        masks[..192].iter().all(|&(x, z)| tableau.expectation_masks(x, z) != 0),
        "generator products must take the nonzero phase-fold path"
    );
    // Bit-identity on every mask pair — the frozen-semantics gate.
    for &(x, z) in &masks {
        assert_eq!(
            tableau.expectation_masks(x, z),
            tableau.expectation_masks_scalar(x, z),
            "lane-blocked kernel diverged from the scalar reference"
        );
    }
    const REPS: usize = 64;
    let run_scalar = || {
        let mut acc = 0i32;
        for _ in 0..REPS {
            acc += masks
                .iter()
                .map(|&(x, z)| i32::from(tableau.expectation_masks_scalar(x, z)))
                .sum::<i32>();
        }
        acc
    };
    let run_blocked = || {
        let mut acc = 0i32;
        for _ in 0..REPS {
            acc +=
                masks.iter().map(|&(x, z)| i32::from(tableau.expectation_masks(x, z))).sum::<i32>();
        }
        acc
    };
    assert_eq!(run_scalar(), run_blocked());
    black_box(run_scalar());
    black_box(run_blocked());
    let scalar_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_scalar());
            t.elapsed()
        })
        .min()
        .unwrap();
    let blocked_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_blocked());
            t.elapsed()
        })
        .min()
        .unwrap();
    let speedup = scalar_elapsed.as_secs_f64() / blocked_elapsed.as_secs_f64();
    record_bench_json(
        "lane_blocked_vs_scalar_kernel_34q_256paulis",
        format!(
            "{{\"qubits\": 34, \"paulis\": 256, \"nonzero_paulis\": 192, \"reps\": {REPS}, \
             \"scalar_ms\": {:.3}, \"lane_blocked_ms\": {:.3}, \"speedup\": {:.3}, \
             \"expectations_bit_identical\": true}}",
            scalar_elapsed.as_secs_f64() * 1e3,
            blocked_elapsed.as_secs_f64() * 1e3,
            speedup
        ),
    );
    // The acceptance gate: the lane-blocked kernel must be at least at
    // scalar throughput (5 % timer tolerance).
    assert!(
        blocked_elapsed.as_secs_f64() <= scalar_elapsed.as_secs_f64() * 1.05,
        "lane-blocked kernel slower than scalar: {blocked_elapsed:?} vs {scalar_elapsed:?}"
    );

    let mut group = c.benchmark_group(GROUP);
    group.bench_function("scalar_reference", |b| b.iter(|| black_box(run_scalar())));
    group.bench_function("lane_blocked", |b| b.iter(|| black_box(run_blocked())));
    group.finish();
}

/// A deliberately adversarial polish ansatz: the parameter index order
/// is *reversed* relative to execution order (slot 0 is read by the
/// last rotation layer), so the ascending-slot order of the polish
/// sweeps issues a deep backward seek at every slot-group transition —
/// the access pattern the layered checkpoint stack exists for. Real
/// ansätze hit the same shape whenever a screened pair list revisits
/// parameters that execute late in the circuit.
struct ReversedLayoutAnsatz {
    qubits: usize,
    layers: usize,
}

impl Ansatz for ReversedLayoutAnsatz {
    fn num_qubits(&self) -> usize {
        self.qubits
    }
    fn num_parameters(&self) -> usize {
        self.qubits * self.layers
    }
    fn bind(&self, params: &[f64]) -> cafqa_circuit::Circuit {
        assert_eq!(params.len(), self.num_parameters());
        let mut c = cafqa_circuit::Circuit::new(self.qubits);
        for layer in 0..self.layers {
            for q in 0..self.qubits - 1 {
                c.cx(q, q + 1);
            }
            // Reversed layout: execution layer `layer` reads the slot
            // block counted from the END of the parameter vector.
            let base = (self.layers - 1 - layer) * self.qubits;
            for q in 0..self.qubits {
                c.ry(q, params[base + q]);
            }
        }
        c
    }
}

/// The backward-seek A/B: `PolishSession` with the layered checkpoint
/// stack vs the same session with the stack disabled (the frozen
/// pre-stack behavior: every backward seek rebuilds the prefix from
/// `|0…0⟩`). The move stream is a screened-pair-sweep shape on the
/// reversed-layout ansatz — two screened pairs whose seek targets sit
/// in the two deepest execution layers, so every sweep issues a deep
/// backward seek. Energies are asserted bit-identical between the two
/// arms AND against full re-preparation, the incremental `polish_on`
/// trace is pinned to the frozen `reference_polish` on the standard
/// 96-dim workload, and the stack must deliver a measured ≥ 1.2× on
/// the sweep. Single-threaded; numbers land in `BENCH_search.json`.
fn bench_backward_seek_polish(c: &mut Criterion) {
    const GROUP: &str = "backward_seek_checkpoint_stack_384dim";
    if !filter_matches(GROUP) {
        return;
    }
    // Frozen-reference gate on the standard workload: the stack-enabled
    // polish endgame (the production default) reproduces the frozen
    // full-re-preparation trace bit for bit.
    {
        let (ansatz, hamiltonian, start) = polish_workload();
        let engine = ExecEngine::serial();
        let objective = CliffordObjective::new(&ansatz, &hamiltonian).with_engine(engine.clone());
        let opts = CafqaOptions { polish_sweeps: 1, ..Default::default() };
        let frozen = reference_polish(&objective, 24, &start, opts.polish_sweeps);
        let incremental = polish_on(&engine, &objective, &start, &opts, &[]);
        assert_eq!(incremental.trace.len(), frozen.trace.len(), "stacked polish trace length");
        for (k, (a, b)) in incremental.trace.iter().zip(&frozen.trace).enumerate() {
            assert_eq!(a.0.to_bits(), b.0.to_bits(), "stacked polish energy at {k}");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "stacked polish penalized at {k}");
        }
        assert_eq!(incremental.best_config, frozen.best_config, "stacked polish best_config");
    }
    let ansatz = ReversedLayoutAnsatz { qubits: 12, layers: 32 };
    let mut seed = 0xBEEF_u64;
    let hamiltonian = PauliOp::from_terms(
        12,
        (0..8)
            .map(|i| (Complex64::from(0.05 * ((i % 7) as f64 + 1.0)), random_pauli(12, &mut seed))),
    );
    let objective = CliffordObjective::new(&ansatz, &hamiltonian);
    assert!(objective.is_compiled(), "the reversed-layout ansatz must compile");
    let d = ansatz.num_parameters();
    let start: Vec<usize> = (0..d).map(|i| (i * 3 + 1) % 4).collect();
    // The screened pair list: slots (0, 1) execute in the deepest layer
    // and (12, 13) one layer above it, so the ascending sweep order
    // seeks backward from pair 1's target to pair 2's every sweep.
    let pairs = [(0usize, 1usize), (12, 13)];
    let pair_moves: Vec<Vec<cafqa_core::PolishMove>> = pairs
        .iter()
        .map(|&(i, j)| (0..16).map(|code| vec![(i, code / 4), (j, code % 4)]).collect())
        .collect();
    const SWEEPS: usize = 64;
    let run = |stack: bool| -> (Vec<f64>, (u64, u64)) {
        let mut session = objective
            .polish_session(start.clone())
            .expect("compiled ansatz has a session")
            .with_checkpoint_stack(stack);
        let mut values = Vec::new();
        for _ in 0..SWEEPS {
            for moves in &pair_moves {
                values.extend(session.evaluate_moves(moves).iter().map(|v| v.energy));
            }
        }
        (values, session.seek_stats())
    };
    let (stacked_values, stacked_stats) = run(true);
    let (plain_values, plain_stats) = run(false);
    // Both arms agree bit for bit, and with full re-preparation.
    assert_eq!(stacked_values.len(), plain_values.len());
    for (k, (a, b)) in stacked_values.iter().zip(&plain_values).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "stack changed an energy at move {k}");
    }
    let reprepared: Vec<f64> = pairs
        .iter()
        .flat_map(|&(i, j)| {
            let objective = &objective;
            let start = &start;
            (0..16).map(move |code| {
                let mut config = start.clone();
                config[i] = code / 4;
                config[j] = code % 4;
                objective.evaluate(&config).energy
            })
        })
        .collect();
    for (k, (a, b)) in stacked_values.iter().zip(&reprepared).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "incremental energy diverged at move {k}");
    }
    // The structural claim: every sweep seeks backward once, and with
    // the stack on, every one of those restores a layer checkpoint.
    assert_eq!(stacked_stats.0, SWEEPS as u64, "one backward seek per sweep");
    assert_eq!(stacked_stats.1, SWEEPS as u64, "every backward seek must restore a checkpoint");
    assert_eq!(plain_stats.0, stacked_stats.0, "both arms see the same seek stream");
    assert_eq!(plain_stats.1, 0, "the disabled stack must never restore");
    black_box(run(true));
    black_box(run(false));
    let stacked_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run(true));
            t.elapsed()
        })
        .min()
        .unwrap();
    let plain_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run(false));
            t.elapsed()
        })
        .min()
        .unwrap();
    let speedup = plain_elapsed.as_secs_f64() / stacked_elapsed.as_secs_f64();
    record_bench_json(
        "backward_seek_checkpoint_stack_384dim",
        format!(
            "{{\"qubits\": 12, \"layers\": 32, \"dims\": {d}, \"terms\": 8, \
             \"sweeps\": {SWEEPS}, \"pairs\": 2, \"backward_seeks\": {}, \
             \"stack_restores\": {}, \"rebuild_ms\": {:.3}, \"stack_ms\": {:.3}, \
             \"speedup\": {:.3}, \"energies_bit_identical\": true, \
             \"reference_polish_trace_bit_identical\": true}}",
            stacked_stats.0,
            stacked_stats.1,
            plain_elapsed.as_secs_f64() * 1e3,
            stacked_elapsed.as_secs_f64() * 1e3,
            speedup
        ),
    );
    // The acceptance gate: the ISSUE requires a measured ≥ 1.2× on the
    // screened sweep (the observed margin is well above it).
    assert!(
        speedup >= 1.2,
        "checkpoint stack below the 1.2x acceptance bar: {speedup:.3}x \
         ({stacked_elapsed:?} vs {plain_elapsed:?})"
    );

    let mut group = c.benchmark_group(GROUP);
    group.bench_function("rebuild_from_zero", |b| b.iter(|| black_box(run(false))));
    group.bench_function("checkpoint_stack", |b| b.iter(|| black_box(run(true))));
    group.finish();
}

/// A Cr2-scale objective over the wide-chunk threshold: 20 qubits,
/// 81 920 distinct Pauli terms (the real Cr2 surrogate spans 76k–149k),
/// so every term sum uses the 32-chunk wide association.
fn wide_tier_objective() -> (EfficientSu2, PauliOp) {
    const TERMS: u64 = 81_920;
    let ansatz = EfficientSu2::new(20, 1);
    let mut seed = 0x51DE_u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let hamiltonian = PauliOp::from_terms(
        20,
        (0..TERMS).map(|code| {
            // The 17-bit code fills the low x-mask bits so terms are
            // distinct by construction; the rest of both masks comes
            // from the xorshift stream.
            let x = (code & 0x1_FFFF) | (next() & 0xE_0000);
            let z = next() & 0xF_FFFF;
            (Complex64::from(1e-3 * ((code % 61) as f64 + 1.0)), PauliString::from_masks(20, x, z))
        }),
    );
    assert_eq!(hamiltonian.num_terms(), TERMS as usize, "terms must not collide");
    (ansatz, hamiltonian)
}

/// The wide-chunk tier A/B: the 32-chunk association on a Cr2-scale
/// 81 920-term sum. Three contracts, asserted before any timing:
/// energies are bit-identical across worker counts {2, 4, 8} *within*
/// the tier (the chunk count, not the worker count, fixes the fold);
/// the 32-chunk sum agrees with a manually-folded 8-chunk association
/// of the same per-term expectations to reassociation tolerance; and
/// the per-term sweep (association-free) agrees likewise. Timing
/// records the serial wide-tier evaluation cost on any host and the
/// sharded speedup only on multicore hosts (a 1-core host would time
/// serial-vs-serial, which measures nothing — logged and skipped).
fn bench_wide_chunk_tier(c: &mut Criterion) {
    const GROUP: &str = "wide_chunk_tier_20q_82k_terms";
    if !filter_matches(GROUP) {
        return;
    }
    let (ansatz, hamiltonian) = wide_tier_objective();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let timing_workers = host_cores.min(4);
    let serial = CliffordObjective::new(&ansatz, &hamiltonian).with_engine(ExecEngine::serial());
    let configs: Vec<Vec<usize>> = (0..3u64)
        .map(|k| {
            (0..ansatz.num_parameters())
                .map(|i| ((k.wrapping_mul(0x9E37_79B9) >> (2 * (i % 31))) & 3) as usize)
                .collect()
        })
        .collect();
    let expected: Vec<f64> = configs.iter().map(|c| serial.evaluate(c).energy).collect();
    // Bit-identity across worker counts within the wide tier.
    for workers in [2usize, 4, 8] {
        let sharded =
            CliffordObjective::new(&ansatz, &hamiltonian).with_engine(ExecEngine::new(workers));
        for (config, &reference) in configs.iter().zip(&expected) {
            assert_eq!(
                sharded.evaluate(config).energy.to_bits(),
                reference.to_bits(),
                "wide-tier energy must be bit-identical at {workers} workers"
            );
        }
    }
    // Association A/B: fold the same per-term expectations under the
    // legacy 8-chunk association and the association-free per-term
    // sweep; both must agree with the 32-chunk sum to reassociation
    // tolerance (the tiers differ only in float fold order).
    let terms = serial.term_expectations(&configs[0]);
    let chunk = terms.len().div_ceil(8);
    let eight_chunk: f64 =
        terms.chunks(chunk).map(|ch| ch.iter().map(|(_, c, e)| c * *e as f64).sum::<f64>()).sum();
    let per_term: f64 = terms.iter().map(|(_, c, e)| c * *e as f64).sum();
    let scale = expected[0].abs().max(1.0);
    assert!(
        (eight_chunk - expected[0]).abs() <= 1e-9 * scale,
        "8-chunk vs 32-chunk must differ only by reassociation: {eight_chunk} vs {}",
        expected[0]
    );
    assert!(
        (per_term - expected[0]).abs() <= 1e-9 * scale,
        "per-term vs 32-chunk must differ only by reassociation: {per_term} vs {}",
        expected[0]
    );
    // Serial wide-tier evaluation cost: meaningful on any host.
    let run_serial = || configs.iter().map(|c| serial.evaluate(c).energy).sum::<f64>();
    black_box(run_serial());
    let serial_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_serial());
            t.elapsed()
        })
        .min()
        .unwrap();
    if host_cores == 1 {
        eprintln!(
            "[{GROUP}] 1-core host: bit-identity and association contracts checked; \
             skipping the serial-vs-serial sharded timing"
        );
        record_bench_json(
            "wide_chunk_tier_20q_81920terms",
            format!(
                "{{\"qubits\": 20, \"terms\": 81920, \"chunks\": 32, \"host_cores\": 1, \
                 \"candidates\": {}, \"serial_ms\": {:.3}, \
                 \"sharded_timing\": \"skipped_1core\", \
                 \"workers_bit_identical\": [2, 4, 8], \
                 \"eight_chunk_association_delta\": {:.3e}, \
                 \"per_term_association_delta\": {:.3e}}}",
                configs.len(),
                serial_elapsed.as_secs_f64() * 1e3,
                (eight_chunk - expected[0]).abs(),
                (per_term - expected[0]).abs()
            ),
        );
        let mut group = c.benchmark_group(GROUP);
        group.bench_function("serial_32chunk", |b| b.iter(|| black_box(run_serial())));
        group.finish();
        return;
    }
    let sharded =
        CliffordObjective::new(&ansatz, &hamiltonian).with_engine(ExecEngine::new(timing_workers));
    let run_sharded = || configs.iter().map(|c| sharded.evaluate(c).energy).sum::<f64>();
    black_box(run_sharded());
    let sharded_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_sharded());
            t.elapsed()
        })
        .min()
        .unwrap();
    let speedup = serial_elapsed.as_secs_f64() / sharded_elapsed.as_secs_f64();
    record_bench_json(
        "wide_chunk_tier_20q_81920terms",
        format!(
            "{{\"qubits\": 20, \"terms\": 81920, \"chunks\": 32, \
             \"timing_workers\": {timing_workers}, \"host_cores\": {host_cores}, \
             \"candidates\": {}, \"serial_ms\": {:.3}, \"sharded_ms\": {:.3}, \
             \"speedup\": {:.3}, \"workers_bit_identical\": [2, 4, 8], \
             \"eight_chunk_association_delta\": {:.3e}, \
             \"per_term_association_delta\": {:.3e}}}",
            configs.len(),
            serial_elapsed.as_secs_f64() * 1e3,
            sharded_elapsed.as_secs_f64() * 1e3,
            speedup,
            (eight_chunk - expected[0]).abs(),
            (per_term - expected[0]).abs()
        ),
    );
    // The acceptance gate: wider sharding must be at least at serial
    // throughput at the host-fitting worker count (5 % timer tolerance).
    assert!(
        sharded_elapsed.as_secs_f64() <= serial_elapsed.as_secs_f64() * 1.05,
        "wide-chunk sharded slower than serial ({timing_workers} workers, \
         {host_cores} cores): {sharded_elapsed:?} vs {serial_elapsed:?}"
    );

    let mut group = c.benchmark_group(GROUP);
    group.bench_function("serial_32chunk", |b| b.iter(|| black_box(run_serial())));
    group.bench_function("sharded_32chunk", |b| b.iter(|| black_box(run_sharded())));
    group.finish();
}

/// The refit-cost A/B: windowed surrogate refits vs classic full-history
/// refits at an identical evaluation budget. The objective is cheap, so
/// the measured gap is the fit cost itself — the component that
/// otherwise grows linearly with the trace. The no-op window is asserted
/// trace-identical to the classic fit before timing.
fn bench_windowed_vs_full_refit(c: &mut Criterion) {
    const GROUP: &str = "bo_windowed_refit_48dim_500evals";
    if !filter_matches(GROUP) {
        return;
    }
    let space = SearchSpace::uniform(48, 4);
    let objective = |batch: &[Vec<usize>]| {
        batch
            .iter()
            .map(|cfg| {
                cfg.iter()
                    .enumerate()
                    .map(|(i, &k)| (k as f64 - ((i * 5 + 1) % 4) as f64).powi(2))
                    .sum::<f64>()
            })
            .collect::<Vec<f64>>()
    };
    let run = |window: usize| {
        let opts = BoOptions {
            warmup: 100,
            iterations: 400,
            proposals_per_refit: 4,
            seed: 0xCAF9A,
            forest: ForestOptions { window, ..Default::default() },
            ..Default::default()
        };
        minimize(&space, objective, &[], &opts)
    };
    // Determinism gate: a non-binding window is the classic loop, bit
    // for bit, over the whole trace.
    let full = run(0);
    let noop = run(usize::MAX);
    assert_eq!(full.history.len(), noop.history.len(), "no-op window must not change the trace");
    for (a, b) in full.history.iter().zip(&noop.history) {
        assert_eq!(a.config, b.config, "no-op window changed a proposal");
        assert_eq!(a.value.to_bits(), b.value.to_bits());
    }
    let windowed = run(64);
    assert_eq!(full.history.len(), windowed.history.len(), "same evaluation budget");
    let full_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run(0));
            t.elapsed()
        })
        .min()
        .unwrap();
    let windowed_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run(64));
            t.elapsed()
        })
        .min()
        .unwrap();
    let speedup = full_elapsed.as_secs_f64() / windowed_elapsed.as_secs_f64();
    record_bench_json(
        "bo_windowed_vs_full_refit_48dim_500evals",
        format!(
            "{{\"window\": 64, \"full_ms\": {:.3}, \"windowed_ms\": {:.3}, \"speedup\": {:.3}, \
             \"full_best\": {:.6}, \"windowed_best\": {:.6}, \"noop_window_bit_identical\": true}}",
            full_elapsed.as_secs_f64() * 1e3,
            windowed_elapsed.as_secs_f64() * 1e3,
            speedup,
            full.best_value,
            windowed.best_value
        ),
    );
    // The refit-cost gate: windowed refits must not be slower (the
    // measured gap is ~2×+ — the fit is the dominant cost here).
    assert!(
        windowed_elapsed.as_secs_f64() <= full_elapsed.as_secs_f64() * 1.05,
        "windowed refits not faster: {windowed_elapsed:?} vs {full_elapsed:?}"
    );

    let mut group = c.benchmark_group(GROUP);
    group.bench_function("full_history_refit", |b| b.iter(|| black_box(run(0))));
    group.bench_function("windowed_64_refit", |b| b.iter(|| black_box(run(64))));
    group.finish();
}

/// A wide-register polish workload: 24 qubits, 96 parameters (over the
/// d = 24 exhaustive-pair threshold, so the sweep uses the local pair
/// list exactly like the 136-parameter Cr2 register) against a
/// 192-term Hamiltonian — the preparation-heavy regime where full
/// re-preparation per neighbor is pure overhead.
fn polish_workload() -> (EfficientSu2, PauliOp, Vec<usize>) {
    let ansatz = EfficientSu2::new(24, 1);
    let mut seed = 0x90115_u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let hamiltonian = PauliOp::from_terms(
        24,
        (0..192u64).map(|i| {
            let x = next() & 0xFF_FFFF;
            let z = next() & 0xFF_FFFF;
            (Complex64::from(5e-3 * ((i % 43) as f64 + 1.0)), PauliString::from_masks(24, x, z))
        }),
    );
    let start: Vec<usize> = (0..ansatz.num_parameters())
        .map(|i| ((0x9E37_79B9u64.wrapping_mul(i as u64 + 1) >> 7) & 3) as usize)
        .collect();
    (ansatz, hamiltonian, start)
}

/// The incremental-polish A/B: prefix-checkpoint + suffix-replay
/// neighbor evaluation (`polish_on`, screen off) vs the frozen
/// full-re-preparation endgame (`reference_polish`), on a 96-dim
/// register. Bit-identity of the full polish trace is asserted on a
/// serial engine AND a forced 4-worker engine before any timing; the
/// throughput gate runs at a host-fitting `min(4, cores)` worker count
/// (as in the PR 4 term-sharded gate), and a screened run
/// (`polish_screen_top = 16`) is timed and sanity-checked (pair subset,
/// final energy never above the start incumbent). Numbers land in
/// `BENCH_search.json`.
fn bench_incremental_polish(c: &mut Criterion) {
    const GROUP: &str = "polish_incremental_96dim";
    if !filter_matches(GROUP) {
        return;
    }
    let (ansatz, hamiltonian, start) = polish_workload();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let timing_workers = host_cores.min(4);
    let opts = CafqaOptions { polish_sweeps: 2, ..Default::default() };
    let frozen_objective =
        CliffordObjective::new(&ansatz, &hamiltonian).with_engine(ExecEngine::serial());
    let serial_engine = ExecEngine::serial();
    let serial_objective =
        CliffordObjective::new(&ansatz, &hamiltonian).with_engine(serial_engine.clone());
    let forced_engine = ExecEngine::new(4);
    let forced_objective =
        CliffordObjective::new(&ansatz, &hamiltonian).with_engine(forced_engine.clone());
    let hostfit_engine = ExecEngine::new(timing_workers);
    let hostfit_objective =
        CliffordObjective::new(&ansatz, &hamiltonian).with_engine(hostfit_engine.clone());

    // Bit-identity gate: the incremental endgame reproduces the frozen
    // full-re-preparation trace exactly, serial and through the forced
    // 4-worker nested dispatch, before any timing happens.
    let frozen = reference_polish(&frozen_objective, 24, &start, opts.polish_sweeps);
    for (label, engine, objective) in [
        ("serial", &serial_engine, &serial_objective),
        ("forced-4-workers", &forced_engine, &forced_objective),
    ] {
        let incremental = polish_on(engine, objective, &start, &opts, &[]);
        assert_eq!(incremental.trace.len(), frozen.trace.len(), "{label}: trace length");
        for (k, (a, b)) in incremental.trace.iter().zip(&frozen.trace).enumerate() {
            assert_eq!(a.0.to_bits(), b.0.to_bits(), "{label}: energy at {k}");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "{label}: penalized at {k}");
        }
        assert_eq!(incremental.best_config, frozen.best_config, "{label}: best_config");
        assert_eq!(
            incremental.best_value.penalized.to_bits(),
            frozen.best_value.penalized.to_bits(),
            "{label}: best value"
        );
        assert_eq!(incremental.last_accept, frozen.last_accept, "{label}: last accept");
        assert_eq!(incremental.pairs, frozen.pairs, "{label}: unscreened pair list");
    }

    // Screened run: subset pair list, never worse than the incumbent.
    let screened_opts = CafqaOptions { polish_screen_top: 16, ..opts.clone() };
    let history: Vec<(Vec<usize>, f64)> = (0..200u64)
        .map(|k| {
            let config: Vec<usize> = (0..ansatz.num_parameters())
                .map(|i| ((k.wrapping_mul(0x85EB_CA6B) >> (2 * (i % 29))) & 3) as usize)
                .collect();
            let value = frozen_objective.evaluate(&config).penalized;
            (config, value)
        })
        .collect();
    let screened = polish_on(&hostfit_engine, &hostfit_objective, &start, &screened_opts, &history);
    assert_eq!(screened.pairs.len(), 16, "screen must bind");
    assert!(
        screened.pairs.iter().all(|p| frozen.pairs.contains(p)),
        "screened pair list must be a subset of the exhaustive one"
    );
    let incumbent = frozen_objective.evaluate(&start).penalized;
    assert!(
        screened.best_value.penalized <= incumbent + 1e-12,
        "screened polish must never end above the incumbent: {} vs {incumbent}",
        screened.best_value.penalized
    );

    // Timing: frozen full re-preparation vs incremental replay, both at
    // the host-fitting configuration; plus the screened variant.
    let run_frozen = || {
        black_box(reference_polish(&frozen_objective, 24, &start, opts.polish_sweeps).trace.len())
    };
    let run_incremental = || {
        black_box(polish_on(&hostfit_engine, &hostfit_objective, &start, &opts, &[]).trace.len())
    };
    let run_screened = || {
        black_box(
            polish_on(&hostfit_engine, &hostfit_objective, &start, &screened_opts, &history)
                .trace
                .len(),
        )
    };
    black_box(run_frozen());
    black_box(run_incremental());
    black_box(run_screened());
    let time_best_of_3 = |f: &dyn Fn() -> usize| {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed()
            })
            .min()
            .unwrap()
    };
    let frozen_elapsed = time_best_of_3(&run_frozen);
    let incremental_elapsed = time_best_of_3(&run_incremental);
    let screened_elapsed = time_best_of_3(&run_screened);
    let speedup = frozen_elapsed.as_secs_f64() / incremental_elapsed.as_secs_f64();
    let screened_speedup = frozen_elapsed.as_secs_f64() / screened_elapsed.as_secs_f64();
    record_bench_json(
        "polish_incremental_vs_full_reprep_96dim",
        format!(
            "{{\"dims\": 96, \"qubits\": 24, \"terms\": 192, \"timing_workers\": {timing_workers}, \
             \"host_cores\": {host_cores}, \"polish_evals\": {}, \"full_reprep_ms\": {:.3}, \
             \"incremental_ms\": {:.3}, \"speedup\": {:.3}, \"screened_top16_ms\": {:.3}, \
             \"screened_evals\": {}, \"screened_speedup\": {:.3}, \
             \"trace_bit_identical\": true, \"screened_subset\": true}}",
            frozen.trace.len(),
            frozen_elapsed.as_secs_f64() * 1e3,
            incremental_elapsed.as_secs_f64() * 1e3,
            speedup,
            screened_elapsed.as_secs_f64() * 1e3,
            screened.trace.len(),
            screened_speedup
        ),
    );
    // The acceptance gate: incremental replay must be at least at frozen
    // full-re-preparation throughput (5 % timer tolerance).
    assert!(
        incremental_elapsed.as_secs_f64() <= frozen_elapsed.as_secs_f64() * 1.05,
        "incremental polish slower than full re-preparation ({timing_workers} workers, \
         {host_cores} cores): {incremental_elapsed:?} vs {frozen_elapsed:?}"
    );

    let mut group = c.benchmark_group(GROUP);
    group.bench_function("frozen_full_reprep", |b| b.iter(run_frozen));
    group.bench_function("incremental_replay", |b| b.iter(run_incremental));
    group.bench_function("screened_top16", |b| b.iter(run_screened));
    group.finish();
}

/// A Clifford+T objective at the frozen dense oracle's comfort point:
/// 12 qubits, 128 random Pauli terms — wide enough that the dense
/// `2^t`-branch statevector sum is real work, small enough that the
/// dense path still runs (its cap is 24 qubits).
fn kt_class_objective() -> (EfficientSu2, PauliOp) {
    let ansatz = EfficientSu2::new(12, 1);
    let mut seed = 0x2B7_u64;
    let op = PauliOp::from_terms(
        12,
        (0..128).map(|i| {
            (Complex64::from(0.01 * ((i % 29) as f64 + 1.0)), random_pauli(12, &mut seed))
        }),
    );
    (ansatz, op)
}

/// 8-ary configurations with exactly three odd (T-like) entries each —
/// the `2^3 = 8`-branch evaluation shape of a `k_max = 3` search.
fn kt_class_configs(num_parameters: usize) -> Vec<Vec<usize>> {
    (0..8usize)
        .map(|k| {
            let mut config: Vec<usize> = (0..num_parameters)
                .map(|i| {
                    let code = (k as u64 + 1).wrapping_mul(0x9E37_79B9) >> (2 * (i % 23));
                    2 * (code & 3) as usize
                })
                .collect();
            for (slot, j) in [k, 16 + k, 32 + k].into_iter().enumerate() {
                config[j % num_parameters] = 2 * ((k + slot) % 4) + 1;
            }
            config
        })
        .collect()
}

/// The branch-evaluator A/B: the tableau-backed [`BranchEnsemble`]
/// (one tableau + `t` frame Paulis, cross terms via phase-sensitive
/// stabilizer inner products) vs the frozen dense [`CliffordTState`]
/// branch sum, on per-candidate Clifford+T evaluations at 12 qubits and
/// `t = 3`. Agreement to 1e-10 is asserted on every candidate before
/// any timing; numbers land in `BENCH_search.json`.
fn bench_kt_tableau_vs_dense(c: &mut Criterion) {
    const GROUP: &str = "kt_branch_evaluator_12q_t3";
    if !filter_matches(GROUP) {
        return;
    }
    let (ansatz, hamiltonian) = kt_class_objective();
    let configs = kt_class_configs(ansatz.num_parameters());
    // Exact agreement of the two backends on every candidate — the
    // ensemble must reproduce the dense branch sum, cross terms and
    // branch phases included.
    for config in &configs {
        assert_eq!(cafqa_core::t_count_of(config), 3);
        let circuit = ansatz.bind_eighth(config);
        let dense = CliffordTState::from_circuit(&circuit).unwrap();
        let ensemble = BranchEnsemble::from_circuit(&circuit).unwrap();
        let d = dense.expectation(&hamiltonian);
        let e = ensemble.expectation(&hamiltonian);
        assert!((d - e).abs() < 1e-10, "dense {d} vs ensemble {e}");
    }
    let run_dense = || {
        configs
            .iter()
            .map(|config| {
                let circuit = ansatz.bind_eighth(config);
                CliffordTState::from_circuit(&circuit).unwrap().expectation(&hamiltonian)
            })
            .sum::<f64>()
    };
    let run_ensemble = || {
        configs
            .iter()
            .map(|config| {
                let circuit = ansatz.bind_eighth(config);
                BranchEnsemble::from_circuit(&circuit).unwrap().expectation(&hamiltonian)
            })
            .sum::<f64>()
    };
    black_box(run_dense());
    black_box(run_ensemble());
    let dense_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_dense());
            t.elapsed()
        })
        .min()
        .unwrap();
    let ensemble_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_ensemble());
            t.elapsed()
        })
        .min()
        .unwrap();
    let speedup = dense_elapsed.as_secs_f64() / ensemble_elapsed.as_secs_f64();
    record_bench_json(
        "kt_tableau_vs_dense_12q_t3_128terms",
        format!(
            "{{\"qubits\": 12, \"t\": 3, \"terms\": 128, \"candidates\": {}, \
             \"dense_ms\": {:.3}, \"ensemble_ms\": {:.3}, \"speedup\": {:.3}, \
             \"agreement\": \"1e-10\"}}",
            configs.len(),
            dense_elapsed.as_secs_f64() * 1e3,
            ensemble_elapsed.as_secs_f64() * 1e3,
            speedup
        ),
    );
    // The acceptance gate: the ensemble evaluator must be at least at
    // dense-branch throughput where both can run (5 % timer tolerance) —
    // beyond 24 qubits only the ensemble runs at all.
    assert!(
        ensemble_elapsed.as_secs_f64() <= dense_elapsed.as_secs_f64() * 1.05,
        "branch ensemble slower than dense branch sum: \
         {ensemble_elapsed:?} vs {dense_elapsed:?}"
    );

    let mut group = c.benchmark_group(GROUP);
    group.bench_function("old_dense_branch_sum", |b| b.iter(|| black_box(run_dense())));
    group.bench_function("new_tableau_ensemble", |b| b.iter(|| black_box(run_ensemble())));
    group.finish();
}

/// The search-tier A/B: the ported CAFQA+kT search (feasible-by-
/// construction genome space, engine-batched tableau-ensemble
/// evaluation, 8-ary polish endgame) vs the frozen classic loop (8-ary
/// uniform space with `1e6` rejection constants, serial dense
/// evaluation, no polish) at the same BO budget and seed. Records the
/// feasible/rejected split of both sides and asserts the new tier
/// wastes no evaluations and ends at least as low as the frozen search.
fn bench_kt_engine_vs_reference(c: &mut Criterion) {
    const GROUP: &str = "kt_search_engine_vs_reference_12q";
    if !filter_matches(GROUP) {
        return;
    }
    const K_MAX: usize = 2;
    let (ansatz, hamiltonian) = kt_class_objective();
    let seed_config: Vec<usize> = (0..ansatz.num_parameters()).map(|i| (i * 3 + 2) % 4).collect();
    let seeds = vec![widen_clifford_config(&seed_config)];
    let opts = CafqaOptions { warmup: 30, iterations: 40, polish_sweeps: 1, ..Default::default() };
    let engine = ExecEngine::new(4);
    let run_reference = || reference_kt(&ansatz, &hamiltonian, &[], K_MAX, &seeds, &opts);
    let run_engine = || {
        run_cafqa_kt_on(&engine, &ansatz, &hamiltonian, vec![], K_MAX, &seeds, &opts)
            .expect("budget within branch-engine limits")
    };
    let reference = run_reference();
    let engine_result = run_engine();
    // The structural claim of the port: the genome space never proposes
    // an over-budget candidate, while the frozen uniform space burns
    // most of its budget on `1e6`-rejected samples at this `d`/`k_max`.
    assert_eq!(engine_result.rejected_evaluations, 0, "genome space must be feasible");
    assert!(
        reference.rejected_evaluations > 0,
        "frozen loop should reject over-budget samples at d = 48, k_max = 2"
    );
    assert!(engine_result.t_count <= K_MAX);
    // Same seed, strictly feasible search + polish endgame: the ported
    // tier must end at least as low as the frozen rejection-sampling
    // loop (both runs are deterministic at this seed).
    assert!(
        engine_result.energy <= reference.energy + 1e-9,
        "ported kT search worse than frozen loop: {} vs {}",
        engine_result.energy,
        reference.energy
    );
    let reference_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_reference());
            t.elapsed()
        })
        .min()
        .unwrap();
    let engine_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_engine());
            t.elapsed()
        })
        .min()
        .unwrap();
    let speedup = reference_elapsed.as_secs_f64() / engine_elapsed.as_secs_f64();
    record_bench_json(
        "kt_engine_vs_reference_12q_48dim_kmax2",
        format!(
            "{{\"qubits\": 12, \"dims\": 48, \"k_max\": {K_MAX}, \"terms\": 128, \
             \"reference_ms\": {:.3}, \"engine_ms\": {:.3}, \"speedup\": {:.3}, \
             \"reference_energy\": {:.6}, \"engine_energy\": {:.6}, \
             \"reference_feasible\": {}, \"reference_rejected\": {}, \
             \"engine_feasible\": {}, \"engine_rejected\": 0, \
             \"engine_polish_evals\": {}}}",
            reference_elapsed.as_secs_f64() * 1e3,
            engine_elapsed.as_secs_f64() * 1e3,
            speedup,
            reference.energy,
            engine_result.energy,
            reference.evaluations - reference.rejected_evaluations,
            reference.rejected_evaluations,
            engine_result.feasible_evaluations,
            engine_result.polish_evaluations
        ),
    );

    let mut group = c.benchmark_group(GROUP);
    group.bench_function("old_dense_rejection_loop", |b| b.iter(|| black_box(run_reference())));
    group.bench_function("new_branch_engine_tier", |b| b.iter(|| black_box(run_engine())));
    group.finish();
}

/// A Clifford+T objective with *tiered* coefficient weights (heavy,
/// mid, light, feather), the workload shape screening is built for: the
/// per-term tolerance `tol / |w|` prunes nearly every cross-term class
/// of the feather tiers while leaving the heavy tier exact.
fn kt_screened_objective() -> (EfficientSu2, PauliOp) {
    let ansatz = EfficientSu2::new(12, 1);
    let mut seed = 0x5C4EE_u64;
    let tier = [0.15, 0.01, 1e-3, 1e-4];
    let op = PauliOp::from_terms(
        12,
        (0..192).map(|i| {
            let c = tier[i % 4] * ((i % 7) as f64 + 1.0);
            (Complex64::from(c), random_pauli(12, &mut seed))
        }),
    );
    (ansatz, op)
}

/// 8-ary configurations with exactly `t` odd (branching) entries each —
/// the `2^t`-branch evaluation shape of a `k_max = t` search endgame.
fn kt_screened_configs(num_parameters: usize, t: usize, count: usize) -> Vec<Vec<usize>> {
    (0..count)
        .map(|s| {
            let mut config: Vec<usize> =
                (0..num_parameters).map(|i| 2 * ((s.wrapping_mul(31) + i * 7) % 4)).collect();
            for j in 0..t {
                let slot = (s.wrapping_mul(13) + j * 5) % num_parameters;
                config[(slot + j) % num_parameters] |= 1;
            }
            config
        })
        .collect()
}

/// The screened-pair-sum A/B: `screen_tolerance = 2e-3` vs the exact
/// `screen_tolerance = 0` evaluator on the same candidates, at 12
/// qubits and `t = 4..=6`. Before any timing, every screened candidate
/// is asserted within the configured tolerance of its exact energy, the
/// skipped-class counters are asserted nonzero and their fraction
/// *growing* with `t` (the quadratic-Clifford bounds `2^{-ν/2}` shrink
/// as classes get heavier, so deeper branch spaces screen harder).
/// The throughput gate holds at `t = 4` — the screening advantage is
/// algorithmic (fewer class sums), not parallelism, so it applies on
/// any host — and the growing advantage with `t` is recorded in
/// `BENCH_search.json`.
fn bench_kt_screened_vs_exact(c: &mut Criterion) {
    const GROUP: &str = "kt_screened_vs_exact_12q";
    if !filter_matches(GROUP) {
        return;
    }
    const EPS: f64 = 2e-3;
    const CANDIDATES: usize = 12;
    let (ansatz, hamiltonian) = kt_screened_objective();
    let d = ansatz.num_parameters();
    let engine = ExecEngine::new(4);
    let mut exact_ms = Vec::new();
    let mut screened_ms = Vec::new();
    let mut speedups = Vec::new();
    let mut skip_fractions: Vec<f64> = Vec::new();
    let mut drifts = Vec::new();
    let mut t4_gate = None;
    for t in 4..=6usize {
        let configs = kt_screened_configs(d, t, CANDIDATES);
        for config in &configs {
            assert_eq!(cafqa_core::t_count_of(config), t);
        }
        let mut exact =
            kt_session(&engine, &ansatz, &hamiltonian, &[], 0.0).expect("template compiles");
        let mut screened =
            kt_session(&engine, &ansatz, &hamiltonian, &[], EPS).expect("template compiles");
        let ev = exact.evaluate_batch(&configs);
        let sv = screened.evaluate_batch(&configs);
        assert_eq!(exact.skipped_classes(), 0, "tol = 0 must never skip");
        let skipped = screened.skipped_classes();
        assert!(skipped > 0, "tolerance {EPS} never fired at t = {t}");
        // Every candidate within the configured tolerance of exact.
        let mut max_drift = 0.0f64;
        for (e, s) in ev.iter().zip(&sv) {
            let drift = (e.energy - s.energy).abs();
            assert!(
                drift <= EPS,
                "t = {t}: screened {} vs exact {} beyond {EPS}",
                s.energy,
                e.energy
            );
            max_drift = max_drift.max(drift);
        }
        // Skipped fraction of all (candidate, term, class) triples —
        // must grow with t as class weights ν climb.
        let total = (CANDIDATES * hamiltonian.num_terms() * (1 << t)) as f64;
        let fraction = skipped as f64 / total;
        if let Some(prev) = skip_fractions.last() {
            assert!(
                fraction > *prev,
                "skip fraction must grow with t: {fraction:.4} at t = {t} vs {prev:.4}"
            );
        }
        let time_best3 = |session: &mut KtPolishSession| {
            black_box(session.evaluate_batch(&configs)); // warm
            (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    black_box(session.evaluate_batch(&configs));
                    t0.elapsed()
                })
                .min()
                .unwrap()
        };
        let exact_elapsed = time_best3(&mut exact);
        let screened_elapsed = time_best3(&mut screened);
        if t == 4 {
            t4_gate = Some((exact_elapsed, screened_elapsed));
        }
        exact_ms.push(format!("{:.3}", exact_elapsed.as_secs_f64() * 1e3));
        screened_ms.push(format!("{:.3}", screened_elapsed.as_secs_f64() * 1e3));
        speedups
            .push(format!("{:.3}", exact_elapsed.as_secs_f64() / screened_elapsed.as_secs_f64()));
        skip_fractions.push(fraction);
        drifts.push(format!("{max_drift:.3e}"));
    }
    record_bench_json(
        "kt_screened_vs_exact_12q_t4to6_192terms",
        format!(
            "{{\"qubits\": 12, \"terms\": 192, \"candidates\": {CANDIDATES}, \
             \"tolerance\": {EPS}, \"t\": [4, 5, 6], \"exact_ms\": [{}], \
             \"screened_ms\": [{}], \"speedup\": [{}], \"skip_fraction\": [{}], \
             \"max_drift\": [{}], \"within_tolerance\": true}}",
            exact_ms.join(", "),
            screened_ms.join(", "),
            speedups.join(", "),
            skip_fractions.iter().map(|f| format!("{f:.4}")).collect::<Vec<_>>().join(", "),
            drifts.join(", ")
        ),
    );
    // The acceptance gate: screened evaluation must be at least at exact
    // throughput already at t = 4 (5 % timer tolerance) — the advantage
    // then grows with t, which the recorded speedups show.
    let (exact_t4, screened_t4) = t4_gate.unwrap();
    assert!(
        screened_t4.as_secs_f64() <= exact_t4.as_secs_f64() * 1.05,
        "screened evaluation slower than exact at t = 4: {screened_t4:?} vs {exact_t4:?}"
    );

    let configs = kt_screened_configs(d, 6, CANDIDATES);
    let mut exact =
        kt_session(&engine, &ansatz, &hamiltonian, &[], 0.0).expect("template compiles");
    let mut screened =
        kt_session(&engine, &ansatz, &hamiltonian, &[], EPS).expect("template compiles");
    let mut group = c.benchmark_group(GROUP);
    group.bench_function("exact_t6", |b| b.iter(|| black_box(exact.evaluate_batch(&configs))));
    group
        .bench_function("screened_t6", |b| b.iter(|| black_box(screened.evaluate_batch(&configs))));
    group.finish();
}

/// The serving-shape instance pool for the Ising throughput A/B:
/// 16–24-vertex MaxCut across all four generator families (sparse and
/// dense Erdős–Rényi, structured rings, complete, weighted), each an
/// `EfficientSu2(n, 1)` instance exactly as a service would submit it.
fn ising_instance_pool() -> Vec<IsingInstance> {
    let graphs = [
        Graph::random(16, 0.4, 101),
        Graph::random(20, 0.3, 103),
        Graph::random(24, 0.25, 107),
        Graph::ring(18),
        Graph::ring(24),
        Graph::complete(16),
        Graph::random_weighted(20, 0.35, 109),
        Graph::random_weighted(24, 0.3, 113),
    ];
    graphs
        .into_iter()
        .map(|g| IsingInstance::new(EfficientSu2::new(g.n, 1), maxcut_hamiltonian(&g)))
        .collect()
}

fn assert_cafqa_results_bitwise(a: &CafqaResult, b: &CafqaResult, what: &str) {
    assert_eq!(a.best_config, b.best_config, "{what}: best_config");
    assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "{what}: energy");
    assert_eq!(a.penalized.to_bits(), b.penalized.to_bits(), "{what}: penalized");
    assert_eq!(a.evaluations, b.evaluations, "{what}: evaluations");
    assert_eq!(a.iterations_to_best, b.iterations_to_best, "{what}: iterations_to_best");
    assert_eq!(a.trace.len(), b.trace.len(), "{what}: trace length");
    for (i, (x, y)) in a.trace.iter().zip(&b.trace).enumerate() {
        assert_eq!(x.energy.to_bits(), y.energy.to_bits(), "{what}: trace[{i}].energy");
        assert_eq!(x.penalized.to_bits(), y.penalized.to_bits(), "{what}: trace[{i}].penalized");
    }
}

/// The Ising fast path vs the full BO pipeline on a 16–24-vertex MaxCut
/// batch — the per-instance *throughput* asymmetry a high-traffic
/// service would serve, both arms through the same
/// [`solve_ising_batch_on`] serving layer on the same engine, differing
/// only in [`CafqaOptions::ising_fast_path`] (`Auto` vs `Off`).
///
/// Asserted before any timing: the fast path routes every instance in
/// one evaluation and its energy is ≤ the full-BO energy per instance;
/// the routed batch is bit-identical at worker counts {1, 2, 8}; and a
/// non-Ising instance under `Auto` is bit-identical to the unrouted
/// path. The timing gate requires ≥ 100× instance throughput; both
/// arms' instances/second land in `BENCH_search.json`.
fn bench_ising_fast_path(c: &mut Criterion) {
    const GROUP: &str = "ising_fast_path_vs_bo";
    if !filter_matches(GROUP) {
        return;
    }
    let engine = ExecEngine::from_env();
    let instances = ising_instance_pool();
    // A modest-but-honest full-pipeline budget: warm-up + BO + one
    // polish round (coordinate and pair sweeps) per instance.
    let bo_opts = CafqaOptions {
        warmup: 60,
        iterations: 120,
        polish_sweeps: 1,
        ising_fast_path: IsingFastPath::Off,
        ..Default::default()
    };
    let fast_opts = CafqaOptions { ising_fast_path: IsingFastPath::Auto, ..bo_opts.clone() };

    // Warm both arms and keep the results (deterministic given the seed).
    let fast = solve_ising_batch_on(&engine, &instances, &fast_opts);
    let bo = solve_ising_batch_on(&engine, &instances, &bo_opts);
    for (i, (f, b)) in fast.iter().zip(&bo).enumerate() {
        assert_eq!(f.evaluations, 1, "instance {i} must route in one evaluation");
        assert!(
            f.energy <= b.energy + 1e-9,
            "instance {i}: fast path {} worse than BO {}",
            f.energy,
            b.energy
        );
    }
    // Worker invariance of the routed batch: a pure throughput knob.
    let reference = solve_ising_batch_on(&ExecEngine::new(1), &instances, &fast_opts);
    for workers in [2usize, 8] {
        let routed = solve_ising_batch_on(&ExecEngine::new(workers), &instances, &fast_opts);
        for (i, (r, s)) in reference.iter().zip(&routed).enumerate() {
            assert_cafqa_results_bitwise(r, s, &format!("instance {i} at {workers} workers"));
        }
    }
    // Non-Ising inputs are untouched by the hook: Auto == Off bitwise.
    {
        let h: PauliOp = "0.5*XX + 0.25*ZZ - 0.1*YI + 0.7*IZ".parse().expect("mixed-axis op");
        let ansatz = EfficientSu2::new(2, 1);
        let tiny = CafqaOptions { warmup: 10, iterations: 15, polish_sweeps: 1, ..bo_opts.clone() };
        let auto = CafqaOptions { ising_fast_path: IsingFastPath::Auto, ..tiny.clone() };
        let routed = run_cafqa_on(&engine, &ansatz, &h, vec![], &[], &auto);
        let unrouted = run_cafqa_on(&engine, &ansatz, &h, vec![], &[], &tiny);
        assert_cafqa_results_bitwise(&routed, &unrouted, "non-Ising fallback");
    }

    // Raw throughput, best of 3 batch passes per arm.
    let fast_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(solve_ising_batch_on(&engine, &instances, &fast_opts));
            t.elapsed()
        })
        .min()
        .unwrap();
    let bo_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(solve_ising_batch_on(&engine, &instances, &bo_opts));
            t.elapsed()
        })
        .min()
        .unwrap();
    let count = instances.len() as f64;
    let fast_per_s = count / fast_elapsed.as_secs_f64();
    let bo_per_s = count / bo_elapsed.as_secs_f64();
    let speedup = bo_elapsed.as_secs_f64() / fast_elapsed.as_secs_f64();
    record_bench_json(
        "ising_fast_path_vs_bo_16to24v_8instances",
        format!(
            "{{\"instances\": {}, \"vertices\": \"16-24\", \"workers\": {}, \
             \"fast_ms\": {:.3}, \"bo_ms\": {:.3}, \"fast_instances_per_s\": {:.1}, \
             \"bo_instances_per_s\": {:.3}, \"speedup\": {:.1}, \
             \"fast_never_worse\": true, \"batch_bit_identical_workers_1_2_8\": true, \
             \"non_ising_bit_identical\": true}}",
            instances.len(),
            engine.workers(),
            fast_elapsed.as_secs_f64() * 1e3,
            bo_elapsed.as_secs_f64() * 1e3,
            fast_per_s,
            bo_per_s,
            speedup,
        ),
    );
    // The headline gate: the routed batch serves ≥ 100× the instance
    // throughput of the full pipeline (measured gaps are far larger).
    assert!(
        speedup >= 100.0,
        "fast path only {speedup:.1}× the BO route: {fast_elapsed:?} vs {bo_elapsed:?}"
    );

    let single_bo = vec![instances[0].clone()];
    let mut group = c.benchmark_group(GROUP);
    group.bench_function("fast_path_batch8", |b| {
        b.iter(|| black_box(solve_ising_batch_on(&engine, &instances, &fast_opts)))
    });
    group.bench_function("full_bo_single_16v", |b| {
        b.iter(|| black_box(solve_ising_batch_on(&engine, &single_bo, &bo_opts)))
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = search;
    config = config();
    targets = bench_expectation_kernel, bench_candidate_evaluation,
              bench_h2_candidate_evaluation, bench_h2_oracle,
              bench_h2o_pooled_vs_spawn, bench_bo_batched_vs_single_proposal,
              bench_term_sharded_vs_chunked_serial, bench_lane_blocked_kernel,
              bench_backward_seek_polish, bench_wide_chunk_tier,
              bench_windowed_vs_full_refit,
              bench_incremental_polish, bench_kt_tableau_vs_dense,
              bench_kt_engine_vs_reference, bench_kt_screened_vs_exact,
              bench_ising_fast_path
}
criterion_main!(search);
