//! A/B benchmarks for the batched, allocation-free search stack: the
//! bitwise expectation kernel vs the frozen allocation-based reference,
//! per-candidate evaluation through the compiled template vs the full
//! bind-and-lower path, the H2 exhaustive oracle (4^8 configurations)
//! serial vs sharded, the persistent worker pool vs the frozen
//! spawn-per-batch path on an H2O-class objective, batched vs
//! single-proposal BO acquisition, the intra-candidate term-sharded
//! expectation vs the chunked serial sum on a Cr2-class objective,
//! windowed vs full-history surrogate refits, the Clifford+T branch
//! evaluator (tableau ensemble vs dense branch sum), and the full
//! CAFQA+kT search (branch-engine stack vs the frozen dense/serial
//! rejection-sampling loop).
//!
//! The engine and BO A/Bs additionally time themselves with raw
//! `Instant` measurements (independent of the harness sampling), assert
//! the pooled/batched side is not slower, and record the numbers in
//! `BENCH_search.json` at the workspace root.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use cafqa_bayesopt::{minimize, BoOptions, ForestOptions, SearchSpace};
use cafqa_bench::{
    reference_evaluate_batch_spawn, reference_expectation_pauli, reference_kt, reference_polish,
    ReferenceGenerators,
};
use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa_circuit::{Ansatz, EfficientSu2};
use cafqa_clifford::{BranchEnsemble, CliffordTState, Tableau};
use cafqa_core::exhaustive::{exhaustive_search_serial, exhaustive_search_with_workers};
use cafqa_core::{
    polish_on, run_cafqa_kt_on, widen_clifford_config, CafqaOptions, CliffordObjective, ExecEngine,
};
use cafqa_linalg::Complex64;
use cafqa_pauli::{PauliOp, PauliString};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Mirrors the harness's substring filter (`cargo bench -- <filter>`):
/// the raw-timing A/B passes below are heavyweight and carry their own
/// assertions, so a filtered run (e.g. the CI `-- h2` kernel smoke) must
/// skip the ones it did not ask for — criterion's filter only gates
/// `bench_function` sampling, not the target function bodies.
fn filter_matches(name: &str) -> bool {
    match std::env::args().skip(1).find(|a| !a.starts_with('-')) {
        Some(filter) => name.contains(&filter),
        None => true,
    }
}

/// Accumulates `name → json` entries and rewrites `BENCH_search.json`
/// (workspace root) on every record. Entries already on disk from
/// *other* (e.g. filtered) runs are preserved — a `-- term_sharded`
/// smoke must not clobber the pooled or windowed numbers — with
/// in-process entries overriding same-named ones.
fn record_bench_json(name: &str, json: String) {
    static RESULTS: OnceLock<Mutex<Vec<(String, String)>>> = OnceLock::new();
    let results = RESULTS.get_or_init(|| Mutex::new(Vec::new()));
    let mut results = results.lock().expect("bench json lock");
    results.retain(|(n, _)| n != name);
    results.push((name.to_string(), json));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_search.json");
    // Read-modify-write: the file is our own one-entry-per-line format,
    // so each body line splits into a quoted key and a `{...}` value at
    // the first `": "` (which by construction ends the key).
    let mut merged: Vec<(String, String)> = Vec::new();
    if let Ok(existing) = std::fs::read_to_string(path) {
        for line in existing.lines() {
            let line = line.trim().trim_end_matches(',');
            if let Some((key, value)) = line.split_once("\": ") {
                let key = key.trim_start_matches('"');
                if !key.is_empty() && value.starts_with('{') && value.ends_with('}') {
                    merged.push((key.to_string(), value.to_string()));
                }
            }
        }
    }
    for (n, j) in results.iter() {
        merged.retain(|(k, _)| k != n);
        merged.push((n.clone(), j.clone()));
    }
    let body: Vec<String> = merged.iter().map(|(n, j)| format!("  \"{n}\": {j}")).collect();
    let _ = std::fs::write(path, format!("{{\n{}\n}}\n", body.join(",\n")));
}

fn random_pauli(n: usize, seed: &mut u64) -> PauliString {
    let mut next = || {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    };
    let mask = if n == 64 { u64::MAX } else { (1 << n) - 1 };
    PauliString::from_masks(n, next() & mask, next() & mask)
}

/// The per-term expectation kernel, old (PauliString::mul accumulation)
/// vs new (bitwise phase accumulation) on a 14-qubit ansatz state.
///
/// Uniformly random Paulis almost surely anticommute with some stabilizer
/// and take the early-exit zero path, which the rewrite left untouched —
/// so the interesting workload is Paulis drawn from the stabilizer group
/// itself (random generator products, expectation ±1), which drive the
/// full destabilizer-decomposition loop on every term.
fn bench_expectation_kernel(c: &mut Criterion) {
    let ansatz = EfficientSu2::new(14, 1);
    let config: Vec<usize> = (0..ansatz.num_parameters()).map(|i| (i * 5 + 1) % 4).collect();
    let tableau = Tableau::from_circuit(&ansatz.bind_clifford(&config)).unwrap();
    let generators = ReferenceGenerators::from_tableau(&tableau);
    let mut seed = 19;
    let paulis: Vec<PauliString> = (0..256)
        .map(|_| {
            // A random product of stabilizer generators: nonzero expectation.
            let mut pick = random_pauli(14, &mut seed).x_mask() | 1;
            let mut x = 0u64;
            let mut z = 0u64;
            for (_, s) in &generators.stabilizers {
                if pick & 1 != 0 {
                    x ^= s.x_mask();
                    z ^= s.z_mask();
                }
                pick >>= 1;
            }
            PauliString::from_masks(14, x, z)
        })
        .collect();
    assert!(paulis.iter().all(|p| tableau.expectation_pauli(p) != 0));
    let mut group = c.benchmark_group("expectation_kernel_256x14q_in_group");
    group.bench_function("old_allocating", |b| {
        b.iter(|| {
            let s: i32 =
                paulis.iter().map(|p| i32::from(reference_expectation_pauli(&generators, p))).sum();
            black_box(s)
        })
    });
    group.bench_function("new_bitwise", |b| {
        b.iter(|| {
            let s: i32 = paulis.iter().map(|p| i32::from(tableau.expectation_pauli(p))).sum();
            black_box(s)
        })
    });
    group.finish();
}

/// One full candidate evaluation, old style (bind + lower + fresh tableau
/// + allocating expectation) vs the compiled-template scratch path.
fn bench_candidate_evaluation(c: &mut Criterion) {
    let ansatz = EfficientSu2::new(12, 1);
    let mut seed = 77;
    let op = PauliOp::from_terms(
        12,
        (0..128).map(|_| (cafqa_linalg::Complex64::from(0.01), random_pauli(12, &mut seed))),
    );
    let objective = CliffordObjective::new(&ansatz, &op);
    assert!(objective.is_compiled());
    let config: Vec<usize> = (0..ansatz.num_parameters()).map(|i| (i * 3 + 2) % 4).collect();
    let mut group = c.benchmark_group("candidate_evaluation_12q_128terms");
    group.bench_function("old_bind_lower_allocate", |b| {
        b.iter(|| {
            let circuit = ansatz.bind_clifford(&config);
            let tableau = Tableau::from_circuit(&circuit).unwrap();
            black_box(cafqa_bench::reference_expectation(&tableau, &op))
        })
    });
    group.bench_function("new_compiled_scratch", |b| {
        let mut scratch = objective.scratch();
        b.iter(|| black_box(objective.evaluate_with(&config, &mut scratch).energy))
    });
    group.finish();
}

/// Per-evaluation kernel at the paper's headline operating point: one
/// candidate of the H2 ansatz against the tapered H2 Hamiltonian.
fn bench_h2_candidate_evaluation(c: &mut Criterion) {
    let pipe = ChemPipeline::build(MoleculeKind::H2, 2.5, &ScfKind::Rhf).unwrap();
    let problem = pipe.problem(1, 1, true).unwrap();
    let ansatz = EfficientSu2::new(2, 1);
    let hamiltonian = problem.hamiltonian.clone();
    let objective = CliffordObjective::new(&ansatz, &hamiltonian);
    let config = vec![1usize, 2, 3, 0, 1, 2, 3, 0];
    let mut group = c.benchmark_group("candidate_evaluation_h2");
    group.bench_function("old_bind_lower_allocate", |b| {
        b.iter(|| {
            let circuit = ansatz.bind_clifford(&config);
            let tableau = Tableau::from_circuit(&circuit).unwrap();
            black_box(cafqa_bench::reference_expectation(&tableau, &hamiltonian))
        })
    });
    group.bench_function("new_compiled_scratch", |b| {
        let mut scratch = objective.scratch();
        b.iter(|| black_box(objective.evaluate_with(&config, &mut scratch).energy))
    });
    group.finish();
}

/// The H2 exhaustive oracle (4^8 = 65 536 configurations): old-style
/// per-candidate evaluation vs the new serial kernel vs the sharded
/// enumeration. All three must report identical energies.
fn bench_h2_oracle(c: &mut Criterion) {
    let pipe = ChemPipeline::build(MoleculeKind::H2, 2.5, &ScfKind::Rhf).unwrap();
    let problem = pipe.problem(1, 1, true).unwrap();
    let ansatz = EfficientSu2::new(2, 1);
    let hamiltonian = problem.hamiltonian.clone();
    let mut group = c.benchmark_group("h2_exhaustive_oracle_4pow8");
    let reference = exhaustive_search_serial(&ansatz, &hamiltonian, vec![]).unwrap();
    group.bench_function("old_per_candidate", |b| {
        b.iter(|| {
            let mut best = f64::INFINITY;
            let mut config = vec![0usize; 8];
            for code in 0..65_536u64 {
                let mut bits = code;
                for slot in config.iter_mut() {
                    *slot = (bits & 3) as usize;
                    bits >>= 2;
                }
                let circuit = ansatz.bind_clifford(&config);
                let tableau = Tableau::from_circuit(&circuit).unwrap();
                let energy = cafqa_bench::reference_expectation(&tableau, &hamiltonian);
                if energy < best {
                    best = energy;
                }
            }
            assert_eq!(best, reference.energy);
            black_box(best)
        })
    });
    group.bench_function("new_serial", |b| {
        b.iter(|| {
            let result = exhaustive_search_serial(&ansatz, &hamiltonian, vec![]).unwrap();
            assert_eq!(result.energy, reference.energy);
            black_box(result.penalized)
        })
    });
    group.bench_function("new_sharded_8", |b| {
        b.iter(|| {
            let result = exhaustive_search_with_workers(&ansatz, &hamiltonian, vec![], 8).unwrap();
            assert_eq!(result.energy, reference.energy);
            black_box(result.penalized)
        })
    });
    group.finish();
}

/// An H2O-class objective: 14-qubit `EfficientSu2` (56 parameters)
/// against a dense synthetic Hamiltonian of the same order as the
/// paper's 12–14-qubit molecular operators.
fn h2o_class_objective() -> (EfficientSu2, PauliOp) {
    let ansatz = EfficientSu2::new(14, 1);
    let mut seed = 0xB0B5_u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let hamiltonian = PauliOp::from_terms(
        14,
        (0..640).map(|i| {
            let x = next() & 0x3FFF;
            let z = next() & 0x3FFF;
            (Complex64::from(0.01 * ((i % 37) as f64 + 1.0)), PauliString::from_masks(14, x, z))
        }),
    );
    (ansatz, hamiltonian)
}

/// Search-shaped batches: the BO acquisition proposes a handful of
/// candidates per cycle and the polish sweeps try 3–16 alternatives per
/// move, so the production workload is *many small batches* — exactly
/// where per-batch thread spawns hurt most.
fn search_shaped_batches(num_parameters: usize) -> Vec<Vec<Vec<usize>>> {
    (0..200u64)
        .map(|round| {
            (0..8u64)
                .map(|k| {
                    let code = round.wrapping_mul(0x9E37_79B9).wrapping_add(k * 0x85EB_CA6B);
                    (0..num_parameters).map(|i| ((code >> (2 * (i % 29))) & 3) as usize).collect()
                })
                .collect()
        })
        .collect()
}

/// The tentpole A/B: persistent pool vs frozen spawn-per-batch on an
/// H2O-class objective, 200 batches of 8 candidates (the acquisition /
/// polish shape). Asserts pooled energies equal the spawn path bit for
/// bit AND that the pool is at least at pre-refactor throughput, then
/// records the numbers in `BENCH_search.json`.
fn bench_h2o_pooled_vs_spawn(c: &mut Criterion) {
    // Group name deliberately avoids the substring "h2" so the H2
    // kernel smoke filter does not drag this heavyweight A/B along.
    const GROUP: &str = "water_class_pooled_vs_spawn";
    if !filter_matches(GROUP) {
        return;
    }
    const WORKERS: usize = 4;
    let (ansatz, hamiltonian) = h2o_class_objective();
    let engine = ExecEngine::new(WORKERS);
    let objective = CliffordObjective::new(&ansatz, &hamiltonian).with_engine(engine);
    assert!(objective.is_compiled());
    let batches = search_shaped_batches(ansatz.num_parameters());

    // Raw A/B timing (one pass each, interleaved warmup already done by
    // the harness below): the assertion and the recorded numbers.
    let run_pooled = || {
        let mut acc = 0.0f64;
        for batch in &batches {
            acc += objective.evaluate_batch(batch).iter().map(|v| v.energy).sum::<f64>();
        }
        acc
    };
    let run_spawn = || {
        let mut acc = 0.0f64;
        for batch in &batches {
            acc += reference_evaluate_batch_spawn(&objective, batch, WORKERS)
                .iter()
                .map(|v| v.energy)
                .sum::<f64>();
        }
        acc
    };
    // Bitwise equality of every energy on one batch set.
    for batch in batches.iter().take(16) {
        let pooled = objective.evaluate_batch(batch);
        let spawned = reference_evaluate_batch_spawn(&objective, batch, WORKERS);
        for (p, s) in pooled.iter().zip(&spawned) {
            assert_eq!(p.energy.to_bits(), s.energy.to_bits(), "pool/spawn energy mismatch");
            assert_eq!(p.penalized.to_bits(), s.penalized.to_bits());
        }
    }
    // Warm both paths, then time: best of 3 passes each to shave
    // scheduler noise on busy hosts.
    black_box(run_pooled());
    black_box(run_spawn());
    let pooled_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_pooled());
            t.elapsed()
        })
        .min()
        .unwrap();
    let spawn_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_spawn());
            t.elapsed()
        })
        .min()
        .unwrap();
    let speedup = spawn_elapsed.as_secs_f64() / pooled_elapsed.as_secs_f64();
    record_bench_json(
        "h2o_class_pooled_vs_spawn",
        format!(
            "{{\"workers\": {WORKERS}, \"batches\": {}, \"batch_size\": 8, \
             \"spawn_ms\": {:.3}, \"pooled_ms\": {:.3}, \"speedup\": {:.3}, \
             \"energies_bit_identical\": true}}",
            batches.len(),
            spawn_elapsed.as_secs_f64() * 1e3,
            pooled_elapsed.as_secs_f64() * 1e3,
            speedup
        ),
    );
    // The acceptance gate: the persistent pool must be at least at
    // pre-refactor throughput (5 % tolerance for timer/scheduler noise).
    assert!(
        pooled_elapsed.as_secs_f64() <= spawn_elapsed.as_secs_f64() * 1.05,
        "pooled engine slower than spawn-per-batch: {pooled_elapsed:?} vs {spawn_elapsed:?}"
    );

    let mut group = c.benchmark_group(GROUP);
    group.bench_function("old_spawn_per_batch", |b| b.iter(|| black_box(run_spawn())));
    group.bench_function("new_persistent_pool", |b| b.iter(|| black_box(run_pooled())));
    group.finish();
}

/// The acquisition A/B: one candidate per surrogate refit (classic) vs
/// the batched top-B acquisition, same evaluation budget. The objective
/// is cheap, so the measured gap is the refit amortization itself — the
/// pacing item of the paper's H2O (1000 warm-up) and Cr2 runs.
fn bench_bo_batched_vs_single_proposal(c: &mut Criterion) {
    const GROUP: &str = "bo_acquisition_48dim_300evals";
    if !filter_matches(GROUP) {
        return;
    }
    let space = SearchSpace::uniform(48, 4);
    let objective = |batch: &[Vec<usize>]| {
        batch
            .iter()
            .map(|cfg| {
                cfg.iter()
                    .enumerate()
                    .map(|(i, &k)| (k as f64 - ((i * 5 + 1) % 4) as f64).powi(2))
                    .sum::<f64>()
            })
            .collect::<Vec<f64>>()
    };
    let run = |proposals: usize| {
        let opts = BoOptions {
            warmup: 100,
            iterations: 200,
            proposals_per_refit: proposals,
            seed: 0xCAF9A,
            ..Default::default()
        };
        minimize(&space, objective, &[], &opts)
    };
    // Warm both arms (keeping the results — the runs are deterministic
    // given the seed), then take the best of 3 passes each so a noisy
    // host cannot flip the comparison.
    let single = run(1);
    let batched = run(4);
    let single_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run(1));
            t.elapsed()
        })
        .min()
        .unwrap();
    let batched_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run(4));
            t.elapsed()
        })
        .min()
        .unwrap();
    assert_eq!(single.history.len(), batched.history.len(), "same evaluation budget");
    let speedup = single_elapsed.as_secs_f64() / batched_elapsed.as_secs_f64();
    record_bench_json(
        "bo_batched_vs_single_proposal_48dim_300evals",
        format!(
            "{{\"single_ms\": {:.3}, \"batched_b4_ms\": {:.3}, \"speedup\": {:.3}, \
             \"single_best\": {:.6}, \"batched_best\": {:.6}}}",
            single_elapsed.as_secs_f64() * 1e3,
            batched_elapsed.as_secs_f64() * 1e3,
            speedup,
            single.best_value,
            batched.best_value
        ),
    );
    // 5 % tolerance for timer/scheduler noise; the measured gap is ~3.5×.
    assert!(
        batched_elapsed.as_secs_f64() <= single_elapsed.as_secs_f64() * 1.05,
        "batched acquisition not faster: {batched_elapsed:?} vs {single_elapsed:?}"
    );

    let mut group = c.benchmark_group(GROUP);
    group.bench_function("single_proposal_per_refit", |b| b.iter(|| black_box(run(1))));
    group.bench_function("batched_top4_per_refit", |b| b.iter(|| black_box(run(4))));
    group.finish();
}

/// A Cr2-shaped objective: 20 qubits, 24 576 distinct Pauli terms — far
/// over the 4096-term sharding threshold, so one candidate evaluation is
/// hundreds of microseconds of term summing (the regime where the
/// intra-candidate dispatch overhead is genuinely negligible, as at the
/// real 10⁵-term Cr2 operating point).
fn cr2_class_objective() -> (EfficientSu2, PauliOp) {
    const TERMS: u64 = 24_576;
    let ansatz = EfficientSu2::new(20, 1);
    let mut seed = 0xC47_u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let hamiltonian = PauliOp::from_terms(
        20,
        (0..TERMS).map(|code| {
            // The 15-bit code is packed into the low x-mask bits so terms
            // are distinct by construction; the remaining bits come from
            // the xorshift stream for coverage of the whole register.
            let x = (code & 0x7FFF) | (next() & 0xF8000);
            let z = next() & 0xFFFFF;
            (Complex64::from(1e-3 * ((code % 53) as f64 + 1.0)), PauliString::from_masks(20, x, z))
        }),
    );
    assert_eq!(hamiltonian.num_terms(), TERMS as usize, "terms must not collide");
    (ansatz, hamiltonian)
}

/// The intra-candidate A/B: term-sharded expectation (chunks of the
/// fixed 8-chunk association dispatched over the pool from inside each
/// evaluation) vs the chunked serial sum, on single-candidate
/// evaluations — the polish/incumbent shape where outer batching cannot
/// help.
///
/// Two separate concerns, handled separately: **bit-identity** is
/// checked on a *forced* 4-worker engine (exercising the real nested
/// dispatch on any host), while the **throughput gate** times a
/// host-fitting pool (`min(4, cores)` workers) so the comparison never
/// oversubscribes the machine — on a 1-core host that degenerates to
/// serial-vs-serial (the same configuration production would pick via
/// `default_workers()`), and on multicore hosts it shows the real
/// parallel speedup. Energies and numbers land in `BENCH_search.json`.
fn bench_term_sharded_vs_chunked_serial(c: &mut Criterion) {
    const GROUP: &str = "term_sharded_expectation_20q_24k_terms";
    if !filter_matches(GROUP) {
        return;
    }
    let (ansatz, hamiltonian) = cr2_class_objective();
    assert!(hamiltonian.num_terms() >= 4096, "must clear the sharding threshold");
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let timing_workers = host_cores.min(4);
    let serial = CliffordObjective::new(&ansatz, &hamiltonian).with_engine(ExecEngine::serial());
    let sharded =
        CliffordObjective::new(&ansatz, &hamiltonian).with_engine(ExecEngine::new(timing_workers));
    let forced = CliffordObjective::new(&ansatz, &hamiltonian).with_engine(ExecEngine::new(4));
    let configs: Vec<Vec<usize>> = (0..12u64)
        .map(|k| {
            (0..ansatz.num_parameters())
                .map(|i| ((k.wrapping_mul(0x9E37_79B9) >> (2 * (i % 31))) & 3) as usize)
                .collect()
        })
        .collect();
    // Bitwise equality of every energy — through the forced 4-worker
    // nested dispatch AND the host-fitting pool — before any timing.
    let mut scratch_serial = serial.scratch();
    let mut scratch_sharded = sharded.scratch();
    let mut scratch_forced = forced.scratch();
    for config in &configs {
        let reference = serial.evaluate_with(config, &mut scratch_serial);
        let nested = forced.evaluate_with(config, &mut scratch_forced);
        let hostfit = sharded.evaluate_with(config, &mut scratch_sharded);
        assert_eq!(
            reference.energy.to_bits(),
            nested.energy.to_bits(),
            "term-sharded energy mismatch"
        );
        assert_eq!(reference.penalized.to_bits(), nested.penalized.to_bits());
        assert_eq!(reference.energy.to_bits(), hostfit.energy.to_bits());
    }
    let run_serial = || {
        let mut scratch = serial.scratch();
        configs.iter().map(|c| serial.evaluate_with(c, &mut scratch).energy).sum::<f64>()
    };
    let run_sharded = || {
        let mut scratch = sharded.scratch();
        configs.iter().map(|c| sharded.evaluate_with(c, &mut scratch).energy).sum::<f64>()
    };
    // Warm both arms, then best of 3 passes each.
    black_box(run_serial());
    black_box(run_sharded());
    let serial_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_serial());
            t.elapsed()
        })
        .min()
        .unwrap();
    let sharded_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_sharded());
            t.elapsed()
        })
        .min()
        .unwrap();
    let speedup = serial_elapsed.as_secs_f64() / sharded_elapsed.as_secs_f64();
    record_bench_json(
        "term_sharded_vs_chunked_serial_20q_24576terms",
        format!(
            "{{\"timing_workers\": {timing_workers}, \"host_cores\": {host_cores}, \
             \"candidates\": {}, \"terms\": 24576, \"chunked_serial_ms\": {:.3}, \
             \"term_sharded_ms\": {:.3}, \"speedup\": {:.3}, \
             \"energies_bit_identical\": true}}",
            configs.len(),
            serial_elapsed.as_secs_f64() * 1e3,
            sharded_elapsed.as_secs_f64() * 1e3,
            speedup
        ),
    );
    // The acceptance gate: at the host-fitting worker count the sharded
    // path must be at least at serial throughput (5 % timer tolerance).
    assert!(
        sharded_elapsed.as_secs_f64() <= serial_elapsed.as_secs_f64() * 1.05,
        "term-sharded slower than chunked serial ({timing_workers} workers, \
         {host_cores} cores): {sharded_elapsed:?} vs {serial_elapsed:?}"
    );

    let mut group = c.benchmark_group(GROUP);
    group.bench_function("chunked_serial", |b| b.iter(|| black_box(run_serial())));
    group.bench_function("term_sharded_hostfit", |b| b.iter(|| black_box(run_sharded())));
    group.finish();
}

/// The refit-cost A/B: windowed surrogate refits vs classic full-history
/// refits at an identical evaluation budget. The objective is cheap, so
/// the measured gap is the fit cost itself — the component that
/// otherwise grows linearly with the trace. The no-op window is asserted
/// trace-identical to the classic fit before timing.
fn bench_windowed_vs_full_refit(c: &mut Criterion) {
    const GROUP: &str = "bo_windowed_refit_48dim_500evals";
    if !filter_matches(GROUP) {
        return;
    }
    let space = SearchSpace::uniform(48, 4);
    let objective = |batch: &[Vec<usize>]| {
        batch
            .iter()
            .map(|cfg| {
                cfg.iter()
                    .enumerate()
                    .map(|(i, &k)| (k as f64 - ((i * 5 + 1) % 4) as f64).powi(2))
                    .sum::<f64>()
            })
            .collect::<Vec<f64>>()
    };
    let run = |window: usize| {
        let opts = BoOptions {
            warmup: 100,
            iterations: 400,
            proposals_per_refit: 4,
            seed: 0xCAF9A,
            forest: ForestOptions { window, ..Default::default() },
            ..Default::default()
        };
        minimize(&space, objective, &[], &opts)
    };
    // Determinism gate: a non-binding window is the classic loop, bit
    // for bit, over the whole trace.
    let full = run(0);
    let noop = run(usize::MAX);
    assert_eq!(full.history.len(), noop.history.len(), "no-op window must not change the trace");
    for (a, b) in full.history.iter().zip(&noop.history) {
        assert_eq!(a.config, b.config, "no-op window changed a proposal");
        assert_eq!(a.value.to_bits(), b.value.to_bits());
    }
    let windowed = run(64);
    assert_eq!(full.history.len(), windowed.history.len(), "same evaluation budget");
    let full_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run(0));
            t.elapsed()
        })
        .min()
        .unwrap();
    let windowed_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run(64));
            t.elapsed()
        })
        .min()
        .unwrap();
    let speedup = full_elapsed.as_secs_f64() / windowed_elapsed.as_secs_f64();
    record_bench_json(
        "bo_windowed_vs_full_refit_48dim_500evals",
        format!(
            "{{\"window\": 64, \"full_ms\": {:.3}, \"windowed_ms\": {:.3}, \"speedup\": {:.3}, \
             \"full_best\": {:.6}, \"windowed_best\": {:.6}, \"noop_window_bit_identical\": true}}",
            full_elapsed.as_secs_f64() * 1e3,
            windowed_elapsed.as_secs_f64() * 1e3,
            speedup,
            full.best_value,
            windowed.best_value
        ),
    );
    // The refit-cost gate: windowed refits must not be slower (the
    // measured gap is ~2×+ — the fit is the dominant cost here).
    assert!(
        windowed_elapsed.as_secs_f64() <= full_elapsed.as_secs_f64() * 1.05,
        "windowed refits not faster: {windowed_elapsed:?} vs {full_elapsed:?}"
    );

    let mut group = c.benchmark_group(GROUP);
    group.bench_function("full_history_refit", |b| b.iter(|| black_box(run(0))));
    group.bench_function("windowed_64_refit", |b| b.iter(|| black_box(run(64))));
    group.finish();
}

/// A wide-register polish workload: 24 qubits, 96 parameters (over the
/// d = 24 exhaustive-pair threshold, so the sweep uses the local pair
/// list exactly like the 136-parameter Cr2 register) against a
/// 192-term Hamiltonian — the preparation-heavy regime where full
/// re-preparation per neighbor is pure overhead.
fn polish_workload() -> (EfficientSu2, PauliOp, Vec<usize>) {
    let ansatz = EfficientSu2::new(24, 1);
    let mut seed = 0x90115_u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let hamiltonian = PauliOp::from_terms(
        24,
        (0..192u64).map(|i| {
            let x = next() & 0xFF_FFFF;
            let z = next() & 0xFF_FFFF;
            (Complex64::from(5e-3 * ((i % 43) as f64 + 1.0)), PauliString::from_masks(24, x, z))
        }),
    );
    let start: Vec<usize> = (0..ansatz.num_parameters())
        .map(|i| ((0x9E37_79B9u64.wrapping_mul(i as u64 + 1) >> 7) & 3) as usize)
        .collect();
    (ansatz, hamiltonian, start)
}

/// The incremental-polish A/B: prefix-checkpoint + suffix-replay
/// neighbor evaluation (`polish_on`, screen off) vs the frozen
/// full-re-preparation endgame (`reference_polish`), on a 96-dim
/// register. Bit-identity of the full polish trace is asserted on a
/// serial engine AND a forced 4-worker engine before any timing; the
/// throughput gate runs at a host-fitting `min(4, cores)` worker count
/// (as in the PR 4 term-sharded gate), and a screened run
/// (`polish_screen_top = 16`) is timed and sanity-checked (pair subset,
/// final energy never above the start incumbent). Numbers land in
/// `BENCH_search.json`.
fn bench_incremental_polish(c: &mut Criterion) {
    const GROUP: &str = "polish_incremental_96dim";
    if !filter_matches(GROUP) {
        return;
    }
    let (ansatz, hamiltonian, start) = polish_workload();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let timing_workers = host_cores.min(4);
    let opts = CafqaOptions { polish_sweeps: 2, ..Default::default() };
    let frozen_objective =
        CliffordObjective::new(&ansatz, &hamiltonian).with_engine(ExecEngine::serial());
    let serial_engine = ExecEngine::serial();
    let serial_objective =
        CliffordObjective::new(&ansatz, &hamiltonian).with_engine(serial_engine.clone());
    let forced_engine = ExecEngine::new(4);
    let forced_objective =
        CliffordObjective::new(&ansatz, &hamiltonian).with_engine(forced_engine.clone());
    let hostfit_engine = ExecEngine::new(timing_workers);
    let hostfit_objective =
        CliffordObjective::new(&ansatz, &hamiltonian).with_engine(hostfit_engine.clone());

    // Bit-identity gate: the incremental endgame reproduces the frozen
    // full-re-preparation trace exactly, serial and through the forced
    // 4-worker nested dispatch, before any timing happens.
    let frozen = reference_polish(&frozen_objective, 24, &start, opts.polish_sweeps);
    for (label, engine, objective) in [
        ("serial", &serial_engine, &serial_objective),
        ("forced-4-workers", &forced_engine, &forced_objective),
    ] {
        let incremental = polish_on(engine, objective, &start, &opts, &[]);
        assert_eq!(incremental.trace.len(), frozen.trace.len(), "{label}: trace length");
        for (k, (a, b)) in incremental.trace.iter().zip(&frozen.trace).enumerate() {
            assert_eq!(a.0.to_bits(), b.0.to_bits(), "{label}: energy at {k}");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "{label}: penalized at {k}");
        }
        assert_eq!(incremental.best_config, frozen.best_config, "{label}: best_config");
        assert_eq!(
            incremental.best_value.penalized.to_bits(),
            frozen.best_value.penalized.to_bits(),
            "{label}: best value"
        );
        assert_eq!(incremental.last_accept, frozen.last_accept, "{label}: last accept");
        assert_eq!(incremental.pairs, frozen.pairs, "{label}: unscreened pair list");
    }

    // Screened run: subset pair list, never worse than the incumbent.
    let screened_opts = CafqaOptions { polish_screen_top: 16, ..opts.clone() };
    let history: Vec<(Vec<usize>, f64)> = (0..200u64)
        .map(|k| {
            let config: Vec<usize> = (0..ansatz.num_parameters())
                .map(|i| ((k.wrapping_mul(0x85EB_CA6B) >> (2 * (i % 29))) & 3) as usize)
                .collect();
            let value = frozen_objective.evaluate(&config).penalized;
            (config, value)
        })
        .collect();
    let screened = polish_on(&hostfit_engine, &hostfit_objective, &start, &screened_opts, &history);
    assert_eq!(screened.pairs.len(), 16, "screen must bind");
    assert!(
        screened.pairs.iter().all(|p| frozen.pairs.contains(p)),
        "screened pair list must be a subset of the exhaustive one"
    );
    let incumbent = frozen_objective.evaluate(&start).penalized;
    assert!(
        screened.best_value.penalized <= incumbent + 1e-12,
        "screened polish must never end above the incumbent: {} vs {incumbent}",
        screened.best_value.penalized
    );

    // Timing: frozen full re-preparation vs incremental replay, both at
    // the host-fitting configuration; plus the screened variant.
    let run_frozen = || {
        black_box(reference_polish(&frozen_objective, 24, &start, opts.polish_sweeps).trace.len())
    };
    let run_incremental = || {
        black_box(polish_on(&hostfit_engine, &hostfit_objective, &start, &opts, &[]).trace.len())
    };
    let run_screened = || {
        black_box(
            polish_on(&hostfit_engine, &hostfit_objective, &start, &screened_opts, &history)
                .trace
                .len(),
        )
    };
    black_box(run_frozen());
    black_box(run_incremental());
    black_box(run_screened());
    let time_best_of_3 = |f: &dyn Fn() -> usize| {
        (0..3)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed()
            })
            .min()
            .unwrap()
    };
    let frozen_elapsed = time_best_of_3(&run_frozen);
    let incremental_elapsed = time_best_of_3(&run_incremental);
    let screened_elapsed = time_best_of_3(&run_screened);
    let speedup = frozen_elapsed.as_secs_f64() / incremental_elapsed.as_secs_f64();
    let screened_speedup = frozen_elapsed.as_secs_f64() / screened_elapsed.as_secs_f64();
    record_bench_json(
        "polish_incremental_vs_full_reprep_96dim",
        format!(
            "{{\"dims\": 96, \"qubits\": 24, \"terms\": 192, \"timing_workers\": {timing_workers}, \
             \"host_cores\": {host_cores}, \"polish_evals\": {}, \"full_reprep_ms\": {:.3}, \
             \"incremental_ms\": {:.3}, \"speedup\": {:.3}, \"screened_top16_ms\": {:.3}, \
             \"screened_evals\": {}, \"screened_speedup\": {:.3}, \
             \"trace_bit_identical\": true, \"screened_subset\": true}}",
            frozen.trace.len(),
            frozen_elapsed.as_secs_f64() * 1e3,
            incremental_elapsed.as_secs_f64() * 1e3,
            speedup,
            screened_elapsed.as_secs_f64() * 1e3,
            screened.trace.len(),
            screened_speedup
        ),
    );
    // The acceptance gate: incremental replay must be at least at frozen
    // full-re-preparation throughput (5 % timer tolerance).
    assert!(
        incremental_elapsed.as_secs_f64() <= frozen_elapsed.as_secs_f64() * 1.05,
        "incremental polish slower than full re-preparation ({timing_workers} workers, \
         {host_cores} cores): {incremental_elapsed:?} vs {frozen_elapsed:?}"
    );

    let mut group = c.benchmark_group(GROUP);
    group.bench_function("frozen_full_reprep", |b| b.iter(run_frozen));
    group.bench_function("incremental_replay", |b| b.iter(run_incremental));
    group.bench_function("screened_top16", |b| b.iter(run_screened));
    group.finish();
}

/// A Clifford+T objective at the frozen dense oracle's comfort point:
/// 12 qubits, 128 random Pauli terms — wide enough that the dense
/// `2^t`-branch statevector sum is real work, small enough that the
/// dense path still runs (its cap is 24 qubits).
fn kt_class_objective() -> (EfficientSu2, PauliOp) {
    let ansatz = EfficientSu2::new(12, 1);
    let mut seed = 0x2B7_u64;
    let op = PauliOp::from_terms(
        12,
        (0..128).map(|i| {
            (Complex64::from(0.01 * ((i % 29) as f64 + 1.0)), random_pauli(12, &mut seed))
        }),
    );
    (ansatz, op)
}

/// 8-ary configurations with exactly three odd (T-like) entries each —
/// the `2^3 = 8`-branch evaluation shape of a `k_max = 3` search.
fn kt_class_configs(num_parameters: usize) -> Vec<Vec<usize>> {
    (0..8usize)
        .map(|k| {
            let mut config: Vec<usize> = (0..num_parameters)
                .map(|i| {
                    let code = (k as u64 + 1).wrapping_mul(0x9E37_79B9) >> (2 * (i % 23));
                    2 * (code & 3) as usize
                })
                .collect();
            for (slot, j) in [k, 16 + k, 32 + k].into_iter().enumerate() {
                config[j % num_parameters] = 2 * ((k + slot) % 4) + 1;
            }
            config
        })
        .collect()
}

/// The branch-evaluator A/B: the tableau-backed [`BranchEnsemble`]
/// (one tableau + `t` frame Paulis, cross terms via phase-sensitive
/// stabilizer inner products) vs the frozen dense [`CliffordTState`]
/// branch sum, on per-candidate Clifford+T evaluations at 12 qubits and
/// `t = 3`. Agreement to 1e-10 is asserted on every candidate before
/// any timing; numbers land in `BENCH_search.json`.
fn bench_kt_tableau_vs_dense(c: &mut Criterion) {
    const GROUP: &str = "kt_branch_evaluator_12q_t3";
    if !filter_matches(GROUP) {
        return;
    }
    let (ansatz, hamiltonian) = kt_class_objective();
    let configs = kt_class_configs(ansatz.num_parameters());
    // Exact agreement of the two backends on every candidate — the
    // ensemble must reproduce the dense branch sum, cross terms and
    // branch phases included.
    for config in &configs {
        assert_eq!(cafqa_core::t_count_of(config), 3);
        let circuit = ansatz.bind_eighth(config);
        let dense = CliffordTState::from_circuit(&circuit).unwrap();
        let ensemble = BranchEnsemble::from_circuit(&circuit).unwrap();
        let d = dense.expectation(&hamiltonian);
        let e = ensemble.expectation(&hamiltonian);
        assert!((d - e).abs() < 1e-10, "dense {d} vs ensemble {e}");
    }
    let run_dense = || {
        configs
            .iter()
            .map(|config| {
                let circuit = ansatz.bind_eighth(config);
                CliffordTState::from_circuit(&circuit).unwrap().expectation(&hamiltonian)
            })
            .sum::<f64>()
    };
    let run_ensemble = || {
        configs
            .iter()
            .map(|config| {
                let circuit = ansatz.bind_eighth(config);
                BranchEnsemble::from_circuit(&circuit).unwrap().expectation(&hamiltonian)
            })
            .sum::<f64>()
    };
    black_box(run_dense());
    black_box(run_ensemble());
    let dense_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_dense());
            t.elapsed()
        })
        .min()
        .unwrap();
    let ensemble_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_ensemble());
            t.elapsed()
        })
        .min()
        .unwrap();
    let speedup = dense_elapsed.as_secs_f64() / ensemble_elapsed.as_secs_f64();
    record_bench_json(
        "kt_tableau_vs_dense_12q_t3_128terms",
        format!(
            "{{\"qubits\": 12, \"t\": 3, \"terms\": 128, \"candidates\": {}, \
             \"dense_ms\": {:.3}, \"ensemble_ms\": {:.3}, \"speedup\": {:.3}, \
             \"agreement\": \"1e-10\"}}",
            configs.len(),
            dense_elapsed.as_secs_f64() * 1e3,
            ensemble_elapsed.as_secs_f64() * 1e3,
            speedup
        ),
    );
    // The acceptance gate: the ensemble evaluator must be at least at
    // dense-branch throughput where both can run (5 % timer tolerance) —
    // beyond 24 qubits only the ensemble runs at all.
    assert!(
        ensemble_elapsed.as_secs_f64() <= dense_elapsed.as_secs_f64() * 1.05,
        "branch ensemble slower than dense branch sum: \
         {ensemble_elapsed:?} vs {dense_elapsed:?}"
    );

    let mut group = c.benchmark_group(GROUP);
    group.bench_function("old_dense_branch_sum", |b| b.iter(|| black_box(run_dense())));
    group.bench_function("new_tableau_ensemble", |b| b.iter(|| black_box(run_ensemble())));
    group.finish();
}

/// The search-tier A/B: the ported CAFQA+kT search (feasible-by-
/// construction genome space, engine-batched tableau-ensemble
/// evaluation, 8-ary polish endgame) vs the frozen classic loop (8-ary
/// uniform space with `1e6` rejection constants, serial dense
/// evaluation, no polish) at the same BO budget and seed. Records the
/// feasible/rejected split of both sides and asserts the new tier
/// wastes no evaluations and ends at least as low as the frozen search.
fn bench_kt_engine_vs_reference(c: &mut Criterion) {
    const GROUP: &str = "kt_search_engine_vs_reference_12q";
    if !filter_matches(GROUP) {
        return;
    }
    const K_MAX: usize = 2;
    let (ansatz, hamiltonian) = kt_class_objective();
    let seed_config: Vec<usize> = (0..ansatz.num_parameters()).map(|i| (i * 3 + 2) % 4).collect();
    let seeds = vec![widen_clifford_config(&seed_config)];
    let opts = CafqaOptions { warmup: 30, iterations: 40, polish_sweeps: 1, ..Default::default() };
    let engine = ExecEngine::new(4);
    let run_reference = || reference_kt(&ansatz, &hamiltonian, &[], K_MAX, &seeds, &opts);
    let run_engine = || {
        run_cafqa_kt_on(&engine, &ansatz, &hamiltonian, vec![], K_MAX, &seeds, &opts)
            .expect("budget within branch-engine limits")
    };
    let reference = run_reference();
    let engine_result = run_engine();
    // The structural claim of the port: the genome space never proposes
    // an over-budget candidate, while the frozen uniform space burns
    // most of its budget on `1e6`-rejected samples at this `d`/`k_max`.
    assert_eq!(engine_result.rejected_evaluations, 0, "genome space must be feasible");
    assert!(
        reference.rejected_evaluations > 0,
        "frozen loop should reject over-budget samples at d = 48, k_max = 2"
    );
    assert!(engine_result.t_count <= K_MAX);
    // Same seed, strictly feasible search + polish endgame: the ported
    // tier must end at least as low as the frozen rejection-sampling
    // loop (both runs are deterministic at this seed).
    assert!(
        engine_result.energy <= reference.energy + 1e-9,
        "ported kT search worse than frozen loop: {} vs {}",
        engine_result.energy,
        reference.energy
    );
    let reference_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_reference());
            t.elapsed()
        })
        .min()
        .unwrap();
    let engine_elapsed = (0..3)
        .map(|_| {
            let t = Instant::now();
            black_box(run_engine());
            t.elapsed()
        })
        .min()
        .unwrap();
    let speedup = reference_elapsed.as_secs_f64() / engine_elapsed.as_secs_f64();
    record_bench_json(
        "kt_engine_vs_reference_12q_48dim_kmax2",
        format!(
            "{{\"qubits\": 12, \"dims\": 48, \"k_max\": {K_MAX}, \"terms\": 128, \
             \"reference_ms\": {:.3}, \"engine_ms\": {:.3}, \"speedup\": {:.3}, \
             \"reference_energy\": {:.6}, \"engine_energy\": {:.6}, \
             \"reference_feasible\": {}, \"reference_rejected\": {}, \
             \"engine_feasible\": {}, \"engine_rejected\": 0, \
             \"engine_polish_evals\": {}}}",
            reference_elapsed.as_secs_f64() * 1e3,
            engine_elapsed.as_secs_f64() * 1e3,
            speedup,
            reference.energy,
            engine_result.energy,
            reference.evaluations - reference.rejected_evaluations,
            reference.rejected_evaluations,
            engine_result.feasible_evaluations,
            engine_result.polish_evaluations
        ),
    );

    let mut group = c.benchmark_group(GROUP);
    group.bench_function("old_dense_rejection_loop", |b| b.iter(|| black_box(run_reference())));
    group.bench_function("new_branch_engine_tier", |b| b.iter(|| black_box(run_engine())));
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = search;
    config = config();
    targets = bench_expectation_kernel, bench_candidate_evaluation,
              bench_h2_candidate_evaluation, bench_h2_oracle,
              bench_h2o_pooled_vs_spawn, bench_bo_batched_vs_single_proposal,
              bench_term_sharded_vs_chunked_serial, bench_windowed_vs_full_refit,
              bench_incremental_polish, bench_kt_tableau_vs_dense,
              bench_kt_engine_vs_reference
}
criterion_main!(search);
