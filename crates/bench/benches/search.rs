//! A/B benchmarks for the batched, allocation-free search stack: the
//! bitwise expectation kernel vs the frozen allocation-based reference,
//! per-candidate evaluation through the compiled template vs the full
//! bind-and-lower path, and the H2 exhaustive oracle (4^8 configurations)
//! serial vs sharded.

use std::time::Duration;

use cafqa_bench::{reference_expectation_pauli, ReferenceGenerators};
use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa_circuit::{Ansatz, EfficientSu2};
use cafqa_clifford::Tableau;
use cafqa_core::exhaustive::{exhaustive_search_serial, exhaustive_search_with_workers};
use cafqa_core::CliffordObjective;
use cafqa_pauli::{PauliOp, PauliString};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn random_pauli(n: usize, seed: &mut u64) -> PauliString {
    let mut next = || {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    };
    let mask = if n == 64 { u64::MAX } else { (1 << n) - 1 };
    PauliString::from_masks(n, next() & mask, next() & mask)
}

/// The per-term expectation kernel, old (PauliString::mul accumulation)
/// vs new (bitwise phase accumulation) on a 14-qubit ansatz state.
///
/// Uniformly random Paulis almost surely anticommute with some stabilizer
/// and take the early-exit zero path, which the rewrite left untouched —
/// so the interesting workload is Paulis drawn from the stabilizer group
/// itself (random generator products, expectation ±1), which drive the
/// full destabilizer-decomposition loop on every term.
fn bench_expectation_kernel(c: &mut Criterion) {
    let ansatz = EfficientSu2::new(14, 1);
    let config: Vec<usize> = (0..ansatz.num_parameters()).map(|i| (i * 5 + 1) % 4).collect();
    let tableau = Tableau::from_circuit(&ansatz.bind_clifford(&config)).unwrap();
    let generators = ReferenceGenerators::from_tableau(&tableau);
    let mut seed = 19;
    let paulis: Vec<PauliString> = (0..256)
        .map(|_| {
            // A random product of stabilizer generators: nonzero expectation.
            let mut pick = random_pauli(14, &mut seed).x_mask() | 1;
            let mut x = 0u64;
            let mut z = 0u64;
            for (_, s) in &generators.stabilizers {
                if pick & 1 != 0 {
                    x ^= s.x_mask();
                    z ^= s.z_mask();
                }
                pick >>= 1;
            }
            PauliString::from_masks(14, x, z)
        })
        .collect();
    assert!(paulis.iter().all(|p| tableau.expectation_pauli(p) != 0));
    let mut group = c.benchmark_group("expectation_kernel_256x14q_in_group");
    group.bench_function("old_allocating", |b| {
        b.iter(|| {
            let s: i32 =
                paulis.iter().map(|p| i32::from(reference_expectation_pauli(&generators, p))).sum();
            black_box(s)
        })
    });
    group.bench_function("new_bitwise", |b| {
        b.iter(|| {
            let s: i32 = paulis.iter().map(|p| i32::from(tableau.expectation_pauli(p))).sum();
            black_box(s)
        })
    });
    group.finish();
}

/// One full candidate evaluation, old style (bind + lower + fresh tableau
/// + allocating expectation) vs the compiled-template scratch path.
fn bench_candidate_evaluation(c: &mut Criterion) {
    let ansatz = EfficientSu2::new(12, 1);
    let mut seed = 77;
    let op = PauliOp::from_terms(
        12,
        (0..128).map(|_| (cafqa_linalg::Complex64::from(0.01), random_pauli(12, &mut seed))),
    );
    let objective = CliffordObjective::new(&ansatz, &op);
    assert!(objective.is_compiled());
    let config: Vec<usize> = (0..ansatz.num_parameters()).map(|i| (i * 3 + 2) % 4).collect();
    let mut group = c.benchmark_group("candidate_evaluation_12q_128terms");
    group.bench_function("old_bind_lower_allocate", |b| {
        b.iter(|| {
            let circuit = ansatz.bind_clifford(&config);
            let tableau = Tableau::from_circuit(&circuit).unwrap();
            black_box(cafqa_bench::reference_expectation(&tableau, &op))
        })
    });
    group.bench_function("new_compiled_scratch", |b| {
        let mut scratch = objective.scratch();
        b.iter(|| black_box(objective.evaluate_with(&config, &mut scratch).energy))
    });
    group.finish();
}

/// Per-evaluation kernel at the paper's headline operating point: one
/// candidate of the H2 ansatz against the tapered H2 Hamiltonian.
fn bench_h2_candidate_evaluation(c: &mut Criterion) {
    let pipe = ChemPipeline::build(MoleculeKind::H2, 2.5, &ScfKind::Rhf).unwrap();
    let problem = pipe.problem(1, 1, true).unwrap();
    let ansatz = EfficientSu2::new(2, 1);
    let hamiltonian = problem.hamiltonian.clone();
    let objective = CliffordObjective::new(&ansatz, &hamiltonian);
    let config = vec![1usize, 2, 3, 0, 1, 2, 3, 0];
    let mut group = c.benchmark_group("candidate_evaluation_h2");
    group.bench_function("old_bind_lower_allocate", |b| {
        b.iter(|| {
            let circuit = ansatz.bind_clifford(&config);
            let tableau = Tableau::from_circuit(&circuit).unwrap();
            black_box(cafqa_bench::reference_expectation(&tableau, &hamiltonian))
        })
    });
    group.bench_function("new_compiled_scratch", |b| {
        let mut scratch = objective.scratch();
        b.iter(|| black_box(objective.evaluate_with(&config, &mut scratch).energy))
    });
    group.finish();
}

/// The H2 exhaustive oracle (4^8 = 65 536 configurations): old-style
/// per-candidate evaluation vs the new serial kernel vs the sharded
/// enumeration. All three must report identical energies.
fn bench_h2_oracle(c: &mut Criterion) {
    let pipe = ChemPipeline::build(MoleculeKind::H2, 2.5, &ScfKind::Rhf).unwrap();
    let problem = pipe.problem(1, 1, true).unwrap();
    let ansatz = EfficientSu2::new(2, 1);
    let hamiltonian = problem.hamiltonian.clone();
    let mut group = c.benchmark_group("h2_exhaustive_oracle_4pow8");
    let reference = exhaustive_search_serial(&ansatz, &hamiltonian, vec![]).unwrap();
    group.bench_function("old_per_candidate", |b| {
        b.iter(|| {
            let mut best = f64::INFINITY;
            let mut config = vec![0usize; 8];
            for code in 0..65_536u64 {
                let mut bits = code;
                for slot in config.iter_mut() {
                    *slot = (bits & 3) as usize;
                    bits >>= 2;
                }
                let circuit = ansatz.bind_clifford(&config);
                let tableau = Tableau::from_circuit(&circuit).unwrap();
                let energy = cafqa_bench::reference_expectation(&tableau, &hamiltonian);
                if energy < best {
                    best = energy;
                }
            }
            assert_eq!(best, reference.energy);
            black_box(best)
        })
    });
    group.bench_function("new_serial", |b| {
        b.iter(|| {
            let result = exhaustive_search_serial(&ansatz, &hamiltonian, vec![]).unwrap();
            assert_eq!(result.energy, reference.energy);
            black_box(result.penalized)
        })
    });
    group.bench_function("new_sharded_8", |b| {
        b.iter(|| {
            let result = exhaustive_search_with_workers(&ansatz, &hamiltonian, vec![], 8).unwrap();
            assert_eq!(result.energy, reference.energy);
            black_box(result.penalized)
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

criterion_group! {
    name = search;
    config = config();
    targets = bench_expectation_kernel, bench_candidate_evaluation,
              bench_h2_candidate_evaluation, bench_h2_oracle
}
criterion_main!(search);
