//! One benchmark per paper table/figure: each measures the computational
//! kernel that dominates the corresponding experiment binary
//! (`cafqa-experiments/src/bin/*`). Run the binaries themselves to
//! regenerate the actual tables/series.

use std::time::Duration;

use cafqa_bayesopt::{minimize, BoOptions, SearchSpace};
use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa_circuit::{Ansatz, EfficientSu2};
use cafqa_clifford::{CliffordTState, Tableau};
use cafqa_core::metrics::{summarize_relative, DissociationPoint};
use cafqa_core::microbench::{xx_hamiltonian, XxMicrobenchAnsatz};
use cafqa_core::{CafqaOptions, CliffordObjective, MolecularCafqa};
use cafqa_linalg::Complex64;
use cafqa_pauli::{PauliOp, PauliString};
use cafqa_sim::NoiseModel;
use cafqa_vqe::{run_vqe, IdealBackend, SpsaOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn lih_problem() -> cafqa_chem::MolecularProblem {
    let pipe = ChemPipeline::build(MoleculeKind::LiH, 2.4, &ScfKind::Rhf).unwrap();
    let (na, nb) = pipe.default_sector();
    pipe.problem(na, nb, false).unwrap()
}

/// A synthetic molecular-shaped Pauli operator for wide registers.
fn synthetic_hamiltonian(n: usize, terms: usize) -> PauliOp {
    let mut op = PauliOp::zero(n);
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for k in 0..terms {
        let x = next() & ((1 << n) - 1) & next(); // sparse-ish X mask
        let z = next() & ((1 << n) - 1);
        op.add_term(
            Complex64::from(0.01 + (k % 7) as f64 * 0.003),
            PauliString::from_masks(n, x, z),
        );
    }
    op
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_h2_pipeline_end_to_end", |b| {
        b.iter(|| {
            let pipe = ChemPipeline::build(MoleculeKind::H2, 0.74, &ScfKind::Rhf).unwrap();
            black_box(pipe.problem(1, 1, true).unwrap())
        })
    });
}

fn bench_fig05(c: &mut Criterion) {
    let model = NoiseModel::casablanca_class();
    let ansatz = XxMicrobenchAnsatz;
    let h = xx_hamiltonian();
    c.bench_function("fig05_noisy_microbench_point", |b| {
        b.iter(|| black_box(model.expectation(&ansatz.bind(&[1.3]), &h)))
    });
}

fn bench_fig06(c: &mut Criterion) {
    let problem = lih_problem();
    let ansatz = EfficientSu2::new(problem.n_qubits, 1);
    let objective = CliffordObjective::new(&ansatz, &problem.hamiltonian);
    let config = ansatz.basis_state_config(problem.hf_bits);
    c.bench_function("fig06_lih_per_term_expectations", |b| {
        b.iter(|| black_box(objective.term_expectations(&config)))
    });
}

fn bench_fig07(c: &mut Criterion) {
    // One BO iteration on an H2O-sized (48-parameter) space.
    let space = SearchSpace::uniform(48, 4);
    c.bench_function("fig07_bo_iteration_48dim", |b| {
        b.iter(|| {
            let opts = BoOptions { warmup: 30, iterations: 5, ..Default::default() };
            black_box(minimize(
                &space,
                |batch: &[Vec<usize>]| {
                    batch
                        .iter()
                        .map(|cfg| cfg.iter().map(|&k| (k as f64 - 1.3).powi(2)).sum())
                        .collect()
                },
                &[],
                &opts,
            ))
        })
    });
}

fn bench_fig08(c: &mut Criterion) {
    c.bench_function("fig08_h2_cafqa_point", |b| {
        let pipe = ChemPipeline::build(MoleculeKind::H2, 2.2, &ScfKind::Rhf).unwrap();
        let problem = pipe.problem(1, 1, false).unwrap();
        b.iter(|| {
            let runner = MolecularCafqa::new(problem.clone());
            let opts = CafqaOptions { warmup: 20, iterations: 20, ..Default::default() };
            black_box(runner.run(&opts))
        })
    });
}

fn bench_fig09(c: &mut Criterion) {
    let problem = lih_problem();
    let ansatz = EfficientSu2::new(problem.n_qubits, 1);
    let objective = CliffordObjective::new(&ansatz, &problem.hamiltonian);
    c.bench_function("fig09_lih_clifford_objective_eval", |b| {
        let mut k = 0usize;
        b.iter(|| {
            k = (k + 1) % 4;
            black_box(objective.evaluate(&[k; 16]))
        })
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10_h2o_qubit_hamiltonian_build", |b| {
        let pipe = ChemPipeline::build(MoleculeKind::H2O, 1.0, &ScfKind::Rhf).unwrap();
        b.iter(|| {
            black_box(cafqa_chem::qubit_hamiltonian(
                &pipe.spin_integrals,
                cafqa_chem::Mapping::Parity,
            ))
        })
    });
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11_h6_fci_ground_state", |b| {
        let pipe = ChemPipeline::build(MoleculeKind::H6, 1.8, &ScfKind::Rhf).unwrap();
        b.iter(|| black_box(cafqa_chem::fci_ground_state(&pipe.spin_integrals, 3, 3).unwrap()))
    });
}

fn bench_fig12(c: &mut Criterion) {
    // The Cr2-surrogate kernel: tableau expectation of a wide many-term
    // operator at 34 qubits (the per-candidate cost of the Fig. 12 search).
    let n = 34;
    let h = synthetic_hamiltonian(n, 5_000);
    let ansatz = EfficientSu2::new(n, 1);
    let circuit = ansatz.bind_clifford(&vec![1; ansatz.num_parameters()]);
    let tableau = Tableau::from_circuit(&circuit).unwrap();
    c.bench_function("fig12_tableau_expectation_34q_5k_terms", |b| {
        b.iter(|| black_box(tableau.expectation(&h)))
    });
}

fn bench_fig13(c: &mut Criterion) {
    let points: Vec<DissociationPoint> = (0..1000)
        .map(|k| DissociationPoint {
            bond: k as f64 * 0.01,
            cafqa: -1.2 + 0.0001 * k as f64,
            hf: -1.0,
            exact: Some(-1.21),
            scf_converged: true,
        })
        .collect();
    c.bench_function("fig13_relative_accuracy_aggregation", |b| {
        b.iter(|| black_box(summarize_relative(&points)))
    });
}

fn bench_fig14(c: &mut Criterion) {
    let problem = lih_problem();
    let ansatz = EfficientSu2::new(problem.n_qubits, 1);
    let h = problem.hamiltonian.clone();
    c.bench_function("fig14_spsa_vqe_10_iterations", |b| {
        b.iter(|| {
            let opts = SpsaOptions { iterations: 10, ..Default::default() };
            black_box(run_vqe(&ansatz, &h, &[0.1; 16], &IdealBackend, &opts))
        })
    });
}

fn bench_fig15(c: &mut Criterion) {
    let g = cafqa_core::maxcut::Graph::random(10, 0.4, 3);
    let h = cafqa_core::maxcut::maxcut_hamiltonian(&g);
    let ansatz = EfficientSu2::new(10, 1);
    c.bench_function("fig15_maxcut_cafqa_search_small_budget", |b| {
        b.iter(|| {
            let opts = CafqaOptions {
                warmup: 20,
                iterations: 20,
                number_penalty: 0.0,
                // This bench measures the BO search itself; the routed
                // fast path has its own A/B (`ising_fast_path_vs_bo`).
                ising_fast_path: cafqa_core::IsingFastPath::Off,
                ..Default::default()
            };
            black_box(cafqa_core::run_cafqa(&ansatz, &h, vec![], &[], &opts))
        })
    });
}

fn bench_fig16(c: &mut Criterion) {
    let problem = lih_problem();
    let ansatz = EfficientSu2::new(problem.n_qubits, 1);
    let h = problem.hamiltonian.clone();
    // A configuration with 4 T-like rotations (16 branches).
    let mut config = vec![0usize; 16];
    config[0] = 1;
    config[5] = 3;
    config[9] = 5;
    config[13] = 7;
    c.bench_function("fig16_clifford_t_expectation_4t", |b| {
        b.iter(|| {
            let circuit = ansatz.bind_eighth(&config);
            let state = CliffordTState::from_circuit(&circuit).unwrap();
            black_box(state.expectation(&h))
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = paper;
    config = config();
    targets = bench_table1, bench_fig05, bench_fig06, bench_fig07, bench_fig08,
              bench_fig09, bench_fig10, bench_fig11, bench_fig12, bench_fig13,
              bench_fig14, bench_fig15, bench_fig16
}
criterion_main!(paper);
