//! Ablation benches for the design decisions called out in DESIGN.md §5.

use std::time::Duration;

use cafqa_bayesopt::{minimize, BoOptions, ForestOptions, RandomForest, SearchSpace};
use cafqa_chem::{BasisSet, Element, Molecule};
use cafqa_circuit::{Ansatz, EfficientSu2};
use cafqa_clifford::Tableau;
use cafqa_linalg::Complex64;
use cafqa_pauli::{PauliOp, PauliString};
use cafqa_sim::Statevector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn random_pauli(n: usize, seed: &mut u64) -> PauliString {
    let mut next = || {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    };
    let mask = if n == 64 { u64::MAX } else { (1 << n) - 1 };
    PauliString::from_masks(n, next() & mask, next() & mask)
}

/// Bit-packed Pauli products (DESIGN §5: one word per axis).
fn bench_pauli_ops(c: &mut Criterion) {
    let mut seed = 42;
    let pairs: Vec<(PauliString, PauliString)> =
        (0..512).map(|_| (random_pauli(34, &mut seed), random_pauli(34, &mut seed))).collect();
    c.bench_function("pauli_mul_512_pairs_34q", |b| {
        b.iter(|| {
            let mut acc = 0i32;
            for (p, q) in &pairs {
                acc += p.mul(q).0;
            }
            black_box(acc)
        })
    });
}

/// Tableau expectation scaling in register width (polynomial, per
/// Gottesman–Knill) vs dense statevector (exponential).
fn bench_clifford_vs_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("clifford_vs_dense_expectation");
    for &n in &[8usize, 12, 16] {
        let ansatz = EfficientSu2::new(n, 1);
        let circuit = ansatz.bind_clifford(&vec![1; ansatz.num_parameters()]);
        let mut seed = 7;
        let op = PauliOp::from_terms(
            n,
            (0..64).map(|_| (Complex64::from(0.01), random_pauli(n, &mut seed))),
        );
        group.bench_with_input(BenchmarkId::new("tableau", n), &n, |b, _| {
            let t = Tableau::from_circuit(&circuit).unwrap();
            b.iter(|| black_box(t.expectation(&op)))
        });
        group.bench_with_input(BenchmarkId::new("statevector", n), &n, |b, _| {
            let psi = Statevector::from_circuit(&circuit);
            b.iter(|| black_box(psi.expectation(&op)))
        });
    }
    group.finish();
}

/// Wide-register tableau evaluation (the 34-qubit Cr2-class kernel).
fn bench_tableau_34q(c: &mut Criterion) {
    let ansatz = EfficientSu2::new(34, 1);
    c.bench_function("tableau_simulate_34q_ansatz", |b| {
        b.iter(|| {
            let circuit = ansatz.bind_clifford(&vec![3; ansatz.num_parameters()]);
            black_box(Tableau::from_circuit(&circuit).unwrap())
        })
    });
}

/// Surrogate-guided search vs pure random sampling at equal budgets
/// (DESIGN §5 ablation: the value of the RF surrogate).
fn bench_bo_vs_random(c: &mut Criterion) {
    let space = SearchSpace::uniform(16, 4);
    let objective = |batch: &[Vec<usize>]| {
        batch
            .iter()
            .map(|cfg| {
                cfg.iter()
                    .enumerate()
                    .map(|(i, &k)| (k as f64 - (i % 4) as f64).powi(2))
                    .sum::<f64>()
            })
            .collect::<Vec<f64>>()
    };
    let mut group = c.benchmark_group("bo_vs_random_160_evals");
    group.bench_function("bo_surrogate", |b| {
        b.iter(|| {
            let opts = BoOptions { warmup: 60, iterations: 100, ..Default::default() };
            black_box(minimize(&space, objective, &[], &opts).best_value)
        })
    });
    group.bench_function("pure_random", |b| {
        b.iter(|| {
            let opts = BoOptions { warmup: 160, iterations: 0, ..Default::default() };
            black_box(minimize(&space, objective, &[], &opts).best_value)
        })
    });
    group.finish();
}

/// Random-forest fitting cost at search-loop sizes.
fn bench_forest_fit(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(9);
    let xs: Vec<Vec<usize>> =
        (0..500).map(|_| (0..40).map(|_| rng.gen_range(0..4usize)).collect()).collect();
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().sum::<usize>() as f64).collect();
    c.bench_function("forest_fit_500x40", |b| {
        b.iter(|| {
            black_box(RandomForest::fit(&xs, &ys, &[4; 40], &ForestOptions::default(), &mut rng))
        })
    });
}

/// Two-electron integral evaluation (the chemistry-stack hot spot).
fn bench_eri(c: &mut Criterion) {
    let m = Molecule::from_angstrom(&[
        (Element::O, [0.0, 0.0, 0.0]),
        (Element::H, [0.0, 0.76, 0.59]),
        (Element::H, [0.0, -0.76, 0.59]),
    ]);
    let basis = BasisSet::sto3g(&m);
    c.bench_function("eri_h2o_full_tensor", |b| {
        b.iter(|| black_box(cafqa_chem::compute_ao_integrals(&m, &basis)))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = kernels;
    config = config();
    targets = bench_pauli_ops, bench_clifford_vs_dense, bench_tableau_34q,
              bench_bo_vs_random, bench_forest_fit, bench_eri
}
criterion_main!(kernels);
