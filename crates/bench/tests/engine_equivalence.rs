//! Bit-identity contract of the persistent-engine refactor.
//!
//! Three layers of guarantees, each asserted bitwise:
//!
//! 1. **Refactor equivalence** — at `proposals_per_refit = 1` the new
//!    batched `minimize` / `run_cafqa` reproduce the frozen pre-refactor
//!    serial implementations ([`cafqa_bench::reference_minimize`],
//!    [`cafqa_bench::reference_run_cafqa`]) trace-for-trace.
//! 2. **Worker-count invariance** — the same search on engines of 1, 2
//!    and 8 workers yields the same `CafqaResult` (energy, trace,
//!    iterations_to_best), at any batch size.
//! 3. **Spawn-vs-pool equivalence** — the engine-backed batch evaluation
//!    equals the frozen `thread::scope` spawn-per-batch path.

use cafqa_bayesopt::{minimize, minimize_with, BoOptions};
use cafqa_bench::{reference_evaluate_batch_spawn, reference_minimize, reference_run_cafqa};
use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
use cafqa_circuit::EfficientSu2;
use cafqa_core::{run_cafqa_on, CafqaOptions, CafqaResult, CliffordObjective, ExecEngine, Penalty};
use cafqa_linalg::Complex64;
use cafqa_pauli::{PauliOp, PauliString};
use proptest::prelude::*;

fn assert_bo_results_identical(a: &cafqa_bayesopt::BoResult, b: &cafqa_bayesopt::BoResult) {
    assert_eq!(a.history.len(), b.history.len(), "history length");
    for (i, (x, y)) in a.history.iter().zip(&b.history).enumerate() {
        assert_eq!(x.config, y.config, "config at evaluation {i}");
        assert_eq!(x.value.to_bits(), y.value.to_bits(), "value at evaluation {i}");
        assert_eq!(x.best_so_far.to_bits(), y.best_so_far.to_bits(), "best at evaluation {i}");
    }
    assert_eq!(a.best_config, b.best_config);
    assert_eq!(a.best_value.to_bits(), b.best_value.to_bits());
    assert_eq!(a.iterations_to_best, b.iterations_to_best);
}

fn assert_cafqa_results_identical(a: &CafqaResult, b: &CafqaResult, label: &str) {
    assert_eq!(a.trace.len(), b.trace.len(), "{label}: trace length");
    for (i, (x, y)) in a.trace.iter().zip(&b.trace).enumerate() {
        assert_eq!(x.energy.to_bits(), y.energy.to_bits(), "{label}: energy at {i}");
        assert_eq!(x.penalized.to_bits(), y.penalized.to_bits(), "{label}: penalized at {i}");
        assert_eq!(x.best_so_far.to_bits(), y.best_so_far.to_bits(), "{label}: best at {i}");
    }
    assert_eq!(a.best_config, b.best_config, "{label}: best_config");
    assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "{label}: energy");
    assert_eq!(a.penalized.to_bits(), b.penalized.to_bits(), "{label}: penalized");
    assert_eq!(a.iterations_to_best, b.iterations_to_best, "{label}: iterations_to_best");
    assert_eq!(a.evaluations, b.evaluations, "{label}: evaluations");
}

fn rugged(c: &[usize]) -> f64 {
    let s: f64 = c.iter().enumerate().map(|(i, &v)| ((v as f64) - ((i % 4) as f64)).abs()).sum();
    s + if c[0] == c[c.len() - 1] { 0.0 } else { 2.0 }
}

/// Layer 1: the batched loop at B = 1 *is* the classic loop — same RNG
/// stream, same pool, same tie-breaks — across refit cadences, seeds and
/// patience settings.
#[test]
fn minimize_b1_matches_frozen_reference() {
    let cardinalities = vec![4usize; 10];
    let seeds = vec![vec![1usize; 10], vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1]];
    for refit_every in [1usize, 3, 7] {
        for (use_seeds, patience) in [(false, 0usize), (true, 0), (true, 25)] {
            let opts = BoOptions {
                warmup: 40,
                iterations: 120,
                refit_every,
                proposals_per_refit: 1,
                patience,
                seed: 0xFEED + refit_every as u64,
                ..Default::default()
            };
            let seed_slice: &[Vec<usize>] = if use_seeds { &seeds } else { &[] };
            let frozen = reference_minimize(&cardinalities, rugged, seed_slice, &opts);
            let space = cafqa_bayesopt::SearchSpace { cardinalities: cardinalities.clone() };
            let batched = minimize(
                &space,
                |batch: &[Vec<usize>]| batch.iter().map(|c| rugged(c)).collect(),
                seed_slice,
                &opts,
            );
            assert_bo_results_identical(&batched, &frozen);
        }
    }
}

/// Layer 2 (BO): surrogate scoring sharded over 1/2/8-worker engines is
/// trajectory-identical — predictions are independent per candidate and
/// reassembled in pool order. B = 4 with the default pool makes the
/// scoring pass large enough to actually dispatch to the pool.
#[test]
fn minimize_trace_invariant_across_engine_widths() {
    let space = cafqa_bayesopt::SearchSpace::uniform(12, 4);
    let opts = BoOptions {
        warmup: 60,
        iterations: 80,
        proposals_per_refit: 4,
        seed: 0xD15C,
        ..Default::default()
    };
    let run = |engine: &ExecEngine| {
        minimize_with(
            &space,
            |batch: &[Vec<usize>]| batch.iter().map(|c| rugged(c)).collect(),
            &[],
            &opts,
            engine,
        )
    };
    let serial = run(&ExecEngine::serial());
    for workers in [2usize, 8] {
        let engine = ExecEngine::new(workers);
        let pooled = run(&engine);
        assert_bo_results_identical(&pooled, &serial);
    }
}

fn h2_ingredients() -> (PauliOp, PauliOp, f64) {
    let pipe = ChemPipeline::build(MoleculeKind::H2, 2.2, &ScfKind::Rhf).unwrap();
    let problem = pipe.problem(1, 1, false).unwrap();
    (problem.hamiltonian.clone(), problem.number_op.clone(), problem.n_electrons() as f64)
}

/// Layer 1 (runner): the full CAFQA run at B = 1 — warm-up, acquisition,
/// both polish phases — reproduces the frozen serial runner bit-for-bit
/// on a real molecular problem with a sector penalty.
#[test]
fn run_cafqa_b1_matches_frozen_runner() {
    let (hamiltonian, number_op, electrons) = h2_ingredients();
    let ansatz = EfficientSu2::new(2, 1);
    let opts =
        CafqaOptions { warmup: 50, iterations: 80, proposals_per_refit: 1, ..Default::default() };
    let penalty = || vec![Penalty::new("n", &number_op, electrons, 1.0)];
    let seeds = vec![ansatz.basis_state_config(0b01)];
    let frozen = reference_run_cafqa(&ansatz, &hamiltonian, penalty(), &seeds, &opts);
    for workers in [1usize, 2, 8] {
        let engine = ExecEngine::new(workers);
        let result = run_cafqa_on(&engine, &ansatz, &hamiltonian, penalty(), &seeds, &opts);
        assert_cafqa_results_identical(&result, &frozen, &format!("{workers} workers vs frozen"));
    }
}

/// Layer 2 (runner): a wide-register search (large enough that warm-up
/// batches really dispatch to the pool) is bit-identical at 1/2/8
/// workers with the default batched acquisition.
#[test]
fn run_cafqa_trace_invariant_across_worker_counts() {
    // A synthetic 6-qubit Hamiltonian dense enough to clear the batch
    // dispatch threshold (per-candidate cost ∝ terms × qubits).
    let mut seed = 0x5EED_u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let hamiltonian = PauliOp::from_terms(
        6,
        (0..64).map(|i| {
            let x = next() & 0x3F;
            let z = next() & 0x3F;
            (Complex64::from(0.02 * (i as f64 + 1.0)), PauliString::from_masks(6, x, z))
        }),
    );
    let ansatz = EfficientSu2::new(6, 1);
    let opts = CafqaOptions { warmup: 80, iterations: 60, polish_sweeps: 2, ..Default::default() };
    let reference = run_cafqa_on(&ExecEngine::serial(), &ansatz, &hamiltonian, vec![], &[], &opts);
    for workers in [2usize, 8] {
        let engine = ExecEngine::new(workers);
        let result = run_cafqa_on(&engine, &ansatz, &hamiltonian, vec![], &[], &opts);
        assert_cafqa_results_identical(&result, &reference, &format!("{workers} vs serial"));
    }
}

/// Layer 2 (term sharding): a full search over a ≥ 4096-term Hamiltonian
/// — where every candidate's term sum shards across the pool from inside
/// the batch workers ([`cafqa_core::ExecEngine::map_nested`]) — is
/// bit-identical at 1/2/8 workers.
#[test]
fn run_cafqa_term_sharded_trace_invariant_across_worker_counts() {
    let mut seed = 0xC12_u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    // 4300 distinct terms on 10 qubits: over the sharding threshold, and
    // distinct by construction (code packed into the masks).
    let hamiltonian = PauliOp::from_terms(
        10,
        (0..4300u64).map(|code| {
            let x = code & 0x3FF;
            let z = (code >> 10) & 0x3FF;
            (
                Complex64::from(1e-3 * ((next() % 89) as f64 + 1.0)),
                PauliString::from_masks(10, x, z),
            )
        }),
    );
    assert!(hamiltonian.num_terms() >= 4096);
    let ansatz = EfficientSu2::new(10, 1);
    let opts = CafqaOptions {
        warmup: 24,
        iterations: 16,
        polish_sweeps: 0,
        forest_window: 12, // windowed refits must not break invariance either
        ..Default::default()
    };
    let reference = run_cafqa_on(&ExecEngine::serial(), &ansatz, &hamiltonian, vec![], &[], &opts);
    for workers in [2usize, 8] {
        let engine = ExecEngine::new(workers);
        let result = run_cafqa_on(&engine, &ansatz, &hamiltonian, vec![], &[], &opts);
        assert_cafqa_results_identical(
            &result,
            &reference,
            &format!("term-sharded {workers} vs serial"),
        );
    }
}

/// Layer 3: pooled batch evaluation equals the frozen spawn-per-batch
/// path (and the plain serial loop) on every candidate, bit for bit.
#[test]
fn pooled_batches_match_frozen_spawn_path() {
    let h: PauliOp = "0.5*XXII + 0.25*ZZZZ - 0.1*YIYI + 0.7*IZIZ + 0.3*XYZX".parse().unwrap();
    let ansatz = EfficientSu2::new(4, 1);
    let engine = ExecEngine::new(4);
    let objective = CliffordObjective::new(&ansatz, &h).with_engine(engine);
    let configs: Vec<Vec<usize>> = (0..256u64)
        .map(|code| (0..16).map(|i| ((code.wrapping_mul(193) >> i) & 3) as usize).collect())
        .collect();
    let pooled = objective.evaluate_batch(&configs);
    for workers in [2usize, 4, 8] {
        let spawned = reference_evaluate_batch_spawn(&objective, &configs, workers);
        for (p, s) in pooled.iter().zip(&spawned) {
            assert_eq!(p.energy.to_bits(), s.energy.to_bits(), "{workers} spawn workers");
            assert_eq!(p.penalized.to_bits(), s.penalized.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property form of layer 1: for random seeds and budgets, B = 1
    /// batched minimize equals the frozen reference exactly.
    #[test]
    fn minimize_b1_equivalence_holds_for_random_seeds(
        rng_seed in 0u64..10_000,
        warmup in 5usize..40,
        iterations in 10usize..60,
    ) {
        let cardinalities = vec![4usize; 6];
        let opts = BoOptions {
            warmup,
            iterations,
            proposals_per_refit: 1,
            seed: rng_seed,
            ..Default::default()
        };
        let f = |c: &[usize]| {
            c.iter().enumerate().map(|(i, &v)| (v as f64 - (i % 3) as f64).powi(2)).sum::<f64>()
        };
        let frozen = reference_minimize(&cardinalities, f, &[], &opts);
        let space = cafqa_bayesopt::SearchSpace { cardinalities: cardinalities.clone() };
        let batched = minimize(
            &space,
            |batch: &[Vec<usize>]| batch.iter().map(|c| f(c)).collect(),
            &[],
            &opts,
        );
        prop_assert_eq!(batched.history.len(), frozen.history.len());
        for (x, y) in batched.history.iter().zip(&frozen.history) {
            prop_assert_eq!(&x.config, &y.config);
            prop_assert_eq!(x.value.to_bits(), y.value.to_bits());
        }
        prop_assert_eq!(batched.best_config, frozen.best_config);
        prop_assert_eq!(batched.iterations_to_best, frozen.iterations_to_best);
    }

    /// Property form of layer 2: random batches evaluate bit-identically
    /// through the engine at any worker count.
    #[test]
    fn batch_evaluation_worker_invariance(
        codes in proptest::collection::vec(0u64..65_536, 1..48),
        workers in 2usize..9,
    ) {
        let h: PauliOp = "0.5*XX + 0.25*ZZ - 0.1*YI + 0.7*IZ".parse().unwrap();
        let ansatz = EfficientSu2::new(2, 1);
        let objective = CliffordObjective::new(&ansatz, &h);
        let configs: Vec<Vec<usize>> = codes
            .iter()
            .map(|&code| (0..8).map(|i| ((code >> (2 * i)) & 3) as usize).collect())
            .collect();
        let sharded = objective.evaluate_batch_with_workers(&configs, workers);
        let serial = objective.evaluate_batch_with_workers(&configs, 1);
        for (s, r) in sharded.iter().zip(&serial) {
            prop_assert_eq!(s.energy.to_bits(), r.energy.to_bits());
            prop_assert_eq!(s.penalized.to_bits(), r.penalized.to_bits());
        }
    }
}
