//! The kT screening equivalence suite (tier-1): `screen_tolerance = 0`
//! must reproduce the PR 6 kT search — the pre-screening
//! compiled/engine path — **bit for bit** at any worker count, and keep
//! the frozen `reference_kt` relations (equal-or-better energy on the
//! same seeds and budget, zero rejected evaluations against the
//! rejection-sampled baseline). A *binding* tolerance must actually
//! skip classes, stay within the configured tolerance on every
//! candidate, and report worker-count-independent counters.

use cafqa_bench::reference_kt;
use cafqa_circuit::{Ansatz, EfficientSu2};
use cafqa_core::{kt_session, run_cafqa_kt_on, CafqaKtResult, CafqaOptions, ExecEngine};
use cafqa_linalg::Complex64;
use cafqa_pauli::{PauliOp, PauliString};

/// A deterministic random Pauli operator with tiered coefficient
/// weights (heavy, mid, light, feather) so a mid-sized tolerance
/// screens some terms' classes and not others'.
fn tiered_op(nq: usize, terms: usize, seed: u64) -> PauliOp {
    let mask = (1u64 << nq) - 1;
    let mut state = seed;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let tier = [0.35, 0.05, 1e-3, 1e-4];
    PauliOp::from_terms(
        nq,
        (0..terms).map(|i| {
            let x = next() & mask;
            let z = next() & mask;
            let c = tier[i % 4] * f64::from((i % 7) as u32 + 1);
            (Complex64::new(c, 0.0), PauliString::from_masks(nq, x, z))
        }),
    )
}

/// 8-ary configurations with exactly `t` odd (branching) entries.
fn configs_with_t(d: usize, t: usize, count: usize) -> Vec<Vec<usize>> {
    (0..count)
        .map(|s| {
            let mut config: Vec<usize> =
                (0..d).map(|i| 2 * ((s.wrapping_mul(31) + i * 7) % 4)).collect();
            for j in 0..t {
                let slot = (s.wrapping_mul(13) + j * 5) % d;
                config[(slot + j) % d] |= 1;
            }
            config
        })
        .collect()
}

fn bits_of(r: &CafqaKtResult) -> Vec<(u64, u64)> {
    r.trace.iter().map(|p| (p.energy.to_bits(), p.penalized.to_bits())).collect()
}

/// `screen_tolerance = 0.0` (and `kt_rank_top = 0`) is the PR 6 search,
/// bit for bit, at workers 1, 2 and 8 — and beats the frozen
/// rejection-sampled `reference_kt` on the same seeds and budget.
#[test]
fn zero_tolerance_reproduces_the_pr6_search_against_reference_kt() {
    let ansatz = EfficientSu2::new(3, 1);
    let h = tiered_op(3, 24, 0x5C4EE);
    let opts = CafqaOptions { warmup: 20, iterations: 30, polish_sweeps: 1, ..Default::default() };
    let k_max = 2;
    // The PR 6 path: the options predate screening, so the legacy
    // defaults *are* the pre-screening search.
    let legacy = {
        let engine = ExecEngine::new(1);
        run_cafqa_kt_on(&engine, &ansatz, &h, Vec::new(), k_max, &[], &opts).unwrap()
    };
    let explicit = CafqaOptions { screen_tolerance: 0.0, kt_rank_top: 0, ..opts.clone() };
    for workers in [1usize, 2, 8] {
        let engine = ExecEngine::new(workers);
        let run = run_cafqa_kt_on(&engine, &ansatz, &h, Vec::new(), k_max, &[], &explicit).unwrap();
        assert_eq!(run.best_config, legacy.best_config, "workers {workers}");
        assert_eq!(run.energy.to_bits(), legacy.energy.to_bits(), "workers {workers}");
        assert_eq!(bits_of(&run), bits_of(&legacy), "workers {workers}");
        assert_eq!(run.iterations_to_best, legacy.iterations_to_best, "workers {workers}");
        assert_eq!(run.screened_classes, 0, "workers {workers}");
        assert_eq!(run.screened_moves, 0, "workers {workers}");
    }
    // The frozen pre-port loop on the same seeds and budget: the genome
    // search must match or beat it without wasting a single evaluation,
    // while the 8-ary rejection loop keeps burning budget.
    let reference = reference_kt(&ansatz, &h, &[], k_max, &[], &opts);
    assert!(
        legacy.energy <= reference.energy + 1e-9,
        "engine {} vs reference {}",
        legacy.energy,
        reference.energy
    );
    assert_eq!(legacy.rejected_evaluations, 0);
    assert!(reference.rejected_evaluations > 0, "the 8-ary reference should reject some");
}

/// A binding tolerance skips classes, stays within the configured
/// tolerance on every candidate, and its counters are identical at any
/// worker count.
#[test]
fn binding_tolerance_screens_within_tolerance_at_any_worker_count() {
    let nq = 6;
    let ansatz = EfficientSu2::new(nq, 1);
    let d = ansatz.num_parameters();
    let h = tiered_op(nq, 48, 0x2B7);
    let tol = 2e-3;
    let configs = configs_with_t(d, 5, 24);
    let mut baseline: Option<(Vec<u64>, u64)> = None;
    for workers in [1usize, 2, 8] {
        let engine = ExecEngine::new(workers);
        let mut exact = kt_session(&engine, &ansatz, &h, &[], 0.0).expect("template compiles");
        let mut screened = kt_session(&engine, &ansatz, &h, &[], tol).expect("template compiles");
        let ev = exact.evaluate_batch(&configs);
        let sv = screened.evaluate_batch(&configs);
        assert_eq!(exact.skipped_classes(), 0);
        assert!(screened.skipped_classes() > 0, "tolerance {tol} never fired");
        for (e, s) in ev.iter().zip(&sv) {
            assert!(
                (e.energy - s.energy).abs() <= tol,
                "screened {} vs exact {} beyond tol {tol}",
                s.energy,
                e.energy
            );
        }
        let bits: Vec<u64> = sv.iter().map(|v| v.energy.to_bits()).collect();
        match &baseline {
            None => baseline = Some((bits, screened.skipped_classes())),
            Some((b_bits, b_skipped)) => {
                assert_eq!(&bits, b_bits, "workers {workers}");
                assert_eq!(screened.skipped_classes(), *b_skipped, "workers {workers}");
            }
        }
    }
}

/// The coarse ranking scores order candidate moves consistently with
/// the exact objective on bound-dominated gaps: the exact best of a
/// batch is always within the top half of the ranking.
#[test]
fn rank_scores_keep_the_exact_winner_near_the_top() {
    let nq = 4;
    let ansatz = EfficientSu2::new(nq, 1);
    let d = ansatz.num_parameters();
    let h = tiered_op(nq, 32, 0xA11CE);
    let engine = ExecEngine::new(2);
    let mut session = kt_session(&engine, &ansatz, &h, &[], 0.0).expect("template compiles");
    let base: Vec<usize> = configs_with_t(d, 3, 1).remove(0);
    // A coordinate batch at parameter 0, like the polish builds.
    let variants: Vec<Vec<usize>> = (0..8)
        .filter(|&v| v != base[0] && v % 2 == base[0] % 2)
        .map(|v| {
            let mut c = base.clone();
            c[0] = v;
            c
        })
        .collect();
    let exact = session.evaluate_variants(&base, &[0], &variants);
    let scores = session.rank_variants(&base, &[0], &variants);
    assert_eq!(scores.len(), variants.len());
    let exact_best = exact
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.penalized.total_cmp(&b.1.penalized))
        .map(|(i, _)| i)
        .unwrap();
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let position = order.iter().position(|&i| i == exact_best).unwrap();
    assert!(position <= scores.len() / 2, "exact winner ranked {position} of {}", scores.len());
}
