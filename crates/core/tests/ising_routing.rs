//! Routing contract of the Ising fast path.
//!
//! Four layers:
//!
//! 1. **Classifier soundness** (proptest): `classify_ising` partitions
//!    every generated Hamiltonian — `Some` exactly when an independent
//!    reimplementation of the structural predicate (all term weights
//!    ≤ 2, every qubit column single-axis, zero-coefficient terms
//!    ignored) says so, so a non-Ising term set can never route; and on
//!    classified instances the reduced objective agrees with the
//!    tableau objective through the eigenstate lift at every probed
//!    assignment.
//! 2. **Exactness on MaxCut** (proptest): the routed `run_cafqa_on`
//!    energy equals `−max_cut_exact` on n ≤ 16 Erdős–Rényi instances,
//!    in a single evaluation.
//! 3. **Batch worker invariance**: `solve_ising_batch_on` returns
//!    bit-identical results at worker counts {1, 2, 8}, on a mixed
//!    batch (fast-path and full-search instances).
//! 4. **Fallback bit-identity**: non-Ising inputs produce results
//!    bit-for-bit equal to the unrouted (`IsingFastPath::Off`) path —
//!    the hook is invisible when it does not fire.

use cafqa_circuit::{Ansatz, EfficientSu2, LocalBasis};
use cafqa_core::ising::EXACT_SOLVE_CAP;
use cafqa_core::maxcut::{maxcut_hamiltonian, Graph};
use cafqa_core::{
    classify_ising, run_cafqa_on, solve_ising_batch_on, CafqaOptions, CafqaResult,
    CliffordObjective, ExecEngine, IsingFastPath, IsingInstance,
};
use cafqa_linalg::Complex64;
use cafqa_pauli::{Pauli, PauliOp, PauliString};
use proptest::prelude::*;

/// The structural predicate, reimplemented independently of the
/// production classifier: Ising-class iff every term with nonzero real
/// coefficient has weight ≤ 2 and no qubit is touched by two different
/// Pauli axes.
fn is_ising_class(h: &PauliOp) -> bool {
    let mut axis: Vec<Option<Pauli>> = vec![None; h.num_qubits()];
    for (s, c) in h.iter() {
        if c.re == 0.0 {
            continue;
        }
        if s.weight() > 2 {
            return false;
        }
        for (q, slot) in axis.iter_mut().enumerate() {
            let p = s.pauli_at(q);
            if p == Pauli::I {
                continue;
            }
            match *slot {
                Some(a) if a != p => return false,
                _ => *slot = Some(p),
            }
        }
    }
    true
}

fn assert_results_bitwise(a: &CafqaResult, b: &CafqaResult, what: &str) {
    assert_eq!(a.best_config, b.best_config, "{what}: best_config");
    assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "{what}: energy");
    assert_eq!(a.penalized.to_bits(), b.penalized.to_bits(), "{what}: penalized");
    assert_eq!(a.evaluations, b.evaluations, "{what}: evaluations");
    assert_eq!(a.polish_evaluations, b.polish_evaluations, "{what}: polish_evaluations");
    assert_eq!(a.iterations_to_best, b.iterations_to_best, "{what}: iterations_to_best");
    assert_eq!(a.trace.len(), b.trace.len(), "{what}: trace length");
    for (i, (x, y)) in a.trace.iter().zip(&b.trace).enumerate() {
        assert_eq!(x.energy.to_bits(), y.energy.to_bits(), "{what}: trace[{i}].energy");
        assert_eq!(x.penalized.to_bits(), y.penalized.to_bits(), "{what}: trace[{i}].penalized");
        assert_eq!(
            x.best_so_far.to_bits(),
            y.best_so_far.to_bits(),
            "{what}: trace[{i}].best_so_far"
        );
    }
}

/// A small full-search budget for the fallback instances, so the mixed
/// batch and bit-identity runs stay fast.
fn tiny_opts() -> CafqaOptions {
    CafqaOptions { warmup: 10, iterations: 15, polish_sweeps: 1, ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Layer 1: the classifier decision matches the independent
    /// predicate on arbitrary mask-form term sets — in particular, no
    /// non-Ising Hamiltonian ever classifies — and classified forms
    /// agree with the tableau objective through the lift.
    #[test]
    fn classifier_partitions_and_matches_tableau(
        raw in proptest::collection::vec((0u64..64, 0u64..64, -2.0f64..2.0), 1..10),
        diagonal_code in 0u32..2,
        probe in 0u64..(1 << 20),
    ) {
        let n = 6usize;
        let mask = (1u64 << n) - 1;
        let diagonal_only = diagonal_code == 0;
        let h = PauliOp::from_terms(
            n,
            raw.iter().map(|&(x, z, w)| {
                let x = if diagonal_only { 0 } else { x & mask };
                (Complex64::from(w), PauliString::from_masks(n, x, z & mask))
            }),
        );
        let classified = classify_ising(&h);
        prop_assert_eq!(classified.is_some(), is_ising_class(&h));
        if let Some(form) = classified {
            // All-I columns default to Z.
            prop_assert_eq!(form.bases.len(), n);
            let ansatz = EfficientSu2::new(n, 1);
            let objective = CliffordObjective::new(&ansatz, &h);
            for bits in [0u64, probe & mask, !probe & mask] {
                let cfg = ansatz.eigenstate_config(bits, &form.bases).unwrap();
                let v = objective.evaluate(&cfg);
                prop_assert!(
                    (form.energy_of(bits) - v.energy).abs() < 1e-9,
                    "reduced {} vs tableau {} at {:06b}", form.energy_of(bits), v.energy, bits
                );
            }
        }
    }

    /// Layer 2: on n ≤ 16 MaxCut the routed energy is the exact
    /// optimum, found in one evaluation (the instance never enters the
    /// BO pipeline).
    #[test]
    fn fast_path_is_exact_on_maxcut(
        n in 4usize..17,
        p_percent in 20u32..80,
        seed in 0u64..1_000,
    ) {
        assert!(n <= EXACT_SOLVE_CAP, "n ≤ 16 instances must solve exactly");
        let g = Graph::random(n, f64::from(p_percent) / 100.0, seed);
        let h = maxcut_hamiltonian(&g);
        let ansatz = EfficientSu2::new(n, 1);
        let engine = ExecEngine::serial();
        let result = run_cafqa_on(&engine, &ansatz, &h, vec![], &[], &tiny_opts());
        prop_assert_eq!(result.evaluations, 1);
        prop_assert_eq!(result.polish_evaluations, 0);
        let optimum = g.max_cut_exact();
        prop_assert!(
            (result.energy + optimum).abs() < 1e-9,
            "routed energy {} vs optimum {}", result.energy, -optimum
        );
    }
}

/// The X/Y column lifts against the tableau, on hand-checked instances:
/// `w·P₀P₁ − 0.5·P₀` minimizes to `−1.5` at eigenvalues `(+1, −1)` for
/// each axis `P ∈ {X, Y, Z}`.
#[test]
fn rotated_columns_route_to_exact_product_eigenstates() {
    for (label, bases) in [
        ("1.0*XX - 0.5*XI", [LocalBasis::X; 2]),
        ("1.0*YY - 0.5*YI", [LocalBasis::Y; 2]),
        ("1.0*ZZ - 0.5*ZI", [LocalBasis::Z; 2]),
    ] {
        let h: PauliOp = label.parse().unwrap();
        let form = classify_ising(&h).unwrap();
        assert_eq!(form.bases, bases, "{label}");
        let ansatz = EfficientSu2::new(2, 1);
        let engine = ExecEngine::serial();
        let result = run_cafqa_on(&engine, &ansatz, &h, vec![], &[], &tiny_opts());
        assert_eq!(result.evaluations, 1, "{label} must route");
        assert!((result.energy - (-1.5)).abs() < 1e-12, "{label}: {}", result.energy);
    }
}

/// Layer 3: whole-instance sharding is a pure throughput knob — the
/// batch results are bit-identical at 1, 2 and 8 workers, including the
/// full-search instance that falls back inside a pool worker.
#[test]
fn batch_results_bit_identical_across_worker_counts() {
    let mut instances: Vec<IsingInstance> = vec![
        IsingInstance::new(EfficientSu2::new(8, 1), maxcut_hamiltonian(&Graph::random(8, 0.5, 17))),
        IsingInstance::new(EfficientSu2::new(9, 1), maxcut_hamiltonian(&Graph::ring(9))),
        IsingInstance::new(EfficientSu2::new(8, 1), maxcut_hamiltonian(&Graph::complete(8))),
        IsingInstance::new(
            EfficientSu2::new(10, 1),
            maxcut_hamiltonian(&Graph::random_weighted(10, 0.4, 7)),
        ),
    ];
    // A non-Ising instance exercises the in-worker full-search fallback.
    instances.push(IsingInstance::new(
        EfficientSu2::new(2, 1),
        "0.5*XX + 0.25*ZZ - 0.1*YI + 0.7*IZ".parse().unwrap(),
    ));
    let opts = tiny_opts();
    let reference = solve_ising_batch_on(&ExecEngine::new(1), &instances, &opts);
    assert_eq!(reference.len(), instances.len());
    for workers in [2usize, 8] {
        let engine = ExecEngine::new(workers);
        let results = solve_ising_batch_on(&engine, &instances, &opts);
        for (i, (r, s)) in reference.iter().zip(&results).enumerate() {
            assert_results_bitwise(r, s, &format!("instance {i} at {workers} workers"));
        }
    }
    // The fast-path instances solved to their exact optima on the way.
    for (instance, result) in instances.iter().zip(&reference).take(4) {
        let form = classify_ising(&instance.hamiltonian).expect("MaxCut classifies");
        let (_, reduced) = form.solve(opts.seed).expect("within the solve cap");
        assert!((result.energy - reduced).abs() < 1e-9);
    }
}

/// Layer 4: when the hook does not fire, it is invisible — non-Ising
/// inputs run bit-for-bit the unrouted pipeline.
#[test]
fn non_ising_inputs_pin_to_unrouted_run_cafqa() {
    let cases: Vec<(&str, PauliOp, usize)> = vec![
        ("mixed column", "0.5*XX + 0.25*ZZ - 0.1*YI + 0.7*IZ".parse().unwrap(), 2),
        ("weight 3", "0.3*ZZZ + 0.5*ZIZ - 0.2*IZI".parse().unwrap(), 3),
    ];
    let engine = ExecEngine::new(2);
    for (what, h, n) in cases {
        let ansatz = EfficientSu2::new(n, 1);
        let seeds = vec![vec![0usize; ansatz.num_parameters()]];
        let auto = CafqaOptions { ising_fast_path: IsingFastPath::Auto, ..tiny_opts() };
        let off = CafqaOptions { ising_fast_path: IsingFastPath::Off, ..tiny_opts() };
        let routed = run_cafqa_on(&engine, &ansatz, &h, vec![], &seeds, &auto);
        let unrouted = run_cafqa_on(&engine, &ansatz, &h, vec![], &seeds, &off);
        assert!(routed.evaluations > 1, "{what}: must fall back to the full search");
        assert_results_bitwise(&routed, &unrouted, what);
    }
}

/// `Force` is loud on unroutable instances instead of silently slow.
#[test]
#[should_panic(expected = "not Ising-class")]
fn force_panics_on_non_ising_input() {
    let h: PauliOp = "0.5*XX + 0.25*ZZ".parse().unwrap();
    let ansatz = EfficientSu2::new(2, 1);
    let opts = CafqaOptions { ising_fast_path: IsingFastPath::Force, ..tiny_opts() };
    run_cafqa_on(&ExecEngine::serial(), &ansatz, &h, vec![], &[], &opts);
}

/// Routed runs keep the never-worse-than-seed guarantee: the seed is
/// evaluated in the same batch and the first minimiser wins.
#[test]
fn routed_run_never_worse_than_seed() {
    let g = Graph::random(10, 0.4, 41);
    let h = maxcut_hamiltonian(&g);
    let ansatz = EfficientSu2::new(10, 1);
    let objective = CliffordObjective::new(&ansatz, &h);
    let seed_cfg = ansatz.basis_state_config(0b10110);
    let seed_energy = objective.evaluate(&seed_cfg).energy;
    let engine = ExecEngine::serial();
    let result = run_cafqa_on(&engine, &ansatz, &h, vec![], &[seed_cfg], &tiny_opts());
    assert_eq!(result.evaluations, 2, "winner + seed, one batch");
    assert!(result.energy <= seed_energy + 1e-12);
}
