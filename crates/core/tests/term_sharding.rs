//! Boundary contract of the term-sharded expectation path.
//!
//! `CliffordObjective` switches from a straight term sum to the fixed
//! 8-chunk association at 4096 Hamiltonian terms, and — given an engine —
//! shards those chunks across pool workers from inside a single candidate
//! evaluation (`ExecEngine::map_nested`). The contract is that none of
//! this is observable in the numbers: at 4095, 4096 and 4097 terms, on
//! engines of 1, 2 and 8 workers, through both the single-candidate and
//! the batch entry points, every energy is bit-identical to the serial
//! chunked sum.

use cafqa_circuit::{Ansatz, EfficientSu2};
use cafqa_core::{CliffordObjective, ExecEngine, ObjectiveValue};
use cafqa_linalg::Complex64;
use cafqa_pauli::{PauliOp, PauliString};

const QUBITS: usize = 12;

/// A dense synthetic Hamiltonian with exactly `n_terms` distinct Pauli
/// strings: the term code is packed bitwise into the (x, z) masks, so
/// distinct codes can never collide and the term count is exact.
fn dense_hamiltonian(n_terms: usize) -> PauliOp {
    let op = PauliOp::from_terms(
        QUBITS,
        (0..n_terms).map(|code| {
            let x = (code & 0xFFF) as u64;
            let z = ((code >> 12) & 0xFFF) as u64;
            let coeff = 0.001 * ((code % 97) as f64 + 1.0);
            (Complex64::from(coeff), PauliString::from_masks(QUBITS, x, z))
        }),
    );
    assert_eq!(op.num_terms(), n_terms, "synthetic terms must not collide");
    op
}

/// Deterministic pseudo-random configurations for the 48-parameter ansatz.
fn probe_configs(count: usize, params: usize) -> Vec<Vec<usize>> {
    (0..count as u64)
        .map(|k| {
            let mut state = k.wrapping_mul(0x9E37_79B9).wrapping_add(0xCAF9A);
            (0..params)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (state & 3) as usize
                })
                .collect()
        })
        .collect()
}

fn assert_values_bit_identical(a: &[ObjectiveValue], b: &[ObjectiveValue], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.energy.to_bits(), y.energy.to_bits(), "{label}: energy at {i}");
        assert_eq!(x.penalized.to_bits(), y.penalized.to_bits(), "{label}: penalized at {i}");
    }
}

/// The satellite contract: 4095 (below threshold), 4096 (at threshold,
/// sharding turns on) and 4097 (above) term counts are all bit-identical
/// to the serial chunked sum at every worker count, on both evaluation
/// entry points.
#[test]
fn threshold_boundary_bit_identical_across_workers() {
    let ansatz = EfficientSu2::new(QUBITS, 1);
    let configs = probe_configs(4, ansatz.num_parameters());
    for n_terms in [4095usize, 4096, 4097] {
        let hamiltonian = dense_hamiltonian(n_terms);
        let reference =
            CliffordObjective::new(&ansatz, &hamiltonian).with_engine(ExecEngine::serial());
        let expected: Vec<ObjectiveValue> = configs.iter().map(|c| reference.evaluate(c)).collect();
        for workers in [1usize, 2, 8] {
            let label = format!("{n_terms} terms, {workers} workers");
            let objective =
                CliffordObjective::new(&ansatz, &hamiltonian).with_engine(ExecEngine::new(workers));
            // Single-candidate path: the term sum itself is what shards.
            let singles: Vec<ObjectiveValue> =
                configs.iter().map(|c| objective.evaluate(c)).collect();
            assert_values_bit_identical(&singles, &expected, &format!("{label}, single"));
            // Batch path: outer candidate shards term-shard from inside
            // the pool (nested dispatch).
            let batch = objective.evaluate_batch(&configs);
            assert_values_bit_identical(&batch, &expected, &format!("{label}, batch"));
        }
    }
}

/// The wide-tier counterpart: 65 535 (still the 8-chunk association),
/// 65 536 (the 32-chunk wide tier turns on) and 65 537 term counts are
/// all bit-identical to the serial chunked sum at every worker count, on
/// both evaluation entry points — the tier is a pure function of the
/// term count, so widening the chunk fan-out never changes a number.
#[test]
fn wide_tier_boundary_bit_identical_across_workers() {
    let ansatz = EfficientSu2::new(QUBITS, 1);
    let configs = probe_configs(2, ansatz.num_parameters());
    for n_terms in [65_535usize, 65_536, 65_537] {
        let hamiltonian = dense_hamiltonian(n_terms);
        let reference =
            CliffordObjective::new(&ansatz, &hamiltonian).with_engine(ExecEngine::serial());
        let expected: Vec<ObjectiveValue> = configs.iter().map(|c| reference.evaluate(c)).collect();
        for workers in [1usize, 2, 8] {
            let label = format!("{n_terms} terms, {workers} workers");
            let objective =
                CliffordObjective::new(&ansatz, &hamiltonian).with_engine(ExecEngine::new(workers));
            let singles: Vec<ObjectiveValue> =
                configs.iter().map(|c| objective.evaluate(c)).collect();
            assert_values_bit_identical(&singles, &expected, &format!("{label}, single"));
            let batch = objective.evaluate_batch(&configs);
            assert_values_bit_identical(&batch, &expected, &format!("{label}, batch"));
        }
    }
}

/// Crossing the wide-tier threshold changes only the fold association
/// (8 chunks → 32 chunks), never the physics: summing the same terms
/// under both associations agrees to floating-point reassociation noise.
#[test]
fn wide_tier_association_change_is_reassociation_only() {
    let ansatz = EfficientSu2::new(QUBITS, 1);
    let config = &probe_configs(1, ansatz.num_parameters())[0];
    // Both tiers against the association-free per-term sweep: the
    // 8-chunk fold at 65 535 terms and the 32-chunk fold at 65 536 terms
    // must each match the plain term-order sum to reassociation noise,
    // so crossing the threshold can only move an energy within that
    // same tolerance band.
    for n_terms in [65_535usize, 65_536] {
        let op = dense_hamiltonian(n_terms);
        let objective = CliffordObjective::new(&ansatz, &op).with_engine(ExecEngine::serial());
        let chunked = objective.evaluate(config).energy;
        let per_term: f64 =
            objective.term_expectations(config).iter().map(|(_, c, e)| c * *e as f64).sum();
        let scale = chunked.abs().max(1.0);
        assert!(
            (per_term - chunked).abs() <= 1e-9 * scale,
            "{n_terms} terms: chunked fold must be reassociation-only: {chunked} vs {per_term}"
        );
    }
}

/// The neighbor-evaluation boundary case: incremental polish
/// evaluations on a ≥ 4096-term Hamiltonian must reuse the *same* fixed
/// 8-chunk association as full evaluations — at 4095 (below threshold),
/// 4096 (sharding turns on) and 4097 (above) terms, every neighbor
/// energy is bit-identical to a full serial evaluation of the patched
/// configuration, at every worker count, before and after an accepted
/// move.
#[test]
fn neighbor_evaluation_reuses_chunk_association_at_boundary() {
    let ansatz = EfficientSu2::new(QUBITS, 1);
    let d = ansatz.num_parameters();
    let base = probe_configs(1, d).remove(0);
    // Coordinate moves at the boundary slots and a pair spanning the
    // register — the polish shapes.
    let moves: Vec<Vec<(usize, usize)>> = (0..4)
        .flat_map(|v| [vec![(0, v)], vec![(d - 1, v)]])
        .chain((0..16).map(|code| vec![(1, code / 4), (d - 2, code % 4)]))
        .collect();
    for n_terms in [4095usize, 4096, 4097] {
        let hamiltonian = dense_hamiltonian(n_terms);
        let reference =
            CliffordObjective::new(&ansatz, &hamiltonian).with_engine(ExecEngine::serial());
        let expected: Vec<ObjectiveValue> = moves
            .iter()
            .map(|mv| {
                let mut config = base.clone();
                for &(slot, v) in mv {
                    config[slot] = v;
                }
                reference.evaluate(&config)
            })
            .collect();
        for workers in [1usize, 2, 8] {
            let label = format!("{n_terms} terms, {workers} workers");
            let objective =
                CliffordObjective::new(&ansatz, &hamiltonian).with_engine(ExecEngine::new(workers));
            let mut session = objective.polish_session(base.clone()).unwrap();
            let values = session.evaluate_moves(&moves);
            assert_values_bit_identical(&values, &expected, &format!("{label}, neighbor"));
            // After an accepted move the session base shifts; neighbor
            // energies must still match full evaluations of the new
            // neighborhood.
            session.accept(&[(2, (base[2] + 1) % 4)]);
            let mut shifted = base.clone();
            shifted[2] = (base[2] + 1) % 4;
            let post_moves: Vec<Vec<(usize, usize)>> = (0..4).map(|v| vec![(3, v)]).collect();
            let post = session.evaluate_moves(&post_moves);
            let post_expected: Vec<ObjectiveValue> = post_moves
                .iter()
                .map(|mv| {
                    let mut config = shifted.clone();
                    for &(slot, v) in mv {
                        config[slot] = v;
                    }
                    reference.evaluate(&config)
                })
                .collect();
            assert_values_bit_identical(&post, &post_expected, &format!("{label}, post-accept"));
        }
    }
}

/// Term sharding composes with penalties (which always stay on the
/// calling thread) without perturbing either value.
#[test]
fn sharded_expectation_composes_with_penalties() {
    use cafqa_core::Penalty;
    let ansatz = EfficientSu2::new(QUBITS, 1);
    let hamiltonian = dense_hamiltonian(4608);
    let z_op: PauliOp = "ZIIIIIIIIIII".parse().unwrap();
    let configs = probe_configs(3, ansatz.num_parameters());
    let build = |engine: ExecEngine| {
        CliffordObjective::new(&ansatz, &hamiltonian)
            .with_penalty(Penalty::new("z", &z_op, 1.0, 0.7))
            .with_engine(engine)
    };
    let reference = build(ExecEngine::serial());
    let pooled = build(ExecEngine::new(4));
    for config in &configs {
        let a = reference.evaluate(config);
        let b = pooled.evaluate(config);
        assert_eq!(a.energy.to_bits(), b.energy.to_bits());
        assert_eq!(a.penalized.to_bits(), b.penalized.to_bits());
        assert_ne!(a.energy, a.penalized, "penalty must actually bite");
    }
}

/// `term_expectations` (the Fig. 6 sweep) shards large Hamiltonians over
/// the engine and must reassemble in exact term order.
#[test]
fn term_expectations_sharded_matches_serial_order() {
    let ansatz = EfficientSu2::new(QUBITS, 1);
    let hamiltonian = dense_hamiltonian(4100);
    let config = &probe_configs(1, ansatz.num_parameters())[0];
    let serial = CliffordObjective::new(&ansatz, &hamiltonian)
        .with_engine(ExecEngine::serial())
        .term_expectations(config);
    let pooled = CliffordObjective::new(&ansatz, &hamiltonian)
        .with_engine(ExecEngine::new(4))
        .term_expectations(config);
    assert_eq!(serial.len(), pooled.len());
    for ((ps, cs, es), (pp, cp, ep)) in serial.iter().zip(&pooled) {
        assert_eq!(ps, pp, "term order must be preserved");
        assert_eq!(cs.to_bits(), cp.to_bits());
        assert_eq!(es, ep);
    }
}
