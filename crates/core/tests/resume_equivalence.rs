//! The checkpoint/resume bit-identity contract of
//! `run_cafqa_resumable_on` — the serving layer's foundation.
//!
//! Four layers:
//!
//! 1. **Resume-at-refit-k equals uninterrupted**: suspend the BO phase
//!    after k live batches, resume from the returned checkpoint, and the
//!    completed `CafqaResult` — trace, configs, every energy bit — must
//!    equal the uninterrupted run's, for several k and at worker counts
//!    {1, 2, 8}.
//! 2. **Chained slices**: a job run as many one-refit slices (suspend
//!    after every live batch, resume, repeat — the serve scheduler's
//!    fair-share shape) completes bit-identical to the one-shot run.
//! 3. **Wrapper equivalence**: `run_cafqa_on` is the resumable runner
//!    with an always-Continue control — the pre-refactor path is pinned.
//! 4. **Structured failure**: mismatched fingerprints and checkpoints
//!    from a different seed stream reject with `ResumeError` instead of
//!    corrupting the search.

use cafqa_circuit::EfficientSu2;
use cafqa_core::fingerprint::job_fingerprint;
use cafqa_core::{
    run_cafqa_on, run_cafqa_resumable_on, CafqaOptions, CafqaResult, ExecEngine, Penalty,
    ResumeError, RunControl, RunStatus, SearchCheckpoint,
};
use cafqa_pauli::PauliOp;

fn assert_results_bitwise(a: &CafqaResult, b: &CafqaResult, what: &str) {
    assert_eq!(a.best_config, b.best_config, "{what}: best_config");
    assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "{what}: energy");
    assert_eq!(a.penalized.to_bits(), b.penalized.to_bits(), "{what}: penalized");
    assert_eq!(a.evaluations, b.evaluations, "{what}: evaluations");
    assert_eq!(a.polish_evaluations, b.polish_evaluations, "{what}: polish_evaluations");
    assert_eq!(a.iterations_to_best, b.iterations_to_best, "{what}: iterations_to_best");
    assert_eq!(a.trace.len(), b.trace.len(), "{what}: trace length");
    for (i, (x, y)) in a.trace.iter().zip(&b.trace).enumerate() {
        assert_eq!(x.energy.to_bits(), y.energy.to_bits(), "{what}: trace[{i}].energy");
        assert_eq!(x.penalized.to_bits(), y.penalized.to_bits(), "{what}: trace[{i}].penalized");
        assert_eq!(
            x.best_so_far.to_bits(),
            y.best_so_far.to_bits(),
            "{what}: trace[{i}].best_so_far"
        );
    }
}

/// A non-Ising 3-qubit instance (mixed columns), so the BO search —
/// not the structured fast path — is what gets checkpointed.
fn problem() -> (EfficientSu2, PauliOp) {
    let h: PauliOp = "0.5*XXI + 0.25*ZZI - 0.1*YIZ + 0.7*IZZ + 0.3*XIX - 0.2*IYY".parse().unwrap();
    (EfficientSu2::new(3, 1), h)
}

fn opts() -> CafqaOptions {
    CafqaOptions { warmup: 24, iterations: 48, polish_sweeps: 2, ..Default::default() }
}

/// Runs to completion with a control that suspends before live batch
/// `k`, then resumes once with an always-Continue control.
fn run_with_one_suspension(
    engine: &ExecEngine,
    k: usize,
    seeds: &[Vec<usize>],
) -> (CafqaResult, SearchCheckpoint) {
    let (ansatz, h) = problem();
    let opts = opts();
    let fingerprint = job_fingerprint(&ansatz, &h, &[], seeds, &opts);
    let status =
        run_cafqa_resumable_on(engine, &ansatz, &h, vec![], seeds, &opts, None, &mut |p| {
            if p.live_batches == k {
                RunControl::Suspend
            } else {
                RunControl::Continue
            }
        })
        .expect("fresh run cannot fail");
    let RunStatus::Suspended(mut checkpoint) = status else {
        panic!("control must suspend before live batch {k}");
    };
    checkpoint.fingerprint = fingerprint;
    let resumed = run_cafqa_resumable_on(
        engine,
        &ansatz,
        &h,
        vec![],
        seeds,
        &opts,
        Some(&checkpoint),
        &mut |_| RunControl::Continue,
    )
    .expect("fingerprint matches");
    let RunStatus::Complete(result) = resumed else {
        panic!("always-Continue resume must complete");
    };
    (result, checkpoint)
}

#[test]
fn resume_at_refit_k_is_bit_identical_to_uninterrupted() {
    let (ansatz, h) = problem();
    let opts = opts();
    let reference = run_cafqa_on(&ExecEngine::serial(), &ansatz, &h, vec![], &[], &opts);
    for workers in [1usize, 2, 8] {
        let engine = ExecEngine::new(workers);
        // k = 0 suspends before any work (warm-up included); larger k
        // land mid-acquisition.
        for k in [0usize, 1, 3, 7] {
            let (resumed, checkpoint) = run_with_one_suspension(&engine, k, &[]);
            assert_results_bitwise(&resumed, &reference, &format!("k = {k} at {workers} workers"));
            // The checkpoint is a strict prefix of the uninterrupted
            // evaluation sequence (whole-batch aligned).
            assert!(checkpoint.history.len() < reference.trace.len());
            for (i, (_, energy, penalized)) in checkpoint.history.iter().enumerate() {
                assert_eq!(energy.to_bits(), reference.trace[i].energy.to_bits());
                assert_eq!(penalized.to_bits(), reference.trace[i].penalized.to_bits());
            }
        }
    }
}

#[test]
fn chained_single_refit_slices_complete_bit_identical() {
    // The serve scheduler's fair-share shape: every slice runs exactly
    // one live batch, suspends, and re-resumes from its own checkpoint.
    let (ansatz, h) = problem();
    let opts = opts();
    let seeds = vec![vec![0usize; 12]];
    let reference = run_cafqa_on(&ExecEngine::serial(), &ansatz, &h, vec![], &seeds, &opts);
    for workers in [1usize, 2, 8] {
        let engine = ExecEngine::new(workers);
        let mut checkpoint: Option<SearchCheckpoint> = None;
        let mut slices = 0usize;
        let result = loop {
            slices += 1;
            assert!(slices < 1000, "runaway resume loop");
            let status = run_cafqa_resumable_on(
                &engine,
                &ansatz,
                &h,
                vec![],
                &seeds,
                &opts,
                checkpoint.as_ref(),
                &mut |p| {
                    if p.live_batches == 1 {
                        RunControl::Suspend
                    } else {
                        RunControl::Continue
                    }
                },
            )
            .expect("self-produced checkpoints always match");
            match status {
                RunStatus::Complete(result) => break result,
                RunStatus::Suspended(next) => {
                    // Progress: every slice must grow the history.
                    let prior = checkpoint.as_ref().map_or(0, |c| c.history.len());
                    assert!(next.history.len() > prior, "slice {slices} made no progress");
                    checkpoint = Some(next);
                }
            }
        };
        assert!(slices > 3, "the budget must span several slices, got {slices}");
        assert_results_bitwise(&result, &reference, &format!("sliced at {workers} workers"));
    }
}

#[test]
fn wrapper_matches_resumable_with_penalties_and_seeds() {
    // run_cafqa_on is now a shim over the resumable entry point; pin the
    // equivalence on a penalized, seeded instance (the molecular shape).
    let (ansatz, h) = problem();
    let opts = opts();
    let pen_op: PauliOp = "1.0*ZII + 1.0*IZI".parse().unwrap();
    let seeds = vec![vec![1usize; 12], vec![0usize; 12]];
    let engine = ExecEngine::new(2);
    let penalties = || vec![Penalty::new("n", &pen_op, 2.0, 0.7)];
    let direct = run_cafqa_on(&engine, &ansatz, &h, penalties(), &seeds, &opts);
    let status =
        run_cafqa_resumable_on(&engine, &ansatz, &h, penalties(), &seeds, &opts, None, &mut |_| {
            RunControl::Continue
        })
        .unwrap();
    let RunStatus::Complete(via_resumable) = status else { panic!("must complete") };
    assert_results_bitwise(&via_resumable, &direct, "wrapper vs resumable");
    // And a suspension mid-way through the penalized run still resumes
    // bit-identically.
    let fp = job_fingerprint(&ansatz, &h, &penalties(), &seeds, &opts);
    let status =
        run_cafqa_resumable_on(&engine, &ansatz, &h, penalties(), &seeds, &opts, None, &mut |p| {
            if p.live_batches == 2 {
                RunControl::Suspend
            } else {
                RunControl::Continue
            }
        })
        .unwrap();
    let RunStatus::Suspended(mut checkpoint) = status else { panic!("must suspend") };
    checkpoint.fingerprint = fp;
    let status = run_cafqa_resumable_on(
        &engine,
        &ansatz,
        &h,
        penalties(),
        &seeds,
        &opts,
        Some(&checkpoint),
        &mut |_| RunControl::Continue,
    )
    .unwrap();
    let RunStatus::Complete(resumed) = status else { panic!("must complete") };
    assert_results_bitwise(&resumed, &direct, "penalized resume");
}

#[test]
fn foreign_checkpoints_reject_with_structured_errors() {
    let (ansatz, h) = problem();
    let opts = opts();
    let engine = ExecEngine::serial();
    let fp = job_fingerprint(&ansatz, &h, &[], &[], &opts);
    // Wrong fingerprint: rejected before any work.
    let checkpoint = SearchCheckpoint { fingerprint: fp ^ 1, history: vec![] };
    let err = run_cafqa_resumable_on(
        &engine,
        &ansatz,
        &h,
        vec![],
        &[],
        &opts,
        Some(&checkpoint),
        &mut |_| RunControl::Continue,
    )
    .unwrap_err();
    assert_eq!(err, ResumeError::FingerprintMismatch { expected: fp, found: fp ^ 1 });
    // A checkpoint whose recorded configs come from a different seed
    // stream: fingerprint 0 skips the hash check, so the divergence is
    // caught by replay validation instead.
    let status = run_cafqa_resumable_on(&engine, &ansatz, &h, vec![], &[], &opts, None, &mut |p| {
        if p.live_batches == 1 {
            RunControl::Suspend
        } else {
            RunControl::Continue
        }
    })
    .unwrap();
    let RunStatus::Suspended(mut foreign) = status else { panic!("must suspend") };
    foreign.fingerprint = 0;
    foreign.history[0].0[0] ^= 1; // corrupt the first recorded config
    let err = run_cafqa_resumable_on(
        &engine,
        &ansatz,
        &h,
        vec![],
        &[],
        &opts,
        Some(&foreign),
        &mut |_| RunControl::Continue,
    )
    .unwrap_err();
    assert_eq!(err, ResumeError::HistoryDiverged { index: 0 });
}
