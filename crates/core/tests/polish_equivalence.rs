//! Bit-identity contract of the incremental polish engine.
//!
//! Three layers, each asserted bitwise over full `run_cafqa_on` traces:
//!
//! 1. **Frozen-reference equivalence** — with `polish_screen_top = 0`
//!    the incremental polish (prefix checkpoint + suffix replay,
//!    [`cafqa_core::PolishSession`]) reproduces a test-local frozen copy
//!    of the pre-incremental runner — whose polish evaluates every
//!    candidate by full re-preparation through
//!    [`CliffordObjective::evaluate_batch`] — trace-for-trace, at worker
//!    counts {1, 2, 8}, on both pair-list regimes (exhaustive `d <= 24`
//!    and ansatz-local `d > 24`).
//! 2. **Worker-count invariance of the screened run** — a *binding*
//!    screen changes the trajectory but stays deterministic: engines of
//!    1, 2 and 8 workers produce identical `CafqaResult`s.
//! 3. **Screening soundness** — the screened pair list is a subset of
//!    the exhaustive one (in the same order), and the screened final
//!    energy is never worse than the BO incumbent's (the greedy fold
//!    only ever accepts improvements).

use cafqa_bayesopt::{minimize_with, BoOptions, BoResult};
use cafqa_circuit::{Ansatz, EfficientSu2};
use cafqa_core::{
    polish_on, polish_pair_list, run_cafqa_on, CafqaOptions, CafqaResult, CliffordObjective,
    ExecEngine, Penalty, SearchPoint,
};
use cafqa_linalg::Complex64;
use cafqa_pauli::{PauliOp, PauliString};

/// A dense synthetic Hamiltonian on `nq` qubits with `terms` distinct
/// Pauli terms (codes packed into the masks so terms never collide; the
/// seed perturbs the coefficients so distinct tests see distinct
/// landscapes).
fn synthetic_hamiltonian(nq: usize, terms: usize, seed: u64) -> PauliOp {
    let mask = (1u64 << nq) - 1;
    let op = PauliOp::from_terms(
        nq,
        (0..terms as u64).map(|code| {
            let x = code & mask;
            let z = (code >> nq) & mask;
            let coeff = 2e-2 * (((code + seed) % 31) as f64 + 1.0);
            (Complex64::from(coeff), PauliString::from_masks(nq, x, z))
        }),
    );
    assert_eq!(op.num_terms(), terms, "synthetic terms must not collide");
    op
}

/// The pre-incremental runner, frozen as a test-local copy: the same BO
/// phase (`minimize_with`), then the classic polish loops evaluating
/// every candidate by **full re-preparation** through `evaluate_batch`
/// (exactly the production code before the incremental rewrite — no
/// screening, no neighbor replay).
fn frozen_run_cafqa(
    engine: &ExecEngine,
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: Vec<Penalty>,
    seeds: &[Vec<usize>],
    opts: &CafqaOptions,
) -> CafqaResult {
    let mut objective = CliffordObjective::new(ansatz, hamiltonian).with_engine(engine.clone());
    for p in penalties {
        objective = objective.with_penalty(p);
    }
    let space = cafqa_bayesopt::SearchSpace::uniform(objective.num_parameters(), 4);
    let mut raw_trace: Vec<(f64, f64)> = Vec::new();
    let bo_opts = BoOptions {
        warmup: opts.warmup,
        iterations: opts.iterations,
        seed: opts.seed,
        patience: opts.patience,
        proposals_per_refit: opts.proposals_per_refit,
        forest: cafqa_bayesopt::ForestOptions { window: opts.forest_window, ..Default::default() },
        ..Default::default()
    };
    let result: BoResult = minimize_with(
        &space,
        |batch: &[Vec<usize>]| {
            let values = objective.evaluate_batch(batch);
            values
                .iter()
                .map(|v| {
                    raw_trace.push((v.energy, v.penalized));
                    v.penalized
                })
                .collect()
        },
        seeds,
        &bo_opts,
        engine,
    );
    let mut best_config = result.best_config;
    let mut best_value = objective.evaluate(&best_config);
    let mut iterations_to_best = result.iterations_to_best;
    for _sweep in 0..opts.polish_sweeps {
        let mut improved = false;
        for i in 0..best_config.len() {
            let current = best_config[i];
            let candidates: Vec<Vec<usize>> = (0..4)
                .filter(|&v| v != current)
                .map(|v| {
                    let mut candidate = best_config.clone();
                    candidate[i] = v;
                    candidate
                })
                .collect();
            let values = objective.evaluate_batch(&candidates);
            for (candidate, value) in candidates.into_iter().zip(values) {
                raw_trace.push((value.energy, value.penalized));
                if value.penalized < best_value.penalized - 1e-12 {
                    best_config = candidate;
                    best_value = value;
                    iterations_to_best = raw_trace.len();
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    if opts.polish_sweeps > 0 {
        let d = best_config.len();
        let pairs = polish_pair_list(d, ansatz.num_qubits());
        let sweeps = if d <= 24 { 3 } else { 2 };
        for _sweep in 0..sweeps {
            let mut improved = false;
            for &(i, j) in &pairs {
                let candidates: Vec<Vec<usize>> = (0..16)
                    .map(|code| {
                        let mut candidate = best_config.clone();
                        candidate[i] = code / 4;
                        candidate[j] = code % 4;
                        candidate
                    })
                    .collect();
                let values = objective.evaluate_batch(&candidates);
                for (candidate, value) in candidates.into_iter().zip(values) {
                    if candidate[i] == best_config[i] && candidate[j] == best_config[j] {
                        continue;
                    }
                    raw_trace.push((value.energy, value.penalized));
                    if value.penalized < best_value.penalized - 1e-12 {
                        best_config = candidate;
                        best_value = value;
                        iterations_to_best = raw_trace.len();
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }
    let mut best = f64::INFINITY;
    let trace: Vec<SearchPoint> = raw_trace
        .iter()
        .map(|&(energy, penalized)| {
            best = best.min(penalized);
            SearchPoint { energy, penalized, best_so_far: best }
        })
        .collect();
    CafqaResult {
        best_config,
        energy: best_value.energy,
        penalized: best_value.penalized,
        evaluations: trace.len(),
        iterations_to_best,
        polish_evaluations: 0, // metadata, not compared
        bo_seconds: 0.0,
        polish_seconds: 0.0,
        polish_seek_stats: (0, 0),
        trace,
    }
}

fn assert_results_identical(a: &CafqaResult, b: &CafqaResult, label: &str) {
    assert_eq!(a.trace.len(), b.trace.len(), "{label}: trace length");
    for (i, (x, y)) in a.trace.iter().zip(&b.trace).enumerate() {
        assert_eq!(x.energy.to_bits(), y.energy.to_bits(), "{label}: energy at {i}");
        assert_eq!(x.penalized.to_bits(), y.penalized.to_bits(), "{label}: penalized at {i}");
        assert_eq!(x.best_so_far.to_bits(), y.best_so_far.to_bits(), "{label}: best at {i}");
    }
    assert_eq!(a.best_config, b.best_config, "{label}: best_config");
    assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "{label}: energy");
    assert_eq!(a.penalized.to_bits(), b.penalized.to_bits(), "{label}: penalized");
    assert_eq!(a.iterations_to_best, b.iterations_to_best, "{label}: iterations_to_best");
    assert_eq!(a.evaluations, b.evaluations, "{label}: evaluations");
}

/// Layer 1, exhaustive-pair regime (d = 16 ≤ 24), with a sector penalty
/// so both values of every `ObjectiveValue` are exercised.
#[test]
fn incremental_polish_matches_frozen_runner_small_register() {
    let hamiltonian = synthetic_hamiltonian(4, 14, 0xAB);
    let z_op: PauliOp = "ZIII".parse().unwrap();
    let ansatz = EfficientSu2::new(4, 1);
    let penalty = || vec![Penalty::new("z", &z_op, 1.0, 0.4)];
    let seeds = vec![vec![2usize; 16]];
    let opts = CafqaOptions {
        warmup: 40,
        iterations: 30,
        polish_sweeps: 3,
        polish_screen_top: 0,
        ..Default::default()
    };
    let frozen =
        frozen_run_cafqa(&ExecEngine::serial(), &ansatz, &hamiltonian, penalty(), &seeds, &opts);
    assert!(frozen.evaluations > 71, "polish phase must actually run");
    for workers in [1usize, 2, 8] {
        let engine = ExecEngine::new(workers);
        let result = run_cafqa_on(&engine, &ansatz, &hamiltonian, penalty(), &seeds, &opts);
        assert_results_identical(&result, &frozen, &format!("small register, {workers} workers"));
        assert_eq!(
            result.polish_evaluations,
            result.evaluations - 71,
            "polish tail accounting ({workers} workers)"
        );
    }
}

/// Layer 1, local-pair regime (d = 28 > 24): the wide-register pair
/// list, still bit-identical to the frozen full-re-preparation runner.
#[test]
fn incremental_polish_matches_frozen_runner_wide_register() {
    let hamiltonian = synthetic_hamiltonian(7, 40, 0xCD);
    let ansatz = EfficientSu2::new(7, 1);
    let opts = CafqaOptions {
        warmup: 30,
        iterations: 20,
        polish_sweeps: 2,
        polish_screen_top: 0,
        ..Default::default()
    };
    let frozen = frozen_run_cafqa(&ExecEngine::serial(), &ansatz, &hamiltonian, vec![], &[], &opts);
    for workers in [1usize, 2, 8] {
        let engine = ExecEngine::new(workers);
        let result = run_cafqa_on(&engine, &ansatz, &hamiltonian, vec![], &[], &opts);
        assert_results_identical(&result, &frozen, &format!("wide register, {workers} workers"));
    }
}

/// Layer 2: a binding screen is a different — but still deterministic —
/// trajectory: worker counts {1, 2, 8} give identical results.
#[test]
fn screened_polish_is_worker_count_invariant() {
    let hamiltonian = synthetic_hamiltonian(7, 40, 0xEF);
    let ansatz = EfficientSu2::new(7, 1);
    let opts = CafqaOptions {
        warmup: 30,
        iterations: 20,
        polish_sweeps: 2,
        polish_screen_top: 6,
        ..Default::default()
    };
    let reference = run_cafqa_on(&ExecEngine::serial(), &ansatz, &hamiltonian, vec![], &[], &opts);
    for workers in [2usize, 8] {
        let engine = ExecEngine::new(workers);
        let result = run_cafqa_on(&engine, &ansatz, &hamiltonian, vec![], &[], &opts);
        assert_results_identical(&result, &reference, &format!("screened, {workers} workers"));
    }
}

/// Layer 3: the screened run never ends above the BO incumbent, and the
/// screened pair list is a subset of the exhaustive one.
#[test]
fn screened_polish_subset_and_energy_bounds() {
    let hamiltonian = synthetic_hamiltonian(7, 40, 0x11);
    let ansatz = EfficientSu2::new(7, 1);
    let base_opts = CafqaOptions { warmup: 30, iterations: 20, ..Default::default() };
    let engine = ExecEngine::serial();
    // The BO incumbent: the same search with the polish disabled.
    let incumbent = run_cafqa_on(
        &engine,
        &ansatz,
        &hamiltonian,
        vec![],
        &[],
        &CafqaOptions { polish_sweeps: 0, ..base_opts.clone() },
    );
    let screened = run_cafqa_on(
        &engine,
        &ansatz,
        &hamiltonian,
        vec![],
        &[],
        &CafqaOptions { polish_sweeps: 2, polish_screen_top: 6, ..base_opts.clone() },
    );
    assert!(
        screened.penalized <= incumbent.penalized + 1e-12,
        "screened polish must never end above the BO incumbent: {} vs {}",
        screened.penalized,
        incumbent.penalized
    );
    // Pair-list subset, checked through the standalone polish entry
    // point (which reports the list it actually swept).
    let objective = CliffordObjective::new(&ansatz, &hamiltonian).with_engine(engine.clone());
    let d = objective.num_parameters();
    let full_pairs = polish_pair_list(d, ansatz.num_qubits());
    let history: Vec<(Vec<usize>, f64)> = (0..60u64)
        .map(|k| {
            let config: Vec<usize> = (0..d)
                .map(|i| ((k.wrapping_mul(0x9E37_79B9) >> (2 * (i % 23))) & 3) as usize)
                .collect();
            let value = objective.evaluate(&config).penalized;
            (config, value)
        })
        .collect();
    let opts = CafqaOptions { polish_sweeps: 1, polish_screen_top: 6, ..base_opts };
    let outcome = polish_on(&engine, &objective, &incumbent.best_config, &opts, &history);
    assert_eq!(outcome.pairs.len(), 6, "screen must bind");
    assert!(
        outcome.pairs.iter().all(|p| full_pairs.contains(p)),
        "screened pairs {:?} must be a subset of the exhaustive list",
        outcome.pairs
    );
    // Subset keeps the original sweep order.
    let positions: Vec<usize> =
        outcome.pairs.iter().map(|p| full_pairs.iter().position(|q| q == p).unwrap()).collect();
    assert!(positions.windows(2).all(|w| w[0] < w[1]), "screened order {positions:?}");
    // A non-binding screen returns the full list.
    let unscreened = polish_on(
        &engine,
        &objective,
        &incumbent.best_config,
        &CafqaOptions { polish_sweeps: 1, polish_screen_top: 0, ..CafqaOptions::default() },
        &history,
    );
    assert_eq!(unscreened.pairs, full_pairs);
}

/// The incremental session itself, compared against full evaluation on
/// the *public* API: any move batch equals `evaluate` of the patched
/// configurations, bit for bit, at several worker counts.
#[test]
fn polish_session_matches_full_evaluation() {
    let hamiltonian = synthetic_hamiltonian(6, 50, 0x77);
    let ansatz = EfficientSu2::new(6, 1);
    let d = ansatz.num_parameters();
    let base: Vec<usize> = (0..d).map(|i| (i * 5 + 2) % 4).collect();
    for workers in [1usize, 2, 8] {
        let objective =
            CliffordObjective::new(&ansatz, &hamiltonian).with_engine(ExecEngine::new(workers));
        let mut session = objective.polish_session(base.clone()).unwrap();
        // Coordinate moves on the boundary slots and a middle slot, then
        // pair moves spanning the whole register.
        let moves: Vec<Vec<(usize, usize)>> = (0..4)
            .flat_map(|v| [vec![(0, v)], vec![(d / 2, v)], vec![(d - 1, v)]])
            .chain((0..16).map(|code| vec![(0, code / 4), (d - 1, code % 4)]))
            .collect();
        let values = session.evaluate_moves(&moves);
        for (mv, value) in moves.iter().zip(&values) {
            let mut config = base.clone();
            for &(slot, v) in mv {
                config[slot] = v;
            }
            let expected = objective.evaluate(&config);
            assert_eq!(value.energy.to_bits(), expected.energy.to_bits(), "{mv:?}");
            assert_eq!(value.penalized.to_bits(), expected.penalized.to_bits(), "{mv:?}");
        }
        // Accept a move and re-evaluate around the new base.
        session.accept(&[(1, (base[1] + 1) % 4)]);
        let mut new_base = base.clone();
        new_base[1] = (base[1] + 1) % 4;
        assert_eq!(session.base(), &new_base[..]);
        let moves2: Vec<Vec<(usize, usize)>> = (0..4).map(|v| vec![(2, v)]).collect();
        let values2 = session.evaluate_moves(&moves2);
        for (mv, value) in moves2.iter().zip(&values2) {
            let mut config = new_base.clone();
            for &(slot, v) in mv {
                config[slot] = v;
            }
            assert_eq!(
                value.energy.to_bits(),
                objective.evaluate(&config).energy.to_bits(),
                "post-accept {mv:?} ({workers} workers)"
            );
        }
    }
}
