//! The CAFQA driver: discrete Bayesian search over the Clifford space of
//! a hardware-efficient ansatz (the paper's red box, Fig. 4).
//!
//! The runner owns the execution engine for the whole search: warm-up,
//! acquisition batches, and the polish sweeps all evaluate through one
//! persistent worker pool ([`ExecEngine`]), and the BO layer's surrogate
//! scoring shards over the same pool via the
//! [`cafqa_bayesopt::Executor`] seam. Results are bit-identical at any
//! worker count, including 1.

use cafqa_bayesopt::{minimize_with, BoOptions, BoResult, SearchSpace};
use cafqa_chem::MolecularProblem;
use cafqa_circuit::{Ansatz, Circuit, EfficientSu2};
use cafqa_pauli::PauliOp;

use crate::engine::ExecEngine;
use crate::objective::{CliffordObjective, Penalty};

/// Configuration for a CAFQA run.
#[derive(Debug, Clone)]
pub struct CafqaOptions {
    /// Random warm-up evaluations (the paper uses 1000 for H2O).
    pub warmup: usize,
    /// Surrogate-guided iterations after warm-up.
    pub iterations: usize,
    /// Electron-count penalty weight (0 disables).
    pub number_penalty: f64,
    /// Sz penalty weight (0 disables).
    pub sz_penalty: f64,
    /// S² penalty weight toward the sector's `s(s+1)` (0 disables).
    pub s2_penalty: f64,
    /// Seed the Hartree-Fock configuration (guarantees CAFQA ≥ HF).
    pub seed_hf: bool,
    /// RNG seed.
    pub seed: u64,
    /// Early-stopping patience in iterations (0 disables).
    pub patience: usize,
    /// Coordinate-descent polish sweeps after the BO phase (0 disables).
    /// Each sweep tries every alternative angle for every parameter and
    /// keeps improvements; this is the greedy endgame of the discrete
    /// search and costs `3 · #params` evaluations per sweep.
    pub polish_sweeps: usize,
    /// Candidates proposed (and evaluated as one batch) per surrogate
    /// refit in the BO phase — forwarded to
    /// [`BoOptions::proposals_per_refit`]. `1` reproduces the classic
    /// one-candidate-per-refit loop exactly.
    pub proposals_per_refit: usize,
    /// Surrogate refit window, forwarded to
    /// [`cafqa_bayesopt::ForestOptions::window`]: each refit trains on
    /// only this many recent evaluations (plus the incumbent), so refit
    /// cost stops growing with the search length — the Cr2-scale knob.
    /// `0` (the default) keeps the classic full-history refits,
    /// bit-for-bit. See the determinism notes on
    /// [`BoOptions`](cafqa_bayesopt::BoOptions#determinism-and-refit-cadence).
    pub forest_window: usize,
}

impl Default for CafqaOptions {
    fn default() -> Self {
        CafqaOptions {
            warmup: 200,
            iterations: 400,
            number_penalty: 1.0,
            sz_penalty: 0.0,
            s2_penalty: 0.0,
            seed_hf: true,
            seed: 0xCAF9A,
            patience: 0,
            polish_sweeps: 6,
            proposals_per_refit: BoOptions::default().proposals_per_refit,
            forest_window: 0,
        }
    }
}

impl CafqaOptions {
    /// A small-budget preset for quick runs and tests.
    pub fn quick() -> Self {
        CafqaOptions { warmup: 60, iterations: 120, ..Default::default() }
    }
}

/// The outcome of a CAFQA search.
#[derive(Debug, Clone)]
pub struct CafqaResult {
    /// Best discrete configuration (indices into the four Clifford angles).
    pub best_config: Vec<usize>,
    /// Raw Hamiltonian expectation of the best configuration — the CAFQA
    /// initialization energy reported in all paper figures.
    pub energy: f64,
    /// Penalized objective value of the best configuration.
    pub penalized: f64,
    /// Full search trace: `(raw energy, penalized, best penalized so far)`.
    pub trace: Vec<SearchPoint>,
    /// 1-based evaluation index that first reached the final best
    /// (Fig. 15's metric).
    pub iterations_to_best: usize,
    /// Total evaluations performed.
    pub evaluations: usize,
}

/// One evaluation in the search trace.
#[derive(Debug, Clone, Copy)]
pub struct SearchPoint {
    /// Raw `⟨H⟩`.
    pub energy: f64,
    /// Penalized objective.
    pub penalized: f64,
    /// Best penalized value so far.
    pub best_so_far: f64,
}

impl CafqaResult {
    /// The initial continuous angles for post-CAFQA VQE tuning
    /// (paper §3 step 9: the Clifford parameters become the start point).
    pub fn initial_angles(&self) -> Vec<f64> {
        self.best_config.iter().map(|&k| k as f64 * std::f64::consts::FRAC_PI_2).collect()
    }

    /// The best-so-far raw energy after each evaluation (for Fig. 7-style
    /// convergence plots).
    pub fn best_energy_trace(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        let mut best_energy = f64::INFINITY;
        self.trace
            .iter()
            .map(|p| {
                if p.penalized < best {
                    best = p.penalized;
                    best_energy = p.energy;
                }
                best_energy
            })
            .collect()
    }
}

/// Runs the CAFQA discrete search for an arbitrary Hamiltonian/ansatz
/// pair with optional penalties and seed configurations, on the
/// process-global execution engine.
pub fn run_cafqa(
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: Vec<Penalty>,
    seeds: &[Vec<usize>],
    opts: &CafqaOptions,
) -> CafqaResult {
    run_cafqa_on(ExecEngine::global(), ansatz, hamiltonian, penalties, seeds, opts)
}

/// [`run_cafqa`] on an explicit [`ExecEngine`]: every parallel step of
/// the search — warm-up, acquisition batches, surrogate scoring, polish
/// sweeps — dispatches through this one engine, and the result is
/// bit-identical at any worker count (including a serial engine).
pub fn run_cafqa_on(
    engine: &ExecEngine,
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: Vec<Penalty>,
    seeds: &[Vec<usize>],
    opts: &CafqaOptions,
) -> CafqaResult {
    let mut objective = CliffordObjective::new(ansatz, hamiltonian).with_engine(engine.clone());
    for p in penalties {
        objective = objective.with_penalty(p);
    }
    let space = SearchSpace::uniform(objective.num_parameters(), 4);
    // The BO layer minimizes the penalized value; raw energies are
    // recovered per configuration afterwards from the recorded configs.
    let mut raw_trace: Vec<(f64, f64)> = Vec::new();
    let bo_opts = BoOptions {
        warmup: opts.warmup,
        iterations: opts.iterations,
        seed: opts.seed,
        patience: opts.patience,
        proposals_per_refit: opts.proposals_per_refit,
        forest: cafqa_bayesopt::ForestOptions { window: opts.forest_window, ..Default::default() },
        ..Default::default()
    };
    let result: BoResult = minimize_with(
        &space,
        |batch: &[Vec<usize>]| {
            // One engine-sharded evaluation for the whole batch (the
            // entire warm-up phase arrives as a single batch); the trace
            // is folded in batch order, identical to per-candidate calls.
            let values = objective.evaluate_batch(batch);
            values
                .iter()
                .map(|v| {
                    raw_trace.push((v.energy, v.penalized));
                    v.penalized
                })
                .collect()
        },
        seeds,
        &bo_opts,
        engine,
    );
    // Coordinate-descent polish: greedily walk each parameter through its
    // alternative angles until a full sweep yields no improvement. The
    // three alternatives per coordinate are independent of one another, so
    // they evaluate as one parallel batch; the acceptance fold below then
    // replays the greedy chain in candidate order, which keeps the trace
    // and the chosen optimum identical to a one-at-a-time sweep.
    let mut best_config = result.best_config;
    let mut best_value = objective.evaluate(&best_config);
    let mut iterations_to_best = result.iterations_to_best;
    for _sweep in 0..opts.polish_sweeps {
        let mut improved = false;
        for i in 0..best_config.len() {
            let current = best_config[i];
            let candidates: Vec<Vec<usize>> = (0..4)
                .filter(|&v| v != current)
                .map(|v| {
                    let mut candidate = best_config.clone();
                    candidate[i] = v;
                    candidate
                })
                .collect();
            let values = objective.evaluate_batch(&candidates);
            for (candidate, value) in candidates.into_iter().zip(values) {
                raw_trace.push((value.energy, value.penalized));
                if value.penalized < best_value.penalized - 1e-12 {
                    best_config = candidate;
                    best_value = value;
                    iterations_to_best = raw_trace.len();
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    // Pair polish: correlated two-angle moves escape the single-coordinate
    // local minima that trap e.g. LiH at stretched geometries (and the HF
    // seed on wide registers). Small registers try every pair; wide ones
    // only pairs that are local in the ansatz layout (same qubit, adjacent
    // qubit, or same qubit across layers), keeping the sweep linear in the
    // parameter count.
    if opts.polish_sweeps > 0 {
        let d = best_config.len();
        let nq = ansatz.num_qubits();
        let pairs: Vec<(usize, usize)> = if d <= 24 {
            (0..d).flat_map(|i| ((i + 1)..d).map(move |j| (i, j))).collect()
        } else {
            // Includes the α/β spin-pair distance nq/2 of the blocked
            // spin-orbital ordering, where pairing correlations live.
            let offsets = [1, 2, nq / 2, nq / 2 + 1, nq.saturating_sub(1), nq, nq + 1, 2 * nq];
            let mut out = Vec::new();
            for i in 0..d {
                for &off in &offsets {
                    if off > 0 && i + off < d {
                        out.push((i, i + off));
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            out
        };
        let sweeps = if d <= 24 { 3 } else { 2 };
        for _sweep in 0..sweeps {
            let mut improved = false;
            for &(i, j) in &pairs {
                // All 16 (vi, vj) joint moves are independent: evaluate as
                // one batch, then replay the greedy acceptance chain in
                // (vi, vj) order. The skip of the incumbent pair happens in
                // the fold (it can shift mid-pair when a move is accepted),
                // so trace and outcome match the serial sweep exactly.
                let candidates: Vec<Vec<usize>> = (0..16)
                    .map(|code| {
                        let mut candidate = best_config.clone();
                        candidate[i] = code / 4;
                        candidate[j] = code % 4;
                        candidate
                    })
                    .collect();
                let values = objective.evaluate_batch(&candidates);
                for (candidate, value) in candidates.into_iter().zip(values) {
                    if candidate[i] == best_config[i] && candidate[j] == best_config[j] {
                        continue;
                    }
                    raw_trace.push((value.energy, value.penalized));
                    if value.penalized < best_value.penalized - 1e-12 {
                        best_config = candidate;
                        best_value = value;
                        iterations_to_best = raw_trace.len();
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }
    let mut best = f64::INFINITY;
    let trace: Vec<SearchPoint> = raw_trace
        .iter()
        .map(|&(energy, penalized)| {
            best = best.min(penalized);
            SearchPoint { energy, penalized, best_so_far: best }
        })
        .collect();
    CafqaResult {
        best_config,
        energy: best_value.energy,
        penalized: best_value.penalized,
        evaluations: trace.len(),
        iterations_to_best,
        trace,
    }
}

/// A molecular CAFQA run bundled with its ansatz (the common case).
pub struct MolecularCafqa {
    /// The hardware-efficient ansatz (paper §6: SU2, one linear
    /// entangling layer).
    pub ansatz: EfficientSu2,
    problem: MolecularProblem,
}

impl MolecularCafqa {
    /// Sets up the paper's configuration for a molecular problem:
    /// `EfficientSU2(reps = 1)` on the tapered register.
    pub fn new(problem: MolecularProblem) -> Self {
        let ansatz = EfficientSu2::new(problem.n_qubits, 1);
        MolecularCafqa { ansatz, problem }
    }

    /// The underlying problem.
    pub fn problem(&self) -> &MolecularProblem {
        &self.problem
    }

    /// The HF seed configuration for this problem.
    pub fn hf_config(&self) -> Vec<usize> {
        self.ansatz.basis_state_config(self.problem.hf_bits)
    }

    /// Runs the search with electron-count (and optional Sz) penalties
    /// targeting the problem's sector, on the process-global engine.
    pub fn run(&self, opts: &CafqaOptions) -> CafqaResult {
        self.run_on(ExecEngine::global(), opts)
    }

    /// [`Self::run`] on an explicit engine — the entry point for
    /// experiment drivers that own one engine for a whole sweep (e.g.
    /// the Cr2-surrogate figure), so warm-up, acquisition, polish *and*
    /// the intra-candidate term sharding of its 34-qubit evaluations all
    /// share a single pool.
    pub fn run_on(&self, engine: &ExecEngine, opts: &CafqaOptions) -> CafqaResult {
        let mut penalties = Vec::new();
        if opts.number_penalty > 0.0 {
            penalties.push(Penalty::new(
                "electron count",
                &self.problem.number_op,
                self.problem.n_electrons() as f64,
                opts.number_penalty,
            ));
        }
        if opts.sz_penalty > 0.0 {
            let target = 0.5 * (self.problem.n_alpha as f64 - self.problem.n_beta as f64);
            penalties.push(Penalty::new("sz", &self.problem.sz_op, target, opts.sz_penalty));
        }
        if opts.s2_penalty > 0.0 {
            let s = 0.5 * (self.problem.n_alpha as f64 - self.problem.n_beta as f64);
            penalties.push(Penalty::new(
                "s-squared",
                &self.problem.s_squared_op,
                s * (s + 1.0),
                opts.s2_penalty,
            ));
        }
        let seeds: Vec<Vec<usize>> = if opts.seed_hf { vec![self.hf_config()] } else { Vec::new() };
        run_cafqa_on(engine, &self.ansatz, &self.problem.hamiltonian, penalties, &seeds, opts)
    }

    /// Binds the best configuration into a Clifford circuit.
    pub fn circuit(&self, result: &CafqaResult) -> Circuit {
        self.ansatz.bind_clifford(&result.best_config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};

    #[test]
    fn hf_seed_guarantees_cafqa_never_worse_than_hf() {
        let pipe = ChemPipeline::build(MoleculeKind::H2, 2.2, &ScfKind::Rhf).unwrap();
        let (na, nb) = pipe.default_sector();
        let problem = pipe.problem(na, nb, true).unwrap();
        let runner = MolecularCafqa::new(problem);
        let result = runner.run(&CafqaOptions::quick());
        let hf = runner.problem().hf_energy;
        assert!(result.energy <= hf + 1e-9, "CAFQA {} must not exceed HF {hf}", result.energy);
    }

    #[test]
    fn h2_stretched_recovers_most_correlation_energy() {
        // Paper Fig. 8: at stretched geometries CAFQA recovers nearly all
        // correlation energy that HF misses.
        let pipe = ChemPipeline::build(MoleculeKind::H2, 2.5, &ScfKind::Rhf).unwrap();
        let problem = pipe.problem(1, 1, true).unwrap();
        let exact = problem.exact_energy.unwrap();
        let hf = problem.hf_energy;
        let runner = MolecularCafqa::new(problem);
        let result =
            runner.run(&CafqaOptions { warmup: 120, iterations: 260, ..Default::default() });
        let recovered = (hf - result.energy) / (hf - exact);
        assert!(
            recovered > 0.9,
            "recovered only {:.1}% (CAFQA {} HF {hf} exact {exact})",
            recovered * 100.0,
            result.energy
        );
    }

    #[test]
    fn hf_config_reproduces_hf_energy() {
        let pipe = ChemPipeline::build(MoleculeKind::LiH, 1.6, &ScfKind::Rhf).unwrap();
        let (na, nb) = pipe.default_sector();
        let problem = pipe.problem(na, nb, false).unwrap();
        let runner = MolecularCafqa::new(problem);
        let objective = CliffordObjective::new(&runner.ansatz, &runner.problem().hamiltonian);
        let v = objective.evaluate(&runner.hf_config());
        assert!(
            (v.energy - runner.problem().hf_energy).abs() < 1e-9,
            "{} vs {}",
            v.energy,
            runner.problem().hf_energy
        );
    }

    #[test]
    fn trace_is_recorded_and_monotone() {
        let pipe = ChemPipeline::build(MoleculeKind::H2, 0.74, &ScfKind::Rhf).unwrap();
        let problem = pipe.problem(1, 1, false).unwrap();
        let runner = MolecularCafqa::new(problem);
        let opts = CafqaOptions { warmup: 30, iterations: 40, ..Default::default() };
        let result = runner.run(&opts);
        assert_eq!(result.evaluations, result.trace.len());
        for w in result.trace.windows(2) {
            assert!(w[1].best_so_far <= w[0].best_so_far + 1e-15);
        }
        assert!(result.iterations_to_best >= 1);
    }
}
