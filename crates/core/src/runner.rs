//! The CAFQA driver: discrete Bayesian search over the Clifford space of
//! a hardware-efficient ansatz (the paper's red box, Fig. 4).
//!
//! The runner owns the execution engine for the whole search: warm-up,
//! acquisition batches, and the polish sweeps all evaluate through one
//! persistent worker pool ([`ExecEngine`]), and the BO layer's surrogate
//! scoring shards over the same pool via the
//! [`cafqa_bayesopt::Executor`] seam. Results are bit-identical at any
//! worker count, including 1.

use std::sync::Arc;
use std::time::Instant;

use cafqa_bayesopt::{
    minimize_suspendable_with, BatchStatus, BoOptions, BoResult, ForestOptions, RandomForest,
    SearchSpace,
};
use cafqa_chem::MolecularProblem;
use cafqa_circuit::{Ansatz, Circuit, EfficientSu2};
use cafqa_pauli::PauliOp;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::engine::ExecEngine;
use crate::ising::{try_ising_fast_path, IsingFastPath};
use crate::objective::{CliffordObjective, ObjectiveValue, Penalty, PolishMove, PolishSession};

/// Configuration for a CAFQA run.
///
/// # Polish determinism and screening
///
/// Two knobs govern the discrete polish endgame that follows the BO
/// phase, and this section is the single source of truth for their
/// interaction (the refit-cadence counterpart lives on
/// [`BoOptions`](cafqa_bayesopt::BoOptions#determinism-and-refit-cadence)):
///
/// - [`polish_sweeps`](Self::polish_sweeps): how many greedy
///   coordinate-descent sweeps to run (each tries the 3 alternative
///   angles of every parameter); any nonzero value also enables the
///   subsequent pair-polish sweeps (correlated two-angle moves).
/// - [`polish_screen_top`](Self::polish_screen_top): pair screening.
///   `0` (the default) sweeps the full pair list — exhaustive on ≤ 24
///   parameters, ansatz-local beyond — exactly as the classic polish
///   did. A positive value keeps only that many pairs, ranked by a
///   random-forest surrogate refit on the search history (each pair is
///   scored by the forest's predicted minimum over its 16 joint moves,
///   see [`RandomForest::predict_group_min_on`]); the screened list is
///   always a subset of the full list, swept in the same order.
///
/// The determinism contract, in decreasing strictness:
///
/// 1. Polish evaluations replay template ops incrementally from the
///    changed slot onward ([`PolishSession`]); the prepared state is the
///    same integer gate sequence as a full re-preparation, so every
///    energy — and therefore the whole trace — is **bit-identical to
///    the classic full-re-preparation polish, at any worker count**,
///    including 1. Acceptance folds replay the serial greedy chain in
///    candidate order, so tie-breaks keep the first minimiser exactly
///    as a serial `min_by` sweep would.
/// 2. `polish_screen_top = 0` therefore reproduces the frozen
///    pre-incremental polish trace bit for bit (asserted in
///    `crates/core/tests/polish_equivalence.rs` and in the
///    `polish_incremental` bench gate).
/// 3. A *binding* screen (`0 < polish_screen_top <` pair-list length)
///    sweeps fewer pairs — a different-but-still-deterministic trace
///    given [`seed`](Self::seed); the greedy fold only ever accepts
///    improvements, so the final energy can never exceed the BO
///    incumbent's.
///
/// # Chunking and worker tiers
///
/// How an evaluation parallelises is a pure function of the problem
/// size, never of the host — this section is the single source of truth
/// for the three thresholds involved:
///
/// - **Term chunking** (`crates/core/src/objective.rs`): Hamiltonians
///   with fewer than `CHUNKED_TERM_THRESHOLD = 4096` terms sum serially
///   in term order. At or above it, the term list splits into a *fixed*
///   number of contiguous chunks — 8 for the standard tier, widening to
///   `TERM_CHUNKS_WIDE = 32` at `WIDE_TERM_THRESHOLD = 65_536` terms
///   (the Cr2-surrogate scale, 76k–149k terms) so a single candidate
///   can occupy more of the pool. Chunk partial sums always fold in
///   chunk order, so the chunk count — not the worker count — fixes the
///   floating-point association: energies are bit-identical at any
///   worker count *within* a tier, and the tier is decided by the term
///   count alone.
/// - **Worker count** (`crates/core/src/engine.rs`): the process-global
///   [`ExecEngine`] sizes itself to the available cores (capped at 16),
///   overridable with the `CAFQA_WORKERS` environment variable. Because
///   of the fixed chunk associations above, `CAFQA_WORKERS` is a pure
///   throughput knob — it never changes any reported energy.
/// - **Within-candidate vs across-candidate sharding**: batches of
///   candidates shard across the pool one candidate per task; a single
///   big-Hamiltonian candidate additionally term-shards its chunk list
///   from inside the pool. Both reassemble results in submission order
///   before any fold, preserving the serial trace exactly.
///
/// # Screening and tolerance
///
/// Two knobs govern the Clifford+T (kT) tier's quadratic-Clifford
/// screening, and this section is the single source of truth for them.
/// Both only affect [`run_cafqa_kt`](crate::run_cafqa_kt) searches with
/// `k_max > 0`; the Clifford-only search never reads them.
///
/// - [`screen_tolerance`](Self::screen_tolerance): per-term class
///   screening of the `O(4^t)` branch-pair sum. Every XOR class `c` of
///   a term with coefficient `w` carries a cached magnitude bound
///   `Π_{j∈c} |sin θ_j|` (`2^{-ν(c)/2}` for T angles, with `ν` the
///   overlap rank — the quadratic Clifford expansion's stabilizer
///   cross-term decay, arXiv 2011.09927); classes with
///   `|w| · bound(c) ≤ screen_tolerance` are skipped. The discarded
///   contribution per evaluation is rigorously below the sum of the
///   skipped `|w| · bound(c)` masses, and the skipped-class total is
///   reported as [`CafqaKtResult::screened_classes`](crate::CafqaKtResult::screened_classes).
///   `0.0` (the default) runs the frozen exact path **bit for bit** —
///   not just within tolerance (asserted in
///   `crates/bench/tests/kt_screening.rs` and the `kt_screened_vs_exact`
///   bench gate).
/// - [`kt_rank_top`](Self::kt_rank_top): move *ranking* in the kT
///   polish. A positive value scores each candidate batch with a coarse
///   bound-truncated evaluation (classes of overlap rank `ν ≤ 1` only,
///   `O((1+t)·2^t)` per term instead of `O(4^t)`) and evaluates only the
///   `kt_rank_top` best-looking moves exactly, mirroring
///   [`polish_screen_top`](Self::polish_screen_top)'s surrogate screen;
///   pruned moves are counted in
///   [`CafqaKtResult::screened_moves`](crate::CafqaKtResult::screened_moves)
///   and never enter the trace. `0` (the default) evaluates every move,
///   bit-for-bit the legacy sweep.
///
/// The determinism contract carries over unchanged: for any fixed
/// `(screen_tolerance, kt_rank_top)` the trace — and both counters —
/// are identical at any worker count; a binding screen or rank is a
/// different-but-still-deterministic search whose greedy polish still
/// only ever improves on its BO incumbent.
///
/// # Problem-structure routing
///
/// [`ising_fast_path`](Self::ising_fast_path) governs the structured
/// fast path in front of the full search (module
/// [`ising`](crate::ising), after arXiv 2312.01036): when the
/// Hamiltonian classifies as Ising-class — every term weight ≤ 2 and
/// every qubit column single-axis, i.e. diagonal after a per-qubit
/// single-Clifford basis rotation — the optimal Clifford point lies in
/// the `2^n` product-eigenstate subspace, and [`run_cafqa_on`] solves
/// the reduced binary quadratic objective instead of searching `4^d`.
///
/// - [`IsingFastPath::Auto`] (the default) routes exactly the instances
///   that can take the fast path end to end: classified structure, no
///   penalties, and an ansatz with an
///   [`eigenstate_config`](cafqa_circuit::Ansatz::eigenstate_config)
///   lift. **Everything else runs the full pipeline bit-for-bit
///   unchanged** — the classifier reads the term set and routes before
///   any search state exists (asserted in
///   `crates/core/tests/ising_routing.rs`).
/// - [`IsingFastPath::Off`] disables routing entirely; use it to
///   measure the unrouted baseline or pin a legacy BO trace on an
///   Ising-class instance.
/// - [`IsingFastPath::Force`] panics instead of falling back — for
///   services that know their workload is Ising-class and want
///   misclassification loud rather than 100× slower.
///
/// On routed instances the result is an ordinary [`CafqaResult`]: the
/// reduced-space winner and every provided seed are evaluated through
/// the ordinary tableau objective (one engine batch, first minimiser
/// wins), so the reported energy is the simulator's, the
/// never-worse-than-seed guarantee holds, and the fast-path energy is
/// ≤ the full search's on every instance the solver handles exactly
/// (≤ [`ising::EXACT_SOLVE_CAP`](crate::ising::EXACT_SOLVE_CAP)
/// qubits; larger instances run a deterministic seeded multi-start
/// descent, asserted ≤ the BO route in the `ising_fast_path_vs_bo`
/// bench).
#[derive(Debug, Clone)]
pub struct CafqaOptions {
    /// Random warm-up evaluations (the paper uses 1000 for H2O).
    pub warmup: usize,
    /// Surrogate-guided iterations after warm-up.
    pub iterations: usize,
    /// Electron-count penalty weight (0 disables).
    pub number_penalty: f64,
    /// Sz penalty weight (0 disables).
    pub sz_penalty: f64,
    /// S² penalty weight toward the sector's `s(s+1)` (0 disables).
    pub s2_penalty: f64,
    /// Seed the Hartree-Fock configuration (guarantees CAFQA ≥ HF).
    pub seed_hf: bool,
    /// RNG seed.
    pub seed: u64,
    /// Early-stopping patience in iterations (0 disables).
    pub patience: usize,
    /// Coordinate-descent polish sweeps after the BO phase (0 disables).
    /// Each sweep tries every alternative angle for every parameter and
    /// keeps improvements; this is the greedy endgame of the discrete
    /// search and costs `3 · #params` evaluations per sweep.
    pub polish_sweeps: usize,
    /// Candidates proposed (and evaluated as one batch) per surrogate
    /// refit in the BO phase — forwarded to
    /// [`BoOptions::proposals_per_refit`]. `1` reproduces the classic
    /// one-candidate-per-refit loop exactly.
    pub proposals_per_refit: usize,
    /// Surrogate refit window, forwarded to
    /// [`cafqa_bayesopt::ForestOptions::window`]: each refit trains on
    /// only this many recent evaluations (plus the incumbent), so refit
    /// cost stops growing with the search length — the Cr2-scale knob.
    /// `0` (the default) keeps the classic full-history refits,
    /// bit-for-bit. See the determinism notes on
    /// [`BoOptions`](cafqa_bayesopt::BoOptions#determinism-and-refit-cadence).
    pub forest_window: usize,
    /// Pair-polish screening: sweep only the `polish_screen_top` most
    /// promising pairs (forest-ranked on the search history) instead of
    /// the full pair list. `0` (the default) keeps the exhaustive legacy
    /// sweep, bit-for-bit. See the [polish determinism and
    /// screening](Self#polish-determinism-and-screening) notes.
    pub polish_screen_top: usize,
    /// Quadratic-Clifford class screening of the kT tier's branch-pair
    /// sums: skip XOR classes whose coefficient-weighted bound cannot
    /// move the objective past this tolerance. `0.0` (the default) keeps
    /// the exact legacy `pair_sum` path, bit-for-bit. See the [screening
    /// and tolerance](Self#screening-and-tolerance) notes.
    pub screen_tolerance: f64,
    /// kT polish move ranking: evaluate only this many bound-ranked
    /// moves per candidate batch exactly. `0` (the default) evaluates
    /// every move, bit-for-bit. See the [screening and
    /// tolerance](Self#screening-and-tolerance) notes.
    pub kt_rank_top: usize,
    /// Structured fast-path routing for Ising-class Hamiltonians:
    /// [`Auto`](IsingFastPath::Auto) (the default) routes classified
    /// instances through the reduced-space solver and everything else
    /// through the full search bit-for-bit unchanged;
    /// [`Off`](IsingFastPath::Off) never routes;
    /// [`Force`](IsingFastPath::Force) panics on unroutable instances.
    /// See the [problem-structure
    /// routing](Self#problem-structure-routing) notes.
    pub ising_fast_path: IsingFastPath,
}

impl Default for CafqaOptions {
    fn default() -> Self {
        CafqaOptions {
            warmup: 200,
            iterations: 400,
            number_penalty: 1.0,
            sz_penalty: 0.0,
            s2_penalty: 0.0,
            seed_hf: true,
            seed: 0xCAF9A,
            patience: 0,
            polish_sweeps: 6,
            proposals_per_refit: BoOptions::default().proposals_per_refit,
            forest_window: 0,
            polish_screen_top: 0,
            screen_tolerance: 0.0,
            kt_rank_top: 0,
            ising_fast_path: IsingFastPath::default(),
        }
    }
}

impl CafqaOptions {
    /// A small-budget preset for quick runs and tests.
    pub fn quick() -> Self {
        CafqaOptions { warmup: 60, iterations: 120, ..Default::default() }
    }
}

/// The outcome of a CAFQA search.
#[derive(Debug, Clone)]
pub struct CafqaResult {
    /// Best discrete configuration (indices into the four Clifford angles).
    pub best_config: Vec<usize>,
    /// Raw Hamiltonian expectation of the best configuration — the CAFQA
    /// initialization energy reported in all paper figures.
    pub energy: f64,
    /// Penalized objective value of the best configuration.
    pub penalized: f64,
    /// Full search trace: `(raw energy, penalized, best penalized so far)`.
    pub trace: Vec<SearchPoint>,
    /// 1-based evaluation index that first reached the final best
    /// (Fig. 15's metric).
    pub iterations_to_best: usize,
    /// Total evaluations performed.
    pub evaluations: usize,
    /// Evaluations spent in the polish endgame (the tail of `trace`).
    pub polish_evaluations: usize,
    /// Wall-clock seconds spent in the warm-up + BO phase — phase-level
    /// profiling metadata (Fig. 12 reports it); carries no physics and
    /// is excluded from every bit-identity contract.
    pub bo_seconds: f64,
    /// Wall-clock seconds spent in the polish endgame — phase-level
    /// profiling metadata (Fig. 12 reports it); carries no physics and
    /// is excluded from every bit-identity contract.
    pub polish_seconds: f64,
    /// Polish seeks that had to rewind (target before the standing
    /// prefix) and how many of those restored a layer checkpoint instead
    /// of rebuilding from `|0…0⟩`, as `(backward_seeks,
    /// stack_restores)`. Profiling metadata like the phase timers: the
    /// restored state replays the same integer gate sequence either way,
    /// so these counters are excluded from every bit-identity contract.
    pub polish_seek_stats: (u64, u64),
}

/// One evaluation in the search trace.
#[derive(Debug, Clone, Copy)]
pub struct SearchPoint {
    /// Raw `⟨H⟩`.
    pub energy: f64,
    /// Penalized objective.
    pub penalized: f64,
    /// Best penalized value so far.
    pub best_so_far: f64,
}

impl CafqaResult {
    /// The initial continuous angles for post-CAFQA VQE tuning
    /// (paper §3 step 9: the Clifford parameters become the start point).
    pub fn initial_angles(&self) -> Vec<f64> {
        self.best_config.iter().map(|&k| k as f64 * std::f64::consts::FRAC_PI_2).collect()
    }

    /// The best-so-far raw energy after each evaluation (for Fig. 7-style
    /// convergence plots).
    pub fn best_energy_trace(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        let mut best_energy = f64::INFINITY;
        self.trace
            .iter()
            .map(|p| {
                if p.penalized < best {
                    best = p.penalized;
                    best_energy = p.energy;
                }
                best_energy
            })
            .collect()
    }
}

/// A serialized mid-search state of the BO phase: every *completed*
/// evaluation, in fold order, as `(configuration, raw energy, penalized)`.
///
/// This is all the state a resume needs. The BO loop's internal state —
/// RNG cursor, candidate pools, surrogate refits, incumbent — is a pure
/// function of (seed, the objective values returned so far), so
/// [`run_cafqa_resumable_on`] *replays* the recorded values through the
/// loop instead of serializing the loop: the expensive tableau
/// evaluations are skipped, the cheap acquisition bookkeeping is
/// recomputed, and the post-resume continuation is bit-identical to the
/// uninterrupted run (asserted in `crates/core/tests/resume_equivalence.rs`).
///
/// Checkpoints are whole-batch: a suspension discards the in-flight
/// batch unevaluated (warm-up plus seeds is one batch, then one batch
/// per surrogate refit), so `history` is always a batch-aligned prefix
/// of the uninterrupted evaluation sequence.
#[derive(Debug, Clone, Default)]
pub struct SearchCheckpoint {
    /// The [`job_fingerprint`](crate::fingerprint::job_fingerprint) of
    /// the job this checkpoint belongs to; resuming under a different
    /// fingerprint is a [`ResumeError::FingerprintMismatch`]. `0` skips
    /// the check (for callers managing identity themselves).
    pub fingerprint: u64,
    /// Completed evaluations `(config, energy, penalized)` in fold order.
    pub history: Vec<(Vec<usize>, f64, f64)>,
}

/// Progress snapshot handed to the control callback of
/// [`run_cafqa_resumable_on`] before each live (non-replayed) batch.
#[derive(Debug, Clone, Copy)]
pub struct RunProgress {
    /// Completed BO evaluations so far, replayed and live.
    pub evaluations: usize,
    /// Live batches completed in *this* call (replayed batches and the
    /// batch the callback is being consulted about are not counted).
    pub live_batches: usize,
}

/// Decision of a [`run_cafqa_resumable_on`] control callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunControl {
    /// Evaluate the next batch.
    Continue,
    /// Stop *before* evaluating the next batch and return a
    /// [`SearchCheckpoint`] capturing every completed evaluation.
    Suspend,
}

/// How a resumable run ended.
#[derive(Debug, Clone)]
pub enum RunStatus {
    /// The search (BO phase and polish endgame) ran to completion.
    Complete(CafqaResult),
    /// The control callback suspended the BO phase; pass the checkpoint
    /// back as `resume` to continue bit-identically.
    Suspended(SearchCheckpoint),
}

/// A checkpoint that cannot be resumed against the given job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The checkpoint was recorded for a different job fingerprint.
    FingerprintMismatch {
        /// The submitted job's fingerprint.
        expected: u64,
        /// The checkpoint's recorded fingerprint.
        found: u64,
    },
    /// Replay proposed a different configuration than the checkpoint
    /// recorded at this history index — the checkpoint does not belong
    /// to this (job, seed) stream.
    HistoryDiverged {
        /// First diverging index into [`SearchCheckpoint::history`].
        index: usize,
    },
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint fingerprint {found:#018x} does not match job {expected:#018x}"
            ),
            ResumeError::HistoryDiverged { index } => {
                write!(f, "replayed proposal diverged from checkpoint history at index {index}")
            }
        }
    }
}

impl std::error::Error for ResumeError {}

/// Runs the CAFQA discrete search for an arbitrary Hamiltonian/ansatz
/// pair with optional penalties and seed configurations, on the
/// process-global execution engine.
pub fn run_cafqa(
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: Vec<Penalty>,
    seeds: &[Vec<usize>],
    opts: &CafqaOptions,
) -> CafqaResult {
    run_cafqa_on(ExecEngine::global(), ansatz, hamiltonian, penalties, seeds, opts)
}

/// [`run_cafqa`] on an explicit [`ExecEngine`]: every parallel step of
/// the search — warm-up, acquisition batches, surrogate scoring, polish
/// sweeps — dispatches through this one engine, and the result is
/// bit-identical at any worker count (including a serial engine).
pub fn run_cafqa_on(
    engine: &ExecEngine,
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: Vec<Penalty>,
    seeds: &[Vec<usize>],
    opts: &CafqaOptions,
) -> CafqaResult {
    let status = run_cafqa_resumable_on(
        engine,
        ansatz,
        hamiltonian,
        penalties,
        seeds,
        opts,
        None,
        &mut |_| RunControl::Continue,
    );
    match status {
        Ok(RunStatus::Complete(result)) => result,
        Ok(RunStatus::Suspended(_)) => {
            unreachable!("an always-Continue control cannot suspend")
        }
        Err(err) => unreachable!("no checkpoint was supplied: {err}"),
    }
}

/// [`run_cafqa_on`] with cooperative suspension and checkpoint/resume —
/// the serving layer's entry point (`cafqa-serve` slices jobs through
/// it).
///
/// `control` is consulted **before every live BO batch** (a batch is the
/// whole warm-up-plus-seeds set, then one per surrogate refit);
/// returning [`RunControl::Suspend`] discards the proposed batch
/// unevaluated and returns [`RunStatus::Suspended`] with a
/// [`SearchCheckpoint`] of every completed evaluation. Passing that
/// checkpoint back as `resume` replays the recorded objective values
/// through the BO loop — skipping the expensive tableau evaluations but
/// reproducing RNG cursor, surrogate refits and incumbent exactly — so
/// the continuation, and therefore the final [`CafqaResult`] trace, is
/// **bit-identical to the uninterrupted run at any worker count**
/// (`crates/core/tests/resume_equivalence.rs`). Suspension granularity
/// notes:
///
/// - The polish endgame is not suspendable: once the BO phase
///   completes, polish runs to completion in the same call (it is a
///   bounded tail — `O(sweeps · params)` evaluations — where the BO
///   phase is the unbounded bulk).
/// - Instances routed through the Ising fast path complete in one
///   reduced-space solve plus one evaluation batch; `control` is never
///   consulted and no checkpoint can exist for them.
/// - The wall-clock fields of the result (`bo_seconds`,
///   `polish_seconds`) are whatever the completing call measured — they
///   are profiling metadata, excluded from every bit-identity contract.
///
/// `resume.fingerprint` (when nonzero) must match the job's
/// [`job_fingerprint`](crate::fingerprint::job_fingerprint); replayed
/// proposals are additionally checked against the recorded
/// configurations, so a checkpoint from a different job or seed stream
/// fails with a structured [`ResumeError`] instead of silently
/// corrupting the search.
#[allow(clippy::too_many_arguments)]
pub fn run_cafqa_resumable_on(
    engine: &ExecEngine,
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: Vec<Penalty>,
    seeds: &[Vec<usize>],
    opts: &CafqaOptions,
    resume: Option<&SearchCheckpoint>,
    control: &mut dyn FnMut(RunProgress) -> RunControl,
) -> Result<RunStatus, ResumeError> {
    if let Some(checkpoint) = resume {
        if checkpoint.fingerprint != 0 {
            let expected =
                crate::fingerprint::job_fingerprint(ansatz, hamiltonian, &penalties, seeds, opts);
            if checkpoint.fingerprint != expected {
                return Err(ResumeError::FingerprintMismatch {
                    expected,
                    found: checkpoint.fingerprint,
                });
            }
        }
    }
    // Problem-structure routing: Ising-class instances collapse to the
    // reduced-space solve (see the routing notes on `CafqaOptions`);
    // everything else continues below, bit-for-bit as if the hook did
    // not exist.
    if opts.ising_fast_path != IsingFastPath::Off {
        if let Some(result) =
            try_ising_fast_path(engine, ansatz, hamiltonian, &penalties, seeds, opts)
        {
            return Ok(RunStatus::Complete(result));
        }
    }
    let mut objective = CliffordObjective::new(ansatz, hamiltonian).with_engine(engine.clone());
    for p in penalties {
        objective = objective.with_penalty(p);
    }
    let space = SearchSpace::uniform(objective.num_parameters(), 4);
    // The BO layer minimizes the penalized value; raw energies are
    // recovered per configuration afterwards from the recorded configs.
    let mut raw_trace: Vec<(f64, f64)> = Vec::new();
    let bo_clock = Instant::now();
    let bo_opts = BoOptions {
        warmup: opts.warmup,
        iterations: opts.iterations,
        seed: opts.seed,
        patience: opts.patience,
        proposals_per_refit: opts.proposals_per_refit,
        forest: cafqa_bayesopt::ForestOptions { window: opts.forest_window, ..Default::default() },
        ..Default::default()
    };
    let replay: &[(Vec<usize>, f64, f64)] = resume.map_or(&[], |c| &c.history);
    // Shared closure state: the replay cursor, the completed-evaluation
    // log (the next checkpoint), live-batch count, and the first replay
    // divergence observed (surfaced as a structured error after the loop
    // unwinds via Suspend — the closure itself cannot return errors).
    let mut cursor = 0usize;
    let mut completed: Vec<(Vec<usize>, f64, f64)> = Vec::with_capacity(replay.len());
    let mut live_batches = 0usize;
    let mut diverged: Option<usize> = None;
    let (result, finished): (BoResult, bool) = minimize_suspendable_with(
        &space,
        |batch: &[Vec<usize>]| {
            // Serve the replay prefix of this batch from the checkpoint.
            // Checkpoints are whole-batch (a suspension discards the
            // in-flight batch), so for a checkpoint of this job the
            // cursor lands exactly on batch boundaries — the straddle
            // handling below is defensive, not load-bearing.
            let served = batch.len().min(replay.len() - cursor);
            for (offset, config) in batch[..served].iter().enumerate() {
                if replay[cursor + offset].0 != *config {
                    diverged = Some(cursor + offset);
                    return BatchStatus::Suspend;
                }
            }
            let live = &batch[served..];
            if !live.is_empty() {
                // Live work ahead: this is the suspension point.
                let progress = RunProgress { evaluations: completed.len(), live_batches };
                if control(progress) == RunControl::Suspend {
                    return BatchStatus::Suspend;
                }
            }
            let mut values = Vec::with_capacity(batch.len());
            for (config, energy, penalized) in &replay[cursor..cursor + served] {
                completed.push((config.clone(), *energy, *penalized));
                raw_trace.push((*energy, *penalized));
                values.push(*penalized);
            }
            cursor += served;
            if !live.is_empty() {
                // One engine-sharded evaluation for the whole live part
                // (the entire warm-up phase arrives as a single batch);
                // the trace is folded in batch order, identical to
                // per-candidate calls.
                for (config, v) in live.iter().zip(objective.evaluate_batch(live)) {
                    completed.push((config.clone(), v.energy, v.penalized));
                    raw_trace.push((v.energy, v.penalized));
                    values.push(v.penalized);
                }
                live_batches += 1;
            }
            BatchStatus::Values(values)
        },
        seeds,
        &bo_opts,
        engine,
    );
    if let Some(index) = diverged {
        return Err(ResumeError::HistoryDiverged { index });
    }
    if !finished {
        let fingerprint = resume.map_or(0, |c| c.fingerprint);
        return Ok(RunStatus::Suspended(SearchCheckpoint { fingerprint, history: completed }));
    }
    // Polish endgame: incremental coordinate and pair sweeps (see
    // `polish_on`), with the screened variant fed the BO history.
    let history: Vec<(Vec<usize>, f64)> = if opts.polish_screen_top > 0 && opts.polish_sweeps > 0 {
        result.history.iter().map(|e| (e.config.clone(), e.value)).collect()
    } else {
        Vec::new()
    };
    let bo_evaluations = raw_trace.len();
    let bo_seconds = bo_clock.elapsed().as_secs_f64();
    let polish_clock = Instant::now();
    let outcome = polish_on(engine, &objective, &result.best_config, opts, &history);
    let polish_seconds = polish_clock.elapsed().as_secs_f64();
    let mut iterations_to_best = result.iterations_to_best;
    if let Some(accept) = outcome.last_accept {
        iterations_to_best = bo_evaluations + accept;
    }
    raw_trace.extend(outcome.trace.iter().copied());
    let mut best = f64::INFINITY;
    let trace: Vec<SearchPoint> = raw_trace
        .iter()
        .map(|&(energy, penalized)| {
            best = best.min(penalized);
            SearchPoint { energy, penalized, best_so_far: best }
        })
        .collect();
    Ok(RunStatus::Complete(CafqaResult {
        best_config: outcome.best_config,
        energy: outcome.best_value.energy,
        penalized: outcome.best_value.penalized,
        evaluations: trace.len(),
        iterations_to_best,
        trace,
        polish_evaluations: outcome.trace.len(),
        bo_seconds,
        polish_seconds,
        polish_seek_stats: outcome.seek_stats,
    }))
}

/// The pair list of the pair-polish phase, one definition shared by the
/// production sweep, the frozen reference and the screening tests: small
/// registers (`d <= 24`) try every pair; wide ones only pairs that are
/// local in the ansatz layout (same qubit, adjacent qubit, or same qubit
/// across layers — including the α/β spin-pair distance `nq/2` of the
/// blocked spin-orbital ordering, where pairing correlations live),
/// keeping the sweep linear in the parameter count.
pub fn polish_pair_list(d: usize, nq: usize) -> Vec<(usize, usize)> {
    if d <= 24 {
        return (0..d).flat_map(|i| ((i + 1)..d).map(move |j| (i, j))).collect();
    }
    let offsets = [1, 2, nq / 2, nq / 2 + 1, nq.saturating_sub(1), nq, nq + 1, 2 * nq];
    let mut out = Vec::new();
    for i in 0..d {
        for &off in &offsets {
            if off > 0 && i + off < d {
                out.push((i, i + off));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Replays the serial greedy acceptance chain over one batch of polish
/// values: walk the batch in submission order, accept whenever the
/// penalized value strictly beats the current best by more than `tol`,
/// and return the index of the **last** acceptance (`None` if nothing
/// improved). For exactly-tied minima this is the *first* minimiser —
/// the same candidate a serial `min_by` sweep (which keeps the first of
/// equal minima) would pick — regardless of which engine shard computed
/// which value, because shard results are reassembled in submission
/// order before the fold ever sees them.
pub(crate) fn chain_accept(values: &[ObjectiveValue], best: f64, tol: f64) -> Option<usize> {
    let mut best = best;
    let mut accepted = None;
    for (i, value) in values.iter().enumerate() {
        if value.penalized < best - tol {
            best = value.penalized;
            accepted = Some(i);
        }
    }
    accepted
}

/// The outcome of a standalone polish run ([`polish_on`]).
#[derive(Debug, Clone)]
pub struct PolishOutcome {
    /// The polished configuration.
    pub best_config: Vec<usize>,
    /// Its objective value.
    pub best_value: ObjectiveValue,
    /// `(raw energy, penalized)` per polish evaluation, in fold order —
    /// the exact tail [`run_cafqa_on`] appends to the search trace.
    pub trace: Vec<(f64, f64)>,
    /// 1-based index into `trace` of the final accepted improvement
    /// (`None` when polish never improved on the start configuration).
    pub last_accept: Option<usize>,
    /// The pair list actually swept — the full [`polish_pair_list`] at
    /// `polish_screen_top = 0`, the forest-screened subset otherwise
    /// (empty when `polish_sweeps` is 0).
    pub pairs: Vec<(usize, usize)>,
    /// `(backward_seeks, stack_restores)` from the incremental session's
    /// layered checkpoint stack ([`PolishSession::seek_stats`]) —
    /// `(0, 0)` on the full-re-preparation fallback. Profiling metadata,
    /// excluded from every bit-identity contract.
    pub seek_stats: (u64, u64),
}

/// The polish endgame as a standalone phase: greedy coordinate-descent
/// sweeps followed by (optionally surrogate-screened) pair sweeps,
/// starting from `start`. This is what [`run_cafqa_on`] runs after the
/// BO phase; it is public so benchmarks and experiment drivers can time
/// and A/B the endgame in isolation.
///
/// Compiled objectives evaluate every neighbor incrementally
/// ([`PolishSession`]: prefix checkpoint + suffix replay from the
/// changed slot); non-compiled ansätze fall back to full re-preparation
/// through [`CliffordObjective::evaluate_batch`]. Both produce
/// bit-identical traces — see the [polish determinism and
/// screening](CafqaOptions#polish-determinism-and-screening) notes.
///
/// `history` is the `(configuration, penalized value)` search history
/// the screening forest trains on; it is only read when
/// [`CafqaOptions::polish_screen_top`] is binding, and an empty history
/// disables screening (the full pair list is swept).
///
/// Engine use mirrors the rest of the stack: move batches shard over
/// the objective's attached engine, big-Hamiltonian neighbors
/// term-shard from inside the pool, and the screening forest scores
/// pair groups over `engine` — callers normally attach the same engine
/// to the objective ([`run_cafqa_on`] does).
pub fn polish_on(
    engine: &ExecEngine,
    objective: &CliffordObjective<'_>,
    start: &[usize],
    opts: &CafqaOptions,
    history: &[(Vec<usize>, f64)],
) -> PolishOutcome {
    let mut best_config = start.to_vec();
    let mut best_value = objective.evaluate(&best_config);
    let mut trace: Vec<(f64, f64)> = Vec::new();
    let mut last_accept: Option<usize> = None;
    let d = best_config.len();
    // The incremental session (compiled ansätze) or the full
    // re-preparation fallback — semantically identical either way.
    let mut session = objective.polish_session(best_config.clone());
    let eval_moves = |session: &mut Option<PolishSession>,
                      base: &[usize],
                      moves: &[PolishMove]|
     -> Vec<ObjectiveValue> {
        match session {
            Some(session) => session.evaluate_moves(moves),
            None => {
                let candidates: Vec<Vec<usize>> = moves
                    .iter()
                    .map(|mv| {
                        let mut candidate = base.to_vec();
                        for &(slot, value) in mv {
                            candidate[slot] = value;
                        }
                        candidate
                    })
                    .collect();
                objective.evaluate_batch(&candidates)
            }
        }
    };
    // Coordinate-descent sweeps: greedily walk each parameter through its
    // alternative angles until a full sweep yields no improvement. The
    // three alternatives per coordinate are independent, so they evaluate
    // as one batch; `chain_accept` then replays the greedy chain in
    // candidate order, which keeps the trace and the chosen optimum
    // identical to a one-at-a-time sweep.
    for _sweep in 0..opts.polish_sweeps {
        let mut improved = false;
        for i in 0..d {
            let current = best_config[i];
            let moves: Vec<PolishMove> =
                (0..4).filter(|&v| v != current).map(|v| vec![(i, v)]).collect();
            let values = eval_moves(&mut session, &best_config, &moves);
            let base_len = trace.len();
            for value in &values {
                trace.push((value.energy, value.penalized));
            }
            if let Some(idx) = chain_accept(&values, best_value.penalized, 1e-12) {
                for &(slot, value) in &moves[idx] {
                    best_config[slot] = value;
                }
                if let Some(session) = &mut session {
                    session.accept(&moves[idx]);
                }
                best_value = values[idx];
                last_accept = Some(base_len + idx + 1);
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    // Pair polish: correlated two-angle moves escape the
    // single-coordinate local minima that trap e.g. LiH at stretched
    // geometries (and the HF seed on wide registers).
    let mut swept_pairs: Vec<(usize, usize)> = Vec::new();
    if opts.polish_sweeps > 0 {
        let nq = objective.num_qubits();
        let full_pairs = polish_pair_list(d, nq);
        let pairs = screened_pairs(engine, full_pairs, &best_config, opts, history);
        let sweeps = if d <= 24 { 3 } else { 2 };
        for _sweep in 0..sweeps {
            let mut improved = false;
            for &(i, j) in &pairs {
                // All 16 (vi, vj) joint moves are independent: evaluate as
                // one batch, then replay the greedy acceptance chain in
                // (vi, vj) order. The skip of the incumbent pair happens in
                // the fold (it can shift mid-pair when a move is accepted),
                // so trace and outcome match the serial sweep exactly.
                let moves: Vec<PolishMove> =
                    (0..16).map(|code| vec![(i, code / 4), (j, code % 4)]).collect();
                let values = eval_moves(&mut session, &best_config, &moves);
                for (mv, value) in moves.iter().zip(values) {
                    let (vi, vj) = (mv[0].1, mv[1].1);
                    if vi == best_config[i] && vj == best_config[j] {
                        continue;
                    }
                    trace.push((value.energy, value.penalized));
                    if value.penalized < best_value.penalized - 1e-12 {
                        best_config[i] = vi;
                        best_config[j] = vj;
                        if let Some(session) = &mut session {
                            session.accept(mv);
                        }
                        best_value = value;
                        last_accept = Some(trace.len());
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        swept_pairs = pairs;
    }
    let seek_stats = session.as_ref().map_or((0, 0), PolishSession::seek_stats);
    PolishOutcome { best_config, best_value, trace, last_accept, pairs: swept_pairs, seek_stats }
}

/// Applies [`CafqaOptions::polish_screen_top`] to the full pair list:
/// fits a forest on the search history (deterministically seeded from
/// [`CafqaOptions::seed`]), scores each pair by the predicted minimum
/// over its 16 joint moves around `base`, and keeps the `top` best —
/// **in original pair-list order**, so the screened sweep is a plain
/// subset of the exhaustive one. Non-binding configurations (`top` of 0,
/// `top >=` the list length, or an empty history) return the full list
/// untouched.
fn screened_pairs(
    engine: &ExecEngine,
    full: Vec<(usize, usize)>,
    base: &[usize],
    opts: &CafqaOptions,
    history: &[(Vec<usize>, f64)],
) -> Vec<(usize, usize)> {
    let top = opts.polish_screen_top;
    if top == 0 || top >= full.len() || history.is_empty() {
        return full;
    }
    let xs: Vec<Vec<usize>> = history.iter().map(|(config, _)| config.clone()).collect();
    let ys: Vec<f64> = history.iter().map(|&(_, value)| value).collect();
    let cardinalities = vec![4usize; base.len()];
    // A seed distinct from the BO stream: screening is a separate,
    // deterministic phase.
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x5C_4EE4);
    let forest_opts = ForestOptions { window: opts.forest_window, ..Default::default() };
    let forest = Arc::new(RandomForest::fit(&xs, &ys, &cardinalities, &forest_opts, &mut rng));
    let groups: Vec<Vec<Vec<usize>>> = full
        .iter()
        .map(|&(i, j)| {
            (0..16)
                .map(|code| {
                    let mut config = base.to_vec();
                    config[i] = code / 4;
                    config[j] = code % 4;
                    config
                })
                .collect()
        })
        .collect();
    let scores = forest.predict_group_min_on(&groups, engine);
    let mut ranked: Vec<usize> = (0..full.len()).collect();
    // Stable sort: equal scores keep pair-list order, so the selection is
    // deterministic and host-independent.
    ranked.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut keep: Vec<usize> = ranked.into_iter().take(top).collect();
    keep.sort_unstable();
    keep.into_iter().map(|k| full[k]).collect()
}

/// A molecular CAFQA run bundled with its ansatz (the common case).
pub struct MolecularCafqa {
    /// The hardware-efficient ansatz (paper §6: SU2, one linear
    /// entangling layer).
    pub ansatz: EfficientSu2,
    problem: MolecularProblem,
}

impl MolecularCafqa {
    /// Sets up the paper's configuration for a molecular problem:
    /// `EfficientSU2(reps = 1)` on the tapered register.
    pub fn new(problem: MolecularProblem) -> Self {
        let ansatz = EfficientSu2::new(problem.n_qubits, 1);
        MolecularCafqa { ansatz, problem }
    }

    /// The underlying problem.
    pub fn problem(&self) -> &MolecularProblem {
        &self.problem
    }

    /// The HF seed configuration for this problem.
    pub fn hf_config(&self) -> Vec<usize> {
        self.ansatz.basis_state_config(self.problem.hf_bits)
    }

    /// Runs the search with electron-count (and optional Sz) penalties
    /// targeting the problem's sector, on the process-global engine.
    pub fn run(&self, opts: &CafqaOptions) -> CafqaResult {
        self.run_on(ExecEngine::global(), opts)
    }

    /// [`Self::run`] on an explicit engine — the entry point for
    /// experiment drivers that own one engine for a whole sweep (e.g.
    /// the Cr2-surrogate figure), so warm-up, acquisition, polish *and*
    /// the intra-candidate term sharding of its 34-qubit evaluations all
    /// share a single pool.
    pub fn run_on(&self, engine: &ExecEngine, opts: &CafqaOptions) -> CafqaResult {
        let mut penalties = Vec::new();
        if opts.number_penalty > 0.0 {
            penalties.push(Penalty::new(
                "electron count",
                &self.problem.number_op,
                self.problem.n_electrons() as f64,
                opts.number_penalty,
            ));
        }
        if opts.sz_penalty > 0.0 {
            let target = 0.5 * (self.problem.n_alpha as f64 - self.problem.n_beta as f64);
            penalties.push(Penalty::new("sz", &self.problem.sz_op, target, opts.sz_penalty));
        }
        if opts.s2_penalty > 0.0 {
            let s = 0.5 * (self.problem.n_alpha as f64 - self.problem.n_beta as f64);
            penalties.push(Penalty::new(
                "s-squared",
                &self.problem.s_squared_op,
                s * (s + 1.0),
                opts.s2_penalty,
            ));
        }
        let seeds: Vec<Vec<usize>> = if opts.seed_hf { vec![self.hf_config()] } else { Vec::new() };
        run_cafqa_on(engine, &self.ansatz, &self.problem.hamiltonian, penalties, &seeds, opts)
    }

    /// Binds the best configuration into a Clifford circuit.
    pub fn circuit(&self, result: &CafqaResult) -> Circuit {
        self.ansatz.bind_clifford(&result.best_config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};

    fn value(penalized: f64) -> ObjectiveValue {
        ObjectiveValue { energy: penalized, penalized }
    }

    /// The satellite tie-break contract, asserted *before* the engine
    /// path was wired: the acceptance fold must keep the **first**
    /// minimiser under serial-fold order. Engine shards may compute the
    /// values in any order, but they are reassembled by submission index
    /// before the fold, so `chain_accept` sees exactly the serial
    /// candidate order — and for exactly-tied minima it lands on the
    /// same index as `min_by` (which keeps the first of equal minima).
    #[test]
    fn chain_accept_keeps_first_minimiser_like_min_by() {
        let cases: Vec<Vec<f64>> = vec![
            vec![2.0, 1.0, 1.0],           // exact tie: first wins
            vec![1.0, 1.0, 1.0],           // all tied
            vec![3.0, 2.0, 1.0],           // strictly improving chain
            vec![1.0, 2.0, 3.0],           // first is best
            vec![5.0, -1.0, 4.0, -1.0],    // tie across a worse gap
            vec![f64::INFINITY, 0.5, 0.5], // non-finite head
        ];
        for values in cases {
            let batch: Vec<ObjectiveValue> = values.iter().map(|&v| value(v)).collect();
            let chained = chain_accept(&batch, f64::INFINITY, 0.0);
            let min_by =
                values.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i);
            assert_eq!(chained, min_by, "{values:?}");
        }
    }

    #[test]
    fn chain_accept_respects_incumbent_and_tolerance() {
        // Nothing strictly below the incumbent: no acceptance.
        let batch = vec![value(1.0), value(0.9999999)];
        assert_eq!(chain_accept(&batch, 1.0, 1e-3), None);
        // Within tolerance of the *running* best is not accepted: 3−ε
        // loses to the already-accepted 3.0 even though it is the
        // batch minimum — the chain semantics, not a global argmin.
        let batch = vec![value(5.0), value(3.0), value(3.0 - 1e-13)];
        assert_eq!(chain_accept(&batch, 10.0, 1e-12), Some(1));
        // Strictly past the tolerance is accepted.
        let batch = vec![value(5.0), value(3.0), value(3.0 - 1e-9)];
        assert_eq!(chain_accept(&batch, 10.0, 1e-12), Some(2));
        // Empty batch.
        assert_eq!(chain_accept(&[], 0.0, 1e-12), None);
    }

    #[test]
    fn pair_list_is_exhaustive_small_and_local_wide() {
        // d ≤ 24: all C(d, 2) ordered pairs.
        let small = polish_pair_list(6, 3);
        assert_eq!(small.len(), 15);
        assert!(small.iter().all(|&(i, j)| i < j && j < 6));
        // d > 24: sorted, deduplicated, local offsets only.
        let wide = polish_pair_list(48, 12);
        assert!(wide.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        assert!(wide.iter().all(|&(i, j)| i < j && j < 48));
        let offsets = [1usize, 2, 6, 7, 11, 12, 13, 24];
        assert!(wide.iter().all(|&(i, j)| offsets.contains(&(j - i))));
        assert!(wide.len() < 48 * 8 + 1, "linear in d, not quadratic");
    }

    #[test]
    fn hf_seed_guarantees_cafqa_never_worse_than_hf() {
        let pipe = ChemPipeline::build(MoleculeKind::H2, 2.2, &ScfKind::Rhf).unwrap();
        let (na, nb) = pipe.default_sector();
        let problem = pipe.problem(na, nb, true).unwrap();
        let runner = MolecularCafqa::new(problem);
        let result = runner.run(&CafqaOptions::quick());
        let hf = runner.problem().hf_energy;
        assert!(result.energy <= hf + 1e-9, "CAFQA {} must not exceed HF {hf}", result.energy);
    }

    #[test]
    fn h2_stretched_recovers_most_correlation_energy() {
        // Paper Fig. 8: at stretched geometries CAFQA recovers nearly all
        // correlation energy that HF misses.
        let pipe = ChemPipeline::build(MoleculeKind::H2, 2.5, &ScfKind::Rhf).unwrap();
        let problem = pipe.problem(1, 1, true).unwrap();
        let exact = problem.exact_energy.unwrap();
        let hf = problem.hf_energy;
        let runner = MolecularCafqa::new(problem);
        let result =
            runner.run(&CafqaOptions { warmup: 120, iterations: 260, ..Default::default() });
        let recovered = (hf - result.energy) / (hf - exact);
        assert!(
            recovered > 0.9,
            "recovered only {:.1}% (CAFQA {} HF {hf} exact {exact})",
            recovered * 100.0,
            result.energy
        );
    }

    #[test]
    fn hf_config_reproduces_hf_energy() {
        let pipe = ChemPipeline::build(MoleculeKind::LiH, 1.6, &ScfKind::Rhf).unwrap();
        let (na, nb) = pipe.default_sector();
        let problem = pipe.problem(na, nb, false).unwrap();
        let runner = MolecularCafqa::new(problem);
        let objective = CliffordObjective::new(&runner.ansatz, &runner.problem().hamiltonian);
        let v = objective.evaluate(&runner.hf_config());
        assert!(
            (v.energy - runner.problem().hf_energy).abs() < 1e-9,
            "{} vs {}",
            v.energy,
            runner.problem().hf_energy
        );
    }

    #[test]
    fn trace_is_recorded_and_monotone() {
        let pipe = ChemPipeline::build(MoleculeKind::H2, 0.74, &ScfKind::Rhf).unwrap();
        let problem = pipe.problem(1, 1, false).unwrap();
        let runner = MolecularCafqa::new(problem);
        let opts = CafqaOptions { warmup: 30, iterations: 40, ..Default::default() };
        let result = runner.run(&opts);
        assert_eq!(result.evaluations, result.trace.len());
        for w in result.trace.windows(2) {
            assert!(w[1].best_so_far <= w[0].best_so_far + 1e-15);
        }
        assert!(result.iterations_to_best >= 1);
    }
}
