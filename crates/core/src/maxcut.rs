//! MaxCut workloads for CAFQA (the MaxCut1/MaxCut2 entries of Fig. 15).
//!
//! The paper notes CAFQA "is suited widely across variational algorithms
//! (e.g., QAOA)" and reports BO iteration counts for two MaxCut problems;
//! this module generates the Ising Hamiltonians those runs minimize.

use cafqa_linalg::Complex64;
use cafqa_pauli::{Pauli, PauliOp, PauliString};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected weighted graph.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// Edges as `(u, v, weight)` with `u < v`.
    pub edges: Vec<(usize, usize, f64)>,
}

impl Graph {
    /// A seeded Erdős–Rényi graph with unit weights.
    pub fn random(n: usize, edge_probability: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen::<f64>() < edge_probability {
                    edges.push((u, v, 1.0));
                }
            }
        }
        Graph { n, edges }
    }

    /// The cut value of a vertex bipartition given as a bitmask.
    pub fn cut_value(&self, assignment: u64) -> f64 {
        self.edges
            .iter()
            .filter(|&&(u, v, _)| ((assignment >> u) ^ (assignment >> v)) & 1 == 1)
            .map(|&(_, _, w)| w)
            .sum()
    }

    /// Exact maximum cut by exhaustive search.
    ///
    /// # Panics
    ///
    /// Panics above 24 vertices.
    pub fn max_cut_exact(&self) -> f64 {
        assert!(self.n <= 24, "exhaustive max-cut limited to 24 vertices");
        (0..(1u64 << self.n)).map(|a| self.cut_value(a)).fold(f64::MIN, f64::max)
    }
}

/// The Ising MaxCut Hamiltonian `H = Σ_{(u,v)} w/2 (Z_u Z_v − 1)`:
/// minimizing `⟨H⟩` maximizes the cut, with `⟨H⟩ = −cut` on basis states.
pub fn maxcut_hamiltonian(graph: &Graph) -> PauliOp {
    let mut op = PauliOp::zero(graph.n);
    for &(u, v, w) in &graph.edges {
        let zz = PauliString::identity(graph.n).with_pauli(u, Pauli::Z).with_pauli(v, Pauli::Z);
        op.add_term(Complex64::from(w / 2.0), zz);
        op.add_term(Complex64::from(-w / 2.0), PauliString::identity(graph.n));
    }
    op
}

/// The two MaxCut instances used in the Fig. 15 reproduction.
pub fn paper_maxcut_instances() -> [(String, Graph); 2] {
    [
        ("MaxCut1".to_string(), Graph::random(8, 0.5, 17)),
        ("MaxCut2".to_string(), Graph::random(12, 0.35, 29)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::CliffordObjective;
    use crate::runner::{run_cafqa, CafqaOptions};
    use cafqa_circuit::EfficientSu2;

    #[test]
    fn hamiltonian_energy_equals_negative_cut() {
        let g = Graph::random(6, 0.6, 3);
        let h = maxcut_hamiltonian(&g);
        for assignment in [0u64, 0b101010, 0b111000, 0b010101] {
            let e = h.expectation_basis(assignment);
            assert!((e + g.cut_value(assignment)).abs() < 1e-12);
        }
    }

    #[test]
    fn cafqa_finds_max_cut_on_small_graph() {
        // MaxCut ground states are computational basis states, i.e.
        // stabilizer states — CAFQA can hit them exactly.
        let g = Graph::random(6, 0.5, 7);
        let best = g.max_cut_exact();
        let h = maxcut_hamiltonian(&g);
        let ansatz = EfficientSu2::new(6, 1);
        let opts = CafqaOptions { warmup: 300, iterations: 500, ..Default::default() };
        let result = run_cafqa(&ansatz, &h, vec![], &[], &opts);
        assert!(
            (result.energy + best).abs() < 1e-9,
            "CAFQA {} vs optimum {}",
            result.energy,
            -best
        );
    }

    #[test]
    fn clifford_objective_is_exact_on_basis_configs() {
        let g = Graph::random(5, 0.5, 11);
        let h = maxcut_hamiltonian(&g);
        let ansatz = EfficientSu2::new(5, 1);
        let objective = CliffordObjective::new(&ansatz, &h);
        // The basis-state config for assignment b evaluates to −cut(b).
        for b in [0b00000u64, 0b10101, 0b11011] {
            let cfg = ansatz.basis_state_config(b);
            let v = objective.evaluate(&cfg);
            assert!((v.energy + g.cut_value(b)).abs() < 1e-12);
        }
    }

    #[test]
    fn graph_generation_is_deterministic() {
        let a = Graph::random(10, 0.4, 5);
        let b = Graph::random(10, 0.4, 5);
        assert_eq!(a.edges, b.edges);
    }
}
