//! MaxCut workloads for CAFQA (the MaxCut1/MaxCut2 entries of Fig. 15).
//!
//! The paper notes CAFQA "is suited widely across variational algorithms
//! (e.g., QAOA)" and reports BO iteration counts for two MaxCut problems;
//! this module generates the Ising Hamiltonians those runs minimize.

use cafqa_linalg::Complex64;
use cafqa_pauli::{Pauli, PauliOp, PauliString};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected weighted graph.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// Edges as `(u, v, weight)` with `u < v`.
    pub edges: Vec<(usize, usize, f64)>,
}

impl Graph {
    /// A seeded Erdős–Rényi graph with unit weights.
    pub fn random(n: usize, edge_probability: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen::<f64>() < edge_probability {
                    edges.push((u, v, 1.0));
                }
            }
        }
        Graph { n, edges }
    }

    /// A seeded ring (cycle) graph `0−1−…−(n−1)−0` with unit weights.
    /// Rings are bipartite for even `n` (max cut = n) and frustrated for
    /// odd `n` (max cut = n − 1) — the structured rows of the throughput
    /// bench and the fig15 extension.
    ///
    /// # Panics
    ///
    /// Panics below 3 vertices.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 vertices");
        let mut edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|u| (u, u + 1, 1.0)).collect();
        edges.push((0, n - 1, 1.0));
        edges.sort_unstable_by_key(|e| (e.0, e.1));
        Graph { n, edges }
    }

    /// The complete graph `K_n` with unit weights — the densest (and for
    /// the Ising solver, highest-degree) instance class; its max cut is
    /// `⌊n/2⌋·⌈n/2⌉`.
    pub fn complete(n: usize) -> Self {
        let edges = (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v, 1.0))).collect();
        Graph { n, edges }
    }

    /// A seeded Erdős–Rényi graph with uniform random weights in
    /// `[0.1, 1.0)` — same topology stream as [`Graph::random`] would
    /// draw, but every edge also consumes one weight draw, so the two
    /// generators are distinct deterministic families.
    pub fn random_weighted(n: usize, edge_probability: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen::<f64>() < edge_probability {
                    edges.push((u, v, rng.gen_range(0.1..1.0)));
                }
            }
        }
        Graph { n, edges }
    }

    /// The cut value of a vertex bipartition given as a bitmask.
    pub fn cut_value(&self, assignment: u64) -> f64 {
        self.edges
            .iter()
            .filter(|&&(u, v, _)| ((assignment >> u) ^ (assignment >> v)) & 1 == 1)
            .map(|&(_, _, w)| w)
            .sum()
    }

    /// Exact maximum cut by exhaustive search over a Gray-code walk:
    /// step `k` moves exactly vertex `trailing_zeros(k)` across the
    /// partition, so each of the `2^n` assignments costs one O(degree)
    /// cut update instead of an O(|E|) rescan. The walk visits the same
    /// assignments as the plain enumeration
    /// ([`max_cut_exact_rescan`](Self::max_cut_exact_rescan), kept as
    /// the test oracle) and agrees with it to floating-point
    /// accumulation order.
    ///
    /// # Panics
    ///
    /// Panics above 28 vertices (the rescan capped at 24; the
    /// incremental walk buys the extra headroom).
    pub fn max_cut_exact(&self) -> f64 {
        assert!(self.n <= 28, "exhaustive max-cut limited to 28 vertices");
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v, w) in &self.edges {
            adj[u].push((v, w));
            adj[v].push((u, w));
        }
        // side[v] ∈ {0, 1}; crossing edges flip in or out as one
        // endpoint moves: an edge whose endpoints agree gains w, one
        // whose endpoints differ loses it.
        let mut side = vec![0u8; self.n];
        let mut cut = 0.0f64;
        let mut best = 0.0f64;
        for k in 1u64..(1u64 << self.n) {
            let q = k.trailing_zeros() as usize;
            for &(v, w) in &adj[q] {
                cut += if side[q] == side[v] { w } else { -w };
            }
            side[q] ^= 1;
            best = best.max(cut);
        }
        best
    }

    /// The pre-Gray-code exhaustive loop, one full `O(|E|)` rescan per
    /// assignment — quadratically slower, but with no incremental state
    /// at all, which makes it the oracle the fast walk is tested
    /// against.
    ///
    /// # Panics
    ///
    /// Panics above 24 vertices.
    pub fn max_cut_exact_rescan(&self) -> f64 {
        assert!(self.n <= 24, "exhaustive max-cut rescan limited to 24 vertices");
        (0..(1u64 << self.n)).map(|a| self.cut_value(a)).fold(f64::MIN, f64::max)
    }
}

/// The Ising MaxCut Hamiltonian `H = Σ_{(u,v)} w/2 (Z_u Z_v − 1)`:
/// minimizing `⟨H⟩` maximizes the cut, with `⟨H⟩ = −cut` on basis states.
pub fn maxcut_hamiltonian(graph: &Graph) -> PauliOp {
    let mut op = PauliOp::zero(graph.n);
    for &(u, v, w) in &graph.edges {
        let zz = PauliString::identity(graph.n).with_pauli(u, Pauli::Z).with_pauli(v, Pauli::Z);
        op.add_term(Complex64::from(w / 2.0), zz);
        op.add_term(Complex64::from(-w / 2.0), PauliString::identity(graph.n));
    }
    op
}

/// The two MaxCut instances used in the Fig. 15 reproduction.
pub fn paper_maxcut_instances() -> [(String, Graph); 2] {
    [
        ("MaxCut1".to_string(), Graph::random(8, 0.5, 17)),
        ("MaxCut2".to_string(), Graph::random(12, 0.35, 29)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::CliffordObjective;
    use crate::runner::{run_cafqa, CafqaOptions};
    use cafqa_circuit::EfficientSu2;

    #[test]
    fn hamiltonian_energy_equals_negative_cut() {
        let g = Graph::random(6, 0.6, 3);
        let h = maxcut_hamiltonian(&g);
        for assignment in [0u64, 0b101010, 0b111000, 0b010101] {
            let e = h.expectation_basis(assignment);
            assert!((e + g.cut_value(assignment)).abs() < 1e-12);
        }
    }

    #[test]
    fn cafqa_finds_max_cut_on_small_graph() {
        // MaxCut ground states are computational basis states, i.e.
        // stabilizer states — CAFQA can hit them exactly.
        let g = Graph::random(6, 0.5, 7);
        let best = g.max_cut_exact();
        let h = maxcut_hamiltonian(&g);
        let ansatz = EfficientSu2::new(6, 1);
        let opts = CafqaOptions { warmup: 300, iterations: 500, ..Default::default() };
        let result = run_cafqa(&ansatz, &h, vec![], &[], &opts);
        assert!(
            (result.energy + best).abs() < 1e-9,
            "CAFQA {} vs optimum {}",
            result.energy,
            -best
        );
    }

    #[test]
    fn clifford_objective_is_exact_on_basis_configs() {
        let g = Graph::random(5, 0.5, 11);
        let h = maxcut_hamiltonian(&g);
        let ansatz = EfficientSu2::new(5, 1);
        let objective = CliffordObjective::new(&ansatz, &h);
        // The basis-state config for assignment b evaluates to −cut(b).
        for b in [0b00000u64, 0b10101, 0b11011] {
            let cfg = ansatz.basis_state_config(b);
            let v = objective.evaluate(&cfg);
            assert!((v.energy + g.cut_value(b)).abs() < 1e-12);
        }
    }

    #[test]
    fn graph_generation_is_deterministic() {
        let a = Graph::random(10, 0.4, 5);
        let b = Graph::random(10, 0.4, 5);
        assert_eq!(a.edges, b.edges);
        let a = Graph::random_weighted(10, 0.4, 5);
        let b = Graph::random_weighted(10, 0.4, 5);
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn gray_code_walk_matches_rescan_oracle() {
        for g in [
            Graph::random(9, 0.4, 13),
            Graph::random_weighted(9, 0.6, 21),
            Graph::ring(7),
            Graph::complete(6),
            Graph { n: 4, edges: Vec::new() },
        ] {
            let fast = g.max_cut_exact();
            let slow = g.max_cut_exact_rescan();
            assert!((fast - slow).abs() < 1e-9, "fast {fast} vs rescan {slow}");
        }
    }

    #[test]
    fn structured_generators_have_known_optima() {
        // Even rings are bipartite (cut = n), odd rings frustrated
        // (cut = n − 1); K_n cuts ⌊n/2⌋·⌈n/2⌉ edges.
        assert_eq!(Graph::ring(8).max_cut_exact(), 8.0);
        assert_eq!(Graph::ring(9).max_cut_exact(), 8.0);
        assert_eq!(Graph::complete(6).max_cut_exact(), 9.0);
        assert_eq!(Graph::complete(7).max_cut_exact(), 12.0);
        assert_eq!(Graph::ring(5).edges.len(), 5);
        assert_eq!(Graph::complete(5).edges.len(), 10);
    }

    #[test]
    fn weighted_generator_bounds_and_topology() {
        let g = Graph::random_weighted(12, 0.5, 99);
        assert!(!g.edges.is_empty());
        assert!(g.edges.iter().all(|&(u, v, w)| u < v && v < 12 && (0.1..1.0).contains(&w)));
    }
}
