//! Exhaustive enumeration of tiny Clifford spaces.
//!
//! For registers small enough that `4^#params` is enumerable this gives
//! the *true* Clifford optimum — the oracle against which the Bayesian
//! search is validated (and the ground truth behind the paper's claim
//! that CAFQA's H2 points reach the global minimum of the Clifford
//! space).

use cafqa_circuit::Ansatz;
use cafqa_pauli::PauliOp;

use crate::objective::{CliffordObjective, Penalty};

/// Upper bound on enumerable configurations (4^12).
pub const MAX_EXHAUSTIVE: u64 = 1 << 24;

/// The verified global optimum of a Clifford space.
#[derive(Debug, Clone)]
pub struct ExhaustiveResult {
    /// The optimal configuration.
    pub best_config: Vec<usize>,
    /// Its raw `⟨H⟩`.
    pub energy: f64,
    /// Its penalized objective value (the minimized quantity).
    pub penalized: f64,
    /// Number of configurations enumerated.
    pub evaluations: u64,
}

/// Enumerates every Clifford configuration of the ansatz and returns the
/// global optimum of the penalized objective.
///
/// # Errors
///
/// Returns the space size when it exceeds [`MAX_EXHAUSTIVE`].
pub fn exhaustive_search(
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: Vec<Penalty>,
) -> Result<ExhaustiveResult, u64> {
    let d = ansatz.num_parameters();
    if d >= 12 {
        return Err(4u64.saturating_pow(d as u32));
    }
    let total = 4u64.pow(d as u32);
    if total > MAX_EXHAUSTIVE {
        return Err(total);
    }
    let mut objective = CliffordObjective::new(ansatz, hamiltonian);
    for p in penalties {
        objective = objective.with_penalty(p);
    }
    let mut best_config = vec![0usize; d];
    let mut best = objective.evaluate(&best_config);
    let mut config = vec![0usize; d];
    for code in 1..total {
        let mut c = code;
        for slot in config.iter_mut() {
            *slot = (c & 3) as usize;
            c >>= 2;
        }
        let value = objective.evaluate(&config);
        if value.penalized < best.penalized {
            best = value;
            best_config.copy_from_slice(&config);
        }
    }
    Ok(ExhaustiveResult {
        best_config,
        energy: best.energy,
        penalized: best.penalized,
        evaluations: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microbench::{xx_hamiltonian, XxMicrobenchAnsatz};
    use crate::runner::{run_cafqa, CafqaOptions};
    use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
    use cafqa_circuit::EfficientSu2;

    #[test]
    fn microbenchmark_space_is_exhausted() {
        let h = xx_hamiltonian();
        let result = exhaustive_search(&XxMicrobenchAnsatz, &h, vec![]).unwrap();
        assert_eq!(result.evaluations, 4);
        assert_eq!(result.energy, -1.0);
        assert_eq!(result.best_config, vec![3]); // θ = 3π/2
    }

    #[test]
    fn refuses_large_spaces() {
        let ansatz = EfficientSu2::new(4, 1); // 16 parameters → 4^16
        let h = PauliOp::identity(4);
        assert!(exhaustive_search(&ansatz, &h, vec![]).is_err());
    }

    /// The headline oracle test: BO + polish finds the *global* Clifford
    /// optimum of the full H2 ansatz space (4^8 = 65 536 configurations).
    #[test]
    fn bo_matches_exhaustive_on_h2() {
        let pipe = ChemPipeline::build(MoleculeKind::H2, 2.5, &ScfKind::Rhf).unwrap();
        let problem = pipe.problem(1, 1, true).unwrap();
        let ansatz = EfficientSu2::new(2, 1);
        let penalty = Penalty::new("n", &problem.number_op, problem.n_electrons() as f64, 1.0);
        let oracle = exhaustive_search(&ansatz, &problem.hamiltonian, vec![penalty]).unwrap();
        let penalty = Penalty::new("n", &problem.number_op, problem.n_electrons() as f64, 1.0);
        let seeds = vec![ansatz.basis_state_config(problem.hf_bits)];
        let opts = CafqaOptions { warmup: 150, iterations: 250, ..Default::default() };
        let searched = run_cafqa(&ansatz, &problem.hamiltonian, vec![penalty], &seeds, &opts);
        assert!(
            (searched.penalized - oracle.penalized).abs() < 1e-9,
            "search {} vs oracle {}",
            searched.penalized,
            oracle.penalized
        );
        // And the global Clifford optimum sits between exact and HF.
        let exact = problem.exact_energy.unwrap();
        assert!(oracle.energy >= exact - 1e-9);
        assert!(oracle.energy <= problem.hf_energy + 1e-9);
    }
}
