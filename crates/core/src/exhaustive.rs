//! Exhaustive enumeration of tiny Clifford spaces.
//!
//! For registers small enough that `4^#params` is enumerable this gives
//! the *true* Clifford optimum — the oracle against which the Bayesian
//! search is validated (and the ground truth behind the paper's claim
//! that CAFQA's H2 points reach the global minimum of the Clifford
//! space).

use std::sync::Arc;

use cafqa_circuit::Ansatz;
use cafqa_pauli::PauliOp;

use crate::engine::ExecEngine;
use crate::objective::{CliffordObjective, ObjectiveValue, Penalty};

/// Upper bound on enumerable configurations (4^12).
pub const MAX_EXHAUSTIVE: u64 = 1 << 24;

/// The verified global optimum of a Clifford space.
#[derive(Debug, Clone)]
pub struct ExhaustiveResult {
    /// The optimal configuration.
    pub best_config: Vec<usize>,
    /// Its raw `⟨H⟩`.
    pub energy: f64,
    /// Its penalized objective value (the minimized quantity).
    pub penalized: f64,
    /// Number of configurations enumerated.
    pub evaluations: u64,
}

/// Decodes enumeration code `code` into `config` (base-4 little-endian).
#[inline]
fn decode(mut code: u64, config: &mut [usize]) {
    for slot in config.iter_mut() {
        *slot = (code & 3) as usize;
        code >>= 2;
    }
}

/// The winner of one contiguous code range: `(code, value)` of the
/// earliest strict minimum of the penalized objective. Generic over the
/// evaluation closure so the engine-sharded (owned `EvalCore`) and the
/// serial fallback (borrowed ansatz) paths share one scan, guaranteeing
/// identical fold semantics.
fn scan_range(
    mut eval: impl FnMut(&[usize]) -> ObjectiveValue,
    d: usize,
    codes: std::ops::Range<u64>,
) -> (u64, ObjectiveValue) {
    let mut config = vec![0usize; d];
    decode(codes.start, &mut config);
    let mut best_code = codes.start;
    let mut best = eval(&config);
    for code in codes.start + 1..codes.end {
        decode(code, &mut config);
        let value = eval(&config);
        if value.penalized < best.penalized {
            best = value;
            best_code = code;
        }
    }
    (best_code, best)
}

fn guarded_space_size(d: usize) -> Result<u64, u64> {
    // Gate purely on the (saturating) space size: a 12-parameter ansatz
    // saturates MAX_EXHAUSTIVE exactly and is enumerable.
    let total = 4u64.saturating_pow(d as u32);
    if total > MAX_EXHAUSTIVE {
        return Err(total);
    }
    Ok(total)
}

fn build_objective<'a>(
    ansatz: &'a dyn Ansatz,
    hamiltonian: &'a PauliOp,
    penalties: Vec<Penalty>,
) -> CliffordObjective<'a> {
    let mut objective = CliffordObjective::new(ansatz, hamiltonian);
    for p in penalties {
        objective = objective.with_penalty(p);
    }
    objective
}

fn result_from(best_code: u64, best: ObjectiveValue, d: usize, total: u64) -> ExhaustiveResult {
    let mut best_config = vec![0usize; d];
    decode(best_code, &mut best_config);
    ExhaustiveResult {
        best_config,
        energy: best.energy,
        penalized: best.penalized,
        evaluations: total,
    }
}

/// Enumerates every Clifford configuration of the ansatz and returns the
/// global optimum of the penalized objective, sharding the enumeration
/// across the process-global [`ExecEngine`]. The result is identical to
/// [`exhaustive_search_serial`] — ties on the penalized value resolve to
/// the lowest enumeration code in both.
///
/// # Errors
///
/// Returns the space size when it exceeds [`MAX_EXHAUSTIVE`].
pub fn exhaustive_search(
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: Vec<Penalty>,
) -> Result<ExhaustiveResult, u64> {
    exhaustive_search_on(ExecEngine::global(), ansatz, hamiltonian, penalties)
}

/// [`exhaustive_search`] on an explicit engine — the entry point for
/// callers that own a persistent pool (one engine for a whole
/// experiment run, not one per search).
///
/// # Errors
///
/// Returns the space size when it exceeds [`MAX_EXHAUSTIVE`].
pub fn exhaustive_search_on(
    engine: &ExecEngine,
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: Vec<Penalty>,
) -> Result<ExhaustiveResult, u64> {
    let d = ansatz.num_parameters();
    let total = guarded_space_size(d)?;
    let objective = build_objective(ansatz, hamiltonian, penalties);
    let shards = engine.workers() as u64;
    if shards <= 1 || total < 4096 || !objective.is_compiled() || !engine.is_pooled() {
        // Serial scan through the objective (handles non-compiled
        // ansätze via per-candidate lowering) — the reference fold.
        let mut scratch = objective.scratch();
        let (best_code, best) =
            scan_range(|config| objective.evaluate_with(config, &mut scratch), d, 0..total);
        return Ok(result_from(best_code, best, d, total));
    }
    let shard = total.div_ceil(shards);
    let tasks: Vec<_> = (0..total)
        .step_by(shard as usize)
        .map(|start| {
            let core = Arc::clone(objective.core());
            let codes = start..(start + shard).min(total);
            move || {
                let mut scratch = core.scratch();
                scan_range(|config| core.evaluate(config, &mut scratch), d, codes)
            }
        })
        .collect();
    let winners: Vec<(u64, ObjectiveValue)> = engine.map(tasks);
    // Merge in shard order: strictly-better wins, so ties keep the
    // earliest code — exactly the serial scan's behavior.
    let (mut best_code, mut best) = winners[0];
    for &(code, value) in &winners[1..] {
        if value.penalized < best.penalized {
            best = value;
            best_code = code;
        }
    }
    Ok(result_from(best_code, best, d, total))
}

/// [`exhaustive_search`] with an explicit shard count on a private,
/// temporary engine; exposed so the shard/merge path stays testable and
/// benchmarkable regardless of the host's core count.
///
/// # Errors
///
/// Returns the space size when it exceeds [`MAX_EXHAUSTIVE`].
pub fn exhaustive_search_with_workers(
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: Vec<Penalty>,
    workers: u64,
) -> Result<ExhaustiveResult, u64> {
    let engine = ExecEngine::new(workers as usize);
    exhaustive_search_on(&engine, ansatz, hamiltonian, penalties)
}

/// The single-threaded reference enumeration. Same result as
/// [`exhaustive_search`]; kept public as the baseline for the
/// batched-vs-serial benchmarks and equivalence tests.
///
/// # Errors
///
/// Returns the space size when it exceeds [`MAX_EXHAUSTIVE`].
pub fn exhaustive_search_serial(
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: Vec<Penalty>,
) -> Result<ExhaustiveResult, u64> {
    exhaustive_search_with_workers(ansatz, hamiltonian, penalties, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::microbench::{xx_hamiltonian, XxMicrobenchAnsatz};
    use crate::runner::{run_cafqa, CafqaOptions};
    use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
    use cafqa_circuit::EfficientSu2;

    #[test]
    fn microbenchmark_space_is_exhausted() {
        let h = xx_hamiltonian();
        let result = exhaustive_search(&XxMicrobenchAnsatz, &h, vec![]).unwrap();
        assert_eq!(result.evaluations, 4);
        assert_eq!(result.energy, -1.0);
        assert_eq!(result.best_config, vec![3]); // θ = 3π/2
    }

    #[test]
    fn refuses_large_spaces() {
        let ansatz = EfficientSu2::new(4, 1); // 16 parameters → 4^16
        let h = PauliOp::identity(4);
        assert!(exhaustive_search(&ansatz, &h, vec![]).is_err());
    }

    /// A deliberately cheap wide ansatz: `H` then `d` RZ slots on one
    /// qubit, so enumerating 4^12 configurations stays fast. The net
    /// rotation is `(Σ kᵢ)·π/2`, giving `⟨X⟩ = cos(Σ kᵢ · π/2)`.
    struct ManyRz(usize);

    impl Ansatz for ManyRz {
        fn num_qubits(&self) -> usize {
            1
        }
        fn num_parameters(&self) -> usize {
            self.0
        }
        fn bind(&self, params: &[f64]) -> cafqa_circuit::Circuit {
            assert_eq!(params.len(), self.0);
            let mut c = cafqa_circuit::Circuit::new(1);
            c.h(0);
            for &theta in params {
                c.rz(0, theta);
            }
            c
        }
    }

    /// Regression for the off-by-one boundary: `MAX_EXHAUSTIVE` is 4^12,
    /// so a 12-parameter ansatz saturates the bound exactly and must be
    /// enumerated; 13 parameters must be refused with the true size.
    #[test]
    fn twelve_parameter_boundary_is_enumerable() {
        let h: PauliOp = "X".parse().unwrap();
        assert_eq!(4u64.pow(12), MAX_EXHAUSTIVE);
        let result = exhaustive_search(&ManyRz(12), &h, vec![]).unwrap();
        assert_eq!(result.evaluations, MAX_EXHAUSTIVE);
        // ⟨X⟩ = −1 needs Σ kᵢ ≡ 2 (mod 4); the earliest code is [2, 0, …].
        assert_eq!(result.energy, -1.0);
        let mut expected = vec![0usize; 12];
        expected[0] = 2;
        assert_eq!(result.best_config, expected);
        assert!(exhaustive_search(&ManyRz(13), &h, vec![]).is_err_and(|size| size == 4u64.pow(13)));
    }

    /// The sharded enumeration must return exactly the serial result,
    /// including tie resolution toward the lowest enumeration code. Worker
    /// counts are forced so the shard/merge path runs even on one core.
    #[test]
    fn sharded_matches_serial() {
        let h: PauliOp = "0.5*XX + 0.25*ZZ - 0.1*YI".parse().unwrap();
        let ansatz = EfficientSu2::new(2, 1); // 8 parameters → 4^8
        let serial = exhaustive_search_serial(&ansatz, &h, vec![]).unwrap();
        for workers in [2u64, 5, 8] {
            let sharded = exhaustive_search_with_workers(&ansatz, &h, vec![], workers).unwrap();
            assert_eq!(sharded.best_config, serial.best_config, "{workers} workers");
            assert_eq!(sharded.energy.to_bits(), serial.energy.to_bits());
            assert_eq!(sharded.penalized.to_bits(), serial.penalized.to_bits());
            assert_eq!(sharded.evaluations, serial.evaluations);
        }
    }

    /// Ties across shard boundaries must resolve to the earliest code:
    /// with an identity Hamiltonian every configuration ties, so every
    /// shard count must report the all-zeros configuration.
    #[test]
    fn tie_resolution_prefers_lowest_code_across_shards() {
        let h = PauliOp::identity(2);
        let ansatz = EfficientSu2::new(2, 1);
        for workers in [3u64, 7] {
            let result = exhaustive_search_with_workers(&ansatz, &h, vec![], workers).unwrap();
            assert_eq!(result.best_config, vec![0; 8], "{workers} workers");
            assert_eq!(result.energy, 1.0);
        }
    }

    /// The headline oracle test: BO + polish finds the *global* Clifford
    /// optimum of the full H2 ansatz space (4^8 = 65 536 configurations).
    #[test]
    fn bo_matches_exhaustive_on_h2() {
        let pipe = ChemPipeline::build(MoleculeKind::H2, 2.5, &ScfKind::Rhf).unwrap();
        let problem = pipe.problem(1, 1, true).unwrap();
        let ansatz = EfficientSu2::new(2, 1);
        let penalty = Penalty::new("n", &problem.number_op, problem.n_electrons() as f64, 1.0);
        let oracle = exhaustive_search(&ansatz, &problem.hamiltonian, vec![penalty]).unwrap();
        let penalty = Penalty::new("n", &problem.number_op, problem.n_electrons() as f64, 1.0);
        let seeds = vec![ansatz.basis_state_config(problem.hf_bits)];
        let opts = CafqaOptions { warmup: 150, iterations: 250, ..Default::default() };
        let searched = run_cafqa(&ansatz, &problem.hamiltonian, vec![penalty], &seeds, &opts);
        assert!(
            (searched.penalized - oracle.penalized).abs() < 1e-9,
            "search {} vs oracle {}",
            searched.penalized,
            oracle.penalized
        );
        // And the global Clifford optimum sits between exact and HF.
        let exact = problem.exact_energy.unwrap();
        assert!(oracle.energy >= exact - 1e-9);
        assert!(oracle.energy <= problem.hf_energy + 1e-9);
    }
}
