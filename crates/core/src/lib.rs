//! CAFQA — a Clifford Ansatz For Quantum Accuracy.
//!
//! This crate is the paper's primary contribution: choose a VQA ansatz
//! initialization by searching the *Clifford-restricted* parameter space
//! of a hardware-efficient ansatz entirely on classical hardware.
//! Candidate configurations are stabilizer states, evaluated exactly and
//! noise-free in polynomial time by the tableau simulator; the discrete
//! space (four angles per parameter) is searched by Bayesian optimization
//! with a random-forest surrogate; the winner seeds ordinary (noisy) VQE
//! tuning.
//!
//! Entry points:
//!
//! - [`MolecularCafqa`] — the paper's main workload: molecular
//!   ground-state energy estimation from a [`cafqa_chem::MolecularProblem`].
//! - [`run_cafqa`] — the same search for any Hamiltonian/ansatz pair
//!   (e.g. [`maxcut`] problems).
//! - [`run_cafqa_kt`] — the beyond-Clifford CAFQA+kT extension (§8).
//!
//! # Examples
//!
//! ```
//! use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};
//! use cafqa_core::{CafqaOptions, MolecularCafqa};
//!
//! // H2 at a stretched geometry, where HF loses correlation energy.
//! let pipe = ChemPipeline::build(MoleculeKind::H2, 2.0, &ScfKind::Rhf)?;
//! let problem = pipe.problem(1, 1, true)?;
//! let exact = problem.exact_energy.unwrap();
//! let runner = MolecularCafqa::new(problem);
//! let result = runner.run(&CafqaOptions::quick());
//! // CAFQA is never worse than HF and (here) close to exact.
//! assert!(result.energy <= runner.problem().hf_energy + 1e-9);
//! assert!(result.energy >= exact - 1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod exhaustive;
pub mod fingerprint;
pub mod ising;
mod kt;
pub mod maxcut;
pub mod metrics;
pub mod microbench;
mod objective;
mod runner;

pub use engine::{default_workers, ExecEngine};
pub use fingerprint::{coefficient_vector, family_fingerprint, job_fingerprint};
pub use ising::{
    classify_ising, solve_ising_batch_on, IsingError, IsingFastPath, IsingForm, IsingInstance,
};
pub use kt::{
    kt_session, run_cafqa_kt, run_cafqa_kt_on, t_count_of, widen_clifford_config, CafqaKtResult,
    KtError, KtPolishSession,
};
pub use objective::{
    CliffordObjective, EvalScratch, ObjectiveValue, Penalty, PolishMove, PolishSession,
};
pub use runner::{
    polish_on, polish_pair_list, run_cafqa, run_cafqa_on, run_cafqa_resumable_on, CafqaOptions,
    CafqaResult, MolecularCafqa, PolishOutcome, ResumeError, RunControl, RunProgress, RunStatus,
    SearchCheckpoint, SearchPoint,
};

#[cfg(test)]
mod integration_tests {
    use super::*;
    use cafqa_chem::{ChemPipeline, MoleculeKind, ScfKind};

    /// Paper Fig. 8(a): the H2+ cation curve sits above neutral H2, and
    /// the electron-count penalty keeps CAFQA in the right sector.
    #[test]
    fn cation_constraint_selects_one_electron_sector() {
        let pipe = ChemPipeline::build(MoleculeKind::H2, 1.0, &ScfKind::Rhf).unwrap();
        let cation = pipe.problem(1, 0, true).unwrap();
        let cation_exact = cation.exact_energy.unwrap();
        let runner = MolecularCafqa::new(cation);
        let opts = CafqaOptions {
            warmup: 100,
            iterations: 200,
            number_penalty: 2.0,
            ..Default::default()
        };
        let result = runner.run(&opts);
        // Must not dip below the 1-electron exact energy (which would mean
        // the penalty failed and the search escaped the sector).
        assert!(
            result.energy >= cation_exact - 1e-9,
            "CAFQA {} below cation exact {cation_exact}",
            result.energy
        );
        // And must land at (or very near) the cation ground state, which
        // is a stabilizer-reachable single-electron state.
        assert!(
            result.energy <= cation_exact + 0.05,
            "CAFQA {} too far above cation exact {cation_exact}",
            result.energy
        );
    }
}
