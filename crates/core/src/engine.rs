//! The persistent execution engine behind every parallel code path.
//!
//! PR 2 made candidate evaluation allocation-free and sharded, but each
//! batch still paid a `std::thread::scope` spawn (tens of microseconds
//! per worker) and three call sites carried their own
//! `available_parallelism()` heuristics. For the paper's H2O/Cr2-scale
//! runs — hundreds of thousands of small batches — thread churn, not the
//! tableau kernel, becomes the pacing item. This module replaces all of
//! that with one [`ExecEngine`]: a pool of long-lived worker threads fed
//! self-contained jobs over a channel, shared by
//! [`CliffordObjective::evaluate_batch`](crate::CliffordObjective::evaluate_batch),
//! [`exhaustive_search`](crate::exhaustive::exhaustive_search), the
//! polish sweeps in [`run_cafqa`](crate::run_cafqa), and (through the
//! [`cafqa_bayesopt::Executor`] seam) the random-forest surrogate's
//! batched scoring.
//!
//! # Determinism
//!
//! Jobs complete in arbitrary order, so every dispatch API here keys
//! results by shard index and reassembles them in submission order:
//! [`ExecEngine::map`] returns results positionally, exactly as the
//! serial fallback would produce them. Combined with the fixed
//! partial-sum association in the objective kernel, a search trace is
//! bit-identical at any worker count — including 1 — and across hosts.
//!
//! # Worker-count policy
//!
//! [`default_workers`] is the single source of truth (previously three
//! scattered `min(8)`/`min(16)` heuristics): the host parallelism capped
//! at 16, overridable with the `CAFQA_WORKERS` environment variable.
//! [`ExecEngine::global`] exposes one process-wide engine built from it,
//! so independent searches in one process share a single pool instead of
//! oversubscribing the host.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A self-contained unit of work: owns its inputs and reports through a
/// channel captured at build time (the one definition, shared with the
/// [`cafqa_bayesopt::Executor`] seam).
pub use cafqa_bayesopt::Job;

/// Upper bound on the auto-detected worker count: beyond this the
/// shard-merge overhead outweighs the parallelism for CAFQA's batch
/// sizes. `CAFQA_WORKERS` overrides it.
const MAX_AUTO_WORKERS: usize = 16;

/// Parses a `CAFQA_WORKERS` value: a positive thread count.
fn parse_workers(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// The process-wide worker-count policy, replacing the per-call-site
/// heuristics that PR 2 left scattered over the objective, exhaustive
/// and forest layers: the `CAFQA_WORKERS` environment variable when set
/// to a positive integer, otherwise the available parallelism capped at
/// 16. Always at least 1.
pub fn default_workers() -> usize {
    if let Some(n) = std::env::var("CAFQA_WORKERS").ok().as_deref().and_then(parse_workers) {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(MAX_AUTO_WORKERS)
}

thread_local! {
    /// Set once in every pool worker. Dispatching from inside a worker
    /// would deadlock a saturated pool (the outer job blocks waiting for
    /// inner jobs no idle worker can take), so nested dispatch degrades
    /// to the serial path — which is bit-identical anyway.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The long-lived worker threads and the channel that feeds them.
struct WorkerPool {
    /// `None` only transiently during drop (taking it hangs up the
    /// channel so workers drain and exit).
    sender: Option<mpsc::Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(workers: usize) -> WorkerPool {
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("cafqa-worker-{i}"))
                    .spawn(move || {
                        IN_WORKER.with(|flag| flag.set(true));
                        loop {
                            // Hold the queue lock only for the dequeue,
                            // never while running the job.
                            let job = receiver.lock().expect("worker queue poisoned").recv();
                            match job {
                                Ok(job) => job(),
                                Err(_) => break, // engine dropped: drain and exit
                            }
                        }
                    })
                    .expect("worker thread spawn failed")
            })
            .collect();
        WorkerPool { sender: Some(sender), handles }
    }

    fn send(&self, job: Job) {
        self.sender
            .as_ref()
            .expect("pool sender alive until drop")
            .send(job)
            .expect("worker pool hung up");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Hang up the job channel first so idle workers see the
        // disconnect, then wait for in-flight jobs to finish.
        self.sender.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

struct Inner {
    workers: usize,
    /// `None` for a serial engine (1 worker): no threads at all.
    pool: Option<WorkerPool>,
}

/// A persistent worker-pool execution engine.
///
/// Cloning is cheap (an `Arc` handle) and clones share the same pool;
/// the threads shut down when the last handle drops. An engine with one
/// worker spawns no threads and runs everything on the calling thread —
/// the reference semantics every pooled dispatch reproduces exactly.
///
/// # Examples
///
/// ```
/// use cafqa_core::engine::ExecEngine;
///
/// let engine = ExecEngine::new(4);
/// let tasks: Vec<_> = (0..8u64).map(|i| move || i * i).collect();
/// // Results come back in submission order regardless of scheduling.
/// assert_eq!(engine.map(tasks), vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Clone)]
pub struct ExecEngine {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ExecEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecEngine").field("workers", &self.inner.workers).finish()
    }
}

impl ExecEngine {
    /// An engine with exactly `workers` threads (clamped to ≥ 1; one
    /// worker means no threads and pure calling-thread execution).
    pub fn new(workers: usize) -> ExecEngine {
        let workers = workers.max(1);
        let pool = (workers > 1).then(|| WorkerPool::spawn(workers));
        ExecEngine { inner: Arc::new(Inner { workers, pool }) }
    }

    /// An engine sized by [`default_workers`] (`CAFQA_WORKERS` honored).
    pub fn from_env() -> ExecEngine {
        ExecEngine::new(default_workers())
    }

    /// A single-threaded engine (no worker threads).
    pub fn serial() -> ExecEngine {
        ExecEngine::new(1)
    }

    /// The process-wide shared engine, created on first use via
    /// [`ExecEngine::from_env`]. This is what the public entry points
    /// ([`run_cafqa`](crate::run_cafqa),
    /// [`exhaustive_search`](crate::exhaustive::exhaustive_search),
    /// [`CliffordObjective::new`](crate::CliffordObjective::new)) use
    /// unless handed an explicit engine; its threads live for the rest
    /// of the process.
    pub fn global() -> &'static ExecEngine {
        static GLOBAL: OnceLock<ExecEngine> = OnceLock::new();
        GLOBAL.get_or_init(ExecEngine::from_env)
    }

    /// The engine's worker count (1 for a serial engine).
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Whether dispatch would actually use pool threads right now (false
    /// for serial engines and when called from inside a worker, where
    /// nested dispatch degrades to serial execution).
    pub fn is_pooled(&self) -> bool {
        self.inner.pool.is_some() && !IN_WORKER.with(|flag| flag.get())
    }

    /// Runs every job to completion before returning. Panics inside
    /// jobs are collected and re-raised on the calling thread after the
    /// whole batch has finished (so no job is silently dropped).
    pub fn execute(&self, jobs: Vec<Job>) {
        let pool = match &self.inner.pool {
            Some(pool) if jobs.len() > 1 && self.is_pooled() => pool,
            _ => {
                for job in jobs {
                    job();
                }
                return;
            }
        };
        let pending = jobs.len();
        let (done_tx, done_rx) = mpsc::channel::<std::thread::Result<()>>();
        for job in jobs {
            let done = done_tx.clone();
            pool.send(Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job));
                let _ = done.send(outcome);
            }));
        }
        drop(done_tx);
        let mut panic_payload = None;
        for _ in 0..pending {
            match done_rx.recv().expect("worker pool hung up mid-batch") {
                Ok(()) => {}
                Err(payload) => panic_payload = Some(payload),
            }
        }
        if let Some(payload) = panic_payload {
            resume_unwind(payload);
        }
    }

    /// Runs `tasks` across the pool and returns their results **in
    /// submission order** — the deterministic shard→result contract the
    /// whole search stack builds on. Serial engines (and nested calls
    /// from inside a worker) run the tasks in order on the calling
    /// thread, producing identical results. Delegates to the shared
    /// [`cafqa_bayesopt::map_jobs`] shard/merge implementation.
    pub fn map<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if !self.is_pooled() || tasks.len() <= 1 {
            return tasks.into_iter().map(|task| task()).collect();
        }
        let tasks: Vec<Box<dyn FnOnce() -> T + Send>> =
            tasks.into_iter().map(|task| Box::new(task) as Box<dyn FnOnce() -> T + Send>).collect();
        cafqa_bayesopt::map_jobs(self, tasks)
    }
}

impl cafqa_bayesopt::Executor for ExecEngine {
    fn workers(&self) -> usize {
        self.workers()
    }

    fn execute(&self, jobs: Vec<cafqa_bayesopt::Job>) {
        ExecEngine::execute(self, jobs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_submission_order() {
        for workers in [1usize, 2, 8] {
            let engine = ExecEngine::new(workers);
            let tasks: Vec<_> = (0..64u64).map(|i| move || i.wrapping_mul(0x9E37_79B9)).collect();
            let expected: Vec<u64> = (0..64).map(|i: u64| i.wrapping_mul(0x9E37_79B9)).collect();
            assert_eq!(engine.map(tasks), expected, "{workers} workers");
        }
    }

    #[test]
    fn pool_survives_many_batches() {
        // The whole point: one spawn, thousands of dispatches.
        let engine = ExecEngine::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..500 {
            let tasks: Vec<_> = (0..4)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    move || counter.fetch_add(1, Ordering::Relaxed)
                })
                .collect();
            engine.map(tasks);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2000);
    }

    #[test]
    fn panics_propagate_after_batch_completes() {
        let engine = ExecEngine::new(2);
        let completed = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Job> = (0..4)
            .map(|i| {
                let completed = Arc::clone(&completed);
                Box::new(move || {
                    if i == 1 {
                        panic!("job {i} exploded");
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                }) as Job
            })
            .collect();
        let result = catch_unwind(AssertUnwindSafe(|| engine.execute(jobs)));
        assert!(result.is_err(), "panic must propagate");
        // Every non-panicking job still ran before the re-raise.
        assert_eq!(completed.load(Ordering::SeqCst), 3);
        // The pool is still serviceable after a panicking batch.
        assert_eq!(engine.map(vec![|| 7usize]), vec![7]);
    }

    #[test]
    fn nested_dispatch_degrades_to_serial() {
        let engine = ExecEngine::new(2);
        // Jobs that dispatch through the same engine: must not deadlock
        // even though every pool worker may be busy.
        let tasks: Vec<_> = (0..2u64)
            .map(|offset| {
                let inner = engine.clone();
                move || inner.map((0..8u64).map(|i| move || i + offset).collect::<Vec<_>>())
            })
            .collect();
        let results = engine.map(tasks);
        assert_eq!(results[0], vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(results[1], vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    /// The override logic is tested through the pure parser —
    /// `default_workers` is a one-line composition of it with
    /// `env::var`, and mutating the process environment from a test
    /// would race other tests reading it concurrently (`getenv` during
    /// `setenv` is UB in glibc).
    #[test]
    fn workers_env_parse_rules() {
        assert_eq!(parse_workers("4"), Some(4));
        assert_eq!(parse_workers(" 12 "), Some(12));
        assert_eq!(parse_workers("0"), None, "zero workers is meaningless");
        assert_eq!(parse_workers("-3"), None);
        assert_eq!(parse_workers("many"), None);
        assert_eq!(parse_workers(""), None);
        assert!(default_workers() >= 1);
    }

    #[test]
    fn serial_engine_spawns_no_threads() {
        let engine = ExecEngine::serial();
        assert_eq!(engine.workers(), 1);
        assert!(!engine.is_pooled());
        assert_eq!(engine.map(vec![|| 1, || 2, || 3]), vec![1, 2, 3]);
    }

    #[test]
    fn executor_trait_runs_jobs_to_completion() {
        let engine = ExecEngine::new(2);
        let (tx, rx) = mpsc::channel();
        let jobs: Vec<Job> = (0..16)
            .map(|i| {
                let tx = tx.clone();
                Box::new(move || tx.send(i).unwrap()) as Job
            })
            .collect();
        cafqa_bayesopt::Executor::execute(&engine, jobs);
        drop(tx);
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }
}
