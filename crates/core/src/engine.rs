//! The persistent execution engine behind every parallel code path.
//!
//! PR 2 made candidate evaluation allocation-free and sharded, but each
//! batch still paid a `std::thread::scope` spawn (tens of microseconds
//! per worker) and three call sites carried their own
//! `available_parallelism()` heuristics. For the paper's H2O/Cr2-scale
//! runs — hundreds of thousands of small batches — thread churn, not the
//! tableau kernel, becomes the pacing item. This module replaces all of
//! that with one [`ExecEngine`]: a pool of long-lived worker threads fed
//! self-contained jobs over a channel, shared by
//! [`CliffordObjective::evaluate_batch`](crate::CliffordObjective::evaluate_batch),
//! [`exhaustive_search`](crate::exhaustive::exhaustive_search), the
//! polish sweeps in [`run_cafqa`](crate::run_cafqa), and (through the
//! [`cafqa_bayesopt::Executor`] seam) the random-forest surrogate's
//! batched scoring.
//!
//! # Determinism
//!
//! Jobs complete in arbitrary order, so every dispatch API here keys
//! results by shard index and reassembles them in submission order:
//! [`ExecEngine::map`] returns results positionally, exactly as the
//! serial fallback would produce them. Combined with the fixed
//! partial-sum association in the objective kernel, a search trace is
//! bit-identical at any worker count — including 1 — and across hosts.
//!
//! # Two-level dispatch
//!
//! [`ExecEngine::map`] called from inside a pool worker degrades to
//! serial (a saturated pool would deadlock otherwise).
//! [`ExecEngine::map_nested`] is the second dispatch level that does
//! *not*: the caller drains a shared claim queue itself while idle
//! workers opportunistically steal from it, so a worker evaluating one
//! huge candidate can shard its term sum across the rest of the pool —
//! the seam behind the 34-qubit Cr2-surrogate expectation path in
//! [`CliffordObjective`](crate::CliffordObjective).
//!
//! # Worker-count policy
//!
//! [`default_workers`] is the single source of truth (previously three
//! scattered `min(8)`/`min(16)` heuristics): the host parallelism capped
//! at 16, overridable with the `CAFQA_WORKERS` environment variable.
//! [`ExecEngine::global`] exposes one process-wide engine built from it,
//! so independent searches in one process share a single pool instead of
//! oversubscribing the host.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, Once, OnceLock};
use std::thread::JoinHandle;

/// A self-contained unit of work: owns its inputs and reports through a
/// channel captured at build time (the one definition, shared with the
/// [`cafqa_bayesopt::Executor`] seam).
pub use cafqa_bayesopt::Job;

/// Upper bound on the auto-detected worker count: beyond this the
/// shard-merge overhead outweighs the parallelism for CAFQA's batch
/// sizes. `CAFQA_WORKERS` overrides it.
const MAX_AUTO_WORKERS: usize = 16;

/// Parses a `CAFQA_WORKERS` value: a positive thread count.
fn parse_workers(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// The worker-count decision, env-free so it unit-tests without
/// touching the process environment (`setenv` during concurrent
/// `getenv` is UB in glibc): given the raw `CAFQA_WORKERS` value (if
/// set) and the host parallelism, returns the worker count and — when
/// the variable was set but rejected — the warning to emit, naming the
/// rejected value and the fallback count.
fn worker_policy(env_value: Option<&str>, host_parallelism: usize) -> (usize, Option<String>) {
    let fallback = host_parallelism.clamp(1, MAX_AUTO_WORKERS);
    match env_value {
        None => (fallback, None),
        Some(value) => match parse_workers(value) {
            Some(n) => (n, None),
            None => (
                fallback,
                Some(format!(
                    "cafqa: ignoring invalid CAFQA_WORKERS value {value:?} \
                     (expected a positive integer); falling back to {fallback} workers"
                )),
            ),
        },
    }
}

/// The process-wide worker-count policy, replacing the per-call-site
/// heuristics that PR 2 left scattered over the objective, exhaustive
/// and forest layers: the `CAFQA_WORKERS` environment variable when set
/// to a positive integer, otherwise the available parallelism capped at
/// 16. Always at least 1. An *invalid* `CAFQA_WORKERS` value (`"many"`,
/// `"0"`, `"-3"`, …) falls back to the auto-detected count and warns
/// once on stderr — silently ignoring an explicit override hides
/// misconfigured deployments.
pub fn default_workers() -> usize {
    static WARN_ONCE: Once = Once::new();
    let env = std::env::var("CAFQA_WORKERS").ok();
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (workers, warning) = worker_policy(env.as_deref(), host);
    if let Some(warning) = warning {
        WARN_ONCE.call_once(|| eprintln!("{warning}"));
    }
    workers
}

thread_local! {
    /// Set once in every pool worker. Dispatching through [`ExecEngine::map`]
    /// from inside a worker would deadlock a saturated pool (the outer job
    /// blocks waiting for inner jobs no idle worker can take), so that
    /// level of nested dispatch degrades to the serial path — which is
    /// bit-identical anyway. [`ExecEngine::map_nested`] is the dispatch
    /// API that *is* safe from inside a worker.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };

    /// Set while a thread runs a task claimed from a [`NestedBatch`].
    /// Dispatch nests exactly two levels deep: a `map_nested` issued from
    /// inside a nested task runs serially inline, which bounds the chain
    /// of threads blocked on one another and keeps the claim/wait scheme
    /// trivially deadlock-free.
    static IN_NESTED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// One intra-candidate work batch shared between the caller of
/// [`ExecEngine::map_nested`] and the opportunistic helper jobs it posts
/// to the pool. Tasks are *claimed* (dequeued under the lock) before they
/// run, so a task is either pending, or actively executing on some
/// thread — the caller can therefore safely block once the queue is
/// drained: everything it waits on is guaranteed to be making progress.
struct NestedBatch<T> {
    state: Mutex<NestedState<T>>,
    all_done: Condvar,
}

struct NestedState<T> {
    /// Unclaimed `(submission index, task)` pairs, in submission order.
    pending: VecDeque<(usize, Box<dyn FnOnce() -> T + Send>)>,
    /// Results keyed by submission index (the determinism contract).
    results: Vec<Option<T>>,
    completed: usize,
    /// First panic payload observed; re-raised by the caller after the
    /// whole batch has finished, matching [`ExecEngine::execute`].
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl<T> NestedBatch<T> {
    fn new(tasks: Vec<Box<dyn FnOnce() -> T + Send>>) -> Self {
        let total = tasks.len();
        NestedBatch {
            state: Mutex::new(NestedState {
                pending: tasks.into_iter().enumerate().collect(),
                results: (0..total).map(|_| None).collect(),
                completed: 0,
                panic: None,
            }),
            all_done: Condvar::new(),
        }
    }

    /// Claims and runs one pending task; returns `false` once none are
    /// left to claim. The queue lock is held only for the claim and the
    /// result store, never while the task runs.
    fn run_one(&self) -> bool {
        let (index, task) = {
            let mut state = self.state.lock().expect("nested batch poisoned");
            match state.pending.pop_front() {
                Some(entry) => entry,
                None => return false,
            }
        };
        let was_nested = IN_NESTED.with(|flag| flag.replace(true));
        let outcome = catch_unwind(AssertUnwindSafe(task));
        IN_NESTED.with(|flag| flag.set(was_nested));
        let mut state = self.state.lock().expect("nested batch poisoned");
        match outcome {
            Ok(value) => state.results[index] = Some(value),
            Err(payload) => {
                if state.panic.is_none() {
                    state.panic = Some(payload);
                }
            }
        }
        state.completed += 1;
        if state.completed == state.results.len() {
            self.all_done.notify_all();
        }
        true
    }
}

/// The long-lived worker threads and the channel that feeds them.
struct WorkerPool {
    /// `None` only transiently during drop (taking it hangs up the
    /// channel so workers drain and exit).
    sender: Option<mpsc::Sender<Job>>,
    /// Workers currently parked on (or about to take) the job queue —
    /// an *advisory* count: [`ExecEngine::map_nested`] posts helper jobs
    /// only up to it, so a saturated pool is not flooded with no-op
    /// helpers. Raciness is harmless; helpers are opportunistic either
    /// way.
    idle: Arc<std::sync::atomic::AtomicUsize>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(workers: usize) -> WorkerPool {
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let idle = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let handles = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let idle = Arc::clone(&idle);
                std::thread::Builder::new()
                    .name(format!("cafqa-worker-{i}"))
                    .spawn(move || {
                        IN_WORKER.with(|flag| flag.set(true));
                        loop {
                            // Hold the queue lock only for the dequeue,
                            // never while running the job.
                            idle.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let job = receiver.lock().expect("worker queue poisoned").recv();
                            idle.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
                            match job {
                                Ok(job) => job(),
                                Err(_) => break, // engine dropped: drain and exit
                            }
                        }
                    })
                    .expect("worker thread spawn failed")
            })
            .collect();
        WorkerPool { sender: Some(sender), idle, handles }
    }

    fn idle_workers(&self) -> usize {
        self.idle.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn send(&self, job: Job) {
        self.sender
            .as_ref()
            .expect("pool sender alive until drop")
            .send(job)
            .expect("worker pool hung up");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Hang up the job channel first so idle workers see the
        // disconnect, then wait for in-flight jobs to finish.
        self.sender.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

struct Inner {
    workers: usize,
    /// `None` for a serial engine (1 worker): no threads at all.
    pool: Option<WorkerPool>,
}

/// A persistent worker-pool execution engine.
///
/// Cloning is cheap (an `Arc` handle) and clones share the same pool;
/// the threads shut down when the last handle drops. An engine with one
/// worker spawns no threads and runs everything on the calling thread —
/// the reference semantics every pooled dispatch reproduces exactly.
///
/// # Examples
///
/// ```
/// use cafqa_core::engine::ExecEngine;
///
/// let engine = ExecEngine::new(4);
/// let tasks: Vec<_> = (0..8u64).map(|i| move || i * i).collect();
/// // Results come back in submission order regardless of scheduling.
/// assert_eq!(engine.map(tasks), vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Clone)]
pub struct ExecEngine {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ExecEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecEngine").field("workers", &self.inner.workers).finish()
    }
}

impl ExecEngine {
    /// An engine with exactly `workers` threads (clamped to ≥ 1; one
    /// worker means no threads and pure calling-thread execution).
    pub fn new(workers: usize) -> ExecEngine {
        let workers = workers.max(1);
        let pool = (workers > 1).then(|| WorkerPool::spawn(workers));
        ExecEngine { inner: Arc::new(Inner { workers, pool }) }
    }

    /// An engine sized by [`default_workers`] (`CAFQA_WORKERS` honored).
    pub fn from_env() -> ExecEngine {
        ExecEngine::new(default_workers())
    }

    /// A single-threaded engine (no worker threads).
    pub fn serial() -> ExecEngine {
        ExecEngine::new(1)
    }

    /// The process-wide shared engine, created on first use via
    /// [`ExecEngine::from_env`]. This is what the public entry points
    /// ([`run_cafqa`](crate::run_cafqa),
    /// [`exhaustive_search`](crate::exhaustive::exhaustive_search),
    /// [`CliffordObjective::new`](crate::CliffordObjective::new)) use
    /// unless handed an explicit engine; its threads live for the rest
    /// of the process.
    pub fn global() -> &'static ExecEngine {
        static GLOBAL: OnceLock<ExecEngine> = OnceLock::new();
        GLOBAL.get_or_init(ExecEngine::from_env)
    }

    /// The engine's worker count (1 for a serial engine).
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Whether dispatch would actually use pool threads right now (false
    /// for serial engines and when called from inside a worker, where
    /// nested dispatch degrades to serial execution).
    pub fn is_pooled(&self) -> bool {
        self.inner.pool.is_some() && !IN_WORKER.with(|flag| flag.get())
    }

    /// Runs every job to completion before returning. Panics inside
    /// jobs are collected and re-raised on the calling thread after the
    /// whole batch has finished (so no job is silently dropped).
    pub fn execute(&self, jobs: Vec<Job>) {
        let pool = match &self.inner.pool {
            Some(pool) if jobs.len() > 1 && self.is_pooled() => pool,
            _ => {
                for job in jobs {
                    job();
                }
                return;
            }
        };
        let pending = jobs.len();
        let (done_tx, done_rx) = mpsc::channel::<std::thread::Result<()>>();
        for job in jobs {
            let done = done_tx.clone();
            pool.send(Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job));
                let _ = done.send(outcome);
            }));
        }
        drop(done_tx);
        let mut panic_payload = None;
        for _ in 0..pending {
            match done_rx.recv().expect("worker pool hung up mid-batch") {
                Ok(()) => {}
                Err(payload) => panic_payload = Some(payload),
            }
        }
        if let Some(payload) = panic_payload {
            resume_unwind(payload);
        }
    }

    /// Runs `tasks` across the pool and returns their results **in
    /// submission order** — the deterministic shard→result contract the
    /// whole search stack builds on. Serial engines (and nested calls
    /// from inside a worker) run the tasks in order on the calling
    /// thread, producing identical results. Delegates to the shared
    /// [`cafqa_bayesopt::map_jobs`] shard/merge implementation.
    pub fn map<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if !self.is_pooled() || tasks.len() <= 1 {
            return tasks.into_iter().map(|task| task()).collect();
        }
        let tasks: Vec<Box<dyn FnOnce() -> T + Send>> =
            tasks.into_iter().map(|task| Box::new(task) as Box<dyn FnOnce() -> T + Send>).collect();
        cafqa_bayesopt::map_jobs(self, tasks)
    }

    /// Two-level dispatch: runs `tasks` with the help of whatever pool
    /// workers happen to be idle, and returns results **in submission
    /// order** — the intra-candidate counterpart of [`ExecEngine::map`].
    ///
    /// Unlike `map`, this is safe to call *from inside a pool worker*
    /// (the seam that lets one worker split a large Hamiltonian term sum
    /// across the rest of the pool instead of degrading to serial): the
    /// calling thread claims and runs tasks itself, and only posts
    /// *opportunistic* helper jobs — an idle worker that picks one up
    /// steals pending tasks until the batch is drained, while on a
    /// saturated pool the helpers simply no-op later and the caller has
    /// already done all the work serially. The caller blocks only on
    /// tasks that were claimed by (and are actively running on) other
    /// workers, so the scheme cannot deadlock; a `map_nested` issued from
    /// within a nested task runs serially inline (dispatch nests exactly
    /// two levels).
    ///
    /// Panics inside tasks are re-raised on the calling thread after the
    /// whole batch has finished, and results are keyed by submission
    /// index — both exactly as in [`ExecEngine::map`], so serial, pooled
    /// and helper-assisted execution are indistinguishable result-wise.
    pub fn map_nested<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let pool = match &self.inner.pool {
            Some(pool) if tasks.len() > 1 && !IN_NESTED.with(|flag| flag.get()) => pool,
            _ => return tasks.into_iter().map(|task| task()).collect(),
        };
        let total = tasks.len();
        let tasks: Vec<Box<dyn FnOnce() -> T + Send>> =
            tasks.into_iter().map(|task| Box::new(task) as Box<dyn FnOnce() -> T + Send>).collect();
        let batch = Arc::new(NestedBatch::new(tasks));
        // Helper jobs capture only the batch (never the engine handle, so
        // a helper outliving this call can never be the last owner of the
        // pool and join a worker into itself). Only currently-idle
        // workers get one: on a saturated pool — every worker busy with
        // an outer shard that nests per candidate — posting blindly would
        // grow the queue by O(candidates × workers) no-op jobs. The count
        // is advisory; a worker going idle a moment later just misses
        // this batch, which helpers may anyway.
        let helpers = pool.idle_workers().min(self.inner.workers - 1).min(total - 1);
        for _ in 0..helpers {
            let batch = Arc::clone(&batch);
            pool.send(Box::new(move || while batch.run_one() {}));
        }
        while batch.run_one() {}
        let mut state = batch.state.lock().expect("nested batch poisoned");
        while state.completed < total {
            state = batch.all_done.wait(state).expect("nested batch poisoned");
        }
        if let Some(payload) = state.panic.take() {
            drop(state);
            resume_unwind(payload);
        }
        state
            .results
            .iter_mut()
            .map(|slot| slot.take().expect("every nested task completes exactly once"))
            .collect()
    }
}

impl cafqa_bayesopt::Executor for ExecEngine {
    fn workers(&self) -> usize {
        self.workers()
    }

    fn execute(&self, jobs: Vec<cafqa_bayesopt::Job>) {
        ExecEngine::execute(self, jobs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_submission_order() {
        for workers in [1usize, 2, 8] {
            let engine = ExecEngine::new(workers);
            let tasks: Vec<_> = (0..64u64).map(|i| move || i.wrapping_mul(0x9E37_79B9)).collect();
            let expected: Vec<u64> = (0..64).map(|i: u64| i.wrapping_mul(0x9E37_79B9)).collect();
            assert_eq!(engine.map(tasks), expected, "{workers} workers");
        }
    }

    #[test]
    fn pool_survives_many_batches() {
        // The whole point: one spawn, thousands of dispatches.
        let engine = ExecEngine::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..500 {
            let tasks: Vec<_> = (0..4)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    move || counter.fetch_add(1, Ordering::Relaxed)
                })
                .collect();
            engine.map(tasks);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2000);
    }

    #[test]
    fn panics_propagate_after_batch_completes() {
        let engine = ExecEngine::new(2);
        let completed = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Job> = (0..4)
            .map(|i| {
                let completed = Arc::clone(&completed);
                Box::new(move || {
                    if i == 1 {
                        panic!("job {i} exploded");
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                }) as Job
            })
            .collect();
        let result = catch_unwind(AssertUnwindSafe(|| engine.execute(jobs)));
        assert!(result.is_err(), "panic must propagate");
        // Every non-panicking job still ran before the re-raise.
        assert_eq!(completed.load(Ordering::SeqCst), 3);
        // The pool is still serviceable after a panicking batch.
        assert_eq!(engine.map(vec![|| 7usize]), vec![7]);
    }

    #[test]
    fn map_nested_preserves_submission_order() {
        for workers in [1usize, 2, 8] {
            let engine = ExecEngine::new(workers);
            let tasks: Vec<_> = (0..37u64).map(|i| move || i.wrapping_mul(0x85EB_CA6B)).collect();
            let expected: Vec<u64> = (0..37).map(|i: u64| i.wrapping_mul(0x85EB_CA6B)).collect();
            assert_eq!(engine.map_nested(tasks), expected, "{workers} workers");
        }
    }

    #[test]
    fn map_nested_from_inside_workers_uses_the_pool() {
        // The tentpole shape: every outer job splits its own work through
        // map_nested while the pool is partially idle. Results must be
        // identical to the serial nesting, and nothing may deadlock.
        let engine = ExecEngine::new(4);
        let tasks: Vec<_> = (0..2u64)
            .map(|offset| {
                let inner = engine.clone();
                move || {
                    let sub: Vec<_> =
                        (0..16u64).map(|i| move || (i + offset).wrapping_mul(3)).collect();
                    inner.map_nested(sub).into_iter().sum::<u64>()
                }
            })
            .collect();
        let results = engine.map(tasks);
        let expect = |offset: u64| (0..16u64).map(|i| (i + offset).wrapping_mul(3)).sum::<u64>();
        assert_eq!(results, vec![expect(0), expect(1)]);
    }

    #[test]
    fn map_nested_saturated_pool_does_not_deadlock() {
        // More outer jobs than workers, every one of them nesting: the
        // helpers never get an idle worker, so each caller must drain its
        // own queue serially — and still merge deterministically.
        let engine = ExecEngine::new(2);
        let tasks: Vec<_> = (0..8u64)
            .map(|offset| {
                let inner = engine.clone();
                move || inner.map_nested((0..8u64).map(|i| move || i ^ offset).collect::<Vec<_>>())
            })
            .collect();
        let results = engine.map(tasks);
        for (offset, row) in results.into_iter().enumerate() {
            let expected: Vec<u64> = (0..8u64).map(|i| i ^ offset as u64).collect();
            assert_eq!(row, expected);
        }
    }

    #[test]
    fn map_nested_third_level_runs_serially_inline() {
        let engine = ExecEngine::new(4);
        let outer = engine.clone();
        let results = engine.map_nested(
            (0..4u64)
                .map(|k| {
                    let inner = outer.clone();
                    move || {
                        // From inside a nested task, a further map_nested
                        // must run inline (and therefore never block).
                        inner.map_nested((0..2u64).map(|j| move || k * 10 + j).collect::<Vec<_>>())
                    }
                })
                .collect::<Vec<_>>(),
        );
        assert_eq!(results, vec![vec![0, 1], vec![10, 11], vec![20, 21], vec![30, 31]]);
    }

    #[test]
    fn map_nested_panics_propagate_after_batch_completes() {
        let engine = ExecEngine::new(2);
        let completed = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..6usize)
            .map(|i| {
                let completed = Arc::clone(&completed);
                move || {
                    if i == 2 {
                        panic!("nested task {i} exploded");
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                    i
                }
            })
            .collect();
        let result = catch_unwind(AssertUnwindSafe(|| engine.map_nested(tasks)));
        assert!(result.is_err(), "panic must propagate");
        assert_eq!(completed.load(Ordering::SeqCst), 5, "non-panicking tasks all ran");
        // The engine stays serviceable afterwards.
        assert_eq!(engine.map_nested(vec![|| 1, || 2]), vec![1, 2]);
    }

    #[test]
    fn nested_dispatch_degrades_to_serial() {
        let engine = ExecEngine::new(2);
        // Jobs that dispatch through the same engine: must not deadlock
        // even though every pool worker may be busy.
        let tasks: Vec<_> = (0..2u64)
            .map(|offset| {
                let inner = engine.clone();
                move || inner.map((0..8u64).map(|i| move || i + offset).collect::<Vec<_>>())
            })
            .collect();
        let results = engine.map(tasks);
        assert_eq!(results[0], vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(results[1], vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    /// The override logic is tested through the pure parser —
    /// `default_workers` is a one-line composition of it with
    /// `env::var`, and mutating the process environment from a test
    /// would race other tests reading it concurrently (`getenv` during
    /// `setenv` is UB in glibc).
    #[test]
    fn workers_env_parse_rules() {
        assert_eq!(parse_workers("4"), Some(4));
        assert_eq!(parse_workers(" 12 "), Some(12));
        assert_eq!(parse_workers("0"), None, "zero workers is meaningless");
        assert_eq!(parse_workers("-3"), None);
        assert_eq!(parse_workers("many"), None);
        assert_eq!(parse_workers(""), None);
        assert!(default_workers() >= 1);
    }

    /// The full decision function, env-free: valid overrides win, unset
    /// falls back silently, and *invalid* values fall back **with a
    /// warning** naming the rejected value and the fallback count.
    #[test]
    fn worker_policy_warns_on_invalid_override_only() {
        // Unset: host parallelism capped at MAX_AUTO_WORKERS, no warning.
        assert_eq!(worker_policy(None, 4), (4, None));
        assert_eq!(worker_policy(None, 64), (MAX_AUTO_WORKERS, None));
        assert_eq!(worker_policy(None, 0), (1, None), "degenerate host still gets 1");
        // Valid override: taken verbatim (not capped), no warning.
        assert_eq!(worker_policy(Some("12"), 4), (12, None));
        assert_eq!(worker_policy(Some(" 32 "), 4), (32, None));
        // Invalid override: fallback plus a one-line warning that names
        // both the rejected value and the count actually used.
        for bad in ["many", "0", "-3", ""] {
            let (workers, warning) = worker_policy(Some(bad), 6);
            assert_eq!(workers, 6, "{bad:?} falls back to the host count");
            let warning = warning.unwrap_or_else(|| panic!("{bad:?} must warn"));
            assert!(warning.contains(&format!("{bad:?}")), "{warning}");
            assert!(warning.contains("6 workers"), "{warning}");
            assert!(warning.contains("CAFQA_WORKERS"), "{warning}");
        }
    }

    #[test]
    fn serial_engine_spawns_no_threads() {
        let engine = ExecEngine::serial();
        assert_eq!(engine.workers(), 1);
        assert!(!engine.is_pooled());
        assert_eq!(engine.map(vec![|| 1, || 2, || 3]), vec![1, 2, 3]);
    }

    #[test]
    fn executor_trait_runs_jobs_to_completion() {
        let engine = ExecEngine::new(2);
        let (tx, rx) = mpsc::channel();
        let jobs: Vec<Job> = (0..16)
            .map(|i| {
                let tx = tx.clone();
                Box::new(move || tx.send(i).unwrap()) as Job
            })
            .collect();
        cafqa_bayesopt::Executor::execute(&engine, jobs);
        drop(tx);
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }
}
