//! The Ising fast path: structure classification and reduced-space
//! solving for diagonal (Ising-class) Hamiltonians.
//!
//! "Optimal Clifford Initial States for Ising Hamiltonians"
//! (arXiv 2312.01036) observes that for a Hamiltonian that is diagonal —
//! every term a product of Z and I, possibly after a per-qubit
//! single-Clifford change of basis — the optimal point of the whole
//! `4^d` Clifford search lies in a drastically reduced space: the
//! product eigenstates of the per-qubit bases, i.e. `2^n` ±1 eigenvalue
//! assignments. `⟨H⟩` restricted to that space is a plain binary
//! quadratic objective, so the search collapses to a classical Ising
//! solve (exact below [`EXACT_SOLVE_CAP`] qubits, deterministic seeded
//! multi-start 1-flip local search above it) and a lift of the winning
//! assignment back to ansatz parameters.
//!
//! The pieces, front to back:
//!
//! - [`classify_ising`] decides — from the mask-form term set alone —
//!   whether a [`PauliOp`] is Ising-class and extracts the
//!   constant/linear/quadratic coefficients as an [`IsingForm`].
//!   Anything else returns `None` and routes unchanged (bit-for-bit) to
//!   the full [`run_cafqa_on`](crate::run_cafqa_on) pipeline.
//! - [`IsingForm::solve`] minimizes the reduced objective over
//!   assignments.
//! - [`Ansatz::eigenstate_config`] lifts the winner to a discrete
//!   Clifford configuration, which is re-evaluated through the ordinary
//!   [`CliffordObjective`] so the reported energy is the tableau
//!   simulator's, not the reduced model's.
//! - [`solve_ising_batch_on`] shards whole instances over
//!   [`ExecEngine::map`] for service-style throughput, with per-instance
//!   results bit-identical at any worker count.
//!
//! Routing is governed by [`CafqaOptions::ising_fast_path`]; see the
//! [problem-structure routing](crate::CafqaOptions#problem-structure-routing)
//! notes for the force/disable contract.

use std::collections::BTreeMap;
use std::time::Instant;

use cafqa_circuit::{Ansatz, EfficientSu2, LocalBasis};
use cafqa_pauli::{Pauli, PauliOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::ExecEngine;
use crate::objective::{CliffordObjective, Penalty};
use crate::runner::{run_cafqa_on, CafqaOptions, CafqaResult, SearchPoint};

/// Routing policy for the Ising fast path
/// ([`CafqaOptions::ising_fast_path`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IsingFastPath {
    /// Route classified instances through the reduced-space solver;
    /// everything else — non-Ising structure, penalties attached, or an
    /// ansatz without an eigenstate lift — runs the full search
    /// bit-for-bit unchanged. The default.
    #[default]
    Auto,
    /// Never route: every instance runs the full search. This is the
    /// knob for measuring the unrouted baseline (the BO arm of the
    /// `ising_fast_path_vs_bo` bench) and for pinning legacy traces.
    Off,
    /// Require routing: panic if the instance cannot take the fast path.
    /// For callers that *know* their workload is Ising-class and want
    /// misclassification to be loud.
    Force,
}

/// Exact exhaustive solving is used up to this many qubits; larger
/// instances run the multi-start local search. The Gray-code walk makes
/// the exact solve one O(degree) delta per assignment, so 16 qubits is
/// ~65k steps — tens of microseconds, which keeps the serving-layer
/// throughput flat across the 16–24-vertex band instead of paying
/// `2^n` right where the fast path is benchmarked.
pub const EXACT_SOLVE_CAP: usize = 16;

/// Spins above this cannot be solved at all: assignments are packed in a
/// `u64`, so the local search caps at 64 (and [`classify_ising`] never
/// emits a wider form).
pub const SOLVE_CAP: usize = 64;

/// A structured rejection from [`IsingForm::solve`] — what a serving
/// layer reports to the submitter instead of dying on an `assert!`. The
/// internal exact walkers ([`IsingForm::solve_exact`],
/// [`IsingForm::local_search`]) keep their hard asserts: they are only
/// reachable through [`IsingForm::solve`]'s routing (which has already
/// checked the caps) or direct calls by code that owns its own bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsingError {
    /// The instance has more spins than the solver can represent.
    TooLarge {
        /// The instance's spin count.
        n: usize,
        /// The hard cap ([`SOLVE_CAP`]).
        cap: usize,
    },
}

impl std::fmt::Display for IsingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsingError::TooLarge { n, cap } => {
                write!(f, "Ising instance has {n} spins; the solver caps at {cap}")
            }
        }
    }
}

impl std::error::Error for IsingError {}

/// A classified diagonal Hamiltonian in spin form:
///
/// `⟨H⟩(s) = constant + Σ_i linear[i]·s_i + Σ_{(i,j,w)} w·s_i·s_j`
///
/// over `s_i ∈ {+1, −1}`, where `s_q` is the eigenvalue of the
/// per-qubit rotated Pauli `bases[q]` on qubit `q`. Assignments are
/// packed as bitmasks with bit `q` **set meaning `s_q = −1`** (so the
/// all-zeros assignment is `|0…0⟩` for all-Z bases, matching
/// [`EfficientSu2::basis_state_config`]).
#[derive(Debug, Clone)]
pub struct IsingForm {
    /// Number of qubits (spins).
    pub n: usize,
    /// The per-qubit measurement basis; qubits outside every term's
    /// support default to [`LocalBasis::Z`].
    pub bases: Vec<LocalBasis>,
    /// The identity-term offset.
    pub constant: f64,
    /// Linear (field) coefficients, one per qubit.
    pub linear: Vec<f64>,
    /// Quadratic (coupling) coefficients as `(i, j, w)` with `i < j`,
    /// sorted, one entry per coupled pair.
    pub pairs: Vec<(usize, usize, f64)>,
}

impl IsingForm {
    /// The reduced-space objective at a packed assignment (bit set ⇒
    /// spin −1). Exact sum in term order: constant, linear by qubit,
    /// pairs in sorted order.
    pub fn energy_of(&self, bits: u64) -> f64 {
        let spin = |q: usize| if (bits >> q) & 1 == 1 { -1.0 } else { 1.0 };
        let mut e = self.constant;
        for (q, &h) in self.linear.iter().enumerate() {
            e += h * spin(q);
        }
        for &(i, j, w) in &self.pairs {
            e += w * spin(i) * spin(j);
        }
        e
    }

    /// Adjacency lists: for each qubit, its coupled `(neighbor, weight)`
    /// entries.
    fn adjacency(&self) -> Vec<Vec<(usize, f64)>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(i, j, w) in &self.pairs {
            adj[i].push((j, w));
            adj[j].push((i, w));
        }
        adj
    }

    /// Minimizes the reduced objective and returns `(assignment,
    /// energy)`; deterministic for a fixed `seed` at any worker count
    /// (the solve is single-threaded by construction). Instances up to
    /// [`EXACT_SOLVE_CAP`] qubits are solved exactly; larger ones run
    /// `max(3n, 8)` seeded greedy 1-flip restarts. Either way the
    /// returned energy is recomputed from scratch at the winning
    /// assignment, so incremental-update drift never leaves this
    /// function.
    ///
    /// This is the service-reachable entry point, so an oversized form
    /// (`n >` [`SOLVE_CAP`] — impossible via [`classify_ising`], easy
    /// via a hand-built [`IsingForm`]) returns a structured
    /// [`IsingError::TooLarge`] instead of tripping the internal
    /// walkers' asserts.
    pub fn solve(&self, seed: u64) -> Result<(u64, f64), IsingError> {
        if self.n > SOLVE_CAP {
            return Err(IsingError::TooLarge { n: self.n, cap: SOLVE_CAP });
        }
        Ok(if self.n <= EXACT_SOLVE_CAP {
            self.solve_exact()
        } else {
            self.local_search(seed, (3 * self.n).max(8))
        })
    }

    /// Exact minimum by a Gray-code walk: step `k` flips only spin
    /// `trailing_zeros(k)`, so each of the `2^n` assignments costs one
    /// O(degree) delta update instead of a full re-evaluation. Ties keep
    /// the first minimiser in walk order.
    ///
    /// # Panics
    ///
    /// Panics above 28 qubits (the walk is still `O(2^n)`).
    pub fn solve_exact(&self) -> (u64, f64) {
        assert!(self.n <= 28, "exhaustive Ising solve limited to 28 qubits");
        let adj = self.adjacency();
        // spins[q] = ±1; fields[q] = h_q + Σ_j J_qj s_j (excludes q itself).
        let mut spins = vec![1.0f64; self.n];
        let mut fields = self.linear.clone();
        for &(i, j, w) in &self.pairs {
            fields[i] += w;
            fields[j] += w;
        }
        let mut energy = self.energy_of(0);
        let mut best_bits = 0u64;
        let mut best_energy = energy;
        let mut gray = 0u64;
        for k in 1u64..(1u64 << self.n) {
            let q = k.trailing_zeros() as usize;
            // Flipping s_q: ΔE = −2·s_q·f_q; neighbors' fields lose
            // 2·J·s_q_old.
            let s_old = spins[q];
            energy -= 2.0 * s_old * fields[q];
            spins[q] = -s_old;
            for &(j, w) in &adj[q] {
                fields[j] -= 2.0 * w * s_old;
            }
            gray ^= 1 << q;
            if energy < best_energy {
                best_energy = energy;
                best_bits = gray;
            }
        }
        (best_bits, self.energy_of(best_bits))
    }

    /// Deterministic multi-start greedy 1-flip descent: restart 0 starts
    /// from all-`+1`, each later restart from a seeded random
    /// assignment; every move flips the spin with the (first) most
    /// negative `ΔE = −2·s_i·f_i`, updating the cached fields in
    /// O(degree), until no flip improves. Restart winners are compared
    /// on energies recomputed from scratch; strict `<` keeps the first.
    pub fn local_search(&self, seed: u64, restarts: usize) -> (u64, f64) {
        assert!(self.n <= 64, "assignments are packed in a u64");
        let adj = self.adjacency();
        let mask = if self.n == 64 { u64::MAX } else { (1u64 << self.n) - 1 };
        let mut best_bits = 0u64;
        let mut best_energy = f64::INFINITY;
        for restart in 0..restarts.max(1) {
            let mut bits = if restart == 0 {
                0
            } else {
                // A splitmix-style stream decorrelates restarts while
                // staying a pure function of (seed, restart).
                let stream =
                    seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(restart as u64));
                StdRng::seed_from_u64(stream).gen::<u64>() & mask
            };
            let mut spins: Vec<f64> =
                (0..self.n).map(|q| if (bits >> q) & 1 == 1 { -1.0 } else { 1.0 }).collect();
            let mut fields = self.linear.clone();
            for &(i, j, w) in &self.pairs {
                fields[i] += w * spins[j];
                fields[j] += w * spins[i];
            }
            loop {
                let mut flip = None;
                let mut best_delta = -1e-12;
                for q in 0..self.n {
                    let delta = -2.0 * spins[q] * fields[q];
                    if delta < best_delta {
                        best_delta = delta;
                        flip = Some(q);
                    }
                }
                let Some(q) = flip else { break };
                let s_old = spins[q];
                spins[q] = -s_old;
                bits ^= 1 << q;
                for &(j, w) in &adj[q] {
                    fields[j] -= 2.0 * w * s_old;
                }
            }
            let energy = self.energy_of(bits);
            if energy < best_energy {
                best_energy = energy;
                best_bits = bits;
            }
        }
        (best_bits, best_energy)
    }
}

/// Classifies a Hamiltonian as Ising-class from its mask-form term set,
/// or returns `None`.
///
/// A Hamiltonian qualifies when every term with a nonzero real
/// coefficient has weight ≤ 2 and every qubit's column is single-axis:
/// all terms touching qubit `q` use the same Pauli there (Z, X, or Y) —
/// i.e. the operator is diagonal after a per-qubit single-Clifford basis
/// rotation. Qubits outside every support default to [`LocalBasis::Z`].
/// Imaginary coefficient parts are ignored, exactly as
/// [`CliffordObjective`] ignores them when summing expectations.
///
/// The scan is a pure function of the term set (deterministic
/// [`PauliOp`] iteration order), so classified/rejected partitions every
/// Hamiltonian: `classify_ising(h).is_some()` is decided before any
/// solver runs, and rejection leaves the caller's pipeline untouched.
pub fn classify_ising(hamiltonian: &PauliOp) -> Option<IsingForm> {
    let n = hamiltonian.num_qubits();
    if n > 64 {
        return None;
    }
    let mut bases: Vec<Option<LocalBasis>> = vec![None; n];
    let mut constant = 0.0;
    let mut linear = vec![0.0; n];
    let mut pairs: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for (string, coeff) in hamiltonian.iter() {
        let w = coeff.re;
        if w == 0.0 {
            continue;
        }
        if string.weight() > 2 {
            return None;
        }
        let mut support = [0usize; 2];
        let mut k = 0;
        for q in 0..n {
            let basis = match string.pauli_at(q) {
                Pauli::I => continue,
                Pauli::X => LocalBasis::X,
                Pauli::Y => LocalBasis::Y,
                Pauli::Z => LocalBasis::Z,
            };
            match bases[q] {
                Some(assigned) if assigned != basis => return None,
                _ => bases[q] = Some(basis),
            }
            support[k] = q;
            k += 1;
        }
        match k {
            0 => constant += w,
            1 => linear[support[0]] += w,
            _ => *pairs.entry((support[0], support[1])).or_insert(0.0) += w,
        }
    }
    Some(IsingForm {
        n,
        bases: bases.into_iter().map(Option::unwrap_or_default).collect(),
        constant,
        linear,
        pairs: pairs.into_iter().map(|((i, j), w)| (i, j, w)).collect(),
    })
}

/// The routing hook [`run_cafqa_on`] calls before starting the full
/// search. Returns `Some` with an ordinary [`CafqaResult`] when the
/// instance takes the fast path, `None` when it must run the full
/// pipeline (non-Ising structure, penalties attached, or no eigenstate
/// lift for this ansatz).
///
/// The reduced-space winner is lifted through
/// [`Ansatz::eigenstate_config`] and evaluated — together with every
/// caller-provided seed configuration — through the ordinary
/// [`CliffordObjective`] as one engine batch, and the first minimiser
/// wins; the reported energy is therefore always the tableau
/// simulator's, and seeding keeps the "never worse than the seed"
/// guarantee intact.
///
/// # Panics
///
/// Panics when [`CafqaOptions::ising_fast_path`] is
/// [`IsingFastPath::Force`] and the instance cannot route.
pub(crate) fn try_ising_fast_path(
    engine: &ExecEngine,
    ansatz: &dyn Ansatz,
    hamiltonian: &PauliOp,
    penalties: &[Penalty],
    seeds: &[Vec<usize>],
    opts: &CafqaOptions,
) -> Option<CafqaResult> {
    let force = opts.ising_fast_path == IsingFastPath::Force;
    if !penalties.is_empty() {
        assert!(!force, "ising_fast_path: Force, but penalties require the full objective");
        return None;
    }
    let Some(form) = classify_ising(hamiltonian) else {
        assert!(!force, "ising_fast_path: Force, but the Hamiltonian is not Ising-class");
        return None;
    };
    // `classify_ising` never emits a form above the solve cap, so an
    // error here is unreachable; treat it as "cannot route" for safety.
    let Ok((bits, _reduced)) = form.solve(opts.seed) else {
        assert!(!force, "ising_fast_path: Force, but the instance exceeds the solve cap");
        return None;
    };
    let Some(lifted) = ansatz.eigenstate_config(bits, &form.bases) else {
        assert!(!force, "ising_fast_path: Force, but the ansatz has no eigenstate lift");
        return None;
    };
    let clock = Instant::now();
    let objective = CliffordObjective::new(ansatz, hamiltonian).with_engine(engine.clone());
    let mut candidates = vec![lifted];
    candidates.extend(seeds.iter().cloned());
    let values = objective.evaluate_batch(&candidates);
    let mut best = 0;
    for (i, v) in values.iter().enumerate() {
        if v.penalized < values[best].penalized {
            best = i;
        }
    }
    let mut running = f64::INFINITY;
    let trace: Vec<SearchPoint> = values
        .iter()
        .map(|v| {
            running = running.min(v.penalized);
            SearchPoint { energy: v.energy, penalized: v.penalized, best_so_far: running }
        })
        .collect();
    Some(CafqaResult {
        best_config: candidates.swap_remove(best),
        energy: values[best].energy,
        penalized: values[best].penalized,
        iterations_to_best: best + 1,
        evaluations: trace.len(),
        trace,
        polish_evaluations: 0,
        bo_seconds: clock.elapsed().as_secs_f64(),
        polish_seconds: 0.0,
        polish_seek_stats: (0, 0),
    })
}

/// One instance of the batched serving layer: an
/// [`EfficientSu2`] ansatz (owned, so instances can ship to worker
/// threads) and its Hamiltonian.
#[derive(Debug, Clone)]
pub struct IsingInstance {
    /// The ansatz the result's configuration indexes into.
    pub ansatz: EfficientSu2,
    /// The Hamiltonian to minimize.
    pub hamiltonian: PauliOp,
}

impl IsingInstance {
    /// Bundles an ansatz with its Hamiltonian.
    pub fn new(ansatz: EfficientSu2, hamiltonian: PauliOp) -> Self {
        IsingInstance { ansatz, hamiltonian }
    }
}

/// Solves a batch of instances by sharding **whole instances** over
/// [`ExecEngine::map`] — the serving-throughput shape, where instance
/// count (not per-instance cost) dominates. Each instance runs the
/// ordinary routed [`run_cafqa_on`] with no penalties and no seeds, so
/// classified instances take the fast path and anything else falls back
/// to the full search; results return in instance order.
///
/// Per-instance determinism at any worker count is inherited, not
/// re-established: inside a pool worker, nested engine dispatch degrades
/// to the serial path, and every energy in the stack is bit-identical
/// serial-vs-sharded by the existing chunking contracts — so the batch
/// result is bit-identical at 1, 2, or any number of workers (asserted
/// in `crates/core/tests/ising_routing.rs` and the
/// `ising_fast_path_vs_bo` bench).
pub fn solve_ising_batch_on(
    engine: &ExecEngine,
    instances: &[IsingInstance],
    opts: &CafqaOptions,
) -> Vec<CafqaResult> {
    let tasks: Vec<_> = instances
        .iter()
        .map(|instance| {
            let engine = engine.clone();
            let instance = instance.clone();
            let opts = opts.clone();
            move || {
                run_cafqa_on(&engine, &instance.ansatz, &instance.hamiltonian, vec![], &[], &opts)
            }
        })
        .collect();
    engine.map(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxcut::{maxcut_hamiltonian, Graph};
    use cafqa_linalg::Complex64;
    use cafqa_pauli::PauliString;

    fn op(terms: &[(f64, &str)]) -> PauliOp {
        let n = terms[0].1.len();
        let mut h = PauliOp::zero(n);
        for &(w, s) in terms {
            h.add_term(Complex64::from(w), s.parse::<PauliString>().unwrap());
        }
        h
    }

    #[test]
    fn classifies_maxcut_as_all_z() {
        let g = Graph::random(8, 0.5, 17);
        let form = classify_ising(&maxcut_hamiltonian(&g)).unwrap();
        assert_eq!(form.n, 8);
        assert!(form.bases.iter().all(|&b| b == LocalBasis::Z));
        assert_eq!(form.pairs.len(), g.edges.len());
        // The reduced objective reproduces ⟨H⟩ = −cut on every basis state.
        for bits in [0u64, 0b1010_1010, 0b0011_0101] {
            assert!((form.energy_of(bits) + g.cut_value(bits)).abs() < 1e-12);
        }
    }

    #[test]
    fn classifies_rotated_columns_and_rejects_mixed() {
        // X on q0, Y on q2: single-axis columns, weight ≤ 2 → classified.
        let h = op(&[(0.5, "XIZI"), (-0.25, "IIZY"), (1.0, "XIII"), (0.125, "IIII")]);
        let form = classify_ising(&h).unwrap();
        assert_eq!(form.bases, vec![LocalBasis::X, LocalBasis::Z, LocalBasis::Z, LocalBasis::Y]);
        assert_eq!(form.constant, 0.125);
        assert_eq!(form.linear, vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(form.pairs, vec![(0, 2, 0.5), (2, 3, -0.25)]);
        // Mixed column (X and Z on q0) → rejected.
        assert!(classify_ising(&op(&[(0.5, "XI"), (0.5, "ZI")])).is_none());
        // Weight-3 term → rejected.
        assert!(classify_ising(&op(&[(0.5, "ZZZ")])).is_none());
    }

    #[test]
    fn zero_coefficient_terms_do_not_block() {
        // A weight-3 term with zero real part contributes nothing to the
        // objective, so it must not block classification.
        let h = op(&[(1.0, "ZZI"), (0.0, "XYZ")]);
        assert!(classify_ising(&h).is_some());
    }

    #[test]
    fn exact_and_local_search_agree_on_small_instances() {
        for seed in [3u64, 7, 11, 19] {
            let g = Graph::random_weighted(10, 0.6, seed);
            let form = classify_ising(&maxcut_hamiltonian(&g)).unwrap();
            let (_, exact) = form.solve_exact();
            let (_, local) = form.local_search(0xCAF9A, 30);
            assert!((exact - local).abs() < 1e-9, "seed {seed}: exact {exact} vs local {local}");
            assert!((exact + g.max_cut_exact()).abs() < 1e-9);
        }
    }

    #[test]
    fn oversized_form_rejects_with_structured_error() {
        // A hand-built form above the u64 packing cap must reject, not
        // assert — this is the serving layer's contract. (classify_ising
        // can never produce one: it rejects > 64 qubits up front.)
        let n = SOLVE_CAP + 1;
        let form = IsingForm {
            n,
            bases: vec![LocalBasis::Z; n],
            constant: 0.0,
            linear: vec![1.0; n],
            pairs: vec![],
        };
        assert_eq!(form.solve(0xCAF9A), Err(IsingError::TooLarge { n, cap: SOLVE_CAP }));
        let msg = IsingError::TooLarge { n, cap: SOLVE_CAP }.to_string();
        assert!(msg.contains("65") && msg.contains("64"), "{msg}");
        // At the cap itself the solve still runs (local search tier).
        let form = IsingForm {
            n: 65 - 1,
            bases: vec![LocalBasis::Z; 64],
            constant: 0.0,
            linear: vec![1.0; 64],
            pairs: vec![],
        };
        let (bits, energy) = form.solve(0xCAF9A).expect("64 spins is within the cap");
        assert_eq!(bits, u64::MAX, "all fields positive: every spin flips to -1");
        assert!((energy - (-64.0)).abs() < 1e-12);
    }

    #[test]
    fn solver_handles_fields_and_constants() {
        // E(s) = 2 + s0 − 3 s1 + 2 s0 s1: minimum −4 at s0 = −1, s1 = +1.
        let h = op(&[(2.0, "II"), (1.0, "ZI"), (-3.0, "IZ"), (2.0, "ZZ")]);
        let form = classify_ising(&h).unwrap();
        let (bits, energy) = form.solve_exact();
        assert_eq!(bits, 0b01);
        assert!((energy - (-4.0)).abs() < 1e-12);
        let (_, local) = form.local_search(1, 8);
        assert!((local - energy).abs() < 1e-12);
    }
}
