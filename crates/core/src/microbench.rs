//! The paper's Fig. 5 microbenchmark: a 2-qubit XX Hamiltonian with a
//! one-parameter hardware-efficient ansatz.

use cafqa_circuit::{Ansatz, Circuit};
use cafqa_pauli::PauliOp;

/// The one-parameter ansatz of Fig. 5: `Ry(θ)` on qubit 0 followed by a
/// `CX(0, 1)` entangler, giving `⟨XX⟩ = sin θ` exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct XxMicrobenchAnsatz;

impl Ansatz for XxMicrobenchAnsatz {
    fn num_qubits(&self) -> usize {
        2
    }

    fn num_parameters(&self) -> usize {
        1
    }

    fn bind(&self, params: &[f64]) -> Circuit {
        assert_eq!(params.len(), 1, "microbenchmark has one parameter");
        let mut c = Circuit::new(2);
        c.ry(0, params[0]).cx(0, 1);
        c
    }
}

/// The 2-qubit `XX` Hamiltonian.
pub fn xx_hamiltonian() -> PauliOp {
    "XX".parse().expect("static operator parses")
}

/// The Hartree-Fock value for the XX system: the best computational basis
/// state. XX has no diagonal component, so HF is stuck at zero — the
/// microbenchmark's illustration of "pure correlation energy" (paper
/// §4.1 point 3).
pub fn hf_value() -> f64 {
    let h = xx_hamiltonian();
    (0u64..4).map(|b| h.expectation_basis(b)).fold(f64::MAX, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::CliffordObjective;
    use cafqa_sim::Statevector;

    #[test]
    fn ideal_curve_is_sine() {
        let ansatz = XxMicrobenchAnsatz;
        let h = xx_hamiltonian();
        for k in 0..16 {
            let theta = k as f64 / 16.0 * std::f64::consts::TAU;
            let psi = Statevector::from_circuit(&ansatz.bind(&[theta]));
            assert!((psi.expectation(&h).re - theta.sin()).abs() < 1e-12);
        }
    }

    #[test]
    fn hf_is_stuck_at_zero() {
        assert_eq!(hf_value(), 0.0);
    }

    #[test]
    fn clifford_points_hit_global_minimum() {
        // Paper §4.1 point 4: of the four Clifford points, one reaches the
        // global minimum −1 (θ = 3π/2).
        let ansatz = XxMicrobenchAnsatz;
        let h = xx_hamiltonian();
        let objective = CliffordObjective::new(&ansatz, &h);
        let values: Vec<f64> = (0..4).map(|k| objective.evaluate(&[k]).energy).collect();
        assert_eq!(values, vec![0.0, 1.0, 0.0, -1.0]);
    }
}
