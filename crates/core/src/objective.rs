//! The CAFQA classical objective: stabilizer-state energy plus sector
//! penalties, evaluated by tableau simulation (paper §3, steps 2–7).

use std::sync::Arc;

use cafqa_circuit::{Ansatz, CompiledAnsatz};
use cafqa_clifford::Tableau;
use cafqa_linalg::Complex64;
use cafqa_pauli::{PauliOp, PauliString};

use crate::engine::ExecEngine;

/// A quadratic sector penalty `weight · ⟨(O − target)²⟩`, the paper's
/// mechanism for imposing electron-count (and spin) preservation directly
/// on the objective function (§3 step 5, §7.1.1 for the H2+ cation).
#[derive(Debug, Clone)]
pub struct Penalty {
    /// Human-readable label ("electron count", "sz", …).
    pub label: String,
    /// The squared shifted operator `(O − target)²`, precomputed.
    squared: PauliOp,
    /// Penalty weight.
    pub weight: f64,
}

impl Penalty {
    /// Builds a penalty from the operator, its target eigenvalue and a
    /// weight. The squared operator is formed once, symbolically.
    pub fn new(label: impl Into<String>, op: &PauliOp, target: f64, weight: f64) -> Self {
        let mut shifted = op.clone();
        shifted.add_term(Complex64::from(-target), PauliString::identity(op.num_qubits()));
        let squared = shifted.mul_op(&shifted).pruned(1e-12);
        Penalty { label: label.into(), squared, weight }
    }

    /// The penalty value on a prepared stabilizer state.
    pub fn value(&self, tableau: &Tableau) -> f64 {
        self.weight * tableau.expectation(&self.squared)
    }

    /// The penalty operator (for non-stabilizer evaluation paths).
    pub fn squared_op(&self) -> &PauliOp {
        &self.squared
    }
}

/// The classical evaluation of one Clifford-ansatz configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectiveValue {
    /// The raw Hamiltonian expectation `⟨H⟩` (what gets reported).
    pub energy: f64,
    /// `⟨H⟩` plus all penalties (what gets minimized).
    pub penalized: f64,
}

/// Hamiltonians at or above this term count sum their terms in fixed
/// chunks (see [`EvalCore::hamiltonian_expectation`]) — and, when an
/// engine is at hand, shard those chunks across idle pool workers
/// ([`EvalCore::hamiltonian_expectation_on`]).
pub(crate) const CHUNKED_TERM_THRESHOLD: usize = 4096;

/// Fixed partial-sum count for large Hamiltonians. A *constant* (rather
/// than the host parallelism PR 2 used) makes the floating-point
/// association — and therefore every energy — identical across hosts and
/// worker counts, which the engine's determinism contract requires.
const TERM_CHUNKS: usize = 8;

/// Hamiltonians at or above this term count use the *wide* chunk
/// association ([`TERM_CHUNKS_WIDE`]): at Cr2 scale (76k–149k terms) 8
/// chunks leave pools beyond 8 workers idle and make each chunk several
/// milliseconds of latency. The tier choice is a pure function of the
/// term count (never of the host or worker count), so energies remain
/// host-independent and bit-identical at any worker count *within* a
/// tier; the two associations differ by FP reassociation like any two
/// chunk counts would.
pub(crate) const WIDE_TERM_THRESHOLD: usize = 65_536;

/// Fixed partial-sum count for the ≥[`WIDE_TERM_THRESHOLD`]-term tier.
const TERM_CHUNKS_WIDE: usize = 32;

/// The frozen term-count → chunk-count association shared by every
/// evaluation path (see [`EvalCore::term_chunk_ranges`]).
const fn term_chunks_for(len: usize) -> usize {
    if len >= WIDE_TERM_THRESHOLD {
        TERM_CHUNKS_WIDE
    } else {
        TERM_CHUNKS
    }
}

/// Batches below this many row-update units stay on the calling thread:
/// dispatching to the pool costs a few microseconds per shard, so tiny
/// workloads are faster serial.
const BATCH_DISPATCH_THRESHOLD: usize = 8192;

/// Reusable per-thread evaluation state: one stabilizer tableau that is
/// re-prepared in place for every candidate, so the hot loop never
/// allocates. Create one per worker with [`CliffordObjective::scratch`]
/// and pass it to [`CliffordObjective::evaluate_with`].
///
/// The tableau sits behind an `Arc` so the term-sharded expectation path
/// can hand read-only clones of the handle to helper workers without
/// copying the tableau; between candidates the `Arc` is uniquely owned
/// again (every nested task drops its clone before the batch completes)
/// and the state is re-prepared in place.
pub struct EvalScratch {
    tableau: Arc<Tableau>,
}

impl EvalScratch {
    /// The tableau, uniquely borrowed for in-place re-preparation. Falls
    /// back to clone-on-write if a handle were ever still shared — it
    /// never is in practice (see the `Arc` note on the type), so this
    /// stays allocation-free.
    fn tableau_mut(&mut self) -> &mut Tableau {
        Arc::make_mut(&mut self.tableau)
    }
}

/// The owned, shareable evaluation state behind [`CliffordObjective`]:
/// the compiled ansatz template plus the flattened Hamiltonian terms and
/// penalties. It borrows nothing, so batch shards can carry an
/// `Arc<EvalCore>` into the persistent worker pool as fully `'static`
/// jobs — the trick that keeps the engine free of scoped threads (and
/// the workspace free of `unsafe`).
#[derive(Clone)]
pub(crate) struct EvalCore {
    num_qubits: usize,
    /// The ansatz structure lowered once into primitive gates + rotation
    /// slots; `None` falls back to per-candidate `bind_clifford` lowering
    /// through the borrowed ansatz (serial only).
    template: Option<CompiledAnsatz>,
    /// Flat copy of the Hamiltonian for the expectation kernel.
    terms: Vec<(PauliString, f64)>,
    penalties: Vec<Penalty>,
}

impl EvalCore {
    /// A fresh per-worker scratch tableau.
    pub(crate) fn scratch(&self) -> EvalScratch {
        EvalScratch { tableau: Arc::new(Tableau::zero_state(self.num_qubits)) }
    }

    pub(crate) fn is_compiled(&self) -> bool {
        self.template.is_some()
    }

    /// `⟨H⟩` on a prepared tableau. Small Hamiltonians sum straight
    /// through; large ones (18/34-qubit systems) accumulate
    /// [`TERM_CHUNKS`] (or, at Cr2 scale, [`TERM_CHUNKS_WIDE`]) partial
    /// sums combined in chunk order — one fixed association per term
    /// count shared by every evaluation path, so energies are
    /// bit-identical serial vs. batched vs. term-sharded, at any worker
    /// count, on any host.
    fn hamiltonian_expectation(&self, tableau: &Tableau) -> f64 {
        if self.terms.len() < CHUNKED_TERM_THRESHOLD {
            return self
                .terms
                .iter()
                .map(|(p, c)| c * f64::from(tableau.expectation_pauli(p)))
                .sum();
        }
        self.term_chunk_ranges().map(|range| self.term_chunk_sum(tableau, range)).sum()
    }

    /// One fixed-association chunk of the large-Hamiltonian term sum.
    fn term_chunk_sum(&self, tableau: &Tableau, range: std::ops::Range<usize>) -> f64 {
        self.terms[range].iter().map(|(p, c)| c * f64::from(tableau.expectation_pauli(p))).sum()
    }

    /// The fixed chunk boundaries of the large-Hamiltonian association —
    /// exactly the ranges `terms.chunks(len.div_ceil(term_chunks_for(len)))`
    /// visits, as one definition shared by every sharded path (so the
    /// bit-identity contract cannot drift between them). The chunk count
    /// is [`TERM_CHUNKS`], widening to [`TERM_CHUNKS_WIDE`] at
    /// [`WIDE_TERM_THRESHOLD`] terms — a pure function of the term count,
    /// so the association (and the energy) never depends on the host.
    fn term_chunk_ranges(&self) -> impl Iterator<Item = std::ops::Range<usize>> {
        let len = self.terms.len();
        let chunk = len.div_ceil(term_chunks_for(len));
        (0..len).step_by(chunk).map(move |start| start..(start + chunk).min(len))
    }

    /// [`Self::hamiltonian_expectation`] with the [`TERM_CHUNKS`] partial
    /// sums sharded across the engine via
    /// [`ExecEngine::map_nested`] — safe to call from inside a pool
    /// worker, where idle workers pick up chunks and a saturated pool
    /// computes them inline. The chunk boundaries and the chunk-order
    /// combination are exactly the serial path's, so the energy is
    /// bit-identical at any worker count; engines without a pool take
    /// the serial path directly (keeping the classic hot loop
    /// allocation-free).
    fn hamiltonian_expectation_on(
        self: &Arc<Self>,
        tableau: &Arc<Tableau>,
        engine: &ExecEngine,
    ) -> f64 {
        if self.terms.len() < CHUNKED_TERM_THRESHOLD || engine.workers() <= 1 {
            return self.hamiltonian_expectation(tableau);
        }
        let tasks: Vec<_> = self
            .term_chunk_ranges()
            .map(|range| {
                let core = Arc::clone(self);
                let tableau = Arc::clone(tableau);
                move || core.term_chunk_sum(&tableau, range)
            })
            .collect();
        engine.map_nested(tasks).into_iter().sum()
    }

    /// Energy + penalties on a prepared tableau.
    fn value_on(&self, tableau: &Tableau) -> ObjectiveValue {
        let energy = self.hamiltonian_expectation(tableau);
        self.penalize(energy, tableau)
    }

    /// [`Self::value_on`] with the term sum engine-sharded. Penalty
    /// operators are small (squared sector operators), so they stay on
    /// the calling thread.
    fn value_on_engine(
        self: &Arc<Self>,
        tableau: &Arc<Tableau>,
        engine: &ExecEngine,
    ) -> ObjectiveValue {
        let energy = self.hamiltonian_expectation_on(tableau, engine);
        self.penalize(energy, tableau)
    }

    fn penalize(&self, energy: f64, tableau: &Tableau) -> ObjectiveValue {
        let penalized = energy + self.penalties.iter().map(|p| p.value(tableau)).sum::<f64>();
        ObjectiveValue { energy, penalized }
    }

    /// Evaluates one configuration through the compiled template.
    ///
    /// # Panics
    ///
    /// Panics if the ansatz did not compile — engine shards are only
    /// built for compiled objectives (see
    /// [`CliffordObjective::evaluate_batch`]).
    pub(crate) fn evaluate(&self, config: &[usize], scratch: &mut EvalScratch) -> ObjectiveValue {
        let template = self.template.as_ref().expect("engine shards require a compiled template");
        scratch.tableau_mut().run_compiled(template, config);
        self.value_on(&scratch.tableau)
    }

    /// [`Self::evaluate`] with the large-Hamiltonian term sum sharded
    /// over `engine` — what batch shards running *on* the pool call, so
    /// a few huge candidates can still occupy the whole pool.
    ///
    /// # Panics
    ///
    /// Panics if the ansatz did not compile (see [`Self::evaluate`]).
    pub(crate) fn evaluate_on(
        self: &Arc<Self>,
        config: &[usize],
        scratch: &mut EvalScratch,
        engine: &ExecEngine,
    ) -> ObjectiveValue {
        let template = self.template.as_ref().expect("engine shards require a compiled template");
        scratch.tableau_mut().run_compiled(template, config);
        self.value_on_engine(&scratch.tableau, engine)
    }

    /// The incremental polish kernel: evaluates a *neighbor* of the
    /// configuration a `prefix` checkpoint was prepared for, by restoring
    /// the checkpoint into the scratch and replaying template ops from
    /// `start` onward with the neighbor's `config` — instead of
    /// `reset_zero` + full `run_compiled`. The caller guarantees `prefix`
    /// holds the state after ops `0..start` of a configuration agreeing
    /// with `config` on every slot read before `start`
    /// (`CompiledAnsatz::first_op_of`); the resulting tableau — and
    /// therefore every value — is then bit-identical to a full
    /// re-preparation, because prefix + suffix is literally the same
    /// integer gate sequence.
    ///
    /// # Panics
    ///
    /// Panics if the ansatz did not compile (see [`Self::evaluate`]).
    pub(crate) fn evaluate_neighbor(
        &self,
        scratch: &mut EvalScratch,
        prefix: &Tableau,
        start: usize,
        config: &[usize],
    ) -> ObjectiveValue {
        self.prepare_neighbor(scratch, prefix, start, config);
        self.value_on(&scratch.tableau)
    }

    /// [`Self::evaluate_neighbor`] with the large-Hamiltonian term sum
    /// sharded over `engine` — the path polish-move shards running on the
    /// pool take, so big-H neighbors reuse the fixed 8-chunk association
    /// across idle workers exactly like [`Self::evaluate_on`].
    pub(crate) fn evaluate_neighbor_on(
        self: &Arc<Self>,
        scratch: &mut EvalScratch,
        prefix: &Arc<Tableau>,
        start: usize,
        config: &[usize],
        engine: &ExecEngine,
    ) -> ObjectiveValue {
        self.prepare_neighbor(scratch, prefix, start, config);
        self.value_on_engine(&scratch.tableau, engine)
    }

    fn prepare_neighbor(
        &self,
        scratch: &mut EvalScratch,
        prefix: &Tableau,
        start: usize,
        config: &[usize],
    ) {
        let template = self.template.as_ref().expect("neighbor eval requires a compiled template");
        let tableau = scratch.tableau_mut();
        tableau.copy_from(prefix);
        tableau.apply_from(template, config, start);
    }
}

/// The CAFQA objective: binds discrete Clifford indices into the ansatz,
/// simulates the stabilizer state, and returns `⟨H⟩` plus penalties.
///
/// Batch evaluation runs on a persistent [`ExecEngine`] — the process
/// global one by default, or the engine handed in with
/// [`CliffordObjective::with_engine`] (what
/// [`run_cafqa_on`](crate::run_cafqa_on) does, so one pool serves the
/// whole search).
pub struct CliffordObjective<'a> {
    ansatz: &'a dyn Ansatz,
    hamiltonian: &'a PauliOp,
    core: Arc<EvalCore>,
    /// `None` resolves to [`ExecEngine::global`] lazily, at the first
    /// batch large enough to dispatch — so objectives that only ever
    /// evaluate serially never spawn the process-wide pool as a side
    /// effect. Single-candidate term sharding (≥ 4096 terms) engages
    /// only when an engine was attached explicitly.
    engine: Option<ExecEngine>,
}

impl<'a> CliffordObjective<'a> {
    /// Creates the objective, compiling the ansatz structure into a
    /// primitive-gate template once (see [`CompiledAnsatz`]); ansätze that
    /// cannot be compiled transparently use the per-candidate lowering.
    ///
    /// # Panics
    ///
    /// Panics if the Hamiltonian width differs from the ansatz width.
    pub fn new(ansatz: &'a dyn Ansatz, hamiltonian: &'a PauliOp) -> Self {
        assert_eq!(
            ansatz.num_qubits(),
            hamiltonian.num_qubits(),
            "ansatz/hamiltonian width mismatch"
        );
        let terms = hamiltonian.iter().map(|(p, c)| (*p, c.re)).collect();
        let template = CompiledAnsatz::compile(ansatz);
        let core = Arc::new(EvalCore {
            num_qubits: ansatz.num_qubits(),
            template,
            terms,
            penalties: Vec::new(),
        });
        CliffordObjective { ansatz, hamiltonian, core, engine: None }
    }

    /// Routes this objective's batch evaluation through `engine` instead
    /// of the process-global pool.
    pub fn with_engine(mut self, engine: ExecEngine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// The engine batch evaluation dispatches on (the process-global one
    /// unless [`Self::with_engine`] overrode it).
    pub fn engine(&self) -> &ExecEngine {
        self.engine.as_ref().unwrap_or_else(|| ExecEngine::global())
    }

    /// Whether the ansatz compiled to a template (the fast path).
    pub fn is_compiled(&self) -> bool {
        self.core.is_compiled()
    }

    /// Register width of the objective's ansatz/Hamiltonian pair.
    pub fn num_qubits(&self) -> usize {
        self.core.num_qubits
    }

    /// Starts an incremental polish session at `base`: evaluations of
    /// configurations that differ from the session base in one or two
    /// rotation slots replay template ops from the earliest affected slot
    /// onward (over a cached prefix tableau) instead of re-preparing the
    /// whole circuit — bit-identical to full re-preparation by
    /// construction (see [`PolishSession`]). Returns `None` when the
    /// ansatz did not compile; callers fall back to
    /// [`Self::evaluate_batch`], which has identical semantics.
    ///
    /// # Panics
    ///
    /// Panics if `base` has the wrong length.
    pub fn polish_session(&self, base: Vec<usize>) -> Option<PolishSession> {
        let template = self.core.template.as_ref()?;
        assert_eq!(base.len(), template.num_parameters(), "base config length mismatch");
        let layers = template.layer_starts().to_vec();
        let stack = vec![None; layers.len()];
        Some(PolishSession {
            core: Arc::clone(&self.core),
            engine: self.engine.clone(),
            prefix: Arc::new(Tableau::zero_state(self.core.num_qubits)),
            prefix_end: 0,
            scratch: self.core.scratch(),
            config_buf: base.clone(),
            base,
            layers,
            stack,
            use_stack: true,
            backward_seeks: 0,
            stack_restores: 0,
        })
    }

    /// The shared evaluation core (for in-crate engine call sites).
    pub(crate) fn core(&self) -> &Arc<EvalCore> {
        &self.core
    }

    /// A fresh evaluation scratch; reuse it across candidates on one
    /// thread to keep the search loop allocation-free.
    pub fn scratch(&self) -> EvalScratch {
        self.core.scratch()
    }

    /// Prepares the candidate's stabilizer state into the scratch tableau.
    fn prepare(&self, config: &[usize], scratch: &mut EvalScratch) {
        if let Some(template) = &self.core.template {
            scratch.tableau_mut().run_compiled(template, config);
        } else {
            let circuit = self.ansatz.bind_clifford(config);
            scratch.tableau = Arc::new(
                Tableau::from_circuit(&circuit)
                    .expect("clifford-bound ansatz must be a Clifford circuit"),
            );
        }
    }

    /// Adds a sector penalty.
    pub fn with_penalty(mut self, penalty: Penalty) -> Self {
        assert_eq!(
            penalty.squared.num_qubits(),
            self.hamiltonian.num_qubits(),
            "penalty width mismatch"
        );
        // The core is not shared yet (penalties are added at build time),
        // so this never copies in practice.
        Arc::make_mut(&mut self.core).penalties.push(penalty);
        self
    }

    /// Number of discrete search parameters.
    pub fn num_parameters(&self) -> usize {
        self.ansatz.num_parameters()
    }

    /// Evaluates one discrete configuration (indices into the four
    /// Clifford angles). Exact, noise-free, and polynomial-time — the
    /// whole point of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `config` has the wrong length (ansatz contract).
    pub fn evaluate(&self, config: &[usize]) -> ObjectiveValue {
        self.evaluate_with(config, &mut self.scratch())
    }

    /// [`Self::evaluate`] against a caller-owned scratch — the hot-loop
    /// entry point: no allocation per candidate when the ansatz compiled.
    ///
    /// When an engine was attached with [`Self::with_engine`] (as
    /// [`run_cafqa_on`](crate::run_cafqa_on) does), candidates with at
    /// least 4096 Hamiltonian terms route the term sum through it
    /// ([`ExecEngine::map_nested`]), so even a *single* Cr2-scale
    /// evaluation uses the pool; the energy is bit-identical to the
    /// serial chunked sum at any worker count. Objectives without an
    /// attached engine keep the allocation-free serial chunked sum —
    /// a bare `evaluate()` never spawns the process-global pool.
    pub fn evaluate_with(&self, config: &[usize], scratch: &mut EvalScratch) -> ObjectiveValue {
        self.prepare(config, scratch);
        if self.core.terms.len() >= CHUNKED_TERM_THRESHOLD {
            if let Some(engine) = &self.engine {
                return self.core.value_on_engine(&scratch.tableau, engine);
            }
        }
        self.core.value_on(&scratch.tableau)
    }

    /// Evaluates a batch of candidates, sharded across the engine's
    /// persistent workers.
    ///
    /// Results are in input order and bit-identical to calling
    /// [`Self::evaluate`] per candidate serially (each candidate's term
    /// sum runs in the same fixed association either way). Small batches
    /// stay on the calling thread; each worker reuses one scratch
    /// tableau. Non-compiled ansätze (no template to ship to the pool)
    /// evaluate serially with identical results.
    pub fn evaluate_batch(&self, configs: &[Vec<usize>]) -> Vec<ObjectiveValue> {
        // Rough per-candidate cost in row-update units; engine dispatch
        // costs a few µs per shard, so tiny workloads stay serial (and
        // never force the global pool into existence).
        let per_eval = self.core.terms.len().max(1) * self.core.num_qubits.max(1);
        if configs.len() * per_eval < BATCH_DISPATCH_THRESHOLD {
            let mut scratch = self.scratch();
            return configs.iter().map(|c| self.evaluate_with(c, &mut scratch)).collect();
        }
        let engine = self.engine();
        self.evaluate_batch_sharded(configs, engine.workers(), engine)
    }

    /// [`Self::evaluate_batch`] with an explicit worker count on a
    /// private, temporary engine; exposed so the sharded path stays
    /// testable and benchmarkable regardless of the host's core count.
    /// (Production paths use [`Self::evaluate_batch`] and the persistent
    /// engine — this spawns and tears down a pool per call.)
    pub fn evaluate_batch_with_workers(
        &self,
        configs: &[Vec<usize>],
        workers: usize,
    ) -> Vec<ObjectiveValue> {
        let engine = ExecEngine::new(workers);
        self.evaluate_batch_sharded(configs, workers, &engine)
    }

    fn evaluate_batch_sharded(
        &self,
        configs: &[Vec<usize>],
        shards: usize,
        engine: &ExecEngine,
    ) -> Vec<ObjectiveValue> {
        let shards = shards.min(configs.len());
        if shards <= 1 || !self.core.is_compiled() || !engine.is_pooled() {
            let mut scratch = self.scratch();
            return configs.iter().map(|c| self.evaluate_with(c, &mut scratch)).collect();
        }
        let chunk = configs.len().div_ceil(shards);
        let tasks: Vec<_> = configs
            .chunks(chunk)
            .map(|chunk_configs| {
                let core = Arc::clone(&self.core);
                // Each shard carries an engine handle so huge candidates
                // can term-shard across idle workers from *inside* the
                // pool (nested dispatch); `map` below awaits every shard
                // before returning, so the handles never outlive the
                // dispatch.
                let engine = engine.clone();
                let chunk_configs: Vec<Vec<usize>> = chunk_configs.to_vec();
                move || {
                    let mut scratch = core.scratch();
                    chunk_configs
                        .iter()
                        .map(|config| core.evaluate_on(config, &mut scratch, &engine))
                        .collect::<Vec<ObjectiveValue>>()
                }
            })
            .collect();
        engine.map(tasks).into_iter().flatten().collect()
    }

    /// Per-Pauli-term expectations of the Hamiltonian on a configuration,
    /// in deterministic term order — the data behind the paper's Fig. 6.
    ///
    /// Large Hamiltonians (≥ 4096 terms) shard the per-term sweep across
    /// an engine attached with [`Self::with_engine`]; expectations are
    /// exact integers (±1, 0), so sharding cannot perturb them, and
    /// results are reassembled in term order regardless of scheduling.
    pub fn term_expectations(&self, config: &[usize]) -> Vec<(PauliString, f64, i8)> {
        let mut scratch = self.scratch();
        self.prepare(config, &mut scratch);
        let attached = self.engine.as_ref().filter(|engine| engine.is_pooled());
        if self.core.terms.len() >= CHUNKED_TERM_THRESHOLD {
            if let Some(engine) = attached {
                let tasks: Vec<_> = self
                    .core
                    .term_chunk_ranges()
                    .map(|range| {
                        let core = Arc::clone(&self.core);
                        let tableau = Arc::clone(&scratch.tableau);
                        move || {
                            core.terms[range]
                                .iter()
                                .map(|(p, c)| (*p, *c, tableau.expectation_pauli(p)))
                                .collect::<Vec<_>>()
                        }
                    })
                    .collect();
                return engine.map(tasks).into_iter().flatten().collect();
            }
        }
        let tableau = &scratch.tableau;
        self.core.terms.iter().map(|(p, c)| (*p, *c, tableau.expectation_pauli(p))).collect()
    }
}

/// One polish move: the `(slot, new angle index)` patches applied to the
/// session base to form a neighbor configuration — one entry for a
/// coordinate move, two for a pair move.
pub type PolishMove = Vec<(usize, usize)>;

/// An incremental polish session (see
/// [`CliffordObjective::polish_session`]).
///
/// The session owns the current *base* configuration and a prefix
/// checkpoint: a tableau holding the state after template ops
/// `0..prefix_end` of the base. Evaluating a batch of moves seeks the
/// checkpoint to the earliest op any move affects
/// (`CompiledAnsatz::first_op_of`), then each neighbor restores the
/// checkpoint and replays only the suffix — turning the
/// full-re-preparation cost of a polish evaluation into work
/// proportional to the suffix length. Forward sweeps (slots in
/// increasing op order, the shape of both polish phases) *advance* the
/// checkpoint incrementally; a *backward* seek restores the deepest
/// still-valid entry of a per-layer checkpoint stack (one snapshot per
/// `CompiledAnsatz::layer_starts` boundary, taken as forward advances
/// cross it) and replays only from that boundary — falling back to a
/// rebuild from `|0…0⟩` when no dominating snapshot survives, which is
/// always correct, merely slower. Accepted moves invalidate exactly the
/// snapshots past the earliest changed op, so every surviving entry is
/// a true prefix state of the current base.
///
/// # Determinism
///
/// Prefix + suffix is the same integer gate sequence as a full
/// `run_compiled`, so the prepared tableau — and every energy, through
/// the same fixed-association term sum — is bit-identical to
/// [`CliffordObjective::evaluate`] of the patched configuration, at any
/// engine width, including the term-sharded (≥ 4096 terms) path.
/// Asserted by `crates/clifford/tests/incremental_equivalence.rs`,
/// `crates/core/tests/polish_equivalence.rs` and the neighbor boundary
/// cases in `crates/core/tests/term_sharding.rs`.
pub struct PolishSession {
    core: Arc<EvalCore>,
    /// The objective's attached engine (`None` resolves to the global
    /// pool lazily, and only for batches big enough to dispatch —
    /// mirroring [`CliffordObjective::evaluate_batch`]).
    engine: Option<ExecEngine>,
    base: Vec<usize>,
    /// State after template ops `0..prefix_end` of `base`.
    prefix: Arc<Tableau>,
    prefix_end: usize,
    scratch: EvalScratch,
    config_buf: Vec<usize>,
    /// The template's layer boundaries (`CompiledAnsatz::layer_starts`),
    /// strictly increasing, each in `1..ops.len()`.
    layers: Vec<usize>,
    /// Per-boundary snapshots: `stack[i]` (when `Some`) holds the state
    /// after ops `0..layers[i]` of a configuration agreeing with `base`
    /// on every parameter whose first op is `< layers[i]` — i.e. a valid
    /// restore point for any seek target `>= layers[i]`.
    stack: Vec<Option<Arc<Tableau>>>,
    /// The A/B seam: `false` freezes the pre-stack behavior (backward
    /// seeks always rebuild from `|0…0⟩`) for the frozen-reference bench.
    use_stack: bool,
    backward_seeks: u64,
    stack_restores: u64,
}

impl PolishSession {
    /// The current base configuration.
    pub fn base(&self) -> &[usize] {
        &self.base
    }

    fn template(&self) -> &CompiledAnsatz {
        self.core.template.as_ref().expect("polish sessions require a compiled template")
    }

    /// Disables (or re-enables) the layered checkpoint stack — the A/B
    /// seam for the backward-seek bench. With the stack off, backward
    /// seeks always rebuild the prefix from `|0…0⟩` (the pre-stack
    /// behavior); results are bit-identical either way, only the seek
    /// cost differs. Disabling drops any snapshots already taken.
    pub fn with_checkpoint_stack(mut self, enabled: bool) -> Self {
        self.use_stack = enabled;
        if !enabled {
            for slot in &mut self.stack {
                *slot = None;
            }
        }
        self
    }

    /// `(backward_seeks, stack_restores)`: how many seeks moved the
    /// checkpoint backwards this session, and how many of those restored
    /// a layer snapshot instead of rebuilding the prefix from `|0…0⟩`.
    pub fn seek_stats(&self) -> (u64, u64) {
        (self.backward_seeks, self.stack_restores)
    }

    /// Moves the prefix checkpoint to exactly `start` ops: advancing
    /// applies the missing base ops on top of the current checkpoint
    /// (snapshotting each layer boundary it crosses); moving backwards
    /// restores the deepest valid snapshot at or below `start` and
    /// advances from there, rebuilding from `|0…0⟩` only when no
    /// snapshot dominates the target.
    fn seek(&mut self, start: usize) {
        if start == self.prefix_end {
            return;
        }
        if start < self.prefix_end {
            self.backward_seeks += 1;
            let mut restored = false;
            if self.use_stack {
                // Deepest Some entry whose boundary is ≤ the target.
                for i in (0..self.layers.len()).rev() {
                    if self.layers[i] > start {
                        continue;
                    }
                    if let Some(ckpt) = &self.stack[i] {
                        let ckpt = Arc::clone(ckpt);
                        // The Arc is uniquely owned between batches
                        // (engine shards drop their clones before `map`
                        // returns), so make_mut stays in place.
                        Arc::make_mut(&mut self.prefix).copy_from(&ckpt);
                        self.prefix_end = self.layers[i];
                        self.stack_restores += 1;
                        restored = true;
                        break;
                    }
                }
            }
            if !restored {
                let core = Arc::clone(&self.core);
                let template = core.template.as_ref().expect("checked at session creation");
                // ops 0..0 of anything is |0…0⟩: a pure reset.
                Arc::make_mut(&mut self.prefix).run_compiled_prefix(template, &self.base, 0);
                self.prefix_end = 0;
            }
        }
        self.advance_to(start);
    }

    /// Forward half of [`Self::seek`]: applies base ops
    /// `prefix_end..start` on top of the checkpoint, segment by segment,
    /// snapshotting the state into the stack at every layer boundary
    /// crossed (so later backward seeks have restore points).
    fn advance_to(&mut self, start: usize) {
        debug_assert!(start >= self.prefix_end);
        let core = Arc::clone(&self.core);
        let template = core.template.as_ref().expect("checked at session creation");
        while self.prefix_end < start {
            let next = if self.use_stack {
                self.layers.iter().position(|&b| b > self.prefix_end && b <= start)
            } else {
                None
            };
            let prefix = Arc::make_mut(&mut self.prefix);
            match next {
                Some(i) => {
                    let boundary = self.layers[i];
                    prefix.apply_range(template, &self.base, self.prefix_end, boundary);
                    self.prefix_end = boundary;
                    match &mut self.stack[i] {
                        Some(ckpt) => Arc::make_mut(ckpt).copy_from(prefix),
                        slot => *slot = Some(Arc::new(prefix.clone())),
                    }
                }
                None => {
                    prefix.apply_range(template, &self.base, self.prefix_end, start);
                    self.prefix_end = start;
                }
            }
        }
    }

    /// Applies an accepted move to the session base. Checkpoints at or
    /// before the move's earliest affected op stay valid (the forward
    /// sweep case); a checkpoint past it is rewound — and every stack
    /// snapshot past it is dropped — so acceptance is always safe, in
    /// any order.
    pub fn accept(&mut self, mv: &[(usize, usize)]) {
        let mut first = usize::MAX;
        for &(slot, value) in mv {
            self.base[slot] = value;
            self.config_buf[slot] = value;
            first = first.min(self.template().first_op_of(slot));
        }
        // A snapshot at boundary b is a prefix state of the *new* base
        // iff no changed parameter is read before b.
        for (i, slot) in self.stack.iter_mut().enumerate() {
            if self.layers[i] > first {
                *slot = None;
            }
        }
        if first < self.prefix_end {
            self.seek(first);
        }
    }

    /// Evaluates a batch of neighbor moves against the session base, in
    /// input order — the polish counterpart of
    /// [`CliffordObjective::evaluate_batch`], and bit-identical to
    /// evaluating each patched configuration through it. Small workloads
    /// stay on the calling thread; large ones shard moves across the
    /// engine, and big-Hamiltonian neighbors (≥ 4096 terms) term-shard
    /// from inside the pool exactly like full evaluations.
    ///
    /// # Panics
    ///
    /// Panics if a move names a slot out of range or an angle index
    /// outside `0..4`.
    pub fn evaluate_moves(&mut self, moves: &[PolishMove]) -> Vec<ObjectiveValue> {
        if moves.is_empty() {
            return Vec::new();
        }
        let ops_len = self.template().ops().len();
        let start = moves
            .iter()
            .flat_map(|mv| mv.iter())
            .map(|&(slot, _)| self.template().first_op_of(slot))
            .min()
            .unwrap_or(ops_len);
        self.seek(start);
        // The same dispatch heuristic as `evaluate_batch`: tiny workloads
        // never pay engine dispatch (nor force the global pool into
        // existence).
        let per_eval = self.core.terms.len().max(1) * self.core.num_qubits.max(1);
        let big = moves.len() * per_eval >= BATCH_DISPATCH_THRESHOLD;
        let pooled =
            big && self.engine.clone().unwrap_or_else(|| ExecEngine::global().clone()).is_pooled();
        if !pooled {
            let attached = self.engine.clone();
            let mut out = Vec::with_capacity(moves.len());
            for mv in moves {
                for &(slot, value) in mv {
                    self.config_buf[slot] = value;
                }
                let value = match &attached {
                    Some(engine) if self.core.terms.len() >= CHUNKED_TERM_THRESHOLD => {
                        self.core.evaluate_neighbor_on(
                            &mut self.scratch,
                            &self.prefix,
                            start,
                            &self.config_buf,
                            engine,
                        )
                    }
                    _ => self.core.evaluate_neighbor(
                        &mut self.scratch,
                        &self.prefix,
                        start,
                        &self.config_buf,
                    ),
                };
                for &(slot, _) in mv {
                    self.config_buf[slot] = self.base[slot];
                }
                out.push(value);
            }
            return out;
        }
        let engine = self.engine.clone().unwrap_or_else(|| ExecEngine::global().clone());
        let shards = engine.workers().min(moves.len());
        let chunk = moves.len().div_ceil(shards);
        let tasks: Vec<_> = moves
            .chunks(chunk)
            .map(|chunk_moves| {
                let core = Arc::clone(&self.core);
                let prefix = Arc::clone(&self.prefix);
                let base = self.base.clone();
                let chunk_moves: Vec<PolishMove> = chunk_moves.to_vec();
                let engine = engine.clone();
                move || {
                    let mut scratch = core.scratch();
                    let mut config = base.clone();
                    chunk_moves
                        .iter()
                        .map(|mv| {
                            for &(slot, value) in mv {
                                config[slot] = value;
                            }
                            let value = core.evaluate_neighbor_on(
                                &mut scratch,
                                &prefix,
                                start,
                                &config,
                                &engine,
                            );
                            for &(slot, _) in mv {
                                config[slot] = base[slot];
                            }
                            value
                        })
                        .collect::<Vec<ObjectiveValue>>()
                }
            })
            .collect();
        engine.map(tasks).into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cafqa_circuit::EfficientSu2;

    #[test]
    fn xx_microbenchmark_reaches_minus_one() {
        // Paper Fig. 5: the 2-qubit XX Hamiltonian has a Clifford point at
        // the global minimum −1.
        let h: PauliOp = "XX".parse().unwrap();
        let ansatz = EfficientSu2::new(2, 1);
        let objective = CliffordObjective::new(&ansatz, &h);
        let mut best = f64::INFINITY;
        // Exhaust the first-layer RY on qubit 0 with everything else 0.
        for k in 0..4 {
            let mut cfg = vec![0usize; 8];
            cfg[0] = k;
            best = best.min(objective.evaluate(&cfg).energy);
        }
        assert_eq!(best, -1.0);
    }

    #[test]
    fn penalty_pushes_off_sector_states_up() {
        // Penalize ⟨(Z − 1)²⟩ on a 1-qubit problem: |1⟩ (Z = −1) costs 4w.
        let h: PauliOp = "0*I".parse().unwrap();
        let z: PauliOp = "Z".parse().unwrap();
        let ansatz = EfficientSu2::new(1, 0);
        let objective =
            CliffordObjective::new(&ansatz, &h).with_penalty(Penalty::new("test", &z, 1.0, 0.5));
        // Ry(π) flips to |1⟩.
        let flipped = objective.evaluate(&[2, 0]);
        assert!((flipped.penalized - 2.0).abs() < 1e-12, "{flipped:?}");
        let stay = objective.evaluate(&[0, 0]);
        assert!(stay.penalized.abs() < 1e-12);
        // Raw energy is untouched by penalties.
        assert_eq!(flipped.energy, 0.0);
    }

    #[test]
    fn compiled_template_matches_fallback_lowering() {
        // The same objective evaluated through the compiled template and
        // through per-candidate lowering must agree bit-for-bit.
        let h: PauliOp = "0.5*XXII + 0.25*ZZZZ - 0.1*YIYI + 0.7*IZIZ".parse().unwrap();
        let ansatz = EfficientSu2::new(4, 1);
        let compiled = CliffordObjective::new(&ansatz, &h);
        assert!(compiled.is_compiled());
        let mut fallback = CliffordObjective::new(&ansatz, &h);
        Arc::make_mut(&mut fallback.core).template = None;
        for seed in 0u64..32 {
            let config: Vec<usize> =
                (0..16).map(|i| ((seed.wrapping_mul(0x9E37_79B9) >> i) & 3) as usize).collect();
            let a = compiled.evaluate(&config);
            let b = fallback.evaluate(&config);
            assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "{config:?}");
            assert_eq!(a.penalized.to_bits(), b.penalized.to_bits(), "{config:?}");
        }
    }

    #[test]
    fn batch_evaluation_matches_serial_bitwise() {
        let h: PauliOp = "0.5*XX + 0.25*ZZ - 0.1*YI".parse().unwrap();
        let z: PauliOp = "ZI".parse().unwrap();
        let ansatz = EfficientSu2::new(2, 1);
        let objective =
            CliffordObjective::new(&ansatz, &h).with_penalty(Penalty::new("z", &z, 1.0, 0.3));
        let configs: Vec<Vec<usize>> = (0..64u64)
            .map(|code| (0..8).map(|i| ((code.wrapping_mul(31) >> (2 * i)) & 3) as usize).collect())
            .collect();
        // Force multi-worker sharding so the pooled path is exercised
        // even on a single-core host (evaluate_batch would stay serial).
        for workers in [1usize, 3, 8] {
            let batch = objective.evaluate_batch_with_workers(&configs, workers);
            assert_eq!(batch.len(), configs.len());
            for (config, value) in configs.iter().zip(&batch) {
                let serial = objective.evaluate(config);
                assert_eq!(value.energy.to_bits(), serial.energy.to_bits(), "{workers} workers");
                assert_eq!(value.penalized.to_bits(), serial.penalized.to_bits());
            }
        }
    }

    #[test]
    fn batch_through_persistent_engine_matches_serial() {
        // The production path: one engine, many batches, no fresh pools.
        let h: PauliOp = "0.5*XX + 0.25*ZZ - 0.1*YI + 0.3*ZY".parse().unwrap();
        let ansatz = EfficientSu2::new(2, 1);
        let engine = ExecEngine::new(4);
        let objective = CliffordObjective::new(&ansatz, &h).with_engine(engine);
        assert_eq!(objective.engine().workers(), 4);
        for round in 0..8u64 {
            let configs: Vec<Vec<usize>> = (0..96u64)
                .map(|code| {
                    (0..8)
                        .map(|i| ((code.wrapping_mul(97 + round) >> (2 * i)) & 3) as usize)
                        .collect()
                })
                .collect();
            let batch = objective.evaluate_batch(&configs);
            for (config, value) in configs.iter().zip(&batch) {
                assert_eq!(value.energy.to_bits(), objective.evaluate(config).energy.to_bits());
            }
        }
    }

    #[test]
    fn uncompiled_ansatz_batch_falls_back_to_serial_path() {
        struct Scaled;
        impl Ansatz for Scaled {
            fn num_qubits(&self) -> usize {
                1
            }
            fn num_parameters(&self) -> usize {
                1
            }
            fn bind(&self, params: &[f64]) -> cafqa_circuit::Circuit {
                let mut c = cafqa_circuit::Circuit::new(1);
                // Arithmetic destroys the compile-probe sentinel, so this
                // ansatz never compiles; Clifford grid points still land
                // on multiples of π/2 (2·k·π/2 = k·π).
                c.ry(0, 2.0 * params[0]);
                c
            }
        }
        let h: PauliOp = "Z".parse().unwrap();
        let objective = CliffordObjective::new(&Scaled, &h);
        assert!(!objective.is_compiled());
        let configs: Vec<Vec<usize>> = (0..4).map(|k| vec![k]).collect();
        let batch = objective.evaluate_batch_with_workers(&configs, 4);
        for (config, value) in configs.iter().zip(&batch) {
            assert_eq!(value.energy.to_bits(), objective.evaluate(config).energy.to_bits());
        }
    }

    #[test]
    fn term_expectations_are_quantized() {
        let h: PauliOp = "0.5*XX + 0.25*ZZ - 0.1*YI".parse().unwrap();
        let ansatz = EfficientSu2::new(2, 1);
        let objective = CliffordObjective::new(&ansatz, &h);
        for (_, _, e) in objective.term_expectations(&[1, 2, 3, 0, 1, 2, 3, 0]) {
            assert!(e == -1 || e == 0 || e == 1);
        }
    }
}
